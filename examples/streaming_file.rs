//! Streaming search over an XML file that is never loaded into memory.
//!
//! Writes an XMark-like document to a temporary file as XML text, then
//! answers a top-k query by streaming it through the prefix ring buffer —
//! the end-to-end pipeline the paper targets (1.6 GB documents on a 4 GB
//! machine, Sec. VII). The peak number of buffered document nodes is
//! printed to show Theorem 2's O(τ) bound in action.
//!
//! Run with: `cargo run --release --example streaming_file`

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::time::Instant;

use tasm::core::{tasm_postorder, threshold, PrefixRingBuffer, TasmOptions};
use tasm::data::{xmark_tree, XMarkConfig};
use tasm::tree::{LabelDict, Tree};
use tasm::xml::{tree_to_xml, XmlPostorderQueue};
use tasm::UnitCost;

fn main() {
    let dir = std::env::temp_dir();
    let path = dir.join("tasm_streaming_example.xml");

    // ------------------------------------------------------------------
    // 1. Materialize an XMark-like document as an XML file.
    // ------------------------------------------------------------------
    let mut dict = LabelDict::new();
    let doc = xmark_tree(&mut dict, &XMarkConfig::new(7, 300_000));
    {
        let file = File::create(&path).expect("create temp file");
        let mut w = BufWriter::new(file);
        let xml = tree_to_xml(&doc, &dict);
        w.write_all(xml.as_bytes()).expect("write");
    }
    let file_mb = std::fs::metadata(&path).expect("stat").len() as f64 / (1024.0 * 1024.0);
    println!(
        "wrote {} ({:.1} MB, {} nodes, height {})",
        path.display(),
        file_mb,
        doc.len(),
        doc.height()
    );

    // A query: a small auction-item fragment.
    let query_xml = "<item><location>country1</location><quantity>2</quantity>\
                     <name>w0 w1</name><payment>Creditcard</payment></item>";
    let mut qdict = LabelDict::new();
    let query: Tree = tasm::xml::parse_tree_str(query_xml, &mut qdict).expect("query XML");
    let k = 10;
    let tau = threshold(query.len() as u64, 1, 1, k as u64);
    println!("query: {} nodes, k = {k}, τ = {tau}", query.len());

    // ------------------------------------------------------------------
    // 2. Stream the file through TASM-postorder.
    // ------------------------------------------------------------------
    let t0 = Instant::now();
    let file = File::open(&path).expect("open");
    let mut queue = XmlPostorderQueue::new(BufReader::new(file), &mut qdict);
    let matches = tasm_postorder(
        &query,
        &mut queue,
        k,
        &UnitCost,
        1,
        TasmOptions::default(),
        None,
    );
    assert!(queue.is_ok(), "stream error: {:?}", queue.take_error());
    let dt = t0.elapsed();

    println!("\ntop-{k} in {dt:?}:");
    for (rank, m) in matches.iter().enumerate() {
        println!(
            "  #{:>2} node {:>8}  distance {:>5}  size {:>3}",
            rank + 1,
            m.root.post(),
            m.distance.to_string(),
            m.size
        );
    }

    // ------------------------------------------------------------------
    // 3. Show the O(τ) buffer bound on the same stream.
    // ------------------------------------------------------------------
    let file = File::open(&path).expect("open");
    let mut dict2 = LabelDict::new();
    let mut queue = XmlPostorderQueue::new(BufReader::new(file), &mut dict2);
    let mut prb = PrefixRingBuffer::new(&mut queue, tau as u32);
    let mut candidates = 0u64;
    while prb.next_candidate().is_some() {
        candidates += 1;
    }
    println!(
        "\nprefix ring buffer: {} candidates from {} streamed nodes, \
         peak buffer {} nodes (τ = {tau}) — memory independent of the file",
        candidates,
        prb.nodes_seen(),
        prb.peak_buffered()
    );
    assert!(prb.peak_buffered() as u64 <= tau);

    std::fs::remove_file(&path).ok();
}
