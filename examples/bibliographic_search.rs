//! Bibliographic search — the paper's motivating scenario (Sec. I): find
//! the articles in a DBLP-scale bibliography that best match a partially
//! remembered citation.
//!
//! Generates a DBLP-like document with `tasm::data`, extracts one real
//! article, perturbs it (as a user misremembering fields would), and runs
//! both TASM algorithms, comparing their answers and their work.
//!
//! Run with: `cargo run --release --example bibliographic_search`

use std::time::Instant;

use tasm::data::{dblp_tree, DblpConfig};
use tasm::prelude::*;
use tasm::ted::TedStats;

fn main() {
    let mut dict = LabelDict::new();

    // A bibliography with ~200k nodes (~12k records).
    let doc = dblp_tree(&mut dict, &DblpConfig::new(2024, 200_000));
    println!(
        "document: {} nodes, height {}, {} records",
        doc.len(),
        doc.height(),
        doc.fanout(doc.root())
    );

    // Take a real article and misremember it: wrong year, missing pages.
    let article_label = dict.get("article").expect("generator uses articles");
    let some_article = doc
        .nodes()
        .find(|&i| doc.label(i) == article_label && doc.size(i) >= 12)
        .expect("an article exists");
    let original = doc.subtree(some_article);

    let mut b = TreeBuilder::new();
    let pages_label = dict.get("pages");
    let wrong_year = dict.intern("1999");
    // Rebuild the query: copy the article, drop the pages field, change year.
    rebuild_without_pages(&original, &mut b, &dict, pages_label, wrong_year);
    let query = b.finish().expect("query is a tree");
    println!(
        "query: {} nodes (from a real {}-node article, year changed, pages dropped)",
        query.len(),
        original.len()
    );

    let k = 5;

    // --- TASM-postorder (streaming, the paper's algorithm) -------------
    let mut stats_po = TedStats::new();
    let t0 = Instant::now();
    let mut stream = TreeQueue::new(&doc);
    let top_po = tasm_postorder(
        &query,
        &mut stream,
        k,
        &UnitCost,
        1,
        TasmOptions::default(),
        Some(&mut stats_po),
    );
    let dt_po = t0.elapsed();

    // --- TASM-dynamic (baseline) ---------------------------------------
    let mut stats_dy = TedStats::new();
    let t0 = Instant::now();
    let top_dy = tasm_dynamic(
        &query,
        &doc,
        k,
        &UnitCost,
        TasmOptions::default(),
        Some(&mut stats_dy),
    );
    let dt_dy = t0.elapsed();

    println!("\ntop-{k} (TASM-postorder, {dt_po:?}):");
    for (rank, m) in top_po.iter().enumerate() {
        println!(
            "  #{} node {:>7}  distance {:>4}  size {}",
            rank + 1,
            m.root.post(),
            m.distance.to_string(),
            m.size
        );
    }

    // Both algorithms agree on distances (and here, on the subtrees).
    assert_eq!(
        top_po.iter().map(|m| m.distance).collect::<Vec<_>>(),
        top_dy.iter().map(|m| m.distance).collect::<Vec<_>>()
    );
    // The perturbed original is the best match.
    assert_eq!(top_po[0].root.post(), some_article.post());

    println!("\nwork comparison (Fig. 11 in miniature):");
    println!(
        "  dynamic:   {} relevant subtrees, largest {} nodes",
        stats_dy.total_relevant(),
        stats_dy.max_relevant_size()
    );
    println!(
        "  postorder: {} relevant subtrees, largest {} nodes (τ = {})",
        stats_po.total_relevant(),
        stats_po.max_relevant_size(),
        threshold(query.len() as u64, 1, 1, k as u64)
    );
    println!(
        "  dynamic/postorder runtime: {:.1}×",
        dt_dy.as_secs_f64() / dt_po.as_secs_f64()
    );
}

/// Copies `tree` into `b`, dropping `pages` subtrees and renaming any year
/// text to `wrong_year`.
fn rebuild_without_pages(
    tree: &Tree,
    b: &mut TreeBuilder,
    dict: &LabelDict,
    pages_label: Option<LabelId>,
    wrong_year: LabelId,
) {
    fn rec(
        tree: &Tree,
        node: NodeId,
        b: &mut TreeBuilder,
        dict: &LabelDict,
        pages_label: Option<LabelId>,
        wrong_year: LabelId,
        in_year: bool,
    ) {
        if Some(tree.label(node)) == pages_label {
            return; // forget the pages field entirely
        }
        let label = tree.label(node);
        let is_year = dict.resolve(label) == "year";
        let out_label = if in_year && tree.is_leaf(node) {
            wrong_year
        } else {
            label
        };
        b.start(out_label);
        for c in tree.children(node) {
            rec(tree, c, b, dict, pages_label, wrong_year, is_year);
        }
        b.end().expect("balanced");
    }
    rec(tree, tree.root(), b, dict, pages_label, wrong_year, false);
}
