//! Filter-and-verify matching: the related-work pipeline of Sec. III.
//!
//! Guha et al. [1] prune tree-join candidate pairs with cheap distance
//! bounds before running the expensive edit distance; Yang et al. [20] and
//! Augsten et al. [21] provide `O(n log n)` bounds. This example combines
//! those filters (implemented in `tasm::ted::filters`) with exact TASM
//! verification: given a query record and a large set of candidate
//! records, lower bounds discard most candidates without a single
//! dynamic-programming run, and the survivors are verified exactly.
//!
//! Run with: `cargo run --release --example filter_and_verify`

use std::time::Instant;

use tasm::data::{dblp_tree, DblpConfig};
use tasm::prelude::*;
use tasm::ted::filters::{binary_branch_lower_bound, label_histogram_lower_bound};

fn main() {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(77, 150_000));

    // Candidate set: all records under the root (the join partition).
    let records: Vec<Tree> = doc
        .children(doc.root())
        .into_iter()
        .map(|r| doc.subtree(r))
        .collect();
    println!("{} candidate records", records.len());

    // Query: a perturbed copy of one record (rename two leaves).
    let base = &records[records.len() / 2];
    let mut labels = base.labels().to_vec();
    let perturbed = dict.intern("PERTURBED");
    let mut changed = 0;
    for (i, slot) in labels.iter_mut().enumerate() {
        if base.is_leaf(NodeId::from_index(i)) && changed < 2 {
            *slot = perturbed;
            changed += 1;
        }
    }
    let query = Tree::from_postorder_unchecked(labels, base.sizes().to_vec());
    let threshold_dist = Cost::from_natural(3); // join predicate: δ <= 3

    // ---------------- exact-only baseline ------------------------------
    let t0 = Instant::now();
    let exact_matches: Vec<usize> = records
        .iter()
        .enumerate()
        .filter(|(_, r)| ted(&query, r, &UnitCost) <= threshold_dist)
        .map(|(i, _)| i)
        .collect();
    let dt_exact = t0.elapsed();

    // ---------------- filter-and-verify --------------------------------
    let t0 = Instant::now();
    let mut survived_hist = 0usize;
    let mut survived_bb = 0usize;
    let mut verified: Vec<usize> = Vec::new();
    for (i, r) in records.iter().enumerate() {
        // Level 1: O(n) label histogram bound.
        if label_histogram_lower_bound(&query, r) > threshold_dist {
            continue;
        }
        survived_hist += 1;
        // Level 2: O(n log n) binary branch bound (Yang et al. [20]).
        if binary_branch_lower_bound(&query, r) > threshold_dist {
            continue;
        }
        survived_bb += 1;
        // Level 3: exact verification.
        if ted(&query, r, &UnitCost) <= threshold_dist {
            verified.push(i);
        }
    }
    let dt_filtered = t0.elapsed();

    println!("\njoin predicate: δ(query, record) <= {threshold_dist}");
    println!(
        "exact-only:        {} matches in {dt_exact:?}",
        exact_matches.len()
    );
    println!(
        "filter-and-verify: {} matches in {dt_filtered:?} \
         ({} survived histogram, {} survived binary-branch, {} verified)",
        verified.len(),
        survived_hist,
        survived_bb,
        verified.len()
    );
    println!(
        "speedup {:.1}× with zero false dismissals",
        dt_exact.as_secs_f64() / dt_filtered.as_secs_f64()
    );

    // Lower bounds never cause false dismissals: identical result sets.
    assert_eq!(exact_matches, verified);
    assert!(
        verified.contains(&(records.len() / 2)),
        "the perturbed original must match"
    );
    // And filtering must actually filter.
    assert!(
        survived_hist < records.len() / 2,
        "histogram filter too weak"
    );
}
