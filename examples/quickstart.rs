//! Quickstart: the 60-second tour of the TASM API.
//!
//! Run with: `cargo run --example quickstart`

use tasm::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. High-level API: query an XML document with `TasmQuery`.
    // ------------------------------------------------------------------
    let document = r#"
        <dblp>
          <article><author>John Doe</author><title>Tree Edit Distance</title><year>2008</year></article>
          <article><author>Jane Roe</author><title>Subtree Matching</title><year>2009</year></article>
          <article><author>Jane Roe</author><title>Tree Edit Distance</title><year>2010</year></article>
          <book><title>Algorithms on Trees</title></book>
        </dblp>"#;

    let query_xml =
        "<article><author>Jane Roe</author><title>Tree Edit Distance</title><year>2010</year></article>";

    let mut query = TasmQuery::from_xml(query_xml)
        .expect("valid query XML")
        .k(3);
    let matches = query.run_xml_str(document).expect("valid document XML");

    println!("Top-{} matches for the query article:", matches.len());
    for (rank, m) in matches.iter().enumerate() {
        println!(
            "  #{} distance={} size={} root=node {}",
            rank + 1,
            m.distance,
            m.size,
            m.root.post()
        );
        if let Some(xml) = query.match_to_xml(m) {
            println!("     {xml}");
        }
    }
    assert_eq!(matches[0].distance, Cost::ZERO); // exact copy exists

    // ------------------------------------------------------------------
    // 2. Low-level API: trees, edit distance, and the paper's example.
    // ------------------------------------------------------------------
    let mut dict = LabelDict::new();
    // Query G and document H from Fig. 2 of the paper.
    let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
    let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();

    // δ(G, H) = 4 (Fig. 3).
    let distance = ted(&g, &h, &UnitCost);
    println!("\nPaper example: δ(G, H) = {distance}");
    assert_eq!(distance, Cost::from_natural(4));

    // TASM with the streaming algorithm: top-2 = (H6, H3) (Example 2).
    let mut stream = TreeQueue::new(&h);
    let top2 = tasm_postorder(
        &g,
        &mut stream,
        2,
        &UnitCost,
        1,
        TasmOptions::default(),
        None,
    );
    println!(
        "Top-2 subtrees of H: nodes {} and {} at distances {} and {}",
        top2[0].root.post(),
        top2[1].root.post(),
        top2[0].distance,
        top2[1].distance
    );
    assert_eq!(top2[0].root.post(), 6);
    assert_eq!(top2[1].root.post(), 3);

    // ------------------------------------------------------------------
    // 3. The size threshold τ (Theorem 3): why TASM-postorder scales.
    // ------------------------------------------------------------------
    // A 15-node query, top-20, unit costs — any answer subtree has at most
    // 2·|Q| + k = 50 nodes, no matter how big the document is.
    let tau = threshold(15, 1, 1, 20);
    println!("\nτ for |Q|=15, k=20 under unit costs: {tau} nodes");
    assert_eq!(tau, 50);
}
