//! Approximate XML keyword search — the future-work direction sketched in
//! the paper's conclusion (Sec. VIII): "one is interested in small subtrees
//! that match a set of keywords, which can be accommodated in the
//! formulation of the tree edit distance".
//!
//! Keywords are turned into a star query (a result-type root whose
//! children are the keywords). The cost model does the ranking work the
//! paper alludes to ("the node cost can depend on the element type",
//! Sec. IV-D): keyword nodes carry a high cost, so *dropping* a keyword is
//! expensive, while document nodes are cheap to insert — the best answers
//! are small subtrees that cover many keywords. Content score (coverage)
//! and structure score (conciseness) of XML keyword search (Sec. III)
//! emerge from one edit-distance formulation.
//!
//! Run with: `cargo run --release --example keyword_search`

use tasm::data::{dblp_tree, DblpConfig};
use tasm::prelude::*;
use tasm::PerLabelCost;

/// Cost of a keyword node: dropping one costs this many unit edits.
const KEYWORD_WEIGHT: u64 = 25;

/// Builds the star query for a keyword set: root `root` with one child per
/// keyword.
fn keyword_query(dict: &mut LabelDict, root: &str, keywords: &[&str]) -> Tree {
    let mut b = TreeBuilder::new();
    b.start(dict.intern(root));
    for kw in keywords {
        b.leaf(dict.intern(kw));
    }
    b.end().expect("balanced");
    b.finish().expect("single root")
}

fn main() {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(99, 100_000));
    println!("bibliography: {} nodes", doc.len());

    // Keywords must match whole text nodes (a text node is one label in
    // the paper's node model), so we search by field values: an author
    // name, a year and a journal.
    let keywords = ["Author_0", "1995", "Journal 3"];
    let query = keyword_query(&mut dict, "article", &keywords);
    println!(
        "keywords: {keywords:?} -> star query of {} nodes",
        query.len()
    );

    // Keywords are precious; everything else is cheap filler.
    let mut model = PerLabelCost::new(1);
    for kw in &keywords {
        model.set(dict.get(kw).expect("interned"), KEYWORD_WEIGHT);
    }

    let k = 5;
    let mut stream = TreeQueue::new(&doc);
    let matches = tasm_postorder(
        &query,
        &mut stream,
        k,
        &model,
        KEYWORD_WEIGHT, // c_T: keyword labels also occur in the document
        TasmOptions {
            keep_trees: true,
            ..Default::default()
        },
        None,
    );

    println!("\ntop-{k} matches (coverage beats conciseness):");
    for (rank, m) in matches.iter().enumerate() {
        let tree = m.tree.as_ref().expect("keep_trees");
        let covered = keywords
            .iter()
            .filter(|kw| {
                dict.get(kw)
                    .map(|id| tree.labels().contains(&id))
                    .unwrap_or(false)
            })
            .count();
        println!(
            "  #{} node {:>7} distance {:>6} size {:>3} keywords covered {}/{}",
            rank + 1,
            m.root.post(),
            m.distance.to_string(),
            m.size,
            covered,
            keywords.len()
        );
    }

    // The top answer covers at least two of the three keywords: dropping
    // a keyword (25.0) outweighs inserting a whole extra field (1.0 each).
    let best = matches[0].tree.as_ref().unwrap();
    let covered_best = keywords
        .iter()
        .filter(|kw| {
            dict.get(kw)
                .map(|id| best.labels().contains(&id))
                .unwrap_or(false)
        })
        .count();
    assert!(
        covered_best >= 2,
        "top answer covers {covered_best} keywords"
    );

    // And answers remain small: Theorem 3 bounds them by τ even with the
    // weighted costs.
    let c_q = KEYWORD_WEIGHT; // max query node cost
    let tau = threshold(query.len() as u64, c_q, KEYWORD_WEIGHT, k as u64);
    assert!(matches.iter().all(|m| u64::from(m.size) <= tau));
    println!("\nall answers within τ = {tau} nodes");
}
