//! Approximate XML join for data integration — the paper's first
//! motivating application (Sec. I: "integrating heterogeneous
//! repositories" and "cleaning such integrated data", refs [1], [3], [5]).
//!
//! Two bibliographies describe overlapping publications with divergent
//! conventions (different years, missing fields). For every record of the
//! smaller repository we run a top-1 TASM query against the larger one,
//! producing match pairs with their edit distances — a TASM-based
//! similarity join. A distance threshold then separates confident matches
//! from non-matches.
//!
//! Run with: `cargo run --release --example similarity_join`

use tasm::data::{dblp_tree, DblpConfig};
use tasm::prelude::*;

fn main() {
    let mut dict = LabelDict::new();

    // Repository A: the reference bibliography.
    let repo_a = dblp_tree(&mut dict, &DblpConfig::new(5, 40_000));

    // Repository B: a "dirty" copy — same seed (so the same publications),
    // then systematically perturbed: every year text is shifted, and we
    // keep only a sample of records.
    let repo_b_clean = dblp_tree(&mut dict, &DblpConfig::new(5, 40_000));
    let records: Vec<NodeId> = repo_b_clean
        .children(repo_b_clean.root())
        .into_iter()
        .step_by(500) // sample every 500th record
        .collect();
    println!(
        "repo A: {} nodes; joining {} sampled records from repo B",
        repo_a.len(),
        records.len()
    );

    let year_label = dict.get("year");
    let perturbed_year = dict.intern("2042");

    let mut joined = 0usize;
    let mut total = 0usize;
    println!(
        "\n{:<8} {:>9} {:>9} {:>9}",
        "record", "B node", "A node", "distance"
    );
    for &rec in &records {
        let original = repo_b_clean.subtree(rec);
        let query = perturb_year(&original, &dict, year_label, perturbed_year);
        total += 1;

        let mut stream = TreeQueue::new(&repo_a);
        let top1 = tasm_postorder(
            &query,
            &mut stream,
            1,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        let m = &top1[0];
        // Join predicate: distance within 2 edits (the year rename + slack).
        let accepted = m.distance <= Cost::from_natural(2);
        if accepted {
            joined += 1;
        }
        println!(
            "{:<8} {:>9} {:>9} {:>9} {}",
            total,
            rec.post(),
            m.root.post(),
            m.distance.to_string(),
            if accepted { "JOIN" } else { "-" }
        );
        // The perturbed record still finds its original (1 rename).
        assert_eq!(m.root, rec);
        assert_eq!(m.distance, Cost::from_natural(1));
    }
    println!("\njoined {joined}/{total} records under distance threshold 2");
    assert_eq!(joined, total);
}

/// Returns a copy of `tree` with every text under a `year` field replaced.
fn perturb_year(
    tree: &Tree,
    _dict: &LabelDict,
    year_label: Option<LabelId>,
    replacement: LabelId,
) -> Tree {
    let parents = tree.parents();
    let labels: Vec<LabelId> = tree
        .nodes()
        .map(|id| {
            let under_year = parents[id.index()]
                .map(|p| Some(tree.label(p)) == year_label)
                .unwrap_or(false);
            if under_year && tree.is_leaf(id) {
                replacement
            } else {
                tree.label(id)
            }
        })
        .collect();
    Tree::from_postorder_unchecked(labels, tree.sizes().to_vec())
}
