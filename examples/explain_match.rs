//! Explainable matching: retrieve top-k subtrees with TASM, then show
//! *why* each one matched by extracting the optimal edit mapping (Def. 3).
//!
//! This is the complete user story of the paper's data-cleaning
//! application: search a large bibliography for a noisy record and get a
//! field-level diff of every candidate — which fields were kept, renamed,
//! or missing.
//!
//! Run with: `cargo run --release --example explain_match`

use tasm::data::{dblp_tree, DblpConfig};
use tasm::prelude::*;
use tasm::ted::{edit_script, EditOp};

fn main() {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(123, 80_000));
    println!("bibliography: {} nodes", doc.len());

    // A noisy query: a real record with the year mistyped.
    let article = dict.get("article").unwrap();
    let rec = doc
        .nodes()
        .find(|&i| doc.label(i) == article && doc.size(i) >= 14)
        .expect("an article exists");
    let original = doc.subtree(rec);
    let mistyped = dict.intern("1899");
    let parents = original.parents();
    let labels: Vec<LabelId> = original
        .nodes()
        .map(|id| {
            let under_year = parents[id.index()]
                .map(|p| dict.resolve(original.label(p)) == "year")
                .unwrap_or(false);
            if under_year {
                mistyped
            } else {
                original.label(id)
            }
        })
        .collect();
    let query = Tree::from_postorder_unchecked(labels, original.sizes().to_vec());

    // Retrieve the top-3 matches (keeping the trees for explanation).
    let mut stream = TreeQueue::new(&doc);
    let matches = tasm_postorder(
        &query,
        &mut stream,
        3,
        &UnitCost,
        1,
        TasmOptions {
            keep_trees: true,
            ..Default::default()
        },
        None,
    );

    for (rank, m) in matches.iter().enumerate() {
        let tree = m.tree.as_ref().expect("keep_trees");
        let script = edit_script(&query, tree, &UnitCost);
        assert_eq!(
            script.cost, m.distance,
            "script must realize the ranked distance"
        );
        let (keeps, renames, deletes, inserts) = script.op_counts();
        println!(
            "\n#{} node {} — distance {} ({} kept, {} renamed, {} deleted, {} inserted)",
            rank + 1,
            m.root.post(),
            m.distance,
            keeps,
            renames,
            deletes,
            inserts
        );
        for op in &script.ops {
            match *op {
                EditOp::Rename { q, t } => println!(
                    "    rename  {:<22} -> {}",
                    dict.resolve(query.label(q)),
                    dict.resolve(tree.label(t))
                ),
                EditOp::Delete { q } => {
                    println!("    delete  {}", dict.resolve(query.label(q)))
                }
                EditOp::Insert { t } => {
                    println!("    insert  {}", dict.resolve(tree.label(t)))
                }
                EditOp::Keep { .. } => {}
            }
        }
    }

    // The best match is the original record, explained as a single rename
    // of the year text.
    assert_eq!(matches[0].root.post(), rec.post());
    let best_script = edit_script(&query, matches[0].tree.as_ref().unwrap(), &UnitCost);
    let renames: Vec<_> = best_script
        .ops
        .iter()
        .filter(|o| matches!(o, EditOp::Rename { .. }))
        .collect();
    assert_eq!(renames.len(), 1, "exactly the mistyped year differs");
    println!("\ntop match differs from the query by exactly one rename — the year.");
}
