//! # TASM: Top-k Approximate Subtree Matching
//!
//! A Rust implementation of *Augsten, Böhlen, Barbosa, Palpanas — "TASM:
//! Top-k Approximate Subtree Matching", ICDE 2010*: find the `k` subtrees
//! of a large document tree that are closest to a small query tree under
//! the canonical tree edit distance, in **one pass** over the document and
//! with memory **independent of the document size**.
//!
//! This crate is a facade over the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`tree`] | ordered labeled trees, label dictionary, postorder queues |
//! | [`ted`] | Zhang–Shasha tree edit distance, cost models |
//! | [`core`] | τ threshold, prefix ring buffer, TASM-dynamic/postorder |
//! | [`index`] | persistent `.pqi` label index for scan-free candidates |
//! | [`xml`] | streaming XML parser → postorder queue |
//! | [`data`] | XMark/DBLP/PSD-like workload generators |
//!
//! # Quick start
//!
//! ```
//! use tasm::TasmQuery;
//!
//! let document = r#"
//!     <dblp>
//!       <article><author>John Doe</author><title>Tree Matching</title></article>
//!       <article><author>Jane Roe</author><title>Graph Matching</title></article>
//!       <book><title>Trees</title></book>
//!     </dblp>"#;
//!
//! let matches = TasmQuery::from_xml(
//!         "<article><author>Jane Roe</author><title>Tree Matching</title></article>")
//!     .unwrap()
//!     .k(2)
//!     .run_xml_str(document)
//!     .unwrap();
//!
//! assert_eq!(matches.len(), 2);
//! // Both articles match with one rename each; the book is further away.
//! assert_eq!(matches[0].distance.as_f64(), 1.0);
//! ```
//!
//! For streaming gigabyte-scale documents use
//! [`TasmQuery::run_xml_file`], which keeps only `O(τ)` nodes in memory
//! (Theorem 2 of the paper), or drive [`core::tasm_postorder`] with any
//! [`tree::PostorderQueue`] implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tasm_core as core;
pub use tasm_data as data;
pub use tasm_index as index;
pub use tasm_ted as ted;
pub use tasm_tree as tree;
pub use tasm_xml as xml;

pub use tasm_core::{Match, ScanStats, StreamIntegrityError, TasmOptions};
pub use tasm_index::IndexedDocument;
pub use tasm_ted::{Cost, CostModel, FanoutWeighted, PerLabelCost, UnitCost};
pub use tasm_tree::{LabelDict, NodeId, Tree};

use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use crate::core::{
        prb_pruning, tasm_batch, tasm_batch_parallel, tasm_batch_parallel_stream,
        tasm_batch_with_workspace, tasm_dynamic, tasm_dynamic_with_workspace, tasm_indexed,
        tasm_indexed_batch, tasm_naive, tasm_parallel, tasm_parallel_stream, tasm_postorder,
        tasm_postorder_with_workspace, threshold, BatchQuery, BatchWorkspace, CandidateSink, Match,
        PrefixRingBuffer, ScanEngine, ScanStats, StreamIntegrityError, TasmOptions, TasmWorkspace,
        TopKHeap,
    };
    pub use crate::index::IndexedDocument;
    pub use crate::ted::{
        ted, ted_full, ted_with_workspace, CascadeScratch, Cost, CostModel, FanoutWeighted,
        LowerBoundCascade, QueryContext, TedWorkspace, UnitCost,
    };
    pub use crate::tree::{
        bracket, LabelDict, LabelId, NodeId, PostorderEntry, PostorderQueue, Tree, TreeBuilder,
        TreeQueue,
    };
    pub use crate::xml::{parse_tree_str, XmlPostorderQueue};
    pub use crate::{TasmBatch, TasmQuery};
}

/// Errors from the high-level query API.
#[derive(Debug)]
pub enum TasmError {
    /// Query or document XML failed to parse.
    Xml(xml::XmlError),
    /// I/O failure opening or reading the document.
    Io(std::io::Error),
    /// The document stream ended abnormally (truncated or unreadable
    /// mid-document), so the ranking would be computed over a partial
    /// document.
    Stream(StreamIntegrityError),
    /// A `.pq` / `.pqi` postorder file failed to load.
    File(tree::postfile::PostFileError),
}

impl std::fmt::Display for TasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TasmError::Xml(e) => write!(f, "XML error: {e}"),
            TasmError::Io(e) => write!(f, "I/O error: {e}"),
            TasmError::Stream(e) => write!(f, "stream error: {e}"),
            TasmError::File(e) => write!(f, "index error: {e}"),
        }
    }
}

impl std::error::Error for TasmError {}

impl From<xml::XmlError> for TasmError {
    fn from(e: xml::XmlError) -> Self {
        TasmError::Xml(e)
    }
}

impl From<std::io::Error> for TasmError {
    fn from(e: std::io::Error) -> Self {
        TasmError::Io(e)
    }
}

impl From<StreamIntegrityError> for TasmError {
    fn from(e: StreamIntegrityError) -> Self {
        TasmError::Stream(e)
    }
}

impl From<tree::postfile::PostFileError> for TasmError {
    fn from(e: tree::postfile::PostFileError) -> Self {
        TasmError::File(e)
    }
}

/// Re-interns kept match subtrees from the index's dictionary into the
/// caller's, so the rendering helpers keep working after an indexed run.
fn adopt_match_trees(
    mut matches: Vec<Match>,
    idx_dict: &LabelDict,
    dict: &mut LabelDict,
) -> Vec<Match> {
    for m in &mut matches {
        if let Some(t) = m.tree.take() {
            let labels = t
                .nodes()
                .map(|id| dict.intern(idx_dict.resolve(t.label(id))))
                .collect();
            let sizes = t.nodes().map(|id| t.size(id)).collect();
            m.tree = Some(Tree::from_postorder_unchecked(labels, sizes));
        }
    }
    matches
}

/// A configured TASM query: the high-level entry point.
///
/// Wraps query parsing, the label dictionary, the Theorem 3 threshold and
/// the single-pass evaluation. Uses the unit cost model; for custom cost
/// models call [`core::tasm_postorder`] directly.
#[derive(Debug)]
pub struct TasmQuery {
    dict: LabelDict,
    query: Tree,
    k: usize,
    options: TasmOptions,
    /// Worker threads for sharded evaluation (1 = sequential streaming).
    threads: usize,
    /// Evaluation workspace reused across runs: repeated streaming
    /// evaluations are allocation-free in steady state.
    workspace: core::TasmWorkspace,
    /// Merged per-shard stats of the most recent parallel run (`None`
    /// when the last run went through the workspace).
    parallel_scan: Option<ScanStats>,
}

impl TasmQuery {
    /// Parses the query from an XML fragment.
    pub fn from_xml(query_xml: &str) -> Result<Self, TasmError> {
        let mut dict = LabelDict::new();
        let query = xml::parse_tree_str(query_xml, &mut dict)?;
        Ok(TasmQuery {
            dict,
            query,
            k: 1,
            options: TasmOptions {
                keep_trees: true,
                ..Default::default()
            },
            threads: 1,
            workspace: core::TasmWorkspace::new(),
            parallel_scan: None,
        })
    }

    /// Parses the query from bracket notation (e.g. `{a{b}{c}}`).
    pub fn from_bracket(query: &str) -> Result<Self, tree::TreeError> {
        let mut dict = LabelDict::new();
        let query = tree::bracket::parse(query, &mut dict)?;
        Ok(TasmQuery {
            dict,
            query,
            k: 1,
            options: TasmOptions {
                keep_trees: true,
                ..Default::default()
            },
            threads: 1,
            workspace: core::TasmWorkspace::new(),
            parallel_scan: None,
        })
    }

    /// Sets the ranking size `k` (default 1).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k.max(1);
        self
    }

    /// Sets the number of worker threads for sharded evaluation
    /// (default 1 = sequential; 0 = one per available core).
    ///
    /// The streaming entry points (`run_xml_str` / `run_xml_file` /
    /// `run_reader`) keep streaming: candidate segments are handed off
    /// to the workers ([`core::tasm_parallel_stream`]) with
    /// `O(threads · τ)` memory and **no** materialized document.
    /// [`TasmQuery::run_tree`] shards the candidate spans of the
    /// already-materialized tree instead ([`core::tasm_parallel`]).
    /// Results are identical to the sequential pass either way.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets whether matched subtrees are copied into the results
    /// (default `true`).
    pub fn keep_trees(mut self, keep: bool) -> Self {
        self.options.keep_trees = keep;
        self
    }

    /// The parsed query tree.
    pub fn query(&self) -> &Tree {
        &self.query
    }

    /// The label dictionary (grows while documents are processed).
    pub fn dict(&self) -> &LabelDict {
        &self.dict
    }

    /// Runs the query against an XML string (streamed; the document tree is
    /// never materialized).
    pub fn run_xml_str(&mut self, document: &str) -> Result<Vec<Match>, TasmError> {
        self.run_reader(document.as_bytes())
    }

    /// Runs the query against an XML file, streaming it with `O(τ)` memory.
    pub fn run_xml_file(&mut self, path: impl AsRef<Path>) -> Result<Vec<Match>, TasmError> {
        let file = File::open(path)?;
        self.run_reader(BufReader::new(file))
    }

    /// Runs the query against any buffered XML source. The internal
    /// workspace is reused, so back-to-back runs skip all warm-up
    /// allocations.
    ///
    /// With [`TasmQuery::threads`] above 1 the document **still
    /// streams**: the scan hands candidate segments to the worker
    /// threads ([`core::tasm_parallel_stream`]) and no document tree is
    /// ever materialized.
    pub fn run_reader<R: std::io::BufRead>(&mut self, reader: R) -> Result<Vec<Match>, TasmError> {
        self.parallel_scan = None;
        if self.threads != 1 {
            let mut queue = xml::XmlPostorderQueue::new(reader, &mut self.dict);
            let result = core::tasm_parallel_stream_with_stats(
                &self.query,
                &mut queue,
                self.k,
                &UnitCost,
                1,
                self.options,
                self.threads,
                None,
            );
            // Prefer the parser's own error: it carries the byte offset
            // and reason, while the stream error only records that the
            // document ended early.
            if let Some(err) = queue.take_error() {
                return Err(err.into());
            }
            let (matches, scan) = result?;
            self.parallel_scan = Some(scan);
            return Ok(matches);
        }
        let mut queue = xml::XmlPostorderQueue::new(reader, &mut self.dict);
        let matches = core::tasm_postorder_with_workspace(
            &self.query,
            &mut queue,
            self.k,
            &UnitCost,
            1,
            self.options,
            &mut self.workspace,
            None,
        );
        if let Some(err) = queue.take_error() {
            return Err(err.into());
        }
        Ok(matches)
    }

    /// Runs the query against an in-memory tree that shares this query's
    /// dictionary (e.g. built with [`TasmQuery::parse_document`]),
    /// sharding the scan across [`TasmQuery::threads`] workers when more
    /// than one is configured.
    pub fn run_tree(&mut self, doc: &Tree) -> Vec<Match> {
        if self.threads != 1 {
            let (matches, scan) = core::tasm_parallel_with_stats(
                &self.query,
                doc,
                self.k,
                &UnitCost,
                1,
                self.options,
                self.threads,
                None,
            );
            self.parallel_scan = Some(scan);
            return matches;
        }
        self.parallel_scan = None;
        let mut queue = tree::TreeQueue::new(doc);
        core::tasm_postorder_with_workspace(
            &self.query,
            &mut queue,
            self.k,
            &UnitCost,
            1,
            self.options,
            &mut self.workspace,
            None,
        )
    }

    /// Parses a document into this query's dictionary for use with
    /// [`TasmQuery::run_tree`] / repeated runs.
    pub fn parse_document(&mut self, xml_text: &str) -> Result<Tree, TasmError> {
        Ok(xml::parse_tree_str(xml_text, &mut self.dict)?)
    }

    /// Runs the query against a prebuilt `.pqi` index file (see
    /// [`IndexedDocument`] and the `tasm index` CLI subcommand):
    /// candidate regions come from the label postings instead of a full
    /// document scan, and the ranking is identical to the streamed run.
    pub fn run_index_file(&mut self, path: impl AsRef<Path>) -> Result<Vec<Match>, TasmError> {
        let idx = IndexedDocument::open(path)?;
        Ok(self.run_index(&idx))
    }

    /// Runs the query against an already-loaded [`IndexedDocument`].
    ///
    /// The index carries its own label dictionary; query labels are
    /// translated by name and kept match subtrees are translated back,
    /// so [`TasmQuery::match_to_xml`] works exactly as after a
    /// streamed run.
    pub fn run_index(&mut self, idx: &IndexedDocument) -> Vec<Match> {
        let (matches, scan) = core::tasm_indexed_with_stats(
            &self.query,
            &self.dict,
            idx,
            self.k,
            &UnitCost,
            1,
            self.options,
            self.threads,
            None,
        );
        let matches = adopt_match_trees(matches, idx.dict(), &mut self.dict);
        self.parallel_scan = Some(scan);
        matches
    }

    /// Scan and pruning-funnel statistics ([`ScanStats`]) of the most
    /// recent run, whichever path it took — streaming (`run_xml_str` /
    /// `run_xml_file` / `run_reader`), in-memory ([`TasmQuery::run_tree`])
    /// or sharded parallel (merged over all shards): candidates emitted,
    /// per-tier cascade prunes, exact evaluations.
    pub fn last_scan_stats(&self) -> ScanStats {
        self.parallel_scan
            .unwrap_or_else(|| self.workspace.last_scan_stats())
    }

    /// Renders a match's subtree back to XML (requires `keep_trees`).
    pub fn match_to_xml(&self, m: &Match) -> Option<String> {
        m.tree.as_ref().map(|t| xml::tree_to_xml(t, &self.dict))
    }
}

/// A batch of TASM queries answered in **one** shared document scan.
///
/// Ring-buffer maintenance and candidate materialization are paid once
/// for the whole batch ([`core::tasm_batch`]); each query keeps its own
/// pruning bound and ranking, and each result is exactly what the
/// corresponding single [`TasmQuery`] run would return.
///
/// # Examples
///
/// ```
/// use tasm::TasmBatch;
///
/// let doc = "<dblp>\
///     <article><author>Jane</author><title>Trees</title></article>\
///     <book><title>Graphs</title></book></dblp>";
/// let rankings = TasmBatch::from_xml(&[
///         "<article><author>Jane</author><title>Trees</title></article>",
///         "<book><title>Trees</title></book>",
///     ])
///     .unwrap()
///     .k(1)
///     .run_xml_str(doc)
///     .unwrap();
/// assert_eq!(rankings.len(), 2);
/// assert_eq!(rankings[0][0].distance.as_f64(), 0.0);
/// assert_eq!(rankings[1][0].distance.as_f64(), 1.0);
/// ```
#[derive(Debug)]
pub struct TasmBatch {
    dict: LabelDict,
    queries: Vec<Tree>,
    k: usize,
    options: TasmOptions,
    /// Worker threads for the sharded streaming scan (1 = one shared
    /// sequential scan).
    threads: usize,
    /// Scan + per-lane workspaces reused across runs.
    workspace: core::BatchWorkspace,
    /// Aggregate + per-lane stats of the most recent sharded run
    /// (`None` when the last run used the shared sequential scan).
    parallel_scan: Option<(ScanStats, Vec<ScanStats>)>,
}

impl TasmBatch {
    /// Parses every query from an XML fragment; all queries share one
    /// label dictionary.
    pub fn from_xml(query_xmls: &[&str]) -> Result<Self, TasmError> {
        let mut dict = LabelDict::new();
        let queries = query_xmls
            .iter()
            .map(|q| xml::parse_tree_str(q, &mut dict))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TasmBatch {
            dict,
            queries,
            k: 1,
            options: TasmOptions {
                keep_trees: true,
                ..Default::default()
            },
            threads: 1,
            workspace: core::BatchWorkspace::new(),
            parallel_scan: None,
        })
    }

    /// Sets the ranking size `k` for every query (default 1).
    pub fn k(mut self, k: usize) -> Self {
        self.k = k.max(1);
        self
    }

    /// Sets the number of worker threads (default 1 = one shared
    /// sequential scan; 0 = one per available core).
    ///
    /// With more than one thread the batch runs **batch×parallel**: the
    /// document still streams once, candidate segments are handed off
    /// to the workers, and every worker fans each candidate out to all
    /// query lanes ([`core::tasm_batch_parallel_stream`]). Each ranking
    /// is identical to the sequential shared-scan result.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets whether matched subtrees are copied into the results
    /// (default `true`).
    pub fn keep_trees(mut self, keep: bool) -> Self {
        self.options.keep_trees = keep;
        self
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The label dictionary (grows while documents are processed).
    pub fn dict(&self) -> &LabelDict {
        &self.dict
    }

    /// Runs every query against an XML string in one shared scan,
    /// returning one ranking per query, in input order.
    pub fn run_xml_str(&mut self, document: &str) -> Result<Vec<Vec<Match>>, TasmError> {
        self.run_reader(document.as_bytes())
    }

    /// Runs every query against an XML file, streaming it once with
    /// `O(τ_max)` memory.
    pub fn run_xml_file(&mut self, path: impl AsRef<Path>) -> Result<Vec<Vec<Match>>, TasmError> {
        let file = File::open(path)?;
        self.run_reader(BufReader::new(file))
    }

    /// Runs every query against any buffered XML source in one shared
    /// scan. The internal workspace is reused across runs.
    pub fn run_reader<R: std::io::BufRead>(
        &mut self,
        reader: R,
    ) -> Result<Vec<Vec<Match>>, TasmError> {
        let batch: Vec<core::BatchQuery<'_>> = self
            .queries
            .iter()
            .map(|query| core::BatchQuery { query, k: self.k })
            .collect();
        let mut queue = xml::XmlPostorderQueue::new(reader, &mut self.dict);
        self.parallel_scan = None;
        let rankings = if self.threads != 1 {
            // The workspace is threaded through so a thread count that
            // resolves to 1 (e.g. `threads(0)` on a single core) keeps
            // the warm-buffer reuse of the shared sequential scan.
            let result = core::tasm_batch_parallel_stream_with_workspace(
                &batch,
                &mut queue,
                &UnitCost,
                1,
                self.options,
                self.threads,
                &mut self.workspace,
                None,
            );
            // Prefer the parser's own error: it carries the byte offset
            // and reason, while the stream error only records that the
            // document ended early.
            if let Some(err) = queue.take_error() {
                return Err(err.into());
            }
            let (rankings, scan, lanes) = result?;
            self.parallel_scan = Some((scan, lanes));
            rankings
        } else {
            core::tasm_batch_with_workspace(
                &batch,
                &mut queue,
                &UnitCost,
                1,
                self.options,
                &mut self.workspace,
                None,
            )
        };
        if let Some(err) = queue.take_error() {
            return Err(err.into());
        }
        Ok(rankings)
    }

    /// Answers the whole batch from a prebuilt `.pqi` index file: one
    /// index lookup feeds every query lane, and each ranking is
    /// identical to the corresponding streamed run.
    pub fn run_index_file(&mut self, path: impl AsRef<Path>) -> Result<Vec<Vec<Match>>, TasmError> {
        let idx = IndexedDocument::open(path)?;
        Ok(self.run_index(&idx))
    }

    /// Answers the whole batch from an already-loaded
    /// [`IndexedDocument`], translating labels by name in both
    /// directions (see [`TasmQuery::run_index`]).
    pub fn run_index(&mut self, idx: &IndexedDocument) -> Vec<Vec<Match>> {
        let batch: Vec<core::BatchQuery<'_>> = self
            .queries
            .iter()
            .map(|query| core::BatchQuery { query, k: self.k })
            .collect();
        let (rankings, scan, lanes) = core::tasm_indexed_batch_with_stats(
            &batch,
            &self.dict,
            idx,
            &UnitCost,
            1,
            self.options,
            self.threads,
            None,
        );
        let rankings = rankings
            .into_iter()
            .map(|matches| adopt_match_trees(matches, idx.dict(), &mut self.dict))
            .collect();
        self.parallel_scan = Some((scan, lanes));
        rankings
    }

    /// Renders a match's subtree back to XML (requires `keep_trees`).
    pub fn match_to_xml(&self, m: &Match) -> Option<String> {
        m.tree.as_ref().map(|t| xml::tree_to_xml(t, &self.dict))
    }

    /// Scan and pruning-funnel statistics ([`ScanStats`]) of the most
    /// recent run — shared sequential scan or sharded streaming scan —
    /// aggregated over all query lanes.
    pub fn last_scan_stats(&self) -> ScanStats {
        match &self.parallel_scan {
            Some((scan, _)) => *scan,
            None => self.workspace.last_scan_stats(),
        }
    }

    /// Per-lane statistics of the most recent run, in query order: the
    /// scan-layer counters of the (single) pass plus each query lane's
    /// own pruning funnel.
    pub fn last_lane_stats(&self) -> Vec<ScanStats> {
        match &self.parallel_scan {
            Some((_, lanes)) => lanes.clone(),
            None => self.workspace.last_lane_stats().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let doc = "<r><a><b>x</b></a><a><b>y</b></a></r>";
        let matches = TasmQuery::from_xml("<a><b>x</b></a>")
            .unwrap()
            .k(2)
            .run_xml_str(doc)
            .unwrap();
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].distance, Cost::ZERO);
        assert_eq!(matches[1].distance.as_f64(), 1.0);
    }

    #[test]
    fn match_to_xml_renders() {
        let mut q = TasmQuery::from_xml("<a><b>x</b></a>").unwrap();
        let matches = q.run_xml_str("<r><a><b>x</b></a></r>").unwrap();
        let rendered = q.match_to_xml(&matches[0]).unwrap();
        assert_eq!(rendered, "<a><b>x</b></a>");
    }

    #[test]
    fn bracket_queries_work() {
        let mut q = TasmQuery::from_bracket("{a{b}}").unwrap();
        let doc = q.parse_document("<r><a><b/></a></r>").unwrap();
        let matches = q.run_tree(&doc);
        assert_eq!(matches[0].distance, Cost::ZERO);
    }

    #[test]
    fn malformed_document_errors() {
        let mut q = TasmQuery::from_xml("<a/>").unwrap();
        assert!(q.run_xml_str("<r><a></r>").is_err());
    }

    #[test]
    fn empty_document_errors() {
        let mut q = TasmQuery::from_xml("<a/>").unwrap();
        assert!(matches!(q.run_xml_str(""), Err(TasmError::Xml(_))));
    }

    #[test]
    fn k_zero_is_clamped() {
        let mut q = TasmQuery::from_xml("<a/>").unwrap().k(0);
        let matches = q.run_xml_str("<r><a/></r>").unwrap();
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn threads_builder_matches_sequential() {
        let doc: String = std::iter::once("<dblp>".to_string())
            .chain((0..40).map(|i| format!("<article><a>n{i}</a><t>t{}</t></article>", i % 7)))
            .chain(std::iter::once("</dblp>".to_string()))
            .collect();
        let q = "<article><a>n3</a><t>t3</t></article>";
        let sequential = TasmQuery::from_xml(q)
            .unwrap()
            .k(5)
            .run_xml_str(&doc)
            .unwrap();
        for threads in [0usize, 2, 4] {
            let parallel = TasmQuery::from_xml(q)
                .unwrap()
                .k(5)
                .threads(threads)
                .run_xml_str(&doc)
                .unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn threads_run_surfaces_parse_errors() {
        let mut q = TasmQuery::from_xml("<a/>").unwrap().threads(2);
        assert!(q.run_xml_str("<r><a></r>").is_err());
    }

    #[test]
    fn batch_matches_individual_queries() {
        let doc = "<r><a><b>x</b></a><a><b>y</b></a><c><d/></c></r>";
        let queries = ["<a><b>x</b></a>", "<c><d/></c>", "<b>z</b>"];
        let rankings = TasmBatch::from_xml(&queries)
            .unwrap()
            .k(2)
            .run_xml_str(doc)
            .unwrap();
        assert_eq!(rankings.len(), queries.len());
        for (q, got) in queries.iter().zip(&rankings) {
            let want = TasmQuery::from_xml(q)
                .unwrap()
                .k(2)
                .run_xml_str(doc)
                .unwrap();
            // Dictionaries differ between the two facades, so compare the
            // dictionary-independent fields plus the rendered XML.
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!((g.root, g.size, g.distance), (w.root, w.size, w.distance));
            }
        }
    }

    #[test]
    fn batch_workspace_reuse_and_errors() {
        let mut batch = TasmBatch::from_xml(&["<a/>", "<b/>"]).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        let first = batch.run_xml_str("<r><a/><b/></r>").unwrap();
        let second = batch.run_xml_str("<r><a/><b/></r>").unwrap();
        assert_eq!(first, second);
        assert!(batch.run_xml_str("<r><a>").is_err());
        // And the batch recovers after the failed run.
        assert_eq!(batch.run_xml_str("<r><a/><b/></r>").unwrap(), first);
    }

    #[test]
    fn batch_rejects_malformed_query() {
        assert!(TasmBatch::from_xml(&["<a/>", "<broken"]).is_err());
    }

    #[test]
    fn batch_threads_matches_sequential_batch() {
        let doc: String = std::iter::once("<dblp>".to_string())
            .chain((0..40).map(|i| format!("<article><a>n{i}</a><t>t{}</t></article>", i % 7)))
            .chain(std::iter::once("</dblp>".to_string()))
            .collect();
        let queries = [
            "<article><a>n3</a><t>t3</t></article>",
            "<book><t>t1</t></book>",
        ];
        let sequential = TasmBatch::from_xml(&queries)
            .unwrap()
            .k(3)
            .run_xml_str(&doc)
            .unwrap();
        for threads in [0usize, 2, 4] {
            let mut batch = TasmBatch::from_xml(&queries).unwrap().k(3).threads(threads);
            let parallel = batch.run_xml_str(&doc).unwrap();
            assert_eq!(parallel.len(), sequential.len(), "threads = {threads}");
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.len(), s.len());
                for (g, w) in p.iter().zip(s) {
                    assert_eq!((g.root, g.size, g.distance), (w.root, w.size, w.distance));
                }
            }
            // Per-lane stats are live on the sharded path too.
            let lanes = batch.last_lane_stats();
            assert_eq!(lanes.len(), queries.len());
            assert_eq!(batch.last_scan_stats().candidates, lanes[0].candidates);
        }
    }

    #[test]
    fn batch_threads_surfaces_parse_errors() {
        let mut batch = TasmBatch::from_xml(&["<a/>"]).unwrap().threads(2);
        assert!(batch.run_xml_str("<r><a></r>").is_err());
        // And recovers on the next run.
        assert_eq!(batch.run_xml_str("<r><a/></r>").unwrap().len(), 1);
    }

    #[test]
    fn scan_stats_report_the_pruning_funnel() {
        let doc: String = std::iter::once("<dblp>".to_string())
            .chain((0..60).map(|i| format!("<article><a>n{i}</a><t>t{}</t></article>", i % 5)))
            .chain(std::iter::once("</dblp>".to_string()))
            .collect();
        let mut q = TasmQuery::from_xml("<article><a>n3</a><t>t3</t></article>")
            .unwrap()
            .k(2);
        let matches = q.run_xml_str(&doc).unwrap();
        assert_eq!(matches.len(), 2);
        let scan = q.last_scan_stats();
        assert_eq!(scan.candidates, 60);
        assert!(scan.evaluated > 0);
        // Exact matches exist, so the cutoff drops to 0 and the cascade
        // must kill most non-matching records before their DP.
        assert!(scan.pruned_histogram + scan.pruned_sed > 0);

        let mut batch = TasmBatch::from_xml(&["<article><a>n3</a><t>t3</t></article>"]).unwrap();
        batch.run_xml_str(&doc).unwrap();
        assert_eq!(batch.last_scan_stats().candidates, 60);

        // The sharded parallel path must report its merged stats too —
        // not the stale stats of an earlier sequential run.
        let mut par = TasmQuery::from_xml("<article><a>n3</a><t>t3</t></article>")
            .unwrap()
            .k(2)
            .threads(2);
        par.run_xml_str(&doc).unwrap();
        assert_eq!(par.last_scan_stats().candidates, 60);
        assert!(par.last_scan_stats().evaluated > 0);
        // And switching back to one thread refreshes them again.
        let mut seq = par.threads(1);
        seq.run_xml_str(&doc).unwrap();
        assert_eq!(seq.last_scan_stats().candidates, 60);
    }

    #[test]
    fn query_recovers_after_a_failed_run() {
        // A mid-stream parse error must not poison the query for later runs.
        let mut q = TasmQuery::from_xml("<a><b>x</b></a>").unwrap().k(1);
        assert!(q.run_xml_str("<r><a><b>x</b></a><broken>").is_err());
        let matches = q.run_xml_str("<r><a><b>x</b></a></r>").unwrap();
        assert_eq!(matches[0].distance, Cost::ZERO);
    }

    #[test]
    fn indexed_run_matches_streaming_run() {
        let doc: String = std::iter::once("<dblp>".to_string())
            .chain((0..40).map(|i| format!("<article><a>n{i}</a><t>t{}</t></article>", i % 7)))
            .chain(std::iter::once("</dblp>".to_string()))
            .collect();
        let query = "<article><a>n3</a><t>t3</t></article>";
        for threads in [1usize, 3] {
            let mut q = TasmQuery::from_xml(query).unwrap().k(4).threads(threads);
            let want = q.run_xml_str(&doc).unwrap();
            let want_xml: Vec<_> = want.iter().map(|m| q.match_to_xml(m)).collect();

            // Build the index over an independently-parsed document; the
            // facade must bridge both label spaces by name.
            let mut dict = LabelDict::new();
            let tree = xml::parse_tree_str(&doc, &mut dict).unwrap();
            let idx = IndexedDocument::build(&tree, &dict);
            let got = q.run_index(&idx);

            assert_eq!(got.len(), want.len(), "threads = {threads}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!((g.root, g.size, g.distance), (w.root, w.size, w.distance));
            }
            // Kept subtrees are re-interned into the query dictionary, so
            // rendering works and agrees with the streamed run.
            let got_xml: Vec<_> = got.iter().map(|m| q.match_to_xml(m)).collect();
            assert_eq!(got_xml, want_xml, "threads = {threads}");
            // Indexed runs refresh the scan stats like any other path.
            assert!(q.last_scan_stats().candidates > 0);
        }
    }

    #[test]
    fn indexed_run_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join(format!("tasm-facade-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.pqi");

        let doc = "<r><a><b>x</b></a><a><b>y</b></a><c><d/></c></r>";
        let mut dict = LabelDict::new();
        let tree = xml::parse_tree_str(doc, &mut dict).unwrap();
        IndexedDocument::save(&path, &tree, &dict).unwrap();

        let mut q = TasmQuery::from_xml("<a><b>x</b></a>").unwrap().k(2);
        let want = q.run_xml_str(doc).unwrap();
        let got = q.run_index_file(&path).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!((g.root, g.size, g.distance), (w.root, w.size, w.distance));
        }

        let mut batch = TasmBatch::from_xml(&["<a><b>x</b></a>", "<c><d/></c>"])
            .unwrap()
            .k(2);
        let want = batch.run_xml_str(doc).unwrap();
        let got = batch.run_index_file(&path).unwrap();
        assert_eq!(got.len(), want.len());
        for (gs, ws) in got.iter().zip(&want) {
            assert_eq!(gs.len(), ws.len());
            for (g, w) in gs.iter().zip(ws) {
                assert_eq!((g.root, g.size, g.distance), (w.root, w.size, w.distance));
            }
        }
        assert_eq!(batch.last_lane_stats().len(), 2);

        // A missing index surfaces as a file error, not a panic.
        assert!(matches!(
            q.run_index_file(dir.join("missing.pqi")),
            Err(TasmError::File(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
