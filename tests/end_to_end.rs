//! Cross-crate integration: generators → XML files → streaming parse →
//! TASM, checked against the in-memory pipeline.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use tasm::core::{tasm_dynamic, tasm_postorder, TasmOptions};
use tasm::data::{
    dblp_tree, psd_tree, random_query, xmark_tree, DblpConfig, PsdConfig, XMarkConfig,
};
use tasm::ted::UnitCost;
use tasm::tree::{LabelDict, PostorderQueue, TreeQueue};
use tasm::xml::{parse_tree, write_tree, XmlPostorderQueue};
use tasm::TasmQuery;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tasm_it_{}_{name}", std::process::id()))
}

/// Writing a generated tree to XML and re-parsing it yields the same tree,
/// for all three dataset generators.
#[test]
fn xml_round_trip_of_generators() {
    let mut dict = LabelDict::new();
    let docs = [
        xmark_tree(&mut dict, &XMarkConfig::new(1, 5_000)),
        dblp_tree(&mut dict, &DblpConfig::new(2, 5_000)),
        psd_tree(&mut dict, &PsdConfig::new(3, 5_000)),
    ];
    for (i, doc) in docs.iter().enumerate() {
        let path = tmp(&format!("round_{i}.xml"));
        let file = File::create(&path).unwrap();
        write_tree(doc, &dict, BufWriter::new(file)).unwrap();
        let file = File::open(&path).unwrap();
        let reparsed = parse_tree(BufReader::new(file), &mut dict).unwrap();
        assert_eq!(doc, &reparsed, "generator {i} round trip");
        std::fs::remove_file(&path).ok();
    }
}

/// Streaming a file through the ring buffer gives the same ranking as the
/// fully in-memory dynamic algorithm.
#[test]
fn streamed_file_matches_in_memory_ranking() {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(11, 20_000));
    let (query, _) = random_query(&doc, 12, 5);

    let path = tmp("stream.xml");
    let file = File::create(&path).unwrap();
    write_tree(&doc, &dict, BufWriter::new(file)).unwrap();

    let k = 7;
    let in_memory = tasm_dynamic(&query, &doc, k, &UnitCost, TasmOptions::default(), None);

    let file = File::open(&path).unwrap();
    let mut queue = XmlPostorderQueue::new(BufReader::new(file), &mut dict);
    let streamed = tasm_postorder(
        &query,
        &mut queue,
        k,
        &UnitCost,
        1,
        TasmOptions::default(),
        None,
    );
    assert!(queue.is_ok());

    let dist = |ms: &[tasm::Match]| ms.iter().map(|m| m.distance).collect::<Vec<_>>();
    assert_eq!(dist(&in_memory), dist(&streamed));
    // Exact-match roots also agree (ties broken identically here).
    assert_eq!(
        in_memory.iter().map(|m| m.root).collect::<Vec<_>>(),
        streamed.iter().map(|m| m.root).collect::<Vec<_>>()
    );
    std::fs::remove_file(&path).ok();
}

/// The high-level `TasmQuery` API against a file on disk.
#[test]
fn tasm_query_over_file() {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(21, 10_000));
    let path = tmp("api.xml");
    let file = File::create(&path).unwrap();
    write_tree(&doc, &dict, BufWriter::new(file)).unwrap();

    // Query: one real record serialized back to XML.
    let article = dict.get("article").unwrap();
    let rec = doc
        .nodes()
        .find(|&i| doc.label(i) == article)
        .expect("an article exists");
    let query_xml = tasm::xml::tree_to_xml(&doc.subtree(rec), &dict);

    let mut q = TasmQuery::from_xml(&query_xml).unwrap().k(3);
    let matches = q.run_xml_file(&path).unwrap();
    assert_eq!(matches.len(), 3);
    assert_eq!(
        matches[0].distance,
        tasm::Cost::ZERO,
        "the record finds itself"
    );
    // Rendered match re-parses to the same subtree.
    let rendered = q.match_to_xml(&matches[0]).unwrap();
    let mut d2 = LabelDict::new();
    let t2 = tasm::xml::parse_tree_str(&rendered, &mut d2).unwrap();
    assert_eq!(t2.len() as u32, matches[0].size);
    std::fs::remove_file(&path).ok();
}

/// The streaming queue and the in-memory queue of the same document yield
/// byte-identical postorder entries (label strings and sizes).
#[test]
fn xml_queue_equals_tree_queue() {
    let mut dict = LabelDict::new();
    let doc = xmark_tree(&mut dict, &XMarkConfig::new(31, 3_000));
    let xml = tasm::xml::tree_to_xml(&doc, &dict);

    let mut mem: Vec<(String, u32)> = Vec::new();
    let mut q = TreeQueue::new(&doc);
    while let Some(e) = q.dequeue() {
        mem.push((dict.resolve(e.label).to_string(), e.size));
    }

    let mut dict2 = LabelDict::new();
    let mut q2 = XmlPostorderQueue::new(xml.as_bytes(), &mut dict2);
    let mut streamed: Vec<tasm::tree::PostorderEntry> = Vec::new();
    while let Some(e) = q2.dequeue() {
        streamed.push(e);
    }
    assert!(q2.is_ok());
    let streamed: Vec<(String, u32)> = streamed
        .into_iter()
        .map(|e| (dict2.resolve(e.label).to_string(), e.size))
        .collect();
    assert_eq!(mem, streamed);
}

/// Malformed XML that breaks *after* complete subtrees have already been
/// streamed must surface as an error, not a truncated ranking.
#[test]
fn malformed_xml_mid_stream_is_an_error() {
    let mut q = TasmQuery::from_xml("<a><b/></a>").unwrap().k(3);
    // First record is well-formed; the second one closes the wrong tag.
    let err = q
        .run_xml_str("<r><a><b/></a><a><b></a></r>")
        .expect_err("mismatched close tag mid-stream");
    assert!(matches!(err, tasm::TasmError::Xml(_)), "{err}");

    // A document truncated mid-stream (unclosed root) is also an error.
    let err = q
        .run_xml_str("<r><a><b/></a>")
        .expect_err("unclosed root element");
    assert!(matches!(err, tasm::TasmError::Xml(_)), "{err}");
}

/// An empty (or whitespace-only) document has no root element: error.
#[test]
fn empty_document_is_an_error() {
    let mut q = TasmQuery::from_xml("<a/>").unwrap();
    assert!(q.run_xml_str("").is_err(), "empty string");
    assert!(q.run_xml_str("  \n\t ").is_err(), "whitespace only");
}

/// `k(0)` clamps to 1 rather than returning an empty ranking.
#[test]
fn k_zero_clamps_to_one() {
    let matches = TasmQuery::from_xml("<a/>")
        .unwrap()
        .k(0)
        .run_xml_str("<r><a/><b/></r>")
        .unwrap();
    assert_eq!(matches.len(), 1);
    assert_eq!(matches[0].distance, tasm::Cost::ZERO);
}

/// Opening a nonexistent file surfaces as `TasmError::Io`.
#[test]
fn missing_file_is_an_io_error() {
    let mut q = TasmQuery::from_xml("<a/>").unwrap();
    let path = tmp("does_not_exist.xml");
    let err = q.run_xml_file(&path).expect_err("file is missing");
    assert!(matches!(err, tasm::TasmError::Io(_)), "{err}");
}

/// Malformed or empty *query* XML is rejected up front.
#[test]
fn bad_query_xml_is_an_error() {
    assert!(TasmQuery::from_xml("").is_err());
    assert!(TasmQuery::from_xml("<a>").is_err());
    assert!(TasmQuery::from_xml("<a></b>").is_err());
}

/// k larger than the number of small subtrees, deep queries, degenerate
/// documents: the pipeline must not panic and must keep rankings sorted.
#[test]
fn edge_shapes_do_not_break_the_pipeline() {
    let cases = [
        "<r/>",
        "<r><a/></r>",
        "<r><a><b><c><d><e>x</e></d></c></b></a></r>",
        "<r><a/><b/><c/><d/><e/><f/><g/><h/></r>",
    ];
    for xml in cases {
        let mut q = TasmQuery::from_xml("<a><b/></a>").unwrap().k(50);
        let matches = q.run_xml_str(xml).expect("parses");
        assert!(!matches.is_empty());
        assert!(
            matches.windows(2).all(|w| w[0].distance <= w[1].distance),
            "{xml}"
        );
    }
}
