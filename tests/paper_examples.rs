//! End-to-end checks against every worked example in the paper.
//!
//! Fig. 2 (trees G and H), Fig. 3 (tree distance matrix), Example 1
//! (relevant subtrees), Example 2 (TASM-dynamic top-2), Example 3 /
//! Figs. 4–6 (document D, its postorder queue, the candidate set for
//! τ = 6), and the Sec. VI-B running numbers.

use tasm::core::{prb_pruning, tasm_dynamic, tasm_naive, tasm_postorder, threshold, TasmOptions};
use tasm::ted::{ted, ted_full, Cost, UnitCost};
use tasm::tree::{bracket, keyroots, LabelDict, NodeId, PostorderQueue, TreeQueue};

fn dict_g_h() -> (LabelDict, tasm::Tree, tasm::Tree) {
    let mut dict = LabelDict::new();
    let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
    let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
    (dict, g, h)
}

fn document_d(dict: &mut LabelDict) -> tasm::Tree {
    bracket::parse(
        "{dblp{article{auth{John}}{title{X1}}}{proceedings{conf{VLDB}}\
         {article{auth{Peter}}{title{X3}}}{article{auth{Mike}}{title{X4}}}}\
         {book{title{X2}}}}",
        dict,
    )
    .unwrap()
}

#[test]
fn example_1_relevant_subtrees() {
    let (_, g, h) = dict_g_h();
    let kg: Vec<u32> = keyroots(&g).iter().map(|n| n.post()).collect();
    let kh: Vec<u32> = keyroots(&h).iter().map(|n| n.post()).collect();
    assert_eq!(kg, vec![2, 3], "relevant subtrees of G are G2, G3");
    assert_eq!(
        kh,
        vec![2, 5, 6, 7],
        "relevant subtrees of H are H2, H5, H6, H7"
    );
}

#[test]
fn fig_3_tree_distance_matrix() {
    let (_, g, h) = dict_g_h();
    let td = ted_full(&g, &h, &UnitCost, None);
    let expected: [[u64; 7]; 3] = [
        [0, 1, 2, 0, 1, 2, 6],
        [1, 1, 3, 1, 0, 2, 6],
        [2, 3, 1, 2, 2, 0, 4],
    ];
    for (i, row) in expected.iter().enumerate() {
        for (j, &want) in row.iter().enumerate() {
            assert_eq!(
                td.subtree_distance(NodeId::new(i as u32 + 1), NodeId::new(j as u32 + 1)),
                Cost::from_natural(want),
                "td[G{}][H{}]",
                i + 1,
                j + 1
            );
        }
    }
    assert_eq!(ted(&g, &h, &UnitCost), Cost::from_natural(4));
}

#[test]
fn example_2_tasm_dynamic_top2() {
    let (_, g, h) = dict_g_h();
    let r = tasm_dynamic(&g, &h, 2, &UnitCost, TasmOptions::default(), None);
    assert_eq!(r[0].root.post(), 6, "first H6");
    assert_eq!(r[0].distance, Cost::ZERO);
    assert_eq!(r[1].root.post(), 3, "then H3");
    assert_eq!(r[1].distance, Cost::from_natural(1));
}

#[test]
fn fig_4b_postorder_queue_of_d() {
    let mut dict = LabelDict::new();
    let d = document_d(&mut dict);
    assert_eq!(d.len(), 22);
    let mut q = TreeQueue::new(&d);
    let mut seq = Vec::new();
    while let Some(e) = q.dequeue() {
        seq.push((dict.resolve(e.label).to_string(), e.size));
    }
    assert_eq!(seq[0], ("John".to_string(), 1));
    assert_eq!(seq[4], ("article".to_string(), 5));
    assert_eq!(seq[17], ("proceedings".to_string(), 13));
    assert_eq!(seq[21], ("dblp".to_string(), 22));
}

#[test]
fn example_3_candidate_set_tau_6() {
    let mut dict = LabelDict::new();
    let d = document_d(&mut dict);
    let mut q = TreeQueue::new(&d);
    let cands = prb_pruning(&mut q, 6);
    let roots: Vec<u32> = cands.iter().map(|c| c.root.post()).collect();
    assert_eq!(
        roots,
        vec![5, 7, 12, 17, 21],
        "cand(D, 6) = {{D5, D7, D12, D17, D21}}"
    );
}

#[test]
fn sec_vi_b_running_numbers() {
    // "a typical query for an article in DBLP has 15 nodes … top 20 …
    //  TASM-postorder only needs to consider subtrees up to τ = 2|Q| + k = 50".
    assert_eq!(threshold(15, 1, 1, 20), 50);
}

#[test]
fn all_algorithms_agree_on_document_d() {
    let mut dict = LabelDict::new();
    let d = document_d(&mut dict);
    let query = bracket::parse("{article{auth{Ann}}{title{X9}}}", &mut dict).unwrap();
    for k in [1usize, 2, 4, 8] {
        let a = tasm_naive(&query, &d, k, &UnitCost, TasmOptions::default(), None);
        let b = tasm_dynamic(&query, &d, k, &UnitCost, TasmOptions::default(), None);
        let mut q = TreeQueue::new(&d);
        let c = tasm_postorder(
            &query,
            &mut q,
            k,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        let key = |ms: &[tasm::Match]| {
            ms.iter()
                .map(|m| (m.distance.halves(), m.root.post()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b), "k = {k}");
        assert_eq!(key(&a), key(&c), "k = {k}");
    }
}
