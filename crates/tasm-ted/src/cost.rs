//! Cost models and exact cost arithmetic (Def. 4 of the paper).
//!
//! Every node `x` carries a cost `cst(x) >= 1`. The cost of a node alignment
//! `(q, t)` is
//!
//! * `cst(q)` for a deletion (`t = ε`),
//! * `cst(t)` for an insertion (`q = ε`),
//! * `(cst(q) + cst(t)) / 2` for a rename (labels differ),
//! * `0` when the labels match.
//!
//! The rename case divides by two, so distances live in **half-units**: the
//! [`Cost`] type stores `2 × natural cost` as a `u64`, keeping all arithmetic
//! exact and totally ordered (no floats in the algorithms; `f64` only at the
//! presentation boundary).

use std::collections::HashMap;
use std::fmt;
use std::ops::{Add, AddAssign};

use tasm_tree::{LabelId, NodeId, TreeView};

/// An exact edit cost or distance, stored in half-units.
///
/// `Cost::from_natural(3)` is "3.0"; a rename between nodes of cost 1 and 2
/// is `Cost(3)` = "1.5". Comparison, addition and zero/infinity behave as
/// expected; addition saturates so `INFINITY` is absorbing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cost(u64);

impl Cost {
    /// Zero cost.
    pub const ZERO: Cost = Cost(0);
    /// An absorbing maximal cost, usable as a DP sentinel.
    pub const INFINITY: Cost = Cost(u64::MAX);

    /// A cost of `n` natural units.
    #[inline]
    pub const fn from_natural(n: u64) -> Cost {
        Cost(n.saturating_mul(2))
    }

    /// A cost of `h` half-units (i.e. `h / 2` natural units).
    #[inline]
    pub const fn from_halves(h: u64) -> Cost {
        Cost(h)
    }

    /// The raw half-unit value.
    #[inline]
    pub const fn halves(self) -> u64 {
        self.0
    }

    /// The cost in natural units as a float (presentation only).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / 2.0
    }

    /// `floor` of the cost in natural units. Exact; used by Lemma 3/4 style
    /// bounds (`|T| - |Q| <= δ` with `|T| - |Q|` integral implies
    /// `|T| <= floor(δ) + |Q|`).
    #[inline]
    pub const fn floor_natural(self) -> u64 {
        self.0 / 2
    }

    /// Whether this is the infinity sentinel.
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            return write!(f, "inf");
        }
        if self.0.is_multiple_of(2) {
            write!(f, "{}", self.0 / 2)
        } else {
            write!(f, "{}.5", self.0 / 2)
        }
    }
}

/// Assigns a cost `cst(x) >= 1` to every tree node (Def. 4).
///
/// Implementations see the whole tree — as a borrowed [`TreeView`], so
/// the evaluation layer can cost candidate subtrees in place (zero-copy
/// slices of the scan arena) — and costs may depend on structure (e.g.
/// fanout) as well as the label. Return values are clamped to `>= 1` by
/// the distance algorithms, as required for Lemma 3 to hold.
pub trait CostModel {
    /// The cost of node `node` of `tree`, in natural units.
    fn node_cost(&self, tree: TreeView<'_>, node: NodeId) -> u64;

    /// The maximum node cost over the whole tree (`c_Q` / `c_T` in
    /// Theorem 3). The default scans all nodes.
    fn max_cost(&self, tree: TreeView<'_>) -> u64 {
        tree.nodes()
            .map(|id| self.node_cost(tree, id).max(1))
            .max()
            .unwrap_or(1)
    }
}

/// The unit cost model: every node costs 1; the distance is the minimum
/// number of edit operations (Sec. IV-D).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitCost;

impl CostModel for UnitCost {
    #[inline]
    fn node_cost(&self, _tree: TreeView<'_>, _node: NodeId) -> u64 {
        1
    }

    fn max_cost(&self, _tree: TreeView<'_>) -> u64 {
        1
    }
}

/// The fanout-weighted cost model of Augsten et al. [21] (cited in
/// Sec. IV-D): structure-changing operations (insert/delete of high-fanout
/// internal nodes) are more expensive. `cst(x) = base + weight · fanout(x)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FanoutWeighted {
    /// Cost of a leaf (and additive base for internal nodes); must be >= 1.
    pub base: u64,
    /// Additional cost per child.
    pub weight: u64,
}

impl Default for FanoutWeighted {
    fn default() -> Self {
        FanoutWeighted { base: 1, weight: 1 }
    }
}

impl CostModel for FanoutWeighted {
    fn node_cost(&self, tree: TreeView<'_>, node: NodeId) -> u64 {
        self.base.max(1) + self.weight * tree.fanout(node) as u64
    }
}

/// A per-label cost table ("in XML, the node cost can depend on the element
/// type", Sec. IV-D). Labels not in the table get `default_cost`.
#[derive(Debug, Clone, Default)]
pub struct PerLabelCost {
    costs: HashMap<LabelId, u64>,
    default_cost: u64,
}

impl PerLabelCost {
    /// Creates a table with the given default cost (clamped to >= 1).
    pub fn new(default_cost: u64) -> Self {
        PerLabelCost {
            costs: HashMap::new(),
            default_cost: default_cost.max(1),
        }
    }

    /// Sets the cost of `label` (clamped to >= 1). Returns `self` for
    /// chaining.
    pub fn with(mut self, label: LabelId, cost: u64) -> Self {
        self.costs.insert(label, cost.max(1));
        self
    }

    /// Sets the cost of `label` in place.
    pub fn set(&mut self, label: LabelId, cost: u64) {
        self.costs.insert(label, cost.max(1));
    }
}

impl CostModel for PerLabelCost {
    fn node_cost(&self, tree: TreeView<'_>, node: NodeId) -> u64 {
        self.costs
            .get(&tree.label(node))
            .copied()
            .unwrap_or(self.default_cost)
    }
}

/// Per-node costs of a tree, precomputed for the DP inner loops.
///
/// Also carries the tree's maximum cost (`c_Q` / `c_T` of Theorem 3).
#[derive(Debug, Clone)]
pub struct NodeCosts {
    /// `costs[i]` = cst of the node with postorder number `i + 1`, clamped
    /// to >= 1, in natural units.
    costs: Vec<u64>,
    max: u64,
}

impl Default for NodeCosts {
    fn default() -> Self {
        NodeCosts::empty()
    }
}

impl NodeCosts {
    /// Evaluates `model` on every node of `tree`.
    pub fn compute(tree: TreeView<'_>, model: &dyn CostModel) -> Self {
        let mut nc = NodeCosts::empty();
        nc.compute_into(tree, model);
        nc
    }

    /// An empty scratch instance, to be filled with
    /// [`NodeCosts::compute_into`] (workspace reuse).
    pub fn empty() -> Self {
        NodeCosts {
            costs: Vec::new(),
            max: 1,
        }
    }

    /// Re-evaluates `model` on every node of `tree` in place, reusing the
    /// buffer (allocation-free once capacity covers the largest tree
    /// seen).
    pub fn compute_into(&mut self, tree: TreeView<'_>, model: &dyn CostModel) {
        self.costs.clear();
        self.max = 1;
        for id in tree.nodes() {
            let c = model.node_cost(tree, id).max(1);
            self.max = self.max.max(c);
            self.costs.push(c);
        }
    }

    /// Ensures capacity for at least `n` nodes (workspace warm-up).
    pub fn reserve(&mut self, n: usize) {
        self.costs.reserve(n.saturating_sub(self.costs.len()));
    }

    /// The cost of deleting/inserting the node with postorder `post`
    /// (1-based), in half-units.
    #[inline]
    pub fn del_ins(&self, post: u32) -> Cost {
        Cost::from_natural(self.costs[(post - 1) as usize])
    }

    /// The natural-unit cost of the node with postorder `post`.
    #[inline]
    pub fn natural(&self, post: u32) -> u64 {
        self.costs[(post - 1) as usize]
    }

    /// The full natural-unit cost array (index = postorder − 1), for DP
    /// inner loops that index it directly.
    #[inline]
    pub fn naturals(&self) -> &[u64] {
        &self.costs
    }

    /// Maximum node cost (natural units).
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of nodes covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// Whether empty (never true for valid trees).
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }
}

/// The rename cost between two nodes given their natural costs and labels:
/// `0` if labels match, else `(cq + ct) / 2` — exact in half-units.
///
/// Branchless: labels are dense `u32` ids, so the mismatch test compiles
/// to a single comparison whose result scales the half-sum (no branch in
/// the DP inner loop).
#[inline]
pub fn rename_cost(label_q: LabelId, cq: u64, label_t: LabelId, ct: u64) -> Cost {
    Cost::from_halves((cq + ct) * u64::from(label_q != label_t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_tree::{bracket, LabelDict};

    #[test]
    fn cost_display_and_halves() {
        assert_eq!(Cost::from_natural(3).to_string(), "3");
        assert_eq!(Cost::from_halves(7).to_string(), "3.5");
        assert_eq!(Cost::ZERO.to_string(), "0");
        assert_eq!(Cost::INFINITY.to_string(), "inf");
        assert_eq!(Cost::from_halves(7).floor_natural(), 3);
        assert_eq!(Cost::from_natural(3).as_f64(), 3.0);
    }

    #[test]
    fn infinity_is_absorbing() {
        assert_eq!(Cost::INFINITY + Cost::from_natural(5), Cost::INFINITY);
        assert!(Cost::INFINITY.is_infinite());
        assert!(Cost::from_natural(1) < Cost::INFINITY);
    }

    #[test]
    fn ordering_is_total_on_halves() {
        assert!(Cost::from_halves(3) < Cost::from_natural(2));
        assert!(Cost::from_natural(1) < Cost::from_halves(3));
    }

    #[test]
    fn unit_cost_model() {
        let mut d = LabelDict::new();
        let t = bracket::parse("{a{b}{c}}", &mut d).unwrap();
        let nc = NodeCosts::compute(t.view(), &UnitCost);
        assert_eq!(nc.max(), 1);
        assert_eq!(nc.del_ins(1), Cost::from_natural(1));
        assert_eq!(nc.natural(3), 1);
    }

    #[test]
    fn fanout_weighted_model() {
        let mut d = LabelDict::new();
        let t = bracket::parse("{a{b}{c}{d}}", &mut d).unwrap();
        let nc = NodeCosts::compute(t.view(), &FanoutWeighted { base: 1, weight: 2 });
        assert_eq!(nc.natural(1), 1); // leaf
        assert_eq!(nc.natural(4), 1 + 2 * 3); // root, 3 children
        assert_eq!(nc.max(), 7);
    }

    #[test]
    fn per_label_model_defaults_and_overrides() {
        let mut d = LabelDict::new();
        let t = bracket::parse("{a{b}{c}}", &mut d).unwrap();
        let b = d.get("b").unwrap();
        let model = PerLabelCost::new(2).with(b, 9);
        let nc = NodeCosts::compute(t.view(), &model);
        assert_eq!(nc.natural(1), 9); // b
        assert_eq!(nc.natural(2), 2); // c -> default
        assert_eq!(nc.max(), 9);
    }

    #[test]
    fn costs_are_clamped_to_one() {
        struct Zero;
        impl CostModel for Zero {
            fn node_cost(&self, _: TreeView<'_>, _: NodeId) -> u64 {
                0
            }
        }
        let mut d = LabelDict::new();
        let t = bracket::parse("{a}", &mut d).unwrap();
        let nc = NodeCosts::compute(t.view(), &Zero);
        assert_eq!(nc.natural(1), 1);
        assert_eq!(Zero.max_cost(t.view()), 1);
    }

    #[test]
    fn rename_cost_rules() {
        let (a, b) = (LabelId(0), LabelId(1));
        assert_eq!(rename_cost(a, 5, a, 7), Cost::ZERO);
        assert_eq!(rename_cost(a, 1, b, 1), Cost::from_natural(1));
        assert_eq!(rename_cost(a, 1, b, 2), Cost::from_halves(3)); // 1.5
    }
}
