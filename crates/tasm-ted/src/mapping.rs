//! Edit mapping extraction (Def. 3): not just the distance, but the
//! node alignments and edit operations that realize it.
//!
//! A downstream user of TASM usually wants to *explain* a match — which
//! fields were renamed, which were missing. This module backtraces the
//! forest-distance recursion to produce an optimal edit mapping
//! `M ⊆ V_ε(Q) × V_ε(T)` and its operation list. It reuses the memoized
//! interval recursion of [`crate::oracle`] (quadratic tables per forest
//! pair), which is exactly right for the paper's use case: the trees being
//! explained are a query and a matched subtree, both bounded by τ — never
//! a whole document.

use std::collections::HashMap;

use crate::cost::{rename_cost, Cost, CostModel, NodeCosts};
use tasm_tree::{NodeId, Tree};

/// One edit operation of the script transforming `Q` into `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Delete a query node (aligned with ε).
    Delete {
        /// The deleted query node.
        q: NodeId,
    },
    /// Insert a document node (ε aligned with it).
    Insert {
        /// The inserted document node.
        t: NodeId,
    },
    /// Align two nodes with different labels (a rename).
    Rename {
        /// Query node.
        q: NodeId,
        /// Document node it is renamed into.
        t: NodeId,
    },
    /// Align two nodes with equal labels (no change, zero cost).
    Keep {
        /// Query node.
        q: NodeId,
        /// Document node it maps to.
        t: NodeId,
    },
}

/// An optimal edit script between two trees.
#[derive(Debug, Clone)]
pub struct EditScript {
    /// Operations, one per node of either tree (every node is mapped,
    /// Def. 3 condition 1).
    pub ops: Vec<EditOp>,
    /// Total cost — always equals the tree edit distance.
    pub cost: Cost,
}

impl EditScript {
    /// The node alignments (`Keep`/`Rename` pairs) of the mapping.
    pub fn alignments(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.ops.iter().filter_map(|op| match *op {
            EditOp::Rename { q, t } | EditOp::Keep { q, t } => Some((q, t)),
            _ => None,
        })
    }

    /// Counts of (keeps, renames, deletes, inserts).
    pub fn op_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for op in &self.ops {
            match op {
                EditOp::Keep { .. } => c.0 += 1,
                EditOp::Rename { .. } => c.1 += 1,
                EditOp::Delete { .. } => c.2 += 1,
                EditOp::Insert { .. } => c.3 += 1,
            }
        }
        c
    }
}

/// An inclusive postorder interval; `lo > hi` encodes the empty forest.
type Interval = (u32, u32);

struct Backtracer<'a> {
    q: &'a Tree,
    t: &'a Tree,
    cq: NodeCosts,
    ct: NodeCosts,
    memo: HashMap<(Interval, Interval), Cost>,
}

impl Backtracer<'_> {
    fn forest_cost_q(&self, (lo, hi): Interval) -> Cost {
        (lo..=hi).fold(Cost::ZERO, |acc, i| acc + self.cq.del_ins(i))
    }

    fn forest_cost_t(&self, (lo, hi): Interval) -> Cost {
        (lo..=hi).fold(Cost::ZERO, |acc, j| acc + self.ct.del_ins(j))
    }

    fn ren(&self, i: u32, j: u32) -> Cost {
        rename_cost(
            self.q.label(NodeId::new(i)),
            self.cq.natural(i),
            self.t.label(NodeId::new(j)),
            self.ct.natural(j),
        )
    }

    /// The memoized forest distance (same recursion as the oracle).
    fn dist(&mut self, f: Interval, g: Interval) -> Cost {
        let f_empty = f.0 > f.1;
        let g_empty = g.0 > g.1;
        if f_empty && g_empty {
            return Cost::ZERO;
        }
        if f_empty {
            return self.forest_cost_t(g);
        }
        if g_empty {
            return self.forest_cost_q(f);
        }
        if let Some(&c) = self.memo.get(&(f, g)) {
            return c;
        }
        let v = NodeId::new(f.1);
        let w = NodeId::new(g.1);
        let lv = self.q.lml(v).post();
        let lw = self.t.lml(w).post();
        let del = self.dist((f.0, f.1 - 1), g) + self.cq.del_ins(f.1);
        let ins = self.dist(f, (g.0, g.1 - 1)) + self.ct.del_ins(g.1);
        let mat = self.dist((lv, f.1 - 1), (lw, g.1 - 1))
            + self.dist((f.0, lv - 1), (g.0, lw - 1))
            + self.ren(f.1, g.1);
        let best = del.min(ins).min(mat);
        self.memo.insert((f, g), best);
        best
    }

    /// Replays the optimal choices, emitting operations.
    fn trace(&mut self, f: Interval, g: Interval, ops: &mut Vec<EditOp>) {
        let f_empty = f.0 > f.1;
        let g_empty = g.0 > g.1;
        if f_empty && g_empty {
            return;
        }
        if f_empty {
            for j in g.0..=g.1 {
                ops.push(EditOp::Insert { t: NodeId::new(j) });
            }
            return;
        }
        if g_empty {
            for i in f.0..=f.1 {
                ops.push(EditOp::Delete { q: NodeId::new(i) });
            }
            return;
        }
        let total = self.dist(f, g);
        let v = NodeId::new(f.1);
        let w = NodeId::new(g.1);
        let lv = self.q.lml(v).post();
        let lw = self.t.lml(w).post();

        let del = self.dist((f.0, f.1 - 1), g) + self.cq.del_ins(f.1);
        if del == total {
            ops.push(EditOp::Delete { q: v });
            self.trace((f.0, f.1 - 1), g, ops);
            return;
        }
        let ins = self.dist(f, (g.0, g.1 - 1)) + self.ct.del_ins(g.1);
        if ins == total {
            ops.push(EditOp::Insert { t: w });
            self.trace(f, (g.0, g.1 - 1), ops);
            return;
        }
        // Match v with w.
        if self.q.label(v) == self.t.label(w) {
            ops.push(EditOp::Keep { q: v, t: w });
        } else {
            ops.push(EditOp::Rename { q: v, t: w });
        }
        self.trace((lv, f.1 - 1), (lw, g.1 - 1), ops);
        self.trace((f.0, lv - 1), (g.0, lw - 1), ops);
    }
}

/// Computes an optimal edit script from `query` to `doc` under `model`.
///
/// The script cost always equals [`crate::ted`] on the same inputs, and
/// the alignments satisfy the mapping conditions of Def. 3 (one-to-one,
/// ancestor, order).
///
/// # Examples
///
/// ```
/// use tasm_tree::{bracket, LabelDict};
/// use tasm_ted::{edit_script, ted, UnitCost};
///
/// let mut dict = LabelDict::new();
/// let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let script = edit_script(&g, &h, &UnitCost);
/// assert_eq!(script.cost, ted(&g, &h, &UnitCost));
/// let (keeps, renames, deletes, inserts) = script.op_counts();
/// assert_eq!(keeps + renames, 3);             // every query node is aligned
/// assert_eq!(deletes, 0);
/// assert_eq!(inserts, 4);                      // |H| - |G| nodes appear
/// ```
pub fn edit_script(query: &Tree, doc: &Tree, model: &dyn CostModel) -> EditScript {
    let mut bt = Backtracer {
        q: query,
        t: doc,
        cq: NodeCosts::compute(query.view(), model),
        ct: NodeCosts::compute(doc.view(), model),
        memo: HashMap::new(),
    };
    let f = (1, query.len() as u32);
    let g = (1, doc.len() as u32);
    let cost = bt.dist(f, g);
    let mut ops = Vec::with_capacity(query.len() + doc.len());
    bt.trace(f, g, &mut ops);
    EditScript { ops, cost }
}

/// Checks the Def. 3 mapping conditions for a script over `(query, doc)`;
/// used by tests and available for debugging user cost models.
pub fn validate_mapping(script: &EditScript, query: &Tree, doc: &Tree) -> Result<(), String> {
    let pairs: Vec<(NodeId, NodeId)> = script.alignments().collect();
    let mut q_seen = vec![false; query.len()];
    let mut t_seen = vec![false; doc.len()];
    for &(q, t) in &pairs {
        if std::mem::replace(&mut q_seen[q.index()], true) {
            return Err(format!("query node {q} aligned twice"));
        }
        if std::mem::replace(&mut t_seen[t.index()], true) {
            return Err(format!("doc node {t} aligned twice"));
        }
    }
    // Every node accounted for exactly once across ops.
    let (keeps, renames, deletes, inserts) = script.op_counts();
    if keeps + renames + deletes != query.len() {
        return Err("not every query node is mapped".into());
    }
    if keeps + renames + inserts != doc.len() {
        return Err("not every doc node is mapped".into());
    }
    // Ancestor and order conditions over all pairs of alignments.
    for (a, &(q1, t1)) in pairs.iter().enumerate() {
        for &(q2, t2) in &pairs[a + 1..] {
            let anc_q = query.is_ancestor(q1, q2);
            let anc_t = doc.is_ancestor(t1, t2);
            if anc_q != anc_t {
                return Err(format!(
                    "ancestor condition violated for ({q1},{t1}) ({q2},{t2})"
                ));
            }
            let anc_q_rev = query.is_ancestor(q2, q1);
            let anc_t_rev = doc.is_ancestor(t2, t1);
            if anc_q_rev != anc_t_rev {
                return Err(format!(
                    "ancestor condition violated for ({q2},{t2}) ({q1},{t1})"
                ));
            }
            let left_q = query.is_left_of(q1, q2);
            let left_t = doc.is_left_of(t1, t2);
            if left_q != left_t {
                return Err(format!(
                    "order condition violated for ({q1},{t1}) ({q2},{t2})"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{PerLabelCost, UnitCost};
    use crate::zhang_shasha::ted;
    use tasm_tree::{bracket, LabelDict};

    fn parse2(a: &str, b: &str) -> (Tree, Tree) {
        let mut d = LabelDict::new();
        (
            bracket::parse(a, &mut d).unwrap(),
            bracket::parse(b, &mut d).unwrap(),
        )
    }

    #[test]
    fn script_cost_equals_ted_on_fixtures() {
        let cases = [
            ("{a}", "{a}"),
            ("{a}", "{b}"),
            ("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}"),
            ("{a{b{c{d}}}}", "{a{b}{c}{d}}"),
            ("{r{a}{b}{c}}", "{r{c}{b}{a}}"),
            ("{a{a{a}}{a}}", "{a{a}{a{a}}}"),
        ];
        for (x, y) in cases {
            let (q, t) = parse2(x, y);
            let script = edit_script(&q, &t, &UnitCost);
            assert_eq!(script.cost, ted(&q, &t, &UnitCost), "{x} vs {y}");
            validate_mapping(&script, &q, &t).unwrap_or_else(|e| panic!("{x} vs {y}: {e}"));
        }
    }

    #[test]
    fn identical_trees_keep_everything() {
        let (q, t) = parse2("{a{b}{c{d}}}", "{a{b}{c{d}}}");
        let script = edit_script(&q, &t, &UnitCost);
        let (keeps, renames, deletes, inserts) = script.op_counts();
        assert_eq!((keeps, renames, deletes, inserts), (4, 0, 0, 0));
        assert_eq!(script.cost, Cost::ZERO);
    }

    #[test]
    fn single_rename_is_identified() {
        let (q, t) = parse2("{a{b}{c}}", "{a{b}{z}}");
        let script = edit_script(&q, &t, &UnitCost);
        let renames: Vec<_> = script
            .ops
            .iter()
            .filter(|o| matches!(o, EditOp::Rename { .. }))
            .collect();
        assert_eq!(renames.len(), 1);
        // c (postorder 2 in q) renamed to z (postorder 2 in t).
        assert_eq!(
            *renames[0],
            EditOp::Rename {
                q: NodeId::new(2),
                t: NodeId::new(2)
            }
        );
    }

    #[test]
    fn weighted_costs_change_the_script() {
        let mut d = LabelDict::new();
        let q = bracket::parse("{a{b}}", &mut d).unwrap();
        let t = bracket::parse("{a{z}}", &mut d).unwrap();
        let b = d.get("b").unwrap();
        let z = d.get("z").unwrap();
        // Rename b->z costs (9+9)/2 = 9; delete+insert costs 9+9 = 18.
        let expensive = PerLabelCost::new(1).with(b, 9).with(z, 9);
        let script = edit_script(&q, &t, &expensive);
        assert_eq!(script.cost, ted(&q, &t, &expensive));
        let (_, renames, deletes, inserts) = script.op_counts();
        assert_eq!((renames, deletes, inserts), (1, 0, 0));
    }

    #[test]
    fn paper_example_script() {
        let (g, h) = parse2("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}");
        let script = edit_script(&g, &h, &UnitCost);
        assert_eq!(script.cost, Cost::from_natural(4));
        validate_mapping(&script, &g, &h).unwrap();
        // One optimal mapping keeps G aligned with H6's subtree (a,b,c all
        // keep) and inserts the other four nodes.
        let (keeps, renames, deletes, inserts) = script.op_counts();
        assert_eq!(keeps + renames, 3);
        assert_eq!(deletes, 0);
        assert_eq!(inserts, 4);
        assert_eq!(keeps, 3, "an all-keep alignment exists");
    }
}
