//! Reusable evaluation state for repeated distance computations.
//!
//! TASM-postorder (Sec. VI of the paper) invokes the Zhang–Shasha dynamic
//! program once per candidate subtree — thousands to millions of times per
//! document stream — always against the *same* query. The paper stresses
//! that per-candidate work must not depend on the document (Theorem 5) and
//! that repeated state should be interned and reused (Sec. VII). Two types
//! implement that here:
//!
//! * [`QueryContext`] — everything derivable from the query alone,
//!   computed **once per query**: its keyroot decomposition (Def. 8), the
//!   leftmost-leaf array `lml`, and the per-node [`NodeCosts`] (Def. 4).
//! * [`TedWorkspace`] — the per-candidate scratch state, **owned by the
//!   caller and reused across candidates**: the tree/forest distance
//!   matrices `td`/`fd` with grow-don't-shrink buffers, the document-side
//!   keyroot buffers, and the document-side node costs.
//!
//! With both in place, [`ted_full_with_workspace`](crate::ted_full_with_workspace)
//! performs **zero heap allocations** once the workspace's capacity covers
//! the largest candidate seen (and none at all if
//! [`TedWorkspace::reserve`] was called with the Theorem 3 bound τ).

use crate::cost::{Cost, CostModel, NodeCosts};
use crate::matrix::Matrix;
use tasm_tree::{keyroots_into, NodeId, Tree, TreeView};

/// Query-side state of a TASM evaluation, computed once per query.
///
/// Borrows the query tree and cost model; owns the derived arrays. Build
/// it outside the candidate loop and pass it to every
/// [`ted_full_with_workspace`](crate::ted_full_with_workspace) call.
pub struct QueryContext<'a> {
    query: &'a Tree,
    model: &'a dyn CostModel,
    /// Keyroots of the query (Def. 8), ascending postorder.
    keyroots: Vec<NodeId>,
    /// `lml[i]` = postorder number of the leftmost leaf of the node with
    /// postorder number `i + 1`.
    lml: Vec<u32>,
    /// Per-node costs `cst(q)` (Def. 4), clamped to `>= 1`.
    costs: NodeCosts,
}

impl std::fmt::Debug for QueryContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryContext")
            .field("query_len", &self.query.len())
            .field("keyroots", &self.keyroots)
            .finish_non_exhaustive()
    }
}

impl<'a> QueryContext<'a> {
    /// Precomputes keyroots, leftmost leaves and node costs for `query`.
    pub fn new(query: &'a Tree, model: &'a dyn CostModel) -> Self {
        let costs = NodeCosts::compute(query.view(), model);
        let mut seen = Vec::new();
        let mut keyroots = Vec::new();
        keyroots_into(query.view(), &mut seen, &mut keyroots);
        let lml = query.nodes().map(|id| query.lml(id).post()).collect();
        QueryContext {
            query,
            model,
            keyroots,
            lml,
            costs,
        }
    }

    /// The query tree.
    #[inline]
    pub fn query(&self) -> &'a Tree {
        self.query
    }

    /// The cost model shared by query and document sides.
    #[inline]
    pub fn model(&self) -> &'a dyn CostModel {
        self.model
    }

    /// The query's keyroots (Def. 8), ascending postorder.
    #[inline]
    pub fn keyroots(&self) -> &[NodeId] {
        &self.keyroots
    }

    /// The precomputed per-node costs of the query.
    #[inline]
    pub fn costs(&self) -> &NodeCosts {
        &self.costs
    }

    /// The leftmost-leaf array: entry `i` is `lml` of postorder `i + 1`.
    #[inline]
    pub fn lml_array(&self) -> &[u32] {
        &self.lml
    }

    /// Number of query nodes `|Q|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.query.len()
    }

    /// Trees are non-empty by definition; always `false`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The maximum query node cost `c_Q` (Theorem 3).
    #[inline]
    pub fn max_cost(&self) -> u64 {
        self.costs.max()
    }
}

/// Document-side scratch state for repeated Zhang–Shasha runs.
///
/// All buffers grow to the largest document (candidate) seen and are
/// never shrunk, so a streaming loop's steady state performs no heap
/// allocation. Create once, pass `&mut` to every call.
#[derive(Debug)]
pub struct TedWorkspace {
    /// Tree distance matrix `td` (Fig. 3), `(m+1) × (n+1)`.
    pub(crate) td: Matrix<Cost>,
    /// Forest distance table `fd`, same dimensions.
    pub(crate) fd: Matrix<Cost>,
    /// Document keyroots, recomputed per document into this buffer.
    pub(crate) doc_keyroots: Vec<NodeId>,
    /// Scratch bitmap for the keyroot scan.
    pub(crate) kr_seen: Vec<bool>,
    /// Document-side per-node costs.
    pub(crate) doc_costs: NodeCosts,
    /// Document-side leftmost-leaf array (`lml` of postorder `i + 1`),
    /// hoisted out of the DP inner loop.
    pub(crate) doc_lml: Vec<u32>,
    /// Document-side delete/insert costs in half-units, pre-multiplied so
    /// the inner loop reads a `Cost` directly.
    pub(crate) doc_del_ins: Vec<Cost>,
}

impl Default for TedWorkspace {
    fn default() -> Self {
        TedWorkspace::new()
    }
}

impl TedWorkspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        TedWorkspace {
            td: Matrix::new(0, 0),
            fd: Matrix::new(0, 0),
            doc_keyroots: Vec::new(),
            kr_seen: Vec::new(),
            doc_costs: NodeCosts::empty(),
            doc_lml: Vec::new(),
            doc_del_ins: Vec::new(),
        }
    }

    /// Pre-reserves every buffer for an `m`-node query against documents
    /// of up to `n` nodes, so that not even the first evaluation
    /// allocates. For TASM, `n` is the Theorem 3 threshold τ.
    pub fn reserve(&mut self, m: usize, n: usize) {
        self.td.reset_stale(m + 1, n + 1);
        self.fd.reset_stale(m + 1, n + 1);
        self.doc_keyroots
            .reserve(n.saturating_sub(self.doc_keyroots.len()));
        self.kr_seen
            .reserve((n + 1).saturating_sub(self.kr_seen.len()));
        self.doc_costs.reserve(n);
        self.doc_lml.reserve(n.saturating_sub(self.doc_lml.len()));
        self.doc_del_ins
            .reserve(n.saturating_sub(self.doc_del_ins.len()));
    }

    /// Prepares the document side of a run: recomputes document
    /// keyroots, costs and the hoisted per-node arrays into the
    /// reusable buffers. The document arrives as a borrowed
    /// [`TreeView`], so candidate subtrees are prepared in place
    /// (zero-copy slices of the scan arena).
    pub(crate) fn prepare(&mut self, doc: TreeView<'_>, model: &dyn CostModel) {
        self.doc_costs.compute_into(doc, model);
        keyroots_into(doc, &mut self.kr_seen, &mut self.doc_keyroots);
        self.doc_lml.clear();
        self.doc_lml
            .extend(doc.nodes().map(|id| doc.lml(id).post()));
        let costs = &self.doc_costs;
        self.doc_del_ins.clear();
        self.doc_del_ins
            .extend(doc.nodes().map(|id| costs.del_ins(id.post())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use tasm_tree::{bracket, keyroots, LabelDict};

    #[test]
    fn query_context_matches_free_functions() {
        let mut d = LabelDict::new();
        let q = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut d).unwrap();
        let ctx = QueryContext::new(&q, &UnitCost);
        assert_eq!(ctx.keyroots(), keyroots(&q).as_slice());
        assert_eq!(ctx.len(), 7);
        assert_eq!(ctx.max_cost(), 1);
        for id in q.nodes() {
            assert_eq!(ctx.lml_array()[id.index()], q.lml(id).post());
        }
    }

    #[test]
    fn workspace_reserve_then_use_is_consistent() {
        let mut d = LabelDict::new();
        let t = bracket::parse("{a{b}{c}}", &mut d).unwrap();
        let mut ws = TedWorkspace::new();
        ws.reserve(8, 32);
        ws.prepare(t.view(), &UnitCost);
        assert_eq!(ws.doc_keyroots.len(), keyroots(&t).len());
        assert_eq!(ws.doc_costs.len(), 3);
    }
}
