//! Reusable evaluation state for repeated distance computations.
//!
//! TASM-postorder (Sec. VI of the paper) invokes the Zhang–Shasha dynamic
//! program once per candidate subtree — thousands to millions of times per
//! document stream — always against the *same* query. The paper stresses
//! that per-candidate work must not depend on the document (Theorem 5) and
//! that repeated state should be interned and reused (Sec. VII). Two types
//! implement that here:
//!
//! * [`QueryContext`] — everything derivable from the query alone,
//!   computed **once per query**: its keyroot decomposition (Def. 8), the
//!   leftmost-leaf array `lml`, the per-node [`NodeCosts`] (Def. 4), and —
//!   when a shape-adaptive [`TedKernel`] is requested — the mirrored
//!   decomposition of the right-path strategy plus the resolved path.
//! * [`TedWorkspace`] — the per-candidate scratch state, **owned by the
//!   caller and reused across candidates**: the tree/forest distance
//!   matrices `td`/`fd` with grow-don't-shrink buffers, the document-side
//!   keyroot buffers, the document-side node costs, and the mirrored
//!   document arrays of the right-path kernel.
//!
//! With both in place, [`ted_full_with_workspace`](crate::ted_full_with_workspace)
//! performs **zero heap allocations** once the workspace's capacity covers
//! the largest candidate seen (and none at all if
//! [`TedWorkspace::reserve`] was called with the Theorem 3 bound τ).

use crate::cost::{Cost, CostModel, NodeCosts};
use crate::matrix::Matrix;
use crate::strategy::{
    keyroot_area, keyroots_from_lml_into, mirror_permutation_into, DecompPath, TedKernel,
};
use tasm_tree::{keyroots_into, LabelId, NodeId, Tree, TreeView};

/// The mirrored query-side decomposition of the right-path kernel: the
/// query's postorder arrays permuted into mirror coordinates, built once
/// per query alongside the left decomposition.
#[derive(Debug)]
pub(crate) struct MirrorQuery {
    /// Labels in mirror postorder.
    pub(crate) labels: Vec<LabelId>,
    /// Leftmost leaves in mirror postorder (`lml[j] = j + 1 − size + 1`).
    pub(crate) lml: Vec<u32>,
    /// Keyroots of the mirrored query, ascending mirror postorder.
    pub(crate) keyroots: Vec<NodeId>,
    /// Delete/insert costs in mirror postorder (half-units).
    pub(crate) del: Vec<Cost>,
    /// Natural-unit node costs in mirror postorder.
    pub(crate) nat: Vec<u64>,
}

impl MirrorQuery {
    /// Permutes the query's arrays into mirror coordinates. Costs are
    /// evaluated on the *original* tree (exact for arbitrary
    /// [`CostModel`]s, including structure-dependent ones) and permuted.
    fn build(query: &Tree, costs: &NodeCosts) -> Self {
        let n = query.len();
        let sizes = query.sizes();
        let mut stack = Vec::new();
        let mut mir_of_post = Vec::new();
        mirror_permutation_into(sizes, &mut stack, &mut mir_of_post);
        let mut labels = vec![LabelId(0); n];
        let mut lml = vec![0u32; n];
        let mut del = vec![Cost::ZERO; n];
        let mut nat = vec![0u64; n];
        for p in 1..=n {
            let j = mir_of_post[p - 1] as usize;
            labels[j - 1] = query.labels()[p - 1];
            lml[j - 1] = j as u32 - sizes[p - 1] + 1;
            del[j - 1] = costs.del_ins(p as u32);
            nat[j - 1] = costs.natural(p as u32);
        }
        let mut seen = Vec::new();
        let mut keyroots = Vec::new();
        keyroots_from_lml_into(&lml, &mut seen, &mut keyroots);
        MirrorQuery {
            labels,
            lml,
            keyroots,
            del,
            nat,
        }
    }
}

/// Query-side state of a TASM evaluation, computed once per query.
///
/// Borrows the query tree and cost model; owns the derived arrays. Build
/// it outside the candidate loop and pass it to every
/// [`ted_full_with_workspace`](crate::ted_full_with_workspace) call.
///
/// [`QueryContext::new`] pins the classic Zhang–Shasha left-path kernel;
/// [`QueryContext::with_kernel`] resolves a [`TedKernel`] selection —
/// including the `Auto` shape estimator — once, so the candidate loop
/// never re-decides.
pub struct QueryContext<'a> {
    query: &'a Tree,
    model: &'a dyn CostModel,
    /// Keyroots of the query (Def. 8), ascending postorder.
    keyroots: Vec<NodeId>,
    /// `lml[i]` = postorder number of the leftmost leaf of the node with
    /// postorder number `i + 1`.
    lml: Vec<u32>,
    /// Per-node costs `cst(q)` (Def. 4), clamped to `>= 1`.
    costs: NodeCosts,
    /// Delete/insert costs in half-units (`del[i]` for postorder `i+1`),
    /// hoisted out of the DP inner loop.
    del: Vec<Cost>,
    /// The requested kernel selection.
    kernel: TedKernel,
    /// The decomposition path the selection resolved to.
    path: DecompPath,
    /// The mirrored query decomposition (present iff `path` is `Right`).
    mirror: Option<MirrorQuery>,
}

impl std::fmt::Debug for QueryContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryContext")
            .field("query_len", &self.query.len())
            .field("keyroots", &self.keyroots)
            .field("kernel", &self.kernel)
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl<'a> QueryContext<'a> {
    /// Precomputes keyroots, leftmost leaves and node costs for `query`,
    /// pinning the classic Zhang–Shasha left-path kernel.
    pub fn new(query: &'a Tree, model: &'a dyn CostModel) -> Self {
        QueryContext::with_kernel(query, model, TedKernel::Zs)
    }

    /// As [`QueryContext::new`], but resolving `kernel` to a
    /// decomposition path:
    ///
    /// * [`TedKernel::Zs`] — always the left path.
    /// * [`TedKernel::Strategy`] — always the right (mirrored) path.
    /// * [`TedKernel::Auto`] — compare the query's left and right
    ///   keyroot-subtree areas (the per-query factor of the DP cost) and
    ///   pick the smaller; ties keep the left path.
    pub fn with_kernel(query: &'a Tree, model: &'a dyn CostModel, kernel: TedKernel) -> Self {
        let costs = NodeCosts::compute(query.view(), model);
        let mut seen = Vec::new();
        let mut keyroots = Vec::new();
        keyroots_into(query.view(), &mut seen, &mut keyroots);
        let lml: Vec<u32> = query.nodes().map(|id| query.lml(id).post()).collect();
        let del: Vec<Cost> = (1..=query.len() as u32).map(|i| costs.del_ins(i)).collect();

        let (path, mirror) = match kernel {
            TedKernel::Zs => (DecompPath::Left, None),
            TedKernel::Strategy => (DecompPath::Right, Some(MirrorQuery::build(query, &costs))),
            TedKernel::Auto => {
                let m = MirrorQuery::build(query, &costs);
                let left_area = keyroot_area(&keyroots, &lml);
                let right_area = keyroot_area(&m.keyroots, &m.lml);
                if right_area < left_area {
                    (DecompPath::Right, Some(m))
                } else {
                    (DecompPath::Left, None)
                }
            }
        };
        QueryContext {
            query,
            model,
            keyroots,
            lml,
            costs,
            del,
            kernel,
            path,
            mirror,
        }
    }

    /// The query tree.
    #[inline]
    pub fn query(&self) -> &'a Tree {
        self.query
    }

    /// The cost model shared by query and document sides.
    #[inline]
    pub fn model(&self) -> &'a dyn CostModel {
        self.model
    }

    /// The query's keyroots (Def. 8), ascending postorder.
    #[inline]
    pub fn keyroots(&self) -> &[NodeId] {
        &self.keyroots
    }

    /// The precomputed per-node costs of the query.
    #[inline]
    pub fn costs(&self) -> &NodeCosts {
        &self.costs
    }

    /// The leftmost-leaf array: entry `i` is `lml` of postorder `i + 1`.
    #[inline]
    pub fn lml_array(&self) -> &[u32] {
        &self.lml
    }

    /// The hoisted delete/insert cost array (half-units, postorder).
    #[inline]
    pub(crate) fn del_array(&self) -> &[Cost] {
        &self.del
    }

    /// The mirrored query decomposition (right-path runs only).
    #[inline]
    pub(crate) fn mirror(&self) -> Option<&MirrorQuery> {
        self.mirror.as_ref()
    }

    /// The kernel selection this context was built with (possibly
    /// [`TedKernel::Auto`]).
    #[inline]
    pub fn requested_kernel(&self) -> TedKernel {
        self.kernel
    }

    /// The kernel the selection *resolved* to: [`TedKernel::Zs`]
    /// (left path) or [`TedKernel::Strategy`] (right path), never
    /// [`TedKernel::Auto`].
    #[inline]
    pub fn kernel(&self) -> TedKernel {
        match self.path {
            DecompPath::Left => TedKernel::Zs,
            DecompPath::Right => TedKernel::Strategy,
        }
    }

    /// Whether candidates are evaluated by the right-path (mirrored)
    /// strategy kernel.
    #[inline]
    pub fn uses_strategy_kernel(&self) -> bool {
        self.path == DecompPath::Right
    }

    /// The resolved decomposition path.
    #[inline]
    pub(crate) fn path(&self) -> DecompPath {
        self.path
    }

    /// Number of query nodes `|Q|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.query.len()
    }

    /// Trees are non-empty by definition; always `false`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The maximum query node cost `c_Q` (Theorem 3).
    #[inline]
    pub fn max_cost(&self) -> u64 {
        self.costs.max()
    }
}

/// Document-side scratch state for repeated Zhang–Shasha runs.
///
/// All buffers grow to the largest document (candidate) seen and are
/// never shrunk, so a streaming loop's steady state performs no heap
/// allocation. Create once, pass `&mut` to every call.
#[derive(Debug)]
pub struct TedWorkspace {
    /// Tree distance matrix `td` (Fig. 3), `(m+1) × (n+1)`.
    pub(crate) td: Matrix<Cost>,
    /// Forest distance table `fd`, same dimensions.
    pub(crate) fd: Matrix<Cost>,
    /// Document keyroots, recomputed per document into this buffer.
    pub(crate) doc_keyroots: Vec<NodeId>,
    /// Scratch bitmap for the keyroot scan.
    pub(crate) kr_seen: Vec<bool>,
    /// Document-side per-node costs.
    pub(crate) doc_costs: NodeCosts,
    /// Document-side leftmost-leaf array (`lml` of postorder `i + 1`),
    /// hoisted out of the DP inner loop.
    pub(crate) doc_lml: Vec<u32>,
    /// Document-side delete/insert costs in half-units, pre-multiplied so
    /// the inner loop reads a `Cost` directly.
    pub(crate) doc_del_ins: Vec<Cost>,
    /// Mirror permutation of the current document (`mir_of_post[p−1]` =
    /// mirror postorder of original postorder `p`); right-path runs only.
    pub(crate) mir_of_post: Vec<u32>,
    /// Explicit-stack scratch of the mirror permutation.
    pub(crate) mir_stack: Vec<(u32, u32)>,
    /// Document labels in mirror postorder.
    pub(crate) mir_labels: Vec<LabelId>,
    /// Document leftmost leaves in mirror postorder.
    pub(crate) mir_lml: Vec<u32>,
    /// Document keyroots of the mirrored arena.
    pub(crate) mir_keyroots: Vec<NodeId>,
    /// Document delete/insert costs in mirror postorder (half-units).
    pub(crate) mir_del: Vec<Cost>,
    /// Document natural-unit node costs in mirror postorder.
    pub(crate) mir_nat: Vec<u64>,
    /// The query row of a right-path run, permuted back to *original*
    /// document postorder (index 0 is padding, as in `query_row`).
    pub(crate) row_out: Vec<Cost>,
}

impl Default for TedWorkspace {
    fn default() -> Self {
        TedWorkspace::new()
    }
}

impl TedWorkspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        TedWorkspace {
            td: Matrix::new(0, 0),
            fd: Matrix::new(0, 0),
            doc_keyroots: Vec::new(),
            kr_seen: Vec::new(),
            doc_costs: NodeCosts::empty(),
            doc_lml: Vec::new(),
            doc_del_ins: Vec::new(),
            mir_of_post: Vec::new(),
            mir_stack: Vec::new(),
            mir_labels: Vec::new(),
            mir_lml: Vec::new(),
            mir_keyroots: Vec::new(),
            mir_del: Vec::new(),
            mir_nat: Vec::new(),
            row_out: Vec::new(),
        }
    }

    /// Pre-reserves every buffer for an `m`-node query against documents
    /// of up to `n` nodes, so that not even the first evaluation
    /// allocates. For TASM, `n` is the Theorem 3 threshold τ. (The
    /// mirror-side buffers of the right-path kernel are reserved
    /// separately by [`TedWorkspace::reserve_mirror`], only when that
    /// kernel is selected.)
    pub fn reserve(&mut self, m: usize, n: usize) {
        self.td.reset_stale(m + 1, n + 1);
        self.fd.reset_stale(m + 1, n + 1);
        self.doc_keyroots
            .reserve(n.saturating_sub(self.doc_keyroots.len()));
        self.kr_seen
            .reserve((n + 1).saturating_sub(self.kr_seen.len()));
        self.doc_costs.reserve(n);
        self.doc_lml.reserve(n.saturating_sub(self.doc_lml.len()));
        self.doc_del_ins
            .reserve(n.saturating_sub(self.doc_del_ins.len()));
    }

    /// Pre-reserves the mirror-side buffers of the right-path kernel for
    /// documents of up to `n` nodes. Call alongside
    /// [`TedWorkspace::reserve`] when the query context resolved to the
    /// strategy kernel.
    pub fn reserve_mirror(&mut self, n: usize) {
        let grow = |len: usize| n.saturating_sub(len);
        self.mir_of_post.reserve(grow(self.mir_of_post.len()));
        self.mir_stack.reserve(grow(self.mir_stack.len()));
        self.mir_labels.reserve(grow(self.mir_labels.len()));
        self.mir_lml.reserve(grow(self.mir_lml.len()));
        self.mir_keyroots.reserve(grow(self.mir_keyroots.len()));
        self.mir_del.reserve(grow(self.mir_del.len()));
        self.mir_nat.reserve(grow(self.mir_nat.len()));
        self.kr_seen
            .reserve((n + 1).saturating_sub(self.kr_seen.len()));
        self.row_out
            .reserve((n + 1).saturating_sub(self.row_out.len()));
        self.doc_costs.reserve(n);
    }

    /// Prepares the document side of a run: recomputes document
    /// keyroots, costs and the hoisted per-node arrays into the
    /// reusable buffers. The document arrives as a borrowed
    /// [`TreeView`], so candidate subtrees are prepared in place
    /// (zero-copy slices of the scan arena).
    pub(crate) fn prepare(&mut self, doc: TreeView<'_>, model: &dyn CostModel) {
        self.doc_costs.compute_into(doc, model);
        keyroots_into(doc, &mut self.kr_seen, &mut self.doc_keyroots);
        self.doc_lml.clear();
        self.doc_lml
            .extend(doc.nodes().map(|id| doc.lml(id).post()));
        let costs = &self.doc_costs;
        self.doc_del_ins.clear();
        self.doc_del_ins
            .extend(doc.nodes().map(|id| costs.del_ins(id.post())));
    }

    /// Prepares the *mirrored* document side of a right-path run: node
    /// costs evaluated on the original view (exact for arbitrary cost
    /// models), then labels, lml, del/ins and keyroots permuted into
    /// mirror coordinates. All buffers grow but never shrink.
    pub(crate) fn prepare_mirror(&mut self, doc: TreeView<'_>, model: &dyn CostModel) {
        self.doc_costs.compute_into(doc, model);
        let n = doc.len();
        let sizes = doc.sizes();
        mirror_permutation_into(sizes, &mut self.mir_stack, &mut self.mir_of_post);
        self.mir_labels.clear();
        self.mir_labels.resize(n, LabelId(0));
        self.mir_lml.clear();
        self.mir_lml.resize(n, 0);
        self.mir_del.clear();
        self.mir_del.resize(n, Cost::ZERO);
        self.mir_nat.clear();
        self.mir_nat.resize(n, 0);
        let labels = doc.labels();
        for p in 1..=n {
            let j = self.mir_of_post[p - 1] as usize;
            self.mir_labels[j - 1] = labels[p - 1];
            self.mir_lml[j - 1] = j as u32 - sizes[p - 1] + 1;
            self.mir_del[j - 1] = self.doc_costs.del_ins(p as u32);
            self.mir_nat[j - 1] = self.doc_costs.natural(p as u32);
        }
        keyroots_from_lml_into(&self.mir_lml, &mut self.kr_seen, &mut self.mir_keyroots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use tasm_tree::{bracket, keyroots, LabelDict};

    #[test]
    fn query_context_matches_free_functions() {
        let mut d = LabelDict::new();
        let q = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut d).unwrap();
        let ctx = QueryContext::new(&q, &UnitCost);
        assert_eq!(ctx.keyroots(), keyroots(&q).as_slice());
        assert_eq!(ctx.len(), 7);
        assert_eq!(ctx.max_cost(), 1);
        for id in q.nodes() {
            assert_eq!(ctx.lml_array()[id.index()], q.lml(id).post());
        }
    }

    #[test]
    fn workspace_reserve_then_use_is_consistent() {
        let mut d = LabelDict::new();
        let t = bracket::parse("{a{b}{c}}", &mut d).unwrap();
        let mut ws = TedWorkspace::new();
        ws.reserve(8, 32);
        ws.prepare(t.view(), &UnitCost);
        assert_eq!(ws.doc_keyroots.len(), keyroots(&t).len());
        assert_eq!(ws.doc_costs.len(), 3);
    }

    #[test]
    fn auto_kernel_picks_right_path_on_right_combs() {
        let mut d = LabelDict::new();
        // Right-deep comb: every internal node's deep child is rightmost.
        let right = bracket::parse("{r{l}{m{l}{m{l}{m}}}}", &mut d).unwrap();
        let ctx = QueryContext::with_kernel(&right, &UnitCost, TedKernel::Auto);
        assert!(ctx.uses_strategy_kernel());
        assert_eq!(ctx.kernel(), TedKernel::Strategy);
        assert_eq!(ctx.requested_kernel(), TedKernel::Auto);
        // Left-deep comb: the classic kernel is already optimal.
        let left = bracket::parse("{r{m{m{m}{l}}{l}}{l}}", &mut d).unwrap();
        let ctx = QueryContext::with_kernel(&left, &UnitCost, TedKernel::Auto);
        assert!(!ctx.uses_strategy_kernel());
        assert_eq!(ctx.kernel(), TedKernel::Zs);
    }

    #[test]
    fn explicit_kernels_pin_their_path() {
        let mut d = LabelDict::new();
        let q = bracket::parse("{a{b}{c}}", &mut d).unwrap();
        let zs = QueryContext::with_kernel(&q, &UnitCost, TedKernel::Zs);
        assert_eq!(zs.kernel(), TedKernel::Zs);
        assert!(zs.mirror().is_none());
        let st = QueryContext::with_kernel(&q, &UnitCost, TedKernel::Strategy);
        assert_eq!(st.kernel(), TedKernel::Strategy);
        let mirror = st.mirror().expect("strategy kernel builds the mirror");
        assert_eq!(mirror.labels.len(), q.len());
        // Mirror of a(b, c) is a(c, b): labels at mirror postorder 1, 2
        // are swapped relative to the original arena.
        assert_eq!(mirror.labels[0], q.labels()[1]);
        assert_eq!(mirror.labels[1], q.labels()[0]);
        assert_eq!(mirror.labels[2], q.labels()[2]);
    }

    #[test]
    fn single_node_query_resolves_left() {
        let mut d = LabelDict::new();
        let q = bracket::parse("{a}", &mut d).unwrap();
        // Both areas are 1; ties keep the left path.
        let ctx = QueryContext::with_kernel(&q, &UnitCost, TedKernel::Auto);
        assert_eq!(ctx.kernel(), TedKernel::Zs);
    }
}
