//! Instrumentation for the pruning experiments (Figs. 11 and 12).
//!
//! The cost of the tree edit distance is driven by the *relevant subtrees*
//! (keyroot subtrees) it decomposes the inputs into: for each pair of
//! relevant subtrees `Q_i`, `T_j` a `|Q_i| × |T_j|` forest-distance matrix
//! is filled (Sec. IV-F). [`TedStats`] records, for every distance
//! invocation, the sizes of the document-side relevant subtrees — exactly
//! the quantity plotted in Fig. 11 — plus total matrix cells as a secondary
//! effort measure.

use std::collections::BTreeMap;

/// Collects relevant-subtree statistics across distance computations.
#[derive(Debug, Clone, Default)]
pub struct TedStats {
    /// `size -> count` of document-side relevant (keyroot) subtrees computed.
    pub relevant_by_size: BTreeMap<u32, u64>,
    /// Total number of forest-distance matrix cells filled (`Σ |Q_i|·|T_j|`).
    pub fd_cells: u64,
    /// Number of tree-distance invocations.
    pub ted_calls: u64,
}

impl TedStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one document-side relevant subtree of the given size.
    #[inline]
    pub fn record_relevant(&mut self, size: u32) {
        *self.relevant_by_size.entry(size).or_insert(0) += 1;
    }

    /// Records forest-distance matrix work.
    #[inline]
    pub fn record_cells(&mut self, cells: u64) {
        self.fd_cells += cells;
    }

    /// Records the start of a tree-distance invocation.
    #[inline]
    pub fn record_call(&mut self) {
        self.ted_calls += 1;
    }

    /// Total number of relevant subtrees recorded.
    pub fn total_relevant(&self) -> u64 {
        self.relevant_by_size.values().sum()
    }

    /// Size of the largest relevant subtree computed.
    pub fn max_relevant_size(&self) -> u32 {
        self.relevant_by_size
            .keys()
            .next_back()
            .copied()
            .unwrap_or(0)
    }

    /// The **cumulative subtree size** `css(x) = Σ_{i<=x} i·f_i` of
    /// Sec. VII-B, where `f_i` is the number of relevant subtrees of size
    /// `i` recorded.
    pub fn css(&self, x: u32) -> u64 {
        self.relevant_by_size
            .range(..=x)
            .map(|(&size, &count)| size as u64 * count)
            .sum()
    }

    /// All `(size, count)` pairs ascending — the Fig. 11 scatter series.
    pub fn series(&self) -> Vec<(u32, u64)> {
        self.relevant_by_size
            .iter()
            .map(|(&s, &c)| (s, c))
            .collect()
    }

    /// Bins counts like Fig. 11c: bin boundaries 1e1, 5e1, 1e2, 5e2, 1e3,
    /// 1e4, … — each bin labeled by its *upper* bound, covering sizes from
    /// the previous bound (inclusive) upward.
    pub fn binned(&self, bounds: &[u32]) -> Vec<(u32, u64)> {
        let mut out: Vec<(u32, u64)> = bounds.iter().map(|&b| (b, 0)).collect();
        for (&size, &count) in &self.relevant_by_size {
            // Find the first bound strictly greater than size; it belongs to
            // the previous bin per the paper's convention ("1e1 shows sizes
            // 0-9, 5e1 shows 10-49, ...").
            let idx = bounds.partition_point(|&b| b <= size);
            if idx < out.len() {
                out[idx].1 += count;
            } else if let Some(last) = out.last_mut() {
                last.1 += count;
            }
        }
        out
    }

    /// Merges another collector into this one.
    pub fn merge(&mut self, other: &TedStats) {
        for (&s, &c) in &other.relevant_by_size {
            *self.relevant_by_size.entry(s).or_insert(0) += c;
        }
        self.fd_cells += other.fd_cells;
        self.ted_calls += other.ted_calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = TedStats::new();
        s.record_relevant(1);
        s.record_relevant(1);
        s.record_relevant(5);
        assert_eq!(s.total_relevant(), 3);
        assert_eq!(s.max_relevant_size(), 5);
        assert_eq!(s.relevant_by_size[&1], 2);
    }

    #[test]
    fn css_accumulates() {
        let mut s = TedStats::new();
        s.record_relevant(1);
        s.record_relevant(1);
        s.record_relevant(3);
        s.record_relevant(10);
        assert_eq!(s.css(0), 0);
        assert_eq!(s.css(1), 2);
        assert_eq!(s.css(3), 2 + 3);
        assert_eq!(s.css(10), 2 + 3 + 10);
        assert_eq!(s.css(u32::MAX), 15);
    }

    #[test]
    fn binning_follows_paper_convention() {
        let mut s = TedStats::new();
        for size in [1, 9, 10, 49, 50, 120] {
            s.record_relevant(size);
        }
        let bins = s.binned(&[10, 50, 100, 500]);
        // sizes 0-9 -> bin "10"; 10-49 -> "50"; 50-99 -> "100"; 100-499 -> "500"
        assert_eq!(bins, vec![(10, 2), (50, 2), (100, 1), (500, 1)]);
    }

    #[test]
    fn binning_overflow_goes_to_last() {
        let mut s = TedStats::new();
        s.record_relevant(1_000_000);
        let bins = s.binned(&[10, 100]);
        assert_eq!(bins, vec![(10, 0), (100, 1)]);
    }

    #[test]
    fn merge_sums() {
        let mut a = TedStats::new();
        a.record_relevant(2);
        a.record_cells(10);
        a.record_call();
        let mut b = TedStats::new();
        b.record_relevant(2);
        b.record_relevant(4);
        b.record_cells(5);
        a.merge(&b);
        assert_eq!(a.relevant_by_size[&2], 2);
        assert_eq!(a.relevant_by_size[&4], 1);
        assert_eq!(a.fd_cells, 15);
        assert_eq!(a.ted_calls, 1);
    }
}
