//! Shape-adaptive single-path decomposition strategies (APTED family).
//!
//! Zhang–Shasha decomposes both trees along their **left** paths: the
//! relevant subtrees are the keyroot subtrees (Def. 8), and the DP cost
//! is the product of the two keyroot-subtree *areas*
//! `A_L(T) = Σ_{k ∈ keyroots(T)} |T_k|`. On left-deep trees `A_L` is
//! tiny (a left path has a single keyroot: the root), but on
//! **right-deep** trees it degenerates — every node on the right spine
//! is a keyroot, and `A_L` approaches `Σ_i i = O(n²)/n·n`.
//!
//! Pawlik & Augsten's APTED observes that the decomposition path is a
//! free choice: decomposing along the **right** path instead flips which
//! shapes are cheap. This module implements the right-path kernel by a
//! reduction instead of a second DP: the tree edit distance is invariant
//! under mirroring *both* trees (reversing every child sequence maps an
//! edit mapping to an edit mapping of equal cost), and the right-path
//! decomposition of `T` is exactly the left-path decomposition of its
//! mirror. So the right-path kernel *is* the existing, heavily-tuned
//! Zhang–Shasha DP — run over mirrored postorder arenas.
//!
//! The mirror of a postorder arena needs no tree rebuild: for a node `v`
//! of an `n`-node tree, the mirrored postorder index is
//! `mir(v) = n + 1 − pre(v)` (mirrored postorder = reversed preorder),
//! subtrees stay contiguous, sizes are preserved, and the mirrored
//! leftmost leaf is `mir(v) − size(v) + 1`. Everything is an `O(n)`
//! permutation, built here with an explicit stack (no recursion).
//!
//! [`TedKernel`] selects the strategy: `Zs` pins the left path,
//! `Strategy` pins the right path, and `Auto` (default) compares the two
//! decomposition areas of the *query* — computed once per query in
//! `QueryContext` — and picks the smaller, bounding the DP work by the
//! query shape rather than the worst case.

use std::fmt;
use std::str::FromStr;

use tasm_tree::NodeId;

/// Which TED kernel evaluates candidates — the user-facing selection.
///
/// Resolved once per query (in `QueryContext::with_kernel`) to a concrete
/// decomposition path; the per-candidate loop never re-decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TedKernel {
    /// Estimate both decomposition areas of the query and pick the
    /// smaller (left path on left-deep/balanced shapes, right path on
    /// right-deep shapes).
    #[default]
    Auto,
    /// Always the classic Zhang–Shasha left-path decomposition.
    Zs,
    /// Always the right-path (mirrored) decomposition.
    Strategy,
}

impl fmt::Display for TedKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TedKernel::Auto => "auto",
            TedKernel::Zs => "zs",
            TedKernel::Strategy => "strategy",
        })
    }
}

impl FromStr for TedKernel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(TedKernel::Auto),
            "zs" => Ok(TedKernel::Zs),
            "strategy" => Ok(TedKernel::Strategy),
            other => Err(format!(
                "unknown kernel '{other}' (expected auto, zs or strategy)"
            )),
        }
    }
}

/// The decomposition path a query resolved to (internal: the candidate
/// loop branches on this exactly once per evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DecompPath {
    /// Left-path keyroots — the classic Zhang–Shasha run.
    Left,
    /// Right-path keyroots — the Zhang–Shasha run over mirrored arenas.
    Right,
}

/// Fills `mir_of_post` with the mirror permutation of a postorder arena:
/// `mir_of_post[p − 1]` is the mirrored postorder index of the node with
/// original postorder `p`, i.e. `n + 1 − pre(p)`.
///
/// `sizes` is the postorder subtree-size array of a single well-formed
/// tree. `stack` is caller-owned scratch (grow-don't-shrink); one `(post,
/// pre)` frame per node, O(n) total.
pub(crate) fn mirror_permutation_into(
    sizes: &[u32],
    stack: &mut Vec<(u32, u32)>,
    mir_of_post: &mut Vec<u32>,
) {
    let n = sizes.len() as u32;
    debug_assert!(n >= 1, "trees are non-empty");
    debug_assert_eq!(sizes[(n - 1) as usize], n, "root size must equal n");
    mir_of_post.clear();
    mir_of_post.resize(n as usize, 0);
    stack.clear();
    stack.push((n, 1)); // the root has postorder n and preorder 1
    while let Some((p, pre)) = stack.pop() {
        mir_of_post[(p - 1) as usize] = n + 1 - pre;
        let size = sizes[(p - 1) as usize];
        // Children right to left: the rightmost child sits at p − 1; each
        // further sibling is found by skipping the previous child's
        // subtree. Preorders run left to right, so walking right to left
        // we hand out preorders from the back of the subtree's preorder
        // interval [pre + 1, pre + size − 1].
        let mut child_post = p - 1;
        let mut child_pre_end = pre + size;
        while child_post + size > p {
            let child_size = sizes[(child_post - 1) as usize];
            let child_pre = child_pre_end - child_size;
            stack.push((child_post, child_pre));
            child_pre_end = child_pre;
            child_post -= child_size;
        }
    }
}

/// Computes the Zhang–Shasha keyroots from a bare leftmost-leaf slice
/// (`lml[i]` = lml of postorder `i + 1`), ascending postorder — the
/// slice-based twin of `tasm_tree::keyroots_into` for mirrored arenas,
/// which exist only as permuted arrays, never as a `TreeView`.
///
/// `seen` is a scratch bitmap over lml values; both buffers grow but
/// never shrink.
pub(crate) fn keyroots_from_lml_into(lml: &[u32], seen: &mut Vec<bool>, out: &mut Vec<NodeId>) {
    let n = lml.len();
    seen.clear();
    seen.resize(n + 1, false);
    out.clear();
    // A node is a keyroot iff no later node shares its lml.
    for post in (1..=n as u32).rev() {
        let l = lml[(post - 1) as usize] as usize;
        if !seen[l] {
            seen[l] = true;
            out.push(NodeId::new(post));
        }
    }
    out.reverse();
}

/// The decomposition *area* `Σ_k (post(k) − lml(k) + 1)` of a keyroot
/// set over its lml slice — the per-document factor of the Zhang–Shasha
/// cost, used by the `Auto` estimator to compare paths.
pub(crate) fn keyroot_area(keyroots: &[NodeId], lml: &[u32]) -> u64 {
    keyroots
        .iter()
        .map(|&k| u64::from(k.post() - lml[k.index()] + 1))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_tree::{bracket, LabelDict, Tree};

    fn parse(s: &str) -> Tree {
        let mut d = LabelDict::new();
        bracket::parse(s, &mut d).unwrap()
    }

    /// Reference mirror permutation via an O(n²) preorder recomputation.
    fn mirror_reference(t: &Tree) -> Vec<u32> {
        let n = t.len() as u32;
        // pre(v) = 1 + #ancestors(v) + #nodes-left-of(v).
        t.nodes()
            .map(|v| {
                let pre = 1
                    + t.nodes().filter(|&a| t.is_ancestor(a, v)).count() as u32
                    + t.nodes().filter(|&a| t.is_left_of(a, v)).count() as u32;
                n + 1 - pre
            })
            .collect()
    }

    #[test]
    fn mirror_permutation_matches_reference() {
        for s in [
            "{a}",
            "{a{b}}",
            "{a{b}{c}}",
            "{x{a{b}{d}}{a{b}{c}}}",
            "{a{b{c{d}}}}",
            "{r{a}{b}{c}{d}}",
            "{r{a{x}{y}}{b}{c{z}}}",
            "{a{b{c}{d}{e}}{f{g{h}}}}",
        ] {
            let t = parse(s);
            let mut stack = Vec::new();
            let mut mir = Vec::new();
            mirror_permutation_into(t.sizes(), &mut stack, &mut mir);
            assert_eq!(mir, mirror_reference(&t), "tree {s}");
            // A permutation of 1..=n, with the root fixed at n.
            let mut sorted = mir.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (1..=t.len() as u32).collect::<Vec<_>>());
            assert_eq!(mir[t.len() - 1], t.len() as u32);
        }
    }

    #[test]
    fn mirrored_lml_spans_subtrees() {
        // In mirror coordinates the subtree of v spans
        // [mir(v) − size(v) + 1, mir(v)] — check it contains exactly the
        // mirrored descendants.
        let t = parse("{x{a{b}{d}}{a{b}{c}}}");
        let mut stack = Vec::new();
        let mut mir = Vec::new();
        mirror_permutation_into(t.sizes(), &mut stack, &mut mir);
        for v in t.nodes() {
            let j = mir[v.index()];
            let lo = j - t.size(v) + 1;
            for w in t.nodes() {
                let inside = mir[w.index()] >= lo && mir[w.index()] <= j;
                let descendant = w == v || t.is_ancestor(v, w);
                assert_eq!(inside, descendant, "v={v:?} w={w:?}");
            }
        }
    }

    #[test]
    fn right_path_keyroots_flip_chain_shapes() {
        // Left chain a(b(c(d))): a single left keyroot (area 4), but in
        // mirror coordinates it is a right chain: every node a keyroot.
        let chain = parse("{a{b{c{d}}}}");
        let mut stack = Vec::new();
        let mut mir = Vec::new();
        mirror_permutation_into(chain.sizes(), &mut stack, &mut mir);
        // A unary chain is its own mirror: identical permutation.
        assert_eq!(mir, vec![1, 2, 3, 4]);

        // A genuinely right-deep tree: r(l, m(l, m(l, ...))).
        let right_comb = parse("{r{l}{m{l}{m{l}{m}}}}");
        let n = right_comb.len();
        let left_area: u64 = tasm_tree::keyroot_sizes(&right_comb)
            .iter()
            .map(|&s| u64::from(s))
            .sum();
        mirror_permutation_into(right_comb.sizes(), &mut stack, &mut mir);
        let mut mir_lml = vec![0u32; n];
        for p in 1..=n {
            let j = mir[p - 1];
            mir_lml[(j - 1) as usize] = j - right_comb.sizes()[p - 1] + 1;
        }
        let mut seen = Vec::new();
        let mut kr = Vec::new();
        keyroots_from_lml_into(&mir_lml, &mut seen, &mut kr);
        let right_area = keyroot_area(&kr, &mir_lml);
        // The mirrored comb is left-deep: the right path must be cheaper.
        assert!(
            right_area < left_area,
            "right {right_area} vs left {left_area}"
        );
    }

    #[test]
    fn kernel_parse_and_display_round_trip() {
        for k in [TedKernel::Auto, TedKernel::Zs, TedKernel::Strategy] {
            assert_eq!(k.to_string().parse::<TedKernel>().unwrap(), k);
        }
        assert!("apted".parse::<TedKernel>().is_err());
        assert_eq!(TedKernel::default(), TedKernel::Auto);
    }
}
