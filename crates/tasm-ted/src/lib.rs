//! Tree edit distance for TASM (Top-k Approximate Subtree Matching).
//!
//! The distance substrate of the TASM reproduction (Augsten, Böhlen,
//! Barbosa, Palpanas — ICDE 2010): the canonical **tree edit distance**
//! (Tai [8]; Zhang & Shasha [9]) with the paper's cost model (Def. 4),
//! computed by the Zhang–Shasha dynamic program the paper builds on
//! (Sec. IV-E), including the full *tree distance matrix* whose last row
//! drives TASM-dynamic.
//!
//! # Quick start
//!
//! ```
//! use tasm_tree::{bracket, LabelDict};
//! use tasm_ted::{ted, ted_full, Cost, UnitCost};
//!
//! let mut dict = LabelDict::new();
//! let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();            // query G (Fig. 2)
//! let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap(); // document H
//! assert_eq!(ted(&g, &h, &UnitCost), Cost::from_natural(4));          // Fig. 3
//!
//! // Distances from G to *every* subtree of H (Fig. 3, last row):
//! let td = ted_full(&g, &h, &UnitCost, None);
//! let row: Vec<u64> = td.query_row()[1..].iter().map(|c| c.floor_natural()).collect();
//! assert_eq!(row, vec![2, 3, 1, 2, 2, 0, 4]);
//! ```

// `unsafe` is denied crate-wide and allowed only in the two modules that
// implement the debug-asserted unchecked DP-matrix access (`matrix`,
// `zhang_shasha`); everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cascade;
mod cost;
pub mod filters;
mod mapping;
mod matrix;
pub mod oracle;
pub mod sed;
pub mod stats;
mod strategy;
mod workspace;
mod zhang_shasha;

pub use cascade::{CascadeDecision, CascadeScratch, LowerBoundCascade};
pub use cost::{rename_cost, Cost, CostModel, FanoutWeighted, NodeCosts, PerLabelCost, UnitCost};
pub use mapping::{edit_script, validate_mapping, EditOp, EditScript};
pub use matrix::Matrix;
pub use stats::TedStats;
pub use strategy::TedKernel;
pub use workspace::{QueryContext, TedWorkspace};
pub use zhang_shasha::{
    ted, ted_full, ted_full_with_costs, ted_full_with_workspace, ted_row_with_workspace,
    ted_view_with_workspace, ted_with_kernel, ted_with_workspace, TreeDistances, TreeDistancesView,
};
