//! String (sequence) edit distance under the same cost semantics as the
//! tree edit distance (Def. 4).
//!
//! Used in two roles:
//!
//! * a cheap lower-bound filter: the edit distance between the postorder
//!   label sequences of two trees never exceeds the tree edit distance;
//! * a test oracle: on *path* trees (every node has at most one child) the
//!   tree edit distance equals the string edit distance of the label
//!   sequences, which gives an independent check of the Zhang–Shasha
//!   implementation.

use crate::cost::Cost;
use tasm_tree::LabelId;

/// Weighted string edit distance between two label sequences.
///
/// `cost_a[i]` / `cost_b[j]` are the natural-unit node costs; deletion and
/// insertion cost the full node cost, substitution costs the half-sum when
/// labels differ and 0 otherwise — identical to the tree alignment costs.
///
/// O(|a|·|b|) time, O(min) space (two rows).
#[allow(clippy::needless_range_loop)] // DP indices mirror the recurrence
pub fn string_edit_distance(a: &[LabelId], cost_a: &[u64], b: &[LabelId], cost_b: &[u64]) -> Cost {
    assert_eq!(a.len(), cost_a.len());
    assert_eq!(b.len(), cost_b.len());
    let (m, n) = (a.len(), b.len());
    let mut prev: Vec<Cost> = Vec::with_capacity(n + 1);
    prev.push(Cost::ZERO);
    for j in 0..n {
        let last = *prev.last().expect("non-empty");
        prev.push(last + Cost::from_natural(cost_b[j]));
    }
    let mut cur: Vec<Cost> = vec![Cost::ZERO; n + 1];
    for i in 0..m {
        cur[0] = prev[0] + Cost::from_natural(cost_a[i]);
        for j in 0..n {
            let del = prev[j + 1] + Cost::from_natural(cost_a[i]);
            let ins = cur[j] + Cost::from_natural(cost_b[j]);
            // Branchless mismatch test (labels are dense u32 ids).
            let sub =
                prev[j] + Cost::from_halves((cost_a[i] + cost_b[j]) * u64::from(a[i] != b[j]));
            cur[j + 1] = del.min(ins).min(sub);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// Unit-cost string edit distance (Levenshtein) over label sequences.
pub fn levenshtein(a: &[LabelId], b: &[LabelId]) -> Cost {
    string_edit_distance(a, &vec![1; a.len()], b, &vec![1; b.len()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(s: &str) -> Vec<LabelId> {
        s.bytes().map(|b| LabelId(b as u32)).collect()
    }

    #[test]
    fn classic_levenshtein_cases() {
        assert_eq!(
            levenshtein(&ids("kitten"), &ids("sitting")),
            Cost::from_natural(3)
        );
        assert_eq!(levenshtein(&ids("abc"), &ids("abc")), Cost::ZERO);
        assert_eq!(levenshtein(&ids(""), &ids("abc")), Cost::from_natural(3));
        assert_eq!(levenshtein(&ids("abc"), &ids("")), Cost::from_natural(3));
        assert_eq!(
            levenshtein(&ids("flaw"), &ids("lawn")),
            Cost::from_natural(2)
        );
    }

    #[test]
    fn weighted_substitution_is_half_sum() {
        let a = ids("a");
        let b = ids("b");
        // cst(a)=3, cst(b)=1: substitute = 2.0 beats delete+insert = 4.0.
        assert_eq!(
            string_edit_distance(&a, &[3], &b, &[1]),
            Cost::from_natural(2)
        );
        // cst(a)=9: substitute = 5.0, delete+insert = 10.0 -> still substitute.
        assert_eq!(
            string_edit_distance(&a, &[9], &b, &[1]),
            Cost::from_natural(5)
        );
    }

    #[test]
    fn empty_vs_empty() {
        assert_eq!(levenshtein(&[], &[]), Cost::ZERO);
    }

    #[test]
    fn symmetric() {
        let (a, b) = (ids("abcdef"), ids("azced"));
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }
}
