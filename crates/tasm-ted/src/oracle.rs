//! A reference tree edit distance implementation used as a test oracle.
//!
//! Independent of the Zhang–Shasha module: a direct memoized recursion on
//! *postorder-interval forests* following the classic forest decomposition
//! (delete rightmost root / insert rightmost root / match rightmost trees —
//! the same rules as Fig. 1 of the paper, evaluated top-down). It is
//! asymptotically slower (`O(m²n²)` with hash-map memoization) but short
//! enough to audit by eye, which is what an oracle is for.
//!
//! Every forest that arises is a contiguous postorder interval `[lo, hi]`
//! of the original tree: removing the rightmost root keeps the interval
//! contiguous (`[lo, hi-1]`), and removing the rightmost tree yields
//! `[lo, lml(hi)-1]`.

use std::collections::HashMap;

use crate::cost::{rename_cost, Cost, CostModel, NodeCosts};
use tasm_tree::{NodeId, Tree};

/// An inclusive postorder interval; `lo > hi` encodes the empty forest.
type Interval = (u32, u32);

struct Oracle<'a> {
    q: &'a Tree,
    t: &'a Tree,
    cq: NodeCosts,
    ct: NodeCosts,
    memo: HashMap<(Interval, Interval), Cost>,
}

impl Oracle<'_> {
    fn forest_cost_q(&self, (lo, hi): Interval) -> Cost {
        let mut c = Cost::ZERO;
        for i in lo..=hi {
            c += self.cq.del_ins(i);
        }
        c
    }

    fn forest_cost_t(&self, (lo, hi): Interval) -> Cost {
        let mut c = Cost::ZERO;
        for j in lo..=hi {
            c += self.ct.del_ins(j);
        }
        c
    }

    fn dist(&mut self, f: Interval, g: Interval) -> Cost {
        let f_empty = f.0 > f.1;
        let g_empty = g.0 > g.1;
        if f_empty && g_empty {
            return Cost::ZERO;
        }
        if f_empty {
            return self.forest_cost_t(g);
        }
        if g_empty {
            return self.forest_cost_q(f);
        }
        if let Some(&c) = self.memo.get(&(f, g)) {
            return c;
        }
        let v = NodeId::new(f.1); // rightmost root of F
        let w = NodeId::new(g.1); // rightmost root of G
        let lv = self.q.lml(v).post();
        let lw = self.t.lml(w).post();

        // (a) delete v.
        let del = self.dist((f.0, f.1 - 1), g) + self.cq.del_ins(f.1);
        // (b) insert w.
        let ins = self.dist(f, (g.0, g.1 - 1)) + self.ct.del_ins(g.1);
        // (c) match the rightmost trees T(v) and T(w): align v with w,
        // their child forests with each other, and the remainders.
        let children = self.dist((lv, f.1 - 1), (lw, g.1 - 1));
        let rest = self.dist((f.0, lv.saturating_sub(1)), (g.0, lw.saturating_sub(1)));
        let mat = children
            + rest
            + rename_cost(
                self.q.label(v),
                self.cq.natural(f.1),
                self.t.label(w),
                self.ct.natural(g.1),
            );

        let best = del.min(ins).min(mat);
        self.memo.insert((f, g), best);
        best
    }
}

/// Tree edit distance by memoized forest recursion. Exponentially many
/// intervals never arise; still, use only for small trees (≲ a few hundred
/// nodes).
pub fn ted_oracle(query: &Tree, doc: &Tree, model: &dyn CostModel) -> Cost {
    let mut o = Oracle {
        q: query,
        t: doc,
        cq: NodeCosts::compute(query.view(), model),
        ct: NodeCosts::compute(doc.view(), model),
        memo: HashMap::new(),
    };
    o.dist((1, query.len() as u32), (1, doc.len() as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{PerLabelCost, UnitCost};
    use crate::zhang_shasha::ted;
    use tasm_tree::{bracket, LabelDict};

    fn both(q: &str, t: &str) -> (Cost, Cost) {
        let mut d = LabelDict::new();
        let q = bracket::parse(q, &mut d).unwrap();
        let t = bracket::parse(t, &mut d).unwrap();
        (ted_oracle(&q, &t, &UnitCost), ted(&q, &t, &UnitCost))
    }

    #[test]
    fn oracle_matches_paper_example() {
        let (o, z) = both("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}");
        assert_eq!(o, Cost::from_natural(4));
        assert_eq!(o, z);
    }

    #[test]
    fn oracle_agrees_with_zhang_shasha_on_fixtures() {
        let cases = [
            ("{a}", "{a}"),
            ("{a}", "{b}"),
            ("{a{b}}", "{a}"),
            ("{a{b{c{d}}}}", "{a{b}{c}{d}}"),
            ("{a{b}{c}}", "{a{c}{b}}"),
            ("{r{a{x}{y}}{b}{c{z}}}", "{r{a{x}}{c{z}{y}}}"),
            ("{a{b{c}{d}{e}}{f{g{h}}}}", "{a{f{g{h}}}{b{c}{d}{e}}}"),
            ("{a{a{a}}{a}}", "{a{a}{a{a}}}"),
        ];
        for (qs, ts) in cases {
            let (o, z) = both(qs, ts);
            assert_eq!(o, z, "oracle vs ZS for {qs} / {ts}");
        }
    }

    #[test]
    fn oracle_with_weighted_costs() {
        let mut d = LabelDict::new();
        let q = bracket::parse("{a{b}}", &mut d).unwrap();
        let t = bracket::parse("{x{b}{c}}", &mut d).unwrap();
        let a = d.get("a").unwrap();
        let model = PerLabelCost::new(1).with(a, 3);
        // rename a->x = (3+1)/2 = 2, insert c = 1 => 3.
        assert_eq!(ted_oracle(&q, &t, &model), Cost::from_natural(3));
        assert_eq!(ted(&q, &t, &model), Cost::from_natural(3));
    }
}
