//! The Zhang–Shasha tree edit distance [9] (Sec. IV-E of the paper).
//!
//! The algorithm decomposes both trees into their *relevant subtrees*
//! (keyroot subtrees, Def. 8) and, for each pair of keyroots, fills a
//! forest-distance table over the prefixes (Def. 7) of the two keyroot
//! subtrees. Distances between prefixes that are themselves trees are
//! persisted into the **tree distance matrix** `td` (Fig. 3), whose entry
//! `td[i][j]` is the edit distance between subtree `Q_i` and subtree `T_j`.
//!
//! The last row of `td` holds the distance between the whole query and
//! *every* subtree of the document — the observation TASM-dynamic is built
//! on (Sec. IV-F).
//!
//! Complexity for `|Q| = m`, `|T| = n`: `O(m² n²)` worst-case time
//! (`O(m n · min(depth, leaves)²)` in the classic tighter bound) and
//! `O(m n)` space. For shallow-and-wide XML this is near `O(m n)` time,
//! which is why the paper adopts it.

// The DP inner loop uses the debug-asserted unchecked matrix accessors;
// the index bounds are established once per keyroot pair (see the SAFETY
// comment in `fill_td`).
#![allow(unsafe_code)]

use crate::cost::{rename_cost, Cost, CostModel, NodeCosts};
use crate::matrix::Matrix;
use crate::stats::TedStats;
use crate::strategy::DecompPath;
use crate::workspace::{QueryContext, TedWorkspace};
use tasm_tree::{keyroots, LabelId, NodeId, Tree, TreeView};

/// The tree distance matrix `td` plus everything needed to interpret it.
///
/// Row `i`, column `j` (1-based, as in the paper's Fig. 3) is
/// `δ(Q_i, T_j)`; row/column 0 are unused padding so indexes match
/// postorder numbers.
#[derive(Debug, Clone)]
pub struct TreeDistances {
    td: Matrix<Cost>,
}

impl TreeDistances {
    /// A borrowed view with the same accessors.
    pub fn view(&self) -> TreeDistancesView<'_> {
        TreeDistancesView { td: &self.td }
    }

    /// `δ(Q_i, T_j)` for subtree roots given by postorder numbers.
    #[inline]
    pub fn subtree_distance(&self, qi: NodeId, tj: NodeId) -> Cost {
        self.view().subtree_distance(qi, tj)
    }

    /// The distance between the whole query and the whole document.
    pub fn distance(&self) -> Cost {
        self.view().distance()
    }

    /// The last row: `δ(Q, T_j)` for every document subtree `T_j`
    /// (index 0 is padding). This is what TASM-dynamic ranks.
    pub fn query_row(&self) -> &[Cost] {
        self.view().query_row()
    }

    /// Number of document nodes `n` (columns minus padding).
    pub fn doc_len(&self) -> usize {
        self.view().doc_len()
    }
}

/// A borrowed tree distance matrix, as produced by the workspace-reusing
/// entry point [`ted_full_with_workspace`]. Same interpretation as
/// [`TreeDistances`], but the storage belongs to the [`TedWorkspace`]
/// (no allocation, invalidated by the next run).
#[derive(Debug, Clone, Copy)]
pub struct TreeDistancesView<'a> {
    td: &'a Matrix<Cost>,
}

impl<'a> TreeDistancesView<'a> {
    /// `δ(Q_i, T_j)` for subtree roots given by postorder numbers.
    #[inline]
    pub fn subtree_distance(&self, qi: NodeId, tj: NodeId) -> Cost {
        *self.td.get(qi.post() as usize, tj.post() as usize)
    }

    /// The distance between the whole query and the whole document.
    pub fn distance(&self) -> Cost {
        *self.td.get(self.td.rows() - 1, self.td.cols() - 1)
    }

    /// The last row: `δ(Q, T_j)` for every document subtree `T_j`
    /// (index 0 is padding; the borrow outlives the view itself).
    pub fn query_row(&self) -> &'a [Cost] {
        self.td.row(self.td.rows() - 1)
    }

    /// Number of document nodes `n` (columns minus padding).
    pub fn doc_len(&self) -> usize {
        self.td.cols() - 1
    }
}

/// Computes the tree edit distance `δ(Q, T)` (Def. 6).
///
/// # Examples
///
/// The paper's running example (Figs. 2 and 3): `δ(G, H) = 4` under unit
/// costs.
///
/// ```
/// use tasm_tree::{bracket, LabelDict};
/// use tasm_ted::{ted, Cost, UnitCost};
///
/// let mut dict = LabelDict::new();
/// let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// assert_eq!(ted(&g, &h, &UnitCost), Cost::from_natural(4));
/// ```
pub fn ted(query: &Tree, doc: &Tree, model: &dyn CostModel) -> Cost {
    ted_full(query, doc, model, None).distance()
}

/// Computes the full tree distance matrix between `query` and `doc`
/// (all pairwise subtree distances).
///
/// If `stats` is provided, each document-side relevant subtree and the
/// forest-matrix work are recorded (Sec. VII-B instrumentation).
pub fn ted_full(
    query: &Tree,
    doc: &Tree,
    model: &dyn CostModel,
    stats: Option<&mut TedStats>,
) -> TreeDistances {
    let cq = NodeCosts::compute(query.view(), model);
    let ct = NodeCosts::compute(doc.view(), model);
    ted_full_with_costs(query, &cq, doc, &ct, stats)
}

/// As [`ted_full`], but with precomputed node costs (hot path for
/// TASM-dynamic invoked many times with the same query).
///
/// Allocates fresh matrices and keyroot decompositions per call; the
/// allocation-free path is [`ted_full_with_workspace`].
pub fn ted_full_with_costs(
    query: &Tree,
    query_costs: &NodeCosts,
    doc: &Tree,
    doc_costs: &NodeCosts,
    stats: Option<&mut TedStats>,
) -> TreeDistances {
    let m = query.len();
    let n = doc.len();
    let kq = keyroots(query);
    let kt = keyroots(doc);
    let q_lml: Vec<u32> = query.nodes().map(|id| query.lml(id).post()).collect();
    let t_lml: Vec<u32> = doc.nodes().map(|id| doc.lml(id).post()).collect();
    let q_del: Vec<Cost> = query
        .nodes()
        .map(|id| query_costs.del_ins(id.post()))
        .collect();
    let t_del: Vec<Cost> = doc.nodes().map(|id| doc_costs.del_ins(id.post())).collect();
    // td[i][j] = δ(Q_i, T_j); row/col 0 are padding so indexes are postorder.
    let mut td: Matrix<Cost> = Matrix::new(m + 1, n + 1);
    let mut fd: Matrix<Cost> = Matrix::new(m + 1, n + 1);
    fill_td(
        query.labels(),
        &kq,
        &q_lml,
        &q_del,
        query_costs.naturals(),
        doc.labels(),
        &kt,
        &t_lml,
        &t_del,
        doc_costs.naturals(),
        &mut td,
        &mut fd,
        stats,
    );
    TreeDistances { td }
}

/// The zero-allocation-steady-state entry point: computes the tree
/// distance matrix between the context's query and `doc` inside the
/// caller's [`TedWorkspace`].
///
/// The query-side decomposition comes precomputed from `ctx`
/// (once per query); the document-side keyroots, costs and both DP
/// matrices live in `ws` and are reused across calls
/// (grow-don't-shrink). After the workspace has seen its largest
/// document — or after [`TedWorkspace::reserve`] — a call performs **no
/// heap allocation**.
pub fn ted_full_with_workspace<'w>(
    ctx: &QueryContext<'_>,
    doc: &Tree,
    ws: &'w mut TedWorkspace,
    stats: Option<&mut TedStats>,
) -> TreeDistancesView<'w> {
    ted_view_with_workspace(ctx, doc.view(), ws, stats)
}

/// As [`ted_full_with_workspace`], but over a borrowed [`TreeView`] of
/// the document — the zero-copy entry point of the scan-engine
/// evaluation layer. A proper subtree of a ring-buffer candidate is a
/// contiguous slice of the candidate arena, so the DP runs directly on
/// that slice; no scratch-tree copy is made for any evaluated subtree.
pub fn ted_view_with_workspace<'w>(
    ctx: &QueryContext<'_>,
    doc: TreeView<'_>,
    ws: &'w mut TedWorkspace,
    stats: Option<&mut TedStats>,
) -> TreeDistancesView<'w> {
    let m = ctx.len();
    let n = doc.len();
    ws.prepare(doc, ctx.model());
    // Stale reset: every cell the DP reads is written first — `fd` border
    // and interior are initialized per keyroot pair, and `td[i][j]` reads
    // in the forest case refer to pairs persisted earlier in this same
    // run (the Zhang–Shasha keyroot-ordering invariant) — so the
    // O(m·n) zero-fill is skipped along with the allocation.
    ws.td.reset_stale(m + 1, n + 1);
    ws.fd.reset_stale(m + 1, n + 1);
    fill_td(
        ctx.query().labels(),
        ctx.keyroots(),
        ctx.lml_array(),
        ctx.del_array(),
        ctx.costs().naturals(),
        doc.labels(),
        &ws.doc_keyroots,
        &ws.doc_lml,
        &ws.doc_del_ins,
        ws.doc_costs.naturals(),
        &mut ws.td,
        &mut ws.fd,
        stats,
    );
    TreeDistancesView { td: &ws.td }
}

/// The row-level, kernel-dispatching seam of the TASM evaluation layer:
/// computes `δ(Q, T_j)` for **every** subtree `T_j` of `doc` — the last
/// row of the tree distance matrix, indexed by original document
/// postorder with index 0 as padding — using whichever decomposition
/// path the context resolved to.
///
/// * Left path: the classic [`ted_view_with_workspace`] run; the row is
///   borrowed straight from the `td` matrix.
/// * Right path: the same Zhang–Shasha DP over the *mirrored* arenas
///   (tree edit distance is invariant under mirroring both trees, and a
///   mirrored arena is just an `O(n)` permutation — see
///   [`TedKernel`](crate::TedKernel)), then the query row is permuted
///   back to original postorder into the workspace's `row_out` buffer.
///
/// Zero heap allocation once the workspace capacity covers the largest
/// candidate (or after [`TedWorkspace::reserve`] /
/// [`TedWorkspace::reserve_mirror`]).
pub fn ted_row_with_workspace<'w>(
    ctx: &QueryContext<'_>,
    doc: TreeView<'_>,
    ws: &'w mut TedWorkspace,
    stats: Option<&mut TedStats>,
) -> &'w [Cost] {
    match ctx.path() {
        DecompPath::Left => ted_view_with_workspace(ctx, doc, ws, stats).query_row(),
        DecompPath::Right => {
            let m = ctx.len();
            let n = doc.len();
            ws.prepare_mirror(doc, ctx.model());
            ws.td.reset_stale(m + 1, n + 1);
            ws.fd.reset_stale(m + 1, n + 1);
            let mq = ctx.mirror().expect("right path carries a mirrored query");
            fill_td(
                &mq.labels,
                &mq.keyroots,
                &mq.lml,
                &mq.del,
                &mq.nat,
                &ws.mir_labels,
                &ws.mir_keyroots,
                &ws.mir_lml,
                &ws.mir_del,
                &ws.mir_nat,
                &mut ws.td,
                &mut ws.fd,
                stats,
            );
            // td[m][mir(p)] is δ(mirror(Q), mirror(T)_mir(p)) =
            // δ(Q, T_p): permute the row back to original postorder.
            let row = ws.td.row(m);
            ws.row_out.clear();
            ws.row_out.push(Cost::ZERO); // index 0 is padding
            ws.row_out
                .extend(ws.mir_of_post.iter().map(|&j| row[j as usize]));
            &ws.row_out
        }
    }
}

/// As [`ted`], but with an explicit [`TedKernel`](crate::TedKernel)
/// selection — the entry point the differential and property suites use
/// to pin a decomposition path and prove `zs == strategy` equality.
pub fn ted_with_kernel(
    query: &Tree,
    doc: &Tree,
    model: &dyn CostModel,
    kernel: crate::TedKernel,
) -> Cost {
    let ctx = QueryContext::with_kernel(query, model, kernel);
    let mut ws = TedWorkspace::new();
    let row = ted_row_with_workspace(&ctx, doc.view(), &mut ws, None);
    row[doc.len()]
}

/// As [`ted`], but reusing the caller's [`TedWorkspace`] for the DP
/// matrices and document-side buffers. For many distances against the
/// same query, hoist a [`QueryContext`] and use
/// [`ted_full_with_workspace`] instead.
pub fn ted_with_workspace(
    query: &Tree,
    doc: &Tree,
    model: &dyn CostModel,
    ws: &mut TedWorkspace,
) -> Cost {
    let ctx = QueryContext::new(query, model);
    ted_full_with_workspace(&ctx, doc, ws, None).distance()
}

/// The Zhang–Shasha dynamic program over prepared inputs (the shared
/// core of all public entry points).
///
/// Fully symmetric over plain postorder slices, so the same code runs
/// both decomposition paths: the left path passes the original arenas,
/// the right path passes the mirrored ones (mirrored postorder arrays
/// are postorder arrays of the mirrored trees, nothing else changes).
///
/// `td`/`fd` must be `(m+1) × (n+1)`; their prior content is irrelevant
/// (see the stale-reset note in [`ted_full_with_workspace`]).
#[allow(clippy::too_many_arguments)]
fn fill_td(
    q_labels: &[LabelId],
    kq: &[NodeId],
    q_lml: &[u32],
    q_del: &[Cost],
    q_nat: &[u64],
    t_labels: &[LabelId],
    kt: &[NodeId],
    t_lml: &[u32],
    t_del: &[Cost],
    t_nat: &[u64],
    td: &mut Matrix<Cost>,
    fd: &mut Matrix<Cost>,
    stats: Option<&mut TedStats>,
) {
    let m = q_labels.len();
    let n = t_labels.len();
    debug_assert_eq!(q_nat.len(), m);
    debug_assert_eq!(t_nat.len(), n);
    assert_eq!(q_del.len(), m, "query del/ins cost array length mismatch");
    assert_eq!(t_del.len(), n, "del/ins cost array length mismatch");
    // Keyroots are ascending and end at the root, so every postorder
    // index visited below is bounded by m (query side) / n (doc side).
    debug_assert_eq!(kq.last().map(|k| k.post() as usize), Some(m));
    debug_assert_eq!(kt.last().map(|k| k.post() as usize), Some(n));

    // Memory-safety guard for the unchecked matrix access below (kept in
    // release builds; O(m + n) against the O(|kq|·|kt|·m·n) DP). Every
    // index is derived from `lml` values, which for any *range-valid*
    // encoding (1 <= lml(i) <= i, i.e. 1 <= size(i) <= i) stay inside the
    // (m+1) × (n+1) matrices — so a structurally inconsistent tree built
    // via the debug-assert-only unchecked constructors yields a wrong
    // distance or this panic, never out-of-bounds access.
    assert_eq!(q_lml.len(), m, "query lml array length mismatch");
    assert_eq!(t_lml.len(), n, "document lml array length mismatch");
    assert_eq!((td.rows(), td.cols()), (m + 1, n + 1));
    assert_eq!((fd.rows(), fd.cols()), (m + 1, n + 1));
    for (idx, &l) in q_lml.iter().enumerate() {
        assert!(
            l >= 1 && l as usize <= idx + 1,
            "invalid query lml at postorder {}",
            idx + 1
        );
    }
    for (idx, &l) in t_lml.iter().enumerate() {
        assert!(
            l >= 1 && l as usize <= idx + 1,
            "invalid document lml at postorder {}",
            idx + 1
        );
    }

    if let Some(s) = stats {
        s.record_call();
        // Keyroot subtree sizes are recoverable from the lml arrays:
        // size(k) = post(k) − lml(k) + 1.
        for &k in kt {
            s.record_relevant(k.post() - t_lml[k.index()] + 1);
        }
        let qwork: u64 = kq
            .iter()
            .map(|&k| u64::from(k.post() - q_lml[k.index()] + 1))
            .sum();
        let twork: u64 = kt
            .iter()
            .map(|&k| u64::from(k.post() - t_lml[k.index()] + 1))
            .sum();
        s.record_cells(qwork * twork);
    }

    // The padding cell of the exposed query row (`query_row()[0]`) is
    // never written by the DP; pin it so the stale-reset workspace path
    // exposes the same content as the zero-filled fresh path.
    td.set(m, 0, Cost::ZERO);

    for &q_key in kq {
        let lq = q_lml[q_key.index()] as usize; // leftmost leaf of Q_kq
        let q_hi = q_key.post() as usize;
        for &t_key in kt {
            let lt = t_lml[t_key.index()] as usize;
            let t_hi = t_key.post() as usize;

            // Forest distance table, absolute-indexed: fd[i][j] is the
            // distance between pfx(Q_kq, i) and pfx(T_kt, j), where
            // row/col `lq-1` / `lt-1` represent the empty forest. Only
            // the rectangle of the current pair is touched.
            //
            // SAFETY (for the unchecked matrix access): keyroots come
            // from `keyroots`/`keyroots_into` over the same trees at
            // both (private) call sites, so q_key/t_key posts are in
            // [1, m] / [1, n]; the release-mode guard above pins every
            // lml/size-derived index (lq, lqi, lt, ltj) to
            // 1 <= lq <= m and 1 <= lt <= n. Hence all row indices are
            // in [0, m] < rows and all column indices in [0, n] < cols
            // of the asserted (m+1) × (n+1) matrices.
            unsafe {
                // Empty-vs-empty.
                fd.set_unchecked(lq - 1, lt - 1, Cost::ZERO);
                // First column: delete all query prefix nodes.
                for i in lq..=q_hi {
                    let v = *fd.get_unchecked(i - 1, lt - 1) + q_del[i - 1];
                    fd.set_unchecked(i, lt - 1, v);
                }
                // First row: insert all document prefix nodes.
                for j in lt..=t_hi {
                    let v = *fd.get_unchecked(lq - 1, j - 1) + t_del[j - 1];
                    fd.set_unchecked(lq - 1, j, v);
                }

                for i in lq..=q_hi {
                    let lqi = q_lml[i - 1] as usize;
                    let del_i = q_del[i - 1];
                    if lqi == lq {
                        // Q-prefix is a whole subtree: cells split on
                        // whether the T-prefix is one too.
                        let q_label = q_labels[i - 1];
                        let q_nat_i = q_nat[i - 1];
                        for j in lt..=t_hi {
                            let ltj = t_lml[j - 1] as usize;
                            let del = *fd.get_unchecked(i - 1, j) + del_i;
                            let ins = *fd.get_unchecked(i, j - 1) + t_del[j - 1];
                            if ltj == lt {
                                // Both prefixes are whole subtrees: the
                                // match case is a rename, and the value
                                // is a tree distance.
                                let ren = *fd.get_unchecked(i - 1, j - 1)
                                    + rename_cost(q_label, q_nat_i, t_labels[j - 1], t_nat[j - 1]);
                                let v = del.min(ins).min(ren);
                                fd.set_unchecked(i, j, v);
                                td.set_unchecked(i, j, v);
                            } else {
                                let sub =
                                    *fd.get_unchecked(lq - 1, ltj - 1) + *td.get_unchecked(i, j);
                                let v = del.min(ins).min(sub);
                                fd.set_unchecked(i, j, v);
                            }
                        }
                    } else {
                        // General forests throughout this row: match the
                        // whole subtrees via the persisted tree distance.
                        for j in lt..=t_hi {
                            let ltj = t_lml[j - 1] as usize;
                            let del = *fd.get_unchecked(i - 1, j) + del_i;
                            let ins = *fd.get_unchecked(i, j - 1) + t_del[j - 1];
                            let sub = *fd.get_unchecked(lqi - 1, ltj - 1) + *td.get_unchecked(i, j);
                            let v = del.min(ins).min(sub);
                            fd.set_unchecked(i, j, v);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use tasm_tree::{bracket, LabelDict};

    fn parse2(q: &str, t: &str) -> (Tree, Tree) {
        let mut d = LabelDict::new();
        let q = bracket::parse(q, &mut d).unwrap();
        let t = bracket::parse(t, &mut d).unwrap();
        (q, t)
    }

    fn unit(q: &str, t: &str) -> u64 {
        let (q, t) = parse2(q, t);
        let c = ted(&q, &t, &UnitCost);
        assert_eq!(c.halves() % 2, 0, "unit-cost distance must be integral");
        c.floor_natural()
    }

    #[test]
    fn identical_trees_have_distance_zero() {
        assert_eq!(unit("{a{b}{c}}", "{a{b}{c}}"), 0);
        assert_eq!(unit("{a}", "{a}"), 0);
    }

    #[test]
    fn single_rename() {
        assert_eq!(unit("{a}", "{b}"), 1);
        assert_eq!(unit("{a{b}{c}}", "{a{b}{x}}"), 1);
        assert_eq!(unit("{a{b}{c}}", "{x{b}{c}}"), 1);
    }

    #[test]
    fn single_insert_or_delete() {
        assert_eq!(unit("{a{b}}", "{a{b}{c}}"), 1); // insert leaf c
        assert_eq!(unit("{a{b}{c}}", "{a{b}}"), 1); // delete leaf c
        assert_eq!(unit("{a{c}}", "{a{b{c}}}"), 1); // insert inner b
    }

    #[test]
    fn paper_example_distance_is_4() {
        // Fig. 3: td[G3][H7] = 4.
        assert_eq!(unit("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}"), 4);
    }

    #[test]
    fn paper_example_full_matrix_fig_3() {
        let (g, h) = parse2("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}");
        let td = ted_full(&g, &h, &UnitCost, None);
        let expected: [[u64; 7]; 3] = [
            [0, 1, 2, 0, 1, 2, 6],
            [1, 1, 3, 1, 0, 2, 6],
            [2, 3, 1, 2, 2, 0, 4],
        ];
        for (i, row) in expected.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                let got = td.subtree_distance(NodeId::new(i as u32 + 1), NodeId::new(j as u32 + 1));
                assert_eq!(got, Cost::from_natural(want), "td[G{}][H{}]", i + 1, j + 1);
            }
        }
        assert_eq!(td.distance(), Cost::from_natural(4));
        // query_row is the last row of Fig. 3.
        let row: Vec<u64> = td.query_row()[1..]
            .iter()
            .map(|c| c.floor_natural())
            .collect();
        assert_eq!(row, vec![2, 3, 1, 2, 2, 0, 4]);
    }

    #[test]
    fn structure_matters_not_just_labels() {
        // {a{b{c}}} -> {a{b}{c}}: move c from child-of-b to sibling: one
        // delete + one insert? No — deleting c and inserting c = 2, but a
        // single "move" is not an edit operation; ZS gives 2? Actually
        // deleting b and inserting b also works: 2. Distance must be 2.
        assert_eq!(unit("{a{b{c}}}", "{a{b}{c}}"), 2);
    }

    #[test]
    fn completely_disjoint_trees() {
        // No common labels: delete all of Q (3), insert all of T (3)... but
        // renames are cheaper: 3 renames when shapes match.
        assert_eq!(unit("{a{b}{c}}", "{x{y}{z}}"), 3);
        // Shapes differ: {a{b}} vs {x{y}{z}}: rename 2 + insert 1 = 3.
        assert_eq!(unit("{a{b}}", "{x{y}{z}}"), 3);
    }

    #[test]
    fn distance_to_single_node() {
        // Keep the a-node, delete 2.
        assert_eq!(unit("{a}", "{a{b}{c}}"), 2);
        // Rename + delete 2.
        assert_eq!(unit("{z}", "{a{b}{c}}"), 3);
    }

    #[test]
    fn symmetric_for_unit_costs() {
        let cases = [
            ("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}"),
            ("{a{b{c}{d}}{e}}", "{a{b}{c{d}{e}}}"),
            ("{p{q}{r{s}}}", "{p{r{s}}{q}}"),
        ];
        for (x, y) in cases {
            assert_eq!(unit(x, y), unit(y, x), "{x} vs {y}");
        }
    }

    #[test]
    fn deep_vs_wide() {
        // Path a(b(c(d))) vs star a(b,c,d). Any mapping keeping a->a and
        // b->b violates the ancestor condition for c and d (descendants of
        // b in the path, siblings of b in the star), so besides a->a and
        // b->b everything is delete+insert: distance 4.
        assert_eq!(unit("{a{b{c{d}}}}", "{a{b}{c}{d}}"), 4);
    }

    #[test]
    fn half_unit_rename_costs() {
        use crate::cost::PerLabelCost;
        let mut d = LabelDict::new();
        let q = bracket::parse("{a}", &mut d).unwrap();
        let t = bracket::parse("{b}", &mut d).unwrap();
        let a = d.get("a").unwrap();
        // cst(a) = 2, cst(b) = 1 => rename = 1.5.
        let model = PerLabelCost::new(1).with(a, 2);
        assert_eq!(ted(&q, &t, &model), Cost::from_halves(3));
    }

    #[test]
    fn fanout_weighted_prefers_leaf_edits() {
        use crate::cost::FanoutWeighted;
        let mut d = LabelDict::new();
        // Q: a(b, c); T: a(b, c, d) — inserting leaf d costs base.
        let q = bracket::parse("{a{b}{c}}", &mut d).unwrap();
        let t = bracket::parse("{a{b}{c}{d}}", &mut d).unwrap();
        let model = FanoutWeighted {
            base: 1,
            weight: 10,
        };
        assert_eq!(ted(&q, &t, &model), Cost::from_natural(1));
    }

    #[test]
    fn stats_record_document_keyroots() {
        let (g, h) = parse2("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}");
        let mut st = TedStats::new();
        ted_full(&g, &h, &UnitCost, Some(&mut st));
        // Document keyroots: H2 (1), H5 (1), H6 (3), H7 (7) — Example 1.
        assert_eq!(st.total_relevant(), 4);
        assert_eq!(st.relevant_by_size[&1], 2);
        assert_eq!(st.relevant_by_size[&3], 1);
        assert_eq!(st.relevant_by_size[&7], 1);
        assert_eq!(st.ted_calls, 1);
        // Q keyroot sizes {1,3}, T {1,1,3,7} -> cells = 4 * 12 = 48.
        assert_eq!(st.fd_cells, 48);
    }

    #[test]
    fn large_random_smoke() {
        // A fixed pseudo-random tree pair; checks triangle vs identity
        // lightly and that nothing panics at a few hundred nodes.
        let mut d = LabelDict::new();
        let mut s = String::from("{r");
        for i in 0..120 {
            s.push_str(&format!("{{n{}{{x}}{{y}}}}", i % 7));
        }
        s.push('}');
        let t = bracket::parse(&s, &mut d).unwrap();
        let q = bracket::parse("{n3{x}{y}}", &mut d).unwrap();
        let dist = ted(&q, &t, &UnitCost);
        assert!(dist > Cost::ZERO);
        // Lemma 3: |T| <= δ + |Q|.
        assert!(t.len() as u64 <= dist.floor_natural() + q.len() as u64);
        assert_eq!(ted(&t, &t, &UnitCost), Cost::ZERO);
    }
}
