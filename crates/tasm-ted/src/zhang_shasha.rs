//! The Zhang–Shasha tree edit distance [9] (Sec. IV-E of the paper).
//!
//! The algorithm decomposes both trees into their *relevant subtrees*
//! (keyroot subtrees, Def. 8) and, for each pair of keyroots, fills a
//! forest-distance table over the prefixes (Def. 7) of the two keyroot
//! subtrees. Distances between prefixes that are themselves trees are
//! persisted into the **tree distance matrix** `td` (Fig. 3), whose entry
//! `td[i][j]` is the edit distance between subtree `Q_i` and subtree `T_j`.
//!
//! The last row of `td` holds the distance between the whole query and
//! *every* subtree of the document — the observation TASM-dynamic is built
//! on (Sec. IV-F).
//!
//! Complexity for `|Q| = m`, `|T| = n`: `O(m² n²)` worst-case time
//! (`O(m n · min(depth, leaves)²)` in the classic tighter bound) and
//! `O(m n)` space. For shallow-and-wide XML this is near `O(m n)` time,
//! which is why the paper adopts it.

use crate::cost::{rename_cost, Cost, CostModel, NodeCosts};
use crate::matrix::Matrix;
use crate::stats::TedStats;
use tasm_tree::{keyroots, NodeId, Tree};

/// The tree distance matrix `td` plus everything needed to interpret it.
///
/// Row `i`, column `j` (1-based, as in the paper's Fig. 3) is
/// `δ(Q_i, T_j)`; row/column 0 are unused padding so indexes match
/// postorder numbers.
#[derive(Debug, Clone)]
pub struct TreeDistances {
    td: Matrix<Cost>,
}

impl TreeDistances {
    /// `δ(Q_i, T_j)` for subtree roots given by postorder numbers.
    #[inline]
    pub fn subtree_distance(&self, qi: NodeId, tj: NodeId) -> Cost {
        *self.td.get(qi.post() as usize, tj.post() as usize)
    }

    /// The distance between the whole query and the whole document.
    pub fn distance(&self) -> Cost {
        *self.td.get(self.td.rows() - 1, self.td.cols() - 1)
    }

    /// The last row: `δ(Q, T_j)` for every document subtree `T_j`
    /// (index 0 is padding). This is what TASM-dynamic ranks.
    pub fn query_row(&self) -> &[Cost] {
        self.td.row(self.td.rows() - 1)
    }

    /// Number of document nodes `n` (columns minus padding).
    pub fn doc_len(&self) -> usize {
        self.td.cols() - 1
    }
}

/// Computes the tree edit distance `δ(Q, T)` (Def. 6).
///
/// # Examples
///
/// The paper's running example (Figs. 2 and 3): `δ(G, H) = 4` under unit
/// costs.
///
/// ```
/// use tasm_tree::{bracket, LabelDict};
/// use tasm_ted::{ted, Cost, UnitCost};
///
/// let mut dict = LabelDict::new();
/// let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// assert_eq!(ted(&g, &h, &UnitCost), Cost::from_natural(4));
/// ```
pub fn ted(query: &Tree, doc: &Tree, model: &dyn CostModel) -> Cost {
    ted_full(query, doc, model, None).distance()
}

/// Computes the full tree distance matrix between `query` and `doc`
/// (all pairwise subtree distances).
///
/// If `stats` is provided, each document-side relevant subtree and the
/// forest-matrix work are recorded (Sec. VII-B instrumentation).
pub fn ted_full(
    query: &Tree,
    doc: &Tree,
    model: &dyn CostModel,
    stats: Option<&mut TedStats>,
) -> TreeDistances {
    let cq = NodeCosts::compute(query, model);
    let ct = NodeCosts::compute(doc, model);
    ted_full_with_costs(query, &cq, doc, &ct, stats)
}

/// As [`ted_full`], but with precomputed node costs (hot path for
/// TASM-dynamic invoked many times with the same query).
pub fn ted_full_with_costs(
    query: &Tree,
    query_costs: &NodeCosts,
    doc: &Tree,
    doc_costs: &NodeCosts,
    stats: Option<&mut TedStats>,
) -> TreeDistances {
    let m = query.len();
    let n = doc.len();
    debug_assert_eq!(query_costs.len(), m);
    debug_assert_eq!(doc_costs.len(), n);

    let kq = keyroots(query);
    let kt = keyroots(doc);

    if let Some(s) = stats {
        s.record_call();
        for &k in &kt {
            s.record_relevant(doc.size(k));
        }
        let qwork: u64 = kq.iter().map(|&k| query.size(k) as u64).sum();
        let twork: u64 = kt.iter().map(|&k| doc.size(k) as u64).sum();
        s.record_cells(qwork * twork);
    }

    // td[i][j] = δ(Q_i, T_j); row/col 0 are padding so indexes are postorder.
    let mut td: Matrix<Cost> = Matrix::new(m + 1, n + 1);
    // Forest distance table, absolute-indexed: fd[i][j] = distance between
    // pfx(Q_kq, i) and pfx(T_kt, j) within the current keyroot pair, where
    // row/col `lq-1` / `lt-1` represent the empty forest. Reused across
    // pairs; only the rectangle of the current pair is touched.
    let mut fd: Matrix<Cost> = Matrix::new(m + 1, n + 1);

    for &q_key in &kq {
        let lq = query.lml(q_key).post() as usize; // leftmost leaf of Q_kq
        let q_hi = q_key.post() as usize;
        for &t_key in &kt {
            let lt = doc.lml(t_key).post() as usize;
            let t_hi = t_key.post() as usize;

            // Empty-vs-empty.
            fd.set(lq - 1, lt - 1, Cost::ZERO);
            // First column: delete all query prefix nodes.
            for i in lq..=q_hi {
                let v = *fd.get(i - 1, lt - 1) + query_costs.del_ins(i as u32);
                fd.set(i, lt - 1, v);
            }
            // First row: insert all document prefix nodes.
            for j in lt..=t_hi {
                let v = *fd.get(lq - 1, j - 1) + doc_costs.del_ins(j as u32);
                fd.set(lq - 1, j, v);
            }

            for i in lq..=q_hi {
                let qi = NodeId::new(i as u32);
                let lqi = query.lml(qi).post() as usize;
                let q_label = query.label(qi);
                let q_nat = query_costs.natural(i as u32);
                let q_del = query_costs.del_ins(i as u32);
                for j in lt..=t_hi {
                    let tj = NodeId::new(j as u32);
                    let ltj = doc.lml(tj).post() as usize;
                    let t_ins = doc_costs.del_ins(j as u32);

                    let del = *fd.get(i - 1, j) + q_del;
                    let ins = *fd.get(i, j - 1) + t_ins;

                    if lqi == lq && ltj == lt {
                        // Both prefixes are whole subtrees: the match case
                        // is a rename, and the value is a tree distance.
                        let ren = *fd.get(i - 1, j - 1)
                            + rename_cost(
                                q_label,
                                q_nat,
                                doc.label(tj),
                                doc_costs.natural(j as u32),
                            );
                        let v = del.min(ins).min(ren);
                        fd.set(i, j, v);
                        td.set(i, j, v);
                    } else {
                        // General forests: match the whole subtrees via the
                        // persisted tree distance.
                        let sub = *fd.get(lqi - 1, ltj - 1) + *td.get(i, j);
                        let v = del.min(ins).min(sub);
                        fd.set(i, j, v);
                    }
                }
            }
        }
    }

    TreeDistances { td }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use tasm_tree::{bracket, LabelDict};

    fn parse2(q: &str, t: &str) -> (Tree, Tree) {
        let mut d = LabelDict::new();
        let q = bracket::parse(q, &mut d).unwrap();
        let t = bracket::parse(t, &mut d).unwrap();
        (q, t)
    }

    fn unit(q: &str, t: &str) -> u64 {
        let (q, t) = parse2(q, t);
        let c = ted(&q, &t, &UnitCost);
        assert_eq!(c.halves() % 2, 0, "unit-cost distance must be integral");
        c.floor_natural()
    }

    #[test]
    fn identical_trees_have_distance_zero() {
        assert_eq!(unit("{a{b}{c}}", "{a{b}{c}}"), 0);
        assert_eq!(unit("{a}", "{a}"), 0);
    }

    #[test]
    fn single_rename() {
        assert_eq!(unit("{a}", "{b}"), 1);
        assert_eq!(unit("{a{b}{c}}", "{a{b}{x}}"), 1);
        assert_eq!(unit("{a{b}{c}}", "{x{b}{c}}"), 1);
    }

    #[test]
    fn single_insert_or_delete() {
        assert_eq!(unit("{a{b}}", "{a{b}{c}}"), 1); // insert leaf c
        assert_eq!(unit("{a{b}{c}}", "{a{b}}"), 1); // delete leaf c
        assert_eq!(unit("{a{c}}", "{a{b{c}}}"), 1); // insert inner b
    }

    #[test]
    fn paper_example_distance_is_4() {
        // Fig. 3: td[G3][H7] = 4.
        assert_eq!(unit("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}"), 4);
    }

    #[test]
    fn paper_example_full_matrix_fig_3() {
        let (g, h) = parse2("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}");
        let td = ted_full(&g, &h, &UnitCost, None);
        let expected: [[u64; 7]; 3] = [
            [0, 1, 2, 0, 1, 2, 6],
            [1, 1, 3, 1, 0, 2, 6],
            [2, 3, 1, 2, 2, 0, 4],
        ];
        for (i, row) in expected.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                let got = td.subtree_distance(NodeId::new(i as u32 + 1), NodeId::new(j as u32 + 1));
                assert_eq!(got, Cost::from_natural(want), "td[G{}][H{}]", i + 1, j + 1);
            }
        }
        assert_eq!(td.distance(), Cost::from_natural(4));
        // query_row is the last row of Fig. 3.
        let row: Vec<u64> = td.query_row()[1..]
            .iter()
            .map(|c| c.floor_natural())
            .collect();
        assert_eq!(row, vec![2, 3, 1, 2, 2, 0, 4]);
    }

    #[test]
    fn structure_matters_not_just_labels() {
        // {a{b{c}}} -> {a{b}{c}}: move c from child-of-b to sibling: one
        // delete + one insert? No — deleting c and inserting c = 2, but a
        // single "move" is not an edit operation; ZS gives 2? Actually
        // deleting b and inserting b also works: 2. Distance must be 2.
        assert_eq!(unit("{a{b{c}}}", "{a{b}{c}}"), 2);
    }

    #[test]
    fn completely_disjoint_trees() {
        // No common labels: delete all of Q (3), insert all of T (3)... but
        // renames are cheaper: 3 renames when shapes match.
        assert_eq!(unit("{a{b}{c}}", "{x{y}{z}}"), 3);
        // Shapes differ: {a{b}} vs {x{y}{z}}: rename 2 + insert 1 = 3.
        assert_eq!(unit("{a{b}}", "{x{y}{z}}"), 3);
    }

    #[test]
    fn distance_to_single_node() {
        // Keep the a-node, delete 2.
        assert_eq!(unit("{a}", "{a{b}{c}}"), 2);
        // Rename + delete 2.
        assert_eq!(unit("{z}", "{a{b}{c}}"), 3);
    }

    #[test]
    fn symmetric_for_unit_costs() {
        let cases = [
            ("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}"),
            ("{a{b{c}{d}}{e}}", "{a{b}{c{d}{e}}}"),
            ("{p{q}{r{s}}}", "{p{r{s}}{q}}"),
        ];
        for (x, y) in cases {
            assert_eq!(unit(x, y), unit(y, x), "{x} vs {y}");
        }
    }

    #[test]
    fn deep_vs_wide() {
        // Path a(b(c(d))) vs star a(b,c,d). Any mapping keeping a->a and
        // b->b violates the ancestor condition for c and d (descendants of
        // b in the path, siblings of b in the star), so besides a->a and
        // b->b everything is delete+insert: distance 4.
        assert_eq!(unit("{a{b{c{d}}}}", "{a{b}{c}{d}}"), 4);
    }

    #[test]
    fn half_unit_rename_costs() {
        use crate::cost::PerLabelCost;
        let mut d = LabelDict::new();
        let q = bracket::parse("{a}", &mut d).unwrap();
        let t = bracket::parse("{b}", &mut d).unwrap();
        let a = d.get("a").unwrap();
        // cst(a) = 2, cst(b) = 1 => rename = 1.5.
        let model = PerLabelCost::new(1).with(a, 2);
        assert_eq!(ted(&q, &t, &model), Cost::from_halves(3));
    }

    #[test]
    fn fanout_weighted_prefers_leaf_edits() {
        use crate::cost::FanoutWeighted;
        let mut d = LabelDict::new();
        // Q: a(b, c); T: a(b, c, d) — inserting leaf d costs base.
        let q = bracket::parse("{a{b}{c}}", &mut d).unwrap();
        let t = bracket::parse("{a{b}{c}{d}}", &mut d).unwrap();
        let model = FanoutWeighted {
            base: 1,
            weight: 10,
        };
        assert_eq!(ted(&q, &t, &model), Cost::from_natural(1));
    }

    #[test]
    fn stats_record_document_keyroots() {
        let (g, h) = parse2("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}");
        let mut st = TedStats::new();
        ted_full(&g, &h, &UnitCost, Some(&mut st));
        // Document keyroots: H2 (1), H5 (1), H6 (3), H7 (7) — Example 1.
        assert_eq!(st.total_relevant(), 4);
        assert_eq!(st.relevant_by_size[&1], 2);
        assert_eq!(st.relevant_by_size[&3], 1);
        assert_eq!(st.relevant_by_size[&7], 1);
        assert_eq!(st.ted_calls, 1);
        // Q keyroot sizes {1,3}, T {1,1,3,7} -> cells = 4 * 12 = 48.
        assert_eq!(st.fd_cells, 48);
    }

    #[test]
    fn large_random_smoke() {
        // A fixed pseudo-random tree pair; checks triangle vs identity
        // lightly and that nothing panics at a few hundred nodes.
        let mut d = LabelDict::new();
        let mut s = String::from("{r");
        for i in 0..120 {
            s.push_str(&format!("{{n{}{{x}}{{y}}}}", i % 7));
        }
        s.push('}');
        let t = bracket::parse(&s, &mut d).unwrap();
        let q = bracket::parse("{n3{x}{y}}", &mut d).unwrap();
        let dist = ted(&q, &t, &UnitCost);
        assert!(dist > Cost::ZERO);
        // Lemma 3: |T| <= δ + |Q|.
        assert!(t.len() as u64 <= dist.floor_natural() + q.len() as u64);
        assert_eq!(ted(&t, &t, &UnitCost), Cost::ZERO);
    }
}
