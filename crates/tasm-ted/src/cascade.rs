//! The admissible lower-bound pruning cascade of the TASM evaluation
//! layer.
//!
//! TASM-postorder's cost is dominated by the Zhang–Shasha dynamic
//! program it runs per evaluated candidate subtree. Once the top-k heap
//! is full, its worst ranked distance `max(R)` is a *cutoff*: a subtree
//! whose distance provably exceeds it can never enter the ranking, so
//! the DP on it is wasted work. The [`LowerBoundCascade`] answers
//! "can any subtree of this candidate still make the ranking?" with two
//! cheap **admissible** lower bounds, ordered by cost:
//!
//! 1. **Label-histogram deficit** — `O(|T| log d)` with `d` = distinct
//!    query labels. In any edit mapping from the query `Q` to a subtree
//!    `T'` of the candidate `T`, a query node that is not mapped to an
//!    equal-labeled node costs at least 1 natural unit (deletion costs
//!    `cst(q) >= 1`; a rename costs `(cst(q) + cst(t))/2 >= 1` since
//!    node costs are clamped to `>= 1`, Def. 4). The number of
//!    zero-cost (equal-label) pairs is at most the label-multiset
//!    intersection `|hist(Q) ∩ hist(T')| <= |hist(Q) ∩ hist(T)|`, so
//!
//!    `δ(Q, T') >= |Q| − |hist(Q) ∩ hist(T)|`   for **every** `T' ⊆ T`.
//!
//! 2. **Substring string edit distance** (Sellers' algorithm) —
//!    `O(|Q|·|T|)` with cutoff banding and row-minimum early exit. The
//!    string edit distance between postorder label sequences never
//!    exceeds the tree edit distance under the same cost semantics
//!    (property-tested in `tests/properties.rs`), and every subtree of
//!    `T` is a *contiguous substring* of `T`'s postorder sequence. The
//!    DP with a free-start row (`D[0][j] = 0`) and a min over the last
//!    row computes `min_substring SED(Q, ·)`, which therefore
//!    lower-bounds `min_{T' ⊆ T} δ(Q, T')`. Document-side costs are
//!    under-approximated by 1 (edit distances are monotone in the
//!    operation costs), keeping the bound admissible for every cost
//!    model; under [`UnitCost`](crate::UnitCost) it is exact SED.
//!
//! Both bounds hold for **all** subtrees of the inspected tree at once,
//! which is exactly what Algorithm 3 needs: one DP call ranks every
//! subtree of the evaluated candidate, so a sound prune must cover them
//! all. Pruning fires only on `bound > cutoff` *strictly* — a tie on
//! distance can still win on the postorder tiebreak — so a cascade-on
//! run returns **identical** rankings (down to subtree ids) as a
//! cascade-off run.
//!
//! The pq-gram distance of [`filters`](crate::filters) is deliberately
//! **not** a tier: it is a pseudo-distance without a proven
//! lower-bound relation to the unit edit distance, so admitting it
//! would break the exactness guarantee.
//!
//! # Zero-allocation contract
//!
//! [`LowerBoundCascade`] is built once per query (outside the candidate
//! loop); [`CascadeScratch`] owns the per-check buffers, grows but
//! never shrinks, and is sized up front by
//! [`CascadeScratch::reserve`] — the candidate loop performs no heap
//! allocation (regression-tested with the counting allocator in
//! `tasm-bench`).

use crate::cost::Cost;
use crate::workspace::QueryContext;
use tasm_tree::{LabelId, TreeView};

/// The verdict of a cascade check for one candidate (sub)tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CascadeDecision {
    /// No tier could refute the tree: run the exact DP.
    Evaluate,
    /// The label-histogram deficit exceeds the cutoff for every subtree.
    PrunedByHistogram,
    /// The substring edit distance exceeds the cutoff for every subtree.
    PrunedBySed,
}

/// Reusable buffers of the cascade checks (query-independent).
///
/// Lives in the evaluation workspaces (`TasmWorkspace` /
/// `BatchWorkspace` in `tasm-core`); all buffers grow but never shrink.
#[derive(Debug, Default)]
pub struct CascadeScratch {
    /// Per-distinct-query-label match counters (reset to zero after each
    /// histogram pass).
    q_counts: Vec<u32>,
    /// Sellers DP rows (previous / current), length `n + 1`.
    sed_prev: Vec<Cost>,
    sed_cur: Vec<Cost>,
}

impl CascadeScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        CascadeScratch::default()
    }

    /// Pre-reserves for an `m`-node query against trees of up to `n`
    /// nodes (the Theorem 3 bound τ), so that not even the first check
    /// allocates.
    pub fn reserve(&mut self, m: usize, n: usize) {
        let grow = |v: &mut Vec<u32>, n: usize| v.reserve(n.saturating_sub(v.len()));
        grow(&mut self.q_counts, m);
        let grow = |v: &mut Vec<Cost>, n: usize| v.reserve(n.saturating_sub(v.len()));
        grow(&mut self.sed_prev, n + 1);
        grow(&mut self.sed_cur, n + 1);
    }
}

/// The two-tier admissible lower-bound cascade for one query.
///
/// Build once per query with [`LowerBoundCascade::from_context`] and ask
/// [`LowerBoundCascade::decide`] per candidate (sub)tree with the
/// current heap cutoff `max(R)`.
///
/// # Examples
///
/// ```
/// use tasm_ted::{CascadeDecision, CascadeScratch, Cost, LowerBoundCascade,
///                QueryContext, UnitCost};
/// use tasm_tree::{bracket, LabelDict};
///
/// let mut dict = LabelDict::new();
/// let q = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let t = bracket::parse("{x{y}{z}}", &mut dict).unwrap(); // no shared labels
/// let ctx = QueryContext::new(&q, &UnitCost);
/// let cascade = LowerBoundCascade::from_context(&ctx);
/// let mut scratch = CascadeScratch::new();
/// // Every subtree of t is at distance >= 3 - 0 = 3 > 2: prune.
/// assert_eq!(
///     cascade.decide(t.view(), Cost::from_natural(2), &mut scratch),
///     CascadeDecision::PrunedByHistogram
/// );
/// // Cutoff 3 could be tied; ties must be evaluated to keep rankings exact.
/// assert_eq!(
///     cascade.decide(t.view(), Cost::from_natural(3), &mut scratch),
///     CascadeDecision::Evaluate
/// );
/// ```
#[derive(Debug)]
pub struct LowerBoundCascade<'a> {
    /// Query postorder labels (borrowed from the query tree).
    labels: &'a [LabelId],
    /// Sorted distinct `(label, multiplicity)` histogram of the query.
    hist: Vec<(LabelId, u32)>,
    /// Natural-unit node costs per query node (postorder, clamped >= 1).
    del: Vec<u64>,
    /// `Σ del` — the maximum value the SED tier can reach.
    total_cost: u64,
}

impl<'a> LowerBoundCascade<'a> {
    /// Builds the cascade from a query context (one `O(m log m)` pass;
    /// do this outside the candidate loop).
    pub fn from_context(ctx: &QueryContext<'a>) -> Self {
        let labels = ctx.query().labels();
        let mut sorted: Vec<LabelId> = labels.to_vec();
        sorted.sort_unstable();
        let mut hist: Vec<(LabelId, u32)> = Vec::new();
        for &l in &sorted {
            match hist.last_mut() {
                Some((last, count)) if *last == l => *count += 1,
                _ => hist.push((l, 1)),
            }
        }
        let del: Vec<u64> = (1..=labels.len() as u32)
            .map(|i| ctx.costs().natural(i))
            .collect();
        let total_cost = del.iter().sum();
        LowerBoundCascade {
            labels,
            hist,
            del,
            total_cost,
        }
    }

    /// Number of query nodes `|Q|`.
    pub fn query_len(&self) -> usize {
        self.labels.len()
    }

    /// Runs the cascade against `tree` under the current heap cutoff
    /// `max(R)`: a non-[`Evaluate`](CascadeDecision::Evaluate) verdict
    /// certifies that **every** subtree of `tree` has tree edit distance
    /// strictly greater than `cutoff` and can be skipped without
    /// changing the ranking.
    ///
    /// Each tier runs only if its maximum achievable bound exceeds the
    /// cutoff (the histogram deficit is at most `|Q|`, the SED at most
    /// the total query cost), so in a no-prune regime — an unfilled or
    /// loose heap — the check is `O(1)`.
    pub fn decide(
        &self,
        tree: TreeView<'_>,
        cutoff: Cost,
        scratch: &mut CascadeScratch,
    ) -> CascadeDecision {
        let m = self.labels.len() as u64;
        if Cost::from_natural(m) > cutoff && self.histogram_refutes(tree, cutoff, scratch) {
            return CascadeDecision::PrunedByHistogram;
        }
        if Cost::from_natural(self.total_cost) > cutoff && self.sed_refutes(tree, cutoff, scratch) {
            return CascadeDecision::PrunedBySed;
        }
        CascadeDecision::Evaluate
    }

    /// The exact histogram-deficit bound `|Q| − |hist(Q) ∩ hist(tree)|`
    /// (natural units): a lower bound on `δ(Q, T')` for every subtree
    /// `T'` of `tree`. Exposed for the admissibility tests.
    pub fn histogram_bound(&self, tree: TreeView<'_>, scratch: &mut CascadeScratch) -> Cost {
        let matched = self.count_matched(tree, u64::MAX, scratch);
        Cost::from_natural(self.labels.len() as u64 - matched)
    }

    /// Whether the histogram tier refutes `tree` under `cutoff`:
    /// `|Q| − matched > cutoff`. Bails out (no prune) as soon as the
    /// matched count makes the bound unreachable.
    fn histogram_refutes(
        &self,
        tree: TreeView<'_>,
        cutoff: Cost,
        scratch: &mut CascadeScratch,
    ) -> bool {
        let m = self.labels.len() as u64;
        // Prune needs 2·(m − matched) > cutoff_halves, i.e.
        // matched <= m − (cutoff_halves/2 + 1).
        let Some(max_matched) = m.checked_sub(cutoff.halves() / 2 + 1) else {
            return false;
        };
        let matched = self.count_matched(tree, max_matched, scratch);
        matched <= max_matched && Cost::from_natural(m - matched) > cutoff
    }

    /// Counts the label-multiset intersection of the query histogram and
    /// `tree`'s labels, stopping early once it exceeds `limit` (the
    /// bound can then no longer prune). Resets the scratch counters
    /// before returning.
    fn count_matched(&self, tree: TreeView<'_>, limit: u64, scratch: &mut CascadeScratch) -> u64 {
        let d = self.hist.len();
        scratch.q_counts.resize(d, 0);
        let mut matched = 0u64;
        for &l in tree.labels() {
            if let Ok(slot) = self.hist.binary_search_by_key(&l, |e| e.0) {
                if scratch.q_counts[slot] < self.hist[slot].1 {
                    scratch.q_counts[slot] += 1;
                    matched += 1;
                    if matched > limit {
                        break;
                    }
                }
            }
        }
        scratch.q_counts[..d].fill(0);
        matched
    }

    /// The exact substring-minimum string edit distance between the
    /// query's postorder label sequence and any contiguous substring of
    /// `tree`'s (document-side costs under-approximated by 1): a lower
    /// bound on `δ(Q, T')` for every subtree `T'` of `tree`. Exposed for
    /// the admissibility tests; the cascade uses the banded
    /// early-exiting variant.
    pub fn sed_lower_bound(&self, tree: TreeView<'_>, scratch: &mut CascadeScratch) -> Cost {
        self.sellers(tree, None, scratch)
            .expect("without a cutoff the DP runs to completion")
    }

    /// Whether the SED tier refutes `tree` under `cutoff`: true iff the
    /// substring-minimum SED strictly exceeds `cutoff` (certifying every
    /// subtree does too).
    fn sed_refutes(&self, tree: TreeView<'_>, cutoff: Cost, scratch: &mut CascadeScratch) -> bool {
        self.sellers(tree, Some(cutoff), scratch).is_none()
    }

    /// Sellers' approximate-matching DP over the postorder label
    /// sequences: `D[0][j] = 0` (a match may start after any document
    /// position), the answer is `min_j D[m][j]` (document-side suffixes
    /// are free).
    ///
    /// With a cutoff, cell values are **banded**: anything above the
    /// cutoff is clamped to `cutoff + ½` — cells at or below the cutoff
    /// are still exact (their whole DP path is), so the `> cutoff`
    /// verdict is unaffected — and the scan early-exits with `None`
    /// ("refuted") as soon as a full row minimum exceeds the cutoff
    /// (row minima are non-decreasing: every cell of row `i` derives
    /// from row `i − 1` by non-negative additions). Returns
    /// `Some(min)` when the minimum is at or below the cutoff (or no
    /// cutoff was given).
    fn sellers(
        &self,
        tree: TreeView<'_>,
        cutoff: Option<Cost>,
        scratch: &mut CascadeScratch,
    ) -> Option<Cost> {
        let doc_labels = tree.labels();
        let n = doc_labels.len();
        let cap = cutoff.map(|c| Cost::from_halves(c.halves().saturating_add(1)));
        let clamp = |v: Cost| cap.map_or(v, |cap| v.min(cap));
        let ins = Cost::from_natural(1); // document-side cost under-approximation

        scratch.sed_prev.clear();
        scratch.sed_prev.resize(n + 1, Cost::ZERO);
        scratch.sed_cur.clear();
        scratch.sed_cur.resize(n + 1, Cost::ZERO);

        let mut row_min = Cost::ZERO;
        for (i, &ql) in self.labels.iter().enumerate() {
            let del = Cost::from_natural(self.del[i]);
            // Renames cost (cst(q) + cst(t))/2 >= (cst(q) + 1)/2.
            let sub_miss = Cost::from_halves(self.del[i] + 1);
            let prev = &scratch.sed_prev;
            let cur = &mut scratch.sed_cur;
            cur[0] = clamp(prev[0] + del);
            row_min = cur[0];
            for j in 1..=n {
                // Branchless mismatch test: labels are dense u32 ids, so
                // the comparison result scales the miss cost directly.
                let sub = prev[j - 1]
                    + Cost::from_halves(sub_miss.halves() * u64::from(doc_labels[j - 1] != ql));
                let v = clamp(sub.min(prev[j] + del).min(cur[j - 1] + ins));
                cur[j] = v;
                row_min = row_min.min(v);
            }
            if let Some(c) = cutoff {
                if row_min > c {
                    return None;
                }
            }
            std::mem::swap(&mut scratch.sed_prev, &mut scratch.sed_cur);
        }
        Some(row_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{FanoutWeighted, UnitCost};
    use crate::zhang_shasha::ted;
    use tasm_tree::{bracket, LabelDict, Tree};

    fn parse2(a: &str, b: &str) -> (Tree, Tree) {
        let mut d = LabelDict::new();
        (
            bracket::parse(a, &mut d).unwrap(),
            bracket::parse(b, &mut d).unwrap(),
        )
    }

    /// Exact `min_{T' ⊆ t} δ(q, T')` by brute force.
    fn min_subtree_ted(q: &Tree, t: &Tree) -> Cost {
        t.nodes()
            .map(|id| ted(q, &t.subtree(id), &UnitCost))
            .min()
            .expect("non-empty")
    }

    #[test]
    fn histogram_bound_is_min_subtree_admissible() {
        let cases = [
            ("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}"),
            ("{a{b}{c}}", "{x{y}{z}}"),
            ("{a{a}{a}}", "{b{b{a}}{b}}"),
            ("{q{w{e}}{r}}", "{q{w{e}}{r}}"),
        ];
        let mut scratch = CascadeScratch::new();
        for (qs, ts) in cases {
            let (q, t) = parse2(qs, ts);
            let ctx = QueryContext::new(&q, &UnitCost);
            let cascade = LowerBoundCascade::from_context(&ctx);
            let bound = cascade.histogram_bound(t.view(), &mut scratch);
            let exact = min_subtree_ted(&q, &t);
            assert!(bound <= exact, "{qs} vs {ts}: {bound} > {exact}");
        }
    }

    #[test]
    fn sed_bound_is_min_subtree_admissible() {
        let cases = [
            ("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}"),
            ("{a{b}{c}}", "{x{y}{z}}"),
            ("{a{b{c{d}}}}", "{a{b}{c}{d}}"),
            ("{a{a}{a}}", "{b{b{a}}{b}}"),
        ];
        let mut scratch = CascadeScratch::new();
        for (qs, ts) in cases {
            let (q, t) = parse2(qs, ts);
            let ctx = QueryContext::new(&q, &UnitCost);
            let cascade = LowerBoundCascade::from_context(&ctx);
            let bound = cascade.sed_lower_bound(t.view(), &mut scratch);
            let exact = min_subtree_ted(&q, &t);
            assert!(bound <= exact, "{qs} vs {ts}: {bound} > {exact}");
        }
    }

    #[test]
    fn decide_refutes_only_above_cutoff() {
        // Disjoint labels: every subtree is at distance >= |Q| = 3.
        let (q, t) = parse2("{a{b}{c}}", "{x{y{z}}{w}}");
        let ctx = QueryContext::new(&q, &UnitCost);
        let cascade = LowerBoundCascade::from_context(&ctx);
        let mut scratch = CascadeScratch::new();
        let exact = min_subtree_ted(&q, &t);
        assert_eq!(exact, Cost::from_natural(3));
        for cutoff_halves in 0..10 {
            let cutoff = Cost::from_halves(cutoff_halves);
            let decision = cascade.decide(t.view(), cutoff, &mut scratch);
            if decision != CascadeDecision::Evaluate {
                // A prune verdict must be sound: exact distance > cutoff.
                assert!(exact > cutoff, "refuted at cutoff {cutoff}");
            }
            if cutoff < exact && cutoff < Cost::from_natural(3) {
                assert_ne!(decision, CascadeDecision::Evaluate, "cutoff {cutoff}");
            }
        }
    }

    #[test]
    fn exact_match_is_never_pruned() {
        let (q, t) = parse2("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}");
        let ctx = QueryContext::new(&q, &UnitCost);
        let cascade = LowerBoundCascade::from_context(&ctx);
        let mut scratch = CascadeScratch::new();
        // t contains q exactly: min distance is 0, nothing may prune at
        // any cutoff.
        for cutoff in 0..8 {
            assert_eq!(
                cascade.decide(t.view(), Cost::from_halves(cutoff), &mut scratch),
                CascadeDecision::Evaluate
            );
        }
    }

    #[test]
    fn sed_tier_sees_structure_the_histogram_misses() {
        // Same label multiset, different sequence order: the histogram
        // deficit is 0, but the postorder sequences differ, so only the
        // SED tier can refute.
        let (q, t) = parse2("{a{b}{c}}", "{c{b{a}}}");
        let ctx = QueryContext::new(&q, &UnitCost);
        let cascade = LowerBoundCascade::from_context(&ctx);
        let mut scratch = CascadeScratch::new();
        assert_eq!(cascade.histogram_bound(t.view(), &mut scratch), Cost::ZERO);
        let sed = cascade.sed_lower_bound(t.view(), &mut scratch);
        assert!(sed > Cost::ZERO);
        assert_eq!(
            cascade.decide(t.view(), Cost::ZERO, &mut scratch),
            CascadeDecision::PrunedBySed
        );
    }

    #[test]
    fn weighted_costs_stay_admissible() {
        let (q, t) = parse2("{a{b}{c}{d}}", "{x{a{b}}{y{c}}}");
        let model = FanoutWeighted { base: 1, weight: 2 };
        let ctx = QueryContext::new(&q, &model);
        let cascade = LowerBoundCascade::from_context(&ctx);
        let mut scratch = CascadeScratch::new();
        let exact = t
            .nodes()
            .map(|id| ted(&q, &t.subtree(id), &model))
            .min()
            .unwrap();
        assert!(cascade.histogram_bound(t.view(), &mut scratch) <= exact);
        assert!(cascade.sed_lower_bound(t.view(), &mut scratch) <= exact);
    }

    #[test]
    fn scratch_is_reusable_across_sizes() {
        let (q, t1) = parse2("{a{b}}", "{a{b{c}{d}{e}{f}}}");
        let (_, t2) = parse2("{a{b}}", "{z}");
        let ctx = QueryContext::new(&q, &UnitCost);
        let cascade = LowerBoundCascade::from_context(&ctx);
        let mut scratch = CascadeScratch::new();
        scratch.reserve(q.len(), 16);
        let big_first = cascade.histogram_bound(t1.view(), &mut scratch);
        let small_after = cascade.histogram_bound(t2.view(), &mut scratch);
        assert_eq!(big_first, Cost::ZERO); // both labels found
        assert_eq!(small_after, Cost::from_natural(2)); // neither found
                                                        // Best alignment against "z": one rename plus one deletion = 2.
        assert_eq!(
            cascade.sed_lower_bound(t2.view(), &mut scratch),
            Cost::from_natural(2)
        );
    }
}
