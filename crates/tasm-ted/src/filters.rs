//! Cheap tree-distance bounds from the related work the paper positions
//! itself against (Sec. III): useful as pre-filters in join pipelines
//! where full TASM verification is only run on surviving pairs.
//!
//! * [`label_histogram_lower_bound`] — an `O(n)` lower bound on the unit
//!   tree edit distance from the label multiset difference;
//! * [`binary_branch_distance`] — Yang, Kalnis & Tung (SIGMOD'05) [20]:
//!   an `O(n log n)` vector distance with
//!   `δ_bb(T1, T2) ≤ 5 · δ_unit(T1, T2)`, so `δ_bb / 5` lower-bounds the
//!   unit edit distance;
//! * [`pq_gram_distance`] — Augsten, Böhlen & Gamper (TODS) [21]: the
//!   pq-gram pseudo-distance that approximates the fanout-weighted edit
//!   distance; 0 for equal trees, cheap, and effective at ranking.
//!
//! The first two are **admissible** (proven lower bounds of the unit
//! edit distance). The pq-gram distance is **not**: it is a
//! pseudo-distance with no lower-bound relation to the edit distance,
//! so it may only serve heuristic candidate *ranking* and must stay out
//! of the exact [`LowerBoundCascade`](crate::LowerBoundCascade) — a
//! pq-gram tier would silently turn the exact top-k ranking into an
//! approximate one.
//!
//! For the streaming hot path, the cascade in [`crate::cascade`] uses
//! allocation-free variants of these ideas; the pair-wise entry points
//! here are for join-style pipelines and tests.

use std::collections::HashMap;

use crate::cost::Cost;
use tasm_tree::{LabelId, Tree};

/// Reusable dense scratch for [`label_histogram_lower_bound_with`]: one
/// signed counter per label id, plus the list of touched slots so a pass
/// resets in `O(distinct labels)` instead of `O(label universe)`.
///
/// Grows to the largest label id seen and never shrinks; repeated calls
/// are allocation-free in steady state.
#[derive(Debug, Default)]
pub struct HistogramScratch {
    /// `counts[label]` = multiplicity in `t1` minus multiplicity in `t2`.
    counts: Vec<i32>,
    /// Label ids with a (possibly) non-zero counter this pass.
    touched: Vec<u32>,
}

impl HistogramScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        HistogramScratch::default()
    }
}

/// Lower bound on the **unit-cost** tree edit distance from label
/// histograms.
///
/// Every delete/insert changes the label multiset by one element; every
/// rename by two (one removed, one added). Hence
/// `δ_unit(T1, T2) >= max(|n1 − n2|, L1(hist1, hist2) / 2)`.
///
/// This one-shot entry point counts by sort-and-merge —
/// `O((n1 + n2) log)` time and `O(n1 + n2)` scratch, independent of the
/// label-id universe. Repeated-evaluation loops should use
/// [`label_histogram_lower_bound_with`] with a shared scratch instead.
pub fn label_histogram_lower_bound(t1: &Tree, t2: &Tree) -> Cost {
    let mut a: Vec<LabelId> = t1.labels().to_vec();
    let mut b: Vec<LabelId> = t2.labels().to_vec();
    a.sort_unstable();
    b.sort_unstable();
    // The multiset intersection size: L1 = (n1 − common) + (n2 − common).
    let (mut i, mut j, mut common) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                common += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    let l1 = (a.len() as u64 - common) + (b.len() as u64 - common);
    let size_diff = (t1.len() as i64 - t2.len() as i64).unsigned_abs();
    Cost::from_natural((l1 / 2).max(size_diff))
}

/// As [`label_histogram_lower_bound`], but counting in a reusable dense
/// `u32`-indexed array instead of a per-call `HashMap` or sort — the
/// form for repeated-evaluation loops (one scratch, many candidate
/// pairs, zero steady-state allocation). The scratch grows to the
/// largest label id seen, so it assumes a reasonably dense label
/// dictionary (true for interned XML labels); the one-shot entry point
/// above has no such dependence.
pub fn label_histogram_lower_bound_with(
    t1: &Tree,
    t2: &Tree,
    scratch: &mut HistogramScratch,
) -> Cost {
    let slot_count = t1
        .labels()
        .iter()
        .chain(t2.labels())
        .map(|l| l.0 as usize + 1)
        .max()
        .unwrap_or(0);
    if scratch.counts.len() < slot_count {
        scratch.counts.resize(slot_count, 0);
    }
    scratch.touched.clear();
    for &l in t1.labels() {
        if scratch.counts[l.0 as usize] == 0 {
            scratch.touched.push(l.0);
        }
        scratch.counts[l.0 as usize] += 1;
    }
    for &l in t2.labels() {
        if scratch.counts[l.0 as usize] == 0 {
            scratch.touched.push(l.0);
        }
        scratch.counts[l.0 as usize] -= 1;
    }
    let mut l1: u64 = 0;
    for &l in &scratch.touched {
        l1 += scratch.counts[l as usize].unsigned_abs() as u64;
        scratch.counts[l as usize] = 0;
    }
    let size_diff = (t1.len() as i64 - t2.len() as i64).unsigned_abs();
    Cost::from_natural((l1 / 2).max(size_diff))
}

/// A binary branch: a node label with the labels of its leftmost child
/// and its right sibling in the binary (first-child/next-sibling)
/// transform of the tree; `None` encodes the ε padding.
type BinaryBranch = (LabelId, Option<LabelId>, Option<LabelId>);

/// Computes the **binary branch vector** of Yang et al. [20]: the multiset
/// of `(label, first_child_label, next_sibling_label)` triples over the
/// first-child/next-sibling encoding of the tree.
pub fn binary_branches(tree: &Tree) -> HashMap<BinaryBranch, i64> {
    // first child and next (right) sibling per node, derived from the
    // postorder arena in one pass over children lists.
    let n = tree.len();
    let mut first_child: Vec<Option<LabelId>> = vec![None; n];
    let mut next_sibling: Vec<Option<LabelId>> = vec![None; n];
    for id in tree.nodes() {
        let children = tree.children(id);
        if let Some(&first) = children.first() {
            first_child[id.index()] = Some(tree.label(first));
        }
        for w in children.windows(2) {
            next_sibling[w[0].index()] = Some(tree.label(w[1]));
        }
        // The root and last children keep None (ε).
    }
    let mut bag: HashMap<BinaryBranch, i64> = HashMap::new();
    for id in tree.nodes() {
        let key = (
            tree.label(id),
            first_child[id.index()],
            next_sibling[id.index()],
        );
        *bag.entry(key).or_insert(0) += 1;
    }
    bag
}

/// The **binary branch distance**: L1 distance of the binary branch
/// vectors. Yang et al. prove `δ_bb ≤ 5 · δ_unit`, so
/// [`binary_branch_lower_bound`] = `ceil(δ_bb / 5)` never exceeds the unit
/// edit distance.
pub fn binary_branch_distance(t1: &Tree, t2: &Tree) -> u64 {
    let mut bag = binary_branches(t1);
    for (k, v) in binary_branches(t2) {
        *bag.entry(k).or_insert(0) -= v;
    }
    bag.values().map(|v| v.unsigned_abs()).sum()
}

/// `ceil(δ_bb / 5)` — a valid lower bound for the unit tree edit distance.
pub fn binary_branch_lower_bound(t1: &Tree, t2: &Tree) -> Cost {
    Cost::from_natural(binary_branch_distance(t1, t2).div_ceil(5))
}

/// The pq-gram profile of a tree [21]: the multiset of all `p + q` label
/// windows over the tree extended with dummy (`None`) nodes — `p − 1`
/// ancestors above the root and `q − 1` children around every node.
/// Each pq-gram is `p` stem labels followed by `q` base labels.
pub fn pq_gram_profile(tree: &Tree, p: usize, q: usize) -> HashMap<Vec<Option<LabelId>>, i64> {
    assert!(p >= 1 && q >= 1, "p and q must be at least 1");
    let mut profile: HashMap<Vec<Option<LabelId>>, i64> = HashMap::new();
    // Stem of the current node: the p nearest ancestors (self first is
    // conventionally last); we keep a rolling stack of ancestor labels.
    fn rec(
        tree: &Tree,
        node: tasm_tree::NodeId,
        stem: &mut Vec<Option<LabelId>>,
        p: usize,
        q: usize,
        profile: &mut HashMap<Vec<Option<LabelId>>, i64>,
    ) {
        stem.push(Some(tree.label(node)));
        let stem_window: Vec<Option<LabelId>> = {
            let len = stem.len();
            let mut w = Vec::with_capacity(p);
            for i in 0..p {
                // p labels ending at this node, padded with None above root.
                let idx = (len + i).checked_sub(p);
                w.push(idx.and_then(|j| stem.get(j).copied().flatten()));
            }
            w
        };
        let children = tree.children(node);
        // Sliding window of q over (q-1 dummies) children (q-1 dummies).
        let mut base: Vec<Option<LabelId>> = vec![None; q - 1];
        base.extend(children.iter().map(|&c| Some(tree.label(c))));
        base.extend(std::iter::repeat_n(None, q - 1));
        if children.is_empty() {
            // A leaf contributes the all-dummy base window once.
            let mut gram = stem_window.clone();
            gram.extend(std::iter::repeat_n(None, q));
            *profile.entry(gram).or_insert(0) += 1;
        } else {
            for w in base.windows(q) {
                let mut gram = stem_window.clone();
                gram.extend_from_slice(w);
                *profile.entry(gram).or_insert(0) += 1;
            }
        }
        for c in children {
            rec(tree, c, stem, p, q, profile);
        }
        stem.pop();
    }
    let mut stem = Vec::new();
    rec(tree, tree.root(), &mut stem, p, q, &mut profile);
    profile
}

/// The (non-normalized) **pq-gram distance** [21]: the size of the
/// symmetric difference of the two pq-gram profiles (as bags). Zero for
/// identical trees; a pseudo-metric that approximates the fanout-weighted
/// tree edit distance and is computable in `O(n log n)`.
pub fn pq_gram_distance(t1: &Tree, t2: &Tree, p: usize, q: usize) -> u64 {
    let mut bag = pq_gram_profile(t1, p, q);
    for (k, v) in pq_gram_profile(t2, p, q) {
        *bag.entry(k).or_insert(0) -= v;
    }
    bag.values().map(|v| v.unsigned_abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use crate::zhang_shasha::ted;
    use tasm_tree::{bracket, LabelDict};

    fn parse2(a: &str, b: &str) -> (Tree, Tree) {
        let mut d = LabelDict::new();
        (
            bracket::parse(a, &mut d).unwrap(),
            bracket::parse(b, &mut d).unwrap(),
        )
    }

    #[test]
    fn histogram_bound_is_a_lower_bound() {
        let cases = [
            ("{a{b}{c}}", "{a{b}{c}}"),
            ("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}"),
            ("{a}", "{b}"),
            ("{a{b{c{d}}}}", "{a{b}{c}{d}}"),
            ("{a{a}{a}}", "{b{b}{b}{b}}"),
        ];
        for (x, y) in cases {
            let (t1, t2) = parse2(x, y);
            let lb = label_histogram_lower_bound(&t1, &t2);
            let d = ted(&t1, &t2, &UnitCost);
            assert!(lb <= d, "{x} vs {y}: lb {lb} > ted {d}");
        }
    }

    #[test]
    fn dense_histogram_matches_hashmap_reference() {
        let cases = [
            ("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}"),
            ("{a}", "{b}"),
            ("{a{a}{a}}", "{b{b}{b}{b}}"),
            ("{a{b{c{d}}}}", "{a{b}{c}{d}}"),
        ];
        let mut scratch = HistogramScratch::new();
        for (x, y) in cases {
            let (t1, t2) = parse2(x, y);
            // Reference: the straightforward HashMap bag difference.
            let mut bag: HashMap<LabelId, i64> = HashMap::new();
            for &l in t1.labels() {
                *bag.entry(l).or_insert(0) += 1;
            }
            for &l in t2.labels() {
                *bag.entry(l).or_insert(0) -= 1;
            }
            let l1: u64 = bag.values().map(|v| v.unsigned_abs()).sum();
            let size_diff = (t1.len() as i64 - t2.len() as i64).unsigned_abs();
            let want = Cost::from_natural((l1 / 2).max(size_diff));
            // Same scratch reused across pairs: counters must come back
            // clean after every call.
            assert_eq!(
                label_histogram_lower_bound_with(&t1, &t2, &mut scratch),
                want,
                "{x} vs {y}"
            );
            assert_eq!(label_histogram_lower_bound(&t1, &t2), want);
        }
    }

    #[test]
    fn histogram_bound_exact_on_disjoint_labels() {
        // Same shape, totally different labels: bound = n renames... the
        // histogram gives L1/2 = n, and ted = n.
        let (t1, t2) = parse2("{a{b}{c}}", "{x{y}{z}}");
        assert_eq!(
            label_histogram_lower_bound(&t1, &t2),
            ted(&t1, &t2, &UnitCost)
        );
    }

    #[test]
    fn binary_branch_zero_iff_equal_on_small_trees() {
        let (t1, t2) = parse2("{a{b}{c}}", "{a{b}{c}}");
        assert_eq!(binary_branch_distance(&t1, &t2), 0);
        let (t1, t2) = parse2("{a{b}{c}}", "{a{c}{b}}");
        assert!(
            binary_branch_distance(&t1, &t2) > 0,
            "sibling order matters"
        );
    }

    #[test]
    fn binary_branch_lower_bound_holds_on_fixtures() {
        let cases = [
            ("{a{b}{c}}", "{x{a{b}{d}}{a{b}{c}}}"),
            ("{a{b{c{d}}}}", "{a{b}{c}{d}}"),
            ("{r{a}{b}{c}}", "{r{c}{b}{a}}"),
            ("{a}", "{a{b{c}}}"),
        ];
        for (x, y) in cases {
            let (t1, t2) = parse2(x, y);
            let lb = binary_branch_lower_bound(&t1, &t2);
            let d = ted(&t1, &t2, &UnitCost);
            assert!(lb <= d, "{x} vs {y}: bb lb {lb} > ted {d}");
        }
    }

    #[test]
    fn pq_gram_profile_size() {
        // For p=2, q=3 each node contributes max(1, fanout + q - 1) grams.
        let mut d = LabelDict::new();
        let t = bracket::parse("{a{b}{c}}", &mut d).unwrap();
        let profile = pq_gram_profile(&t, 2, 3);
        let total: i64 = profile.values().sum();
        // root: 2 children + q - 1 windows = 4; leaves: 1 each.
        assert_eq!(total, 4 + 1 + 1);
    }

    #[test]
    fn pq_gram_distance_zero_for_equal() {
        let (t1, t2) = parse2("{a{b{x}}{c}}", "{a{b{x}}{c}}");
        assert_eq!(pq_gram_distance(&t1, &t2, 2, 3), 0);
    }

    #[test]
    fn pq_gram_distance_is_symmetric_and_positive() {
        let (t1, t2) = parse2("{a{b}{c}}", "{a{c}{b}}");
        let d12 = pq_gram_distance(&t1, &t2, 2, 3);
        let d21 = pq_gram_distance(&t2, &t1, 2, 3);
        assert_eq!(d12, d21);
        assert!(d12 > 0);
    }

    #[test]
    fn pq_gram_detects_small_vs_large_changes() {
        // A leaf rename changes few pq-grams; re-parenting two leaves
        // changes their stems *and* both parents' bases — many more grams.
        // This locality is why [21] uses pq-grams to approximate the
        // fanout-weighted edit distance.
        let (base, leaf_rename) = parse2("{r{a{x}{y}}{b}}", "{r{a{x}{z}}{b}}");
        let (_, reparent) = parse2("{r{a{x}{y}}{b}}", "{r{a}{b{x}{y}}}");
        let d_small = pq_gram_distance(&base, &leaf_rename, 2, 3);
        let d_large = pq_gram_distance(&base, &reparent, 2, 3);
        assert!(d_small < d_large, "{d_small} vs {d_large}");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn pq_gram_rejects_zero_params() {
        let mut d = LabelDict::new();
        let t = bracket::parse("{a}", &mut d).unwrap();
        let _ = pq_gram_profile(&t, 0, 3);
    }
}
