//! A dense row-major 2-D matrix used by the dynamic programs.
//!
//! Besides plain construction, the matrix supports **grow-don't-shrink
//! reuse** ([`Matrix::reset`] / [`Matrix::reset_stale`]): a workspace
//! re-dimensions the same backing buffer for every candidate subtree, so
//! the steady state of the streaming algorithms performs no heap
//! allocation. The DP inner loops use the debug-asserted unchecked
//! accessors; this is the one module in the crate allowed to use
//! `unsafe`.
#![allow(unsafe_code)]

/// Dense row-major matrix.
#[derive(Debug, Clone, Eq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    /// Backing storage; `data.len() >= rows * cols`. May be longer after
    /// a shrinking [`Matrix::reset`] — the logical content is always the
    /// first `rows * cols` elements.
    data: Vec<T>,
}

impl<T: Clone + Default> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with `T::default()`.
    pub fn new(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Re-dimensions the matrix to `rows × cols` and fills the logical
    /// region with `T::default()`, reusing the backing buffer
    /// (grow-don't-shrink: no allocation once the buffer has seen its
    /// largest size).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(n, T::default());
    }

    /// Re-dimensions the matrix to `rows × cols` **without clearing**:
    /// cells keep whatever value a previous use left behind. For DP
    /// tables that are fully written before being read (the Zhang–Shasha
    /// `fd` rectangle, and `td` under the keyroot-ordering invariant),
    /// this skips the O(rows·cols) fill of [`Matrix::reset`].
    pub fn reset_stale(&mut self, rows: usize, cols: usize) {
        let n = rows * cols;
        if self.data.len() < n {
            self.data.resize(n, T::default());
        }
        self.rows = rows;
        self.cols = cols;
    }
}

impl<T: Clone> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with `fill`.
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }
}

impl<T> Matrix<T> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }

    /// Writes `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Reads `(r, c)` without bounds checks in release builds.
    ///
    /// # Safety
    ///
    /// `r < rows()` and `c < cols()` must hold; checked by
    /// `debug_assert!` only. The DP inner loops guarantee this from
    /// their loop bounds.
    #[inline(always)]
    pub unsafe fn get_unchecked(&self, r: usize, c: usize) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        // SAFETY: caller guarantees r/c in range, so the flat index is
        // < rows * cols <= data.len().
        unsafe { self.data.get_unchecked(r * self.cols + c) }
    }

    /// Writes `(r, c)` without bounds checks in release builds.
    ///
    /// # Safety
    ///
    /// Same contract as [`Matrix::get_unchecked`].
    #[inline(always)]
    pub unsafe fn set_unchecked(&mut self, r: usize, c: usize, v: T) {
        debug_assert!(r < self.rows && c < self.cols);
        // SAFETY: caller guarantees r/c in range (see get_unchecked).
        unsafe {
            *self.data.get_unchecked_mut(r * self.cols + c) = v;
        }
    }

    /// A whole row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major storage (logical region only).
    pub fn as_slice(&self) -> &[T] {
        &self.data[..self.rows * self.cols]
    }
}

// Manual impl: after a shrinking `reset` the backing buffer can be longer
// than the logical region, which derived `PartialEq` would compare.
impl<T: PartialEq> PartialEq for Matrix<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.data[..self.rows * self.cols] == other.data[..other.rows * other.cols]
    }
}

impl<T> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        self.get(r, c)
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let m: Matrix<u64> = Matrix::new(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn set_get_and_index() {
        let mut m: Matrix<u64> = Matrix::new(3, 3);
        m.set(1, 2, 42);
        m[(2, 0)] = 7;
        assert_eq!(*m.get(1, 2), 42);
        assert_eq!(m[(2, 0)], 7);
        assert_eq!(m[(0, 0)], 0);
    }

    #[test]
    fn rows_are_contiguous() {
        let mut m: Matrix<u32> = Matrix::new(2, 4);
        for c in 0..4 {
            m.set(1, c, c as u32);
        }
        assert_eq!(m.row(1), &[0, 1, 2, 3]);
        assert_eq!(m.row(0), &[0, 0, 0, 0]);
    }

    #[test]
    fn filled() {
        let m: Matrix<u8> = Matrix::filled(2, 2, 9);
        assert!(m.as_slice().iter().all(|&v| v == 9));
    }

    #[test]
    fn reset_reuses_and_zeroes() {
        let mut m: Matrix<u64> = Matrix::new(4, 4);
        m.set(3, 3, 7);
        m.reset(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0));
        assert_eq!(m.as_slice().len(), 6);
        // Growing again also zeroes.
        m.set(1, 2, 5);
        m.reset(5, 5);
        assert!(m.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn reset_stale_keeps_dims_but_not_content_guarantees() {
        let mut m: Matrix<u64> = Matrix::new(2, 2);
        m.set(1, 1, 9);
        m.reset_stale(1, 2);
        assert_eq!((m.rows(), m.cols()), (1, 2));
        // Growing past the old buffer default-fills the tail.
        m.reset_stale(3, 4);
        assert_eq!(m.as_slice().len(), 12);
    }

    #[test]
    fn unchecked_matches_checked() {
        let mut m: Matrix<u32> = Matrix::new(3, 4);
        // SAFETY: indices below are within the 3×4 bounds.
        unsafe {
            m.set_unchecked(2, 3, 11);
            assert_eq!(*m.get_unchecked(2, 3), 11);
        }
        assert_eq!(*m.get(2, 3), 11);
    }

    #[test]
    fn partial_eq_ignores_spare_capacity() {
        let mut a: Matrix<u8> = Matrix::new(4, 4);
        a.reset(2, 2);
        let b: Matrix<u8> = Matrix::new(2, 2);
        assert_eq!(a, b);
    }
}
