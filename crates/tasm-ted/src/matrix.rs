//! A dense row-major 2-D matrix used by the dynamic programs.

/// Dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone + Default> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with `T::default()`.
    pub fn new(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T: Clone> Matrix<T> {
    /// Creates a `rows × cols` matrix filled with `fill`.
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }
}

impl<T> Matrix<T> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }

    /// Writes `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A whole row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        self.get(r, c)
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let m: Matrix<u64> = Matrix::new(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn set_get_and_index() {
        let mut m: Matrix<u64> = Matrix::new(3, 3);
        m.set(1, 2, 42);
        m[(2, 0)] = 7;
        assert_eq!(*m.get(1, 2), 42);
        assert_eq!(m[(2, 0)], 7);
        assert_eq!(m[(0, 0)], 0);
    }

    #[test]
    fn rows_are_contiguous() {
        let mut m: Matrix<u32> = Matrix::new(2, 4);
        for c in 0..4 {
            m.set(1, c, c as u32);
        }
        assert_eq!(m.row(1), &[0, 1, 2, 3]);
        assert_eq!(m.row(0), &[0, 0, 0, 0]);
    }

    #[test]
    fn filled() {
        let m: Matrix<u8> = Matrix::filled(2, 2, 9);
        assert!(m.as_slice().iter().all(|&v| v == 9));
    }
}
