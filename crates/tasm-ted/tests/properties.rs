//! Property-based tests for the tree edit distance.
//!
//! Invariants checked on randomly generated trees:
//! * Zhang–Shasha agrees with the independent memoized-recursion oracle;
//! * the distance is a metric: identity, symmetry, triangle inequality;
//! * on path trees it equals the string edit distance of the label sequence;
//! * Lemma 3: `|T| <= δ(Q, T) + |Q|` (and symmetrically);
//! * the postorder-label string edit distance is a lower bound;
//! * the tree-distance matrix is consistent with recomputing each subtree
//!   pair from scratch.

use proptest::prelude::*;
use tasm_ted::oracle::ted_oracle;
use tasm_ted::sed::string_edit_distance;
use tasm_ted::{ted, ted_full, Cost, CostModel, NodeCosts, PerLabelCost, UnitCost};
use tasm_tree::{LabelId, NodeId, Tree, TreeBuilder};

/// Builds a random tree of exactly `n` nodes by random attachment: node
/// `i` picks a uniformly random existing parent.
fn random_tree(seed: u64, n: usize, n_labels: u32) -> Tree {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut labels: Vec<u32> = Vec::with_capacity(n);
    labels.push(rng.gen_range(0..n_labels));
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        children[parent].push(i);
        labels.push(rng.gen_range(0..n_labels));
    }
    fn rec(node: usize, children: &[Vec<usize>], labels: &[u32], b: &mut TreeBuilder) {
        b.start(LabelId(labels[node]));
        for &c in &children[node] {
            rec(c, children, labels, b);
        }
        b.end().expect("balanced");
    }
    let mut b = TreeBuilder::with_capacity(n);
    rec(0, &children, &labels, &mut b);
    b.finish().expect("single root")
}

/// Trees of 1–20 nodes: large enough for interesting structure, small
/// enough for the O(m²n²) oracle.
fn arb_tree(n_labels: u32) -> impl Strategy<Value = Tree> {
    (any::<u64>(), 1usize..=20).prop_map(move |(seed, n)| random_tree(seed, n, n_labels))
}

/// A path tree: every node has exactly one child (or none).
fn arb_path_tree(n_labels: u32) -> impl Strategy<Value = Tree> {
    prop::collection::vec(0..n_labels, 1..12).prop_map(|labels| {
        let entries: Vec<(LabelId, u32)> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (LabelId(l), i as u32 + 1))
            .collect();
        Tree::from_postorder(entries).expect("path encoding is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn zhang_shasha_matches_oracle_unit(q in arb_tree(3), t in arb_tree(3)) {
        prop_assert_eq!(ted(&q, &t, &UnitCost), ted_oracle(&q, &t, &UnitCost));
    }

    #[test]
    fn zhang_shasha_matches_oracle_weighted(q in arb_tree(4), t in arb_tree(4)) {
        // Label i costs i + 1, producing fractional renames.
        let model = PerLabelCost::new(1)
            .with(LabelId(0), 1)
            .with(LabelId(1), 2)
            .with(LabelId(2), 3)
            .with(LabelId(3), 4);
        prop_assert_eq!(ted(&q, &t, &model), ted_oracle(&q, &t, &model));
    }

    #[test]
    fn identity_of_indiscernibles(q in arb_tree(3), t in arb_tree(3)) {
        prop_assert_eq!(ted(&q, &q, &UnitCost), Cost::ZERO);
        let d = ted(&q, &t, &UnitCost);
        prop_assert_eq!(d == Cost::ZERO, q == t);
    }

    #[test]
    fn symmetry(q in arb_tree(3), t in arb_tree(3)) {
        prop_assert_eq!(ted(&q, &t, &UnitCost), ted(&t, &q, &UnitCost));
    }

    #[test]
    fn triangle_inequality(a in arb_tree(2), b in arb_tree(2), c in arb_tree(2)) {
        let ab = ted(&a, &b, &UnitCost);
        let bc = ted(&b, &c, &UnitCost);
        let ac = ted(&a, &c, &UnitCost);
        prop_assert!(ac <= ab + bc, "d(a,c)={} > d(a,b)={} + d(b,c)={}", ac, ab, bc);
    }

    #[test]
    fn path_trees_reduce_to_string_edit_distance(
        q in arb_path_tree(3),
        t in arb_path_tree(3),
    ) {
        let cq: Vec<u64> = vec![1; q.len()];
        let ct: Vec<u64> = vec![1; t.len()];
        let sed = string_edit_distance(q.labels(), &cq, t.labels(), &ct);
        prop_assert_eq!(ted(&q, &t, &UnitCost), sed);
    }

    #[test]
    fn lemma_3_size_bound(q in arb_tree(3), t in arb_tree(3)) {
        let d = ted(&q, &t, &UnitCost);
        prop_assert!(t.len() as u64 <= d.floor_natural() + q.len() as u64);
        prop_assert!(q.len() as u64 <= d.floor_natural() + t.len() as u64);
    }

    #[test]
    fn postorder_sed_is_lower_bound(q in arb_tree(3), t in arb_tree(3)) {
        let nq = NodeCosts::compute(q.view(), &UnitCost);
        let nt = NodeCosts::compute(t.view(), &UnitCost);
        let cq: Vec<u64> = (1..=q.len() as u32).map(|i| nq.natural(i)).collect();
        let ct: Vec<u64> = (1..=t.len() as u32).map(|j| nt.natural(j)).collect();
        let sed = string_edit_distance(q.labels(), &cq, t.labels(), &ct);
        prop_assert!(sed <= ted(&q, &t, &UnitCost));
    }

    #[test]
    fn distance_matrix_entries_are_subtree_distances(
        q in arb_tree(3),
        t in arb_tree(3),
    ) {
        let td = ted_full(&q, &t, &UnitCost, None);
        // Spot-check every pair against an independent whole-tree call.
        for qi in q.nodes() {
            for tj in t.nodes() {
                let sub_q = q.subtree(qi);
                let sub_t = t.subtree(tj);
                let expect = ted(&sub_q, &sub_t, &UnitCost);
                prop_assert_eq!(
                    td.subtree_distance(qi, tj),
                    expect,
                    "td[{}][{}]", qi, tj
                );
            }
        }
    }

    #[test]
    fn max_cost_matches_scan(t in arb_tree(4)) {
        let model = PerLabelCost::new(2).with(LabelId(1), 5);
        let via_trait = model.max_cost(t.view());
        let manual = t
            .nodes()
            .map(|id| model.node_cost(t.view(), id).max(1))
            .max()
            .unwrap();
        prop_assert_eq!(via_trait, manual);
    }

    #[test]
    fn unit_distance_bounded_by_sum_of_sizes(q in arb_tree(3), t in arb_tree(3)) {
        // Empty mapping: delete all of Q, insert all of T.
        let d = ted(&q, &t, &UnitCost);
        prop_assert!(d <= Cost::from_natural((q.len() + t.len()) as u64));
        // And at least the size difference (Lemma 3 both ways).
        let diff = (q.len() as i64 - t.len() as i64).unsigned_abs();
        prop_assert!(d >= Cost::from_natural(diff));
    }
}

#[test]
fn node_id_helpers_in_matrix_bounds() {
    // Regression guard: NodeId::new(1) maps to matrix row/col 1.
    assert_eq!(NodeId::new(1).post(), 1);
}

mod filter_properties {
    use super::*;
    use tasm_ted::filters::{
        binary_branch_distance, binary_branch_lower_bound, label_histogram_lower_bound,
        pq_gram_distance,
    };

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn histogram_lower_bound_never_exceeds_ted(
            a in arb_tree(3),
            b in arb_tree(3),
        ) {
            let lb = label_histogram_lower_bound(&a, &b);
            prop_assert!(lb <= ted(&a, &b, &UnitCost));
        }

        #[test]
        fn binary_branch_lower_bound_never_exceeds_ted(
            a in arb_tree(3),
            b in arb_tree(3),
        ) {
            let lb = binary_branch_lower_bound(&a, &b);
            let d = ted(&a, &b, &UnitCost);
            prop_assert!(lb <= d, "bb/5 = {} > δ = {}", lb, d);
        }

        #[test]
        fn binary_branch_is_a_symmetric_bag_distance(
            a in arb_tree(3),
            b in arb_tree(3),
            c in arb_tree(3),
        ) {
            prop_assert_eq!(binary_branch_distance(&a, &a), 0);
            prop_assert_eq!(binary_branch_distance(&a, &b), binary_branch_distance(&b, &a));
            // Triangle inequality: L1 over bags.
            let ab = binary_branch_distance(&a, &b);
            let bc = binary_branch_distance(&b, &c);
            let ac = binary_branch_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn pq_grams_form_a_pseudo_metric(
            a in arb_tree(3),
            b in arb_tree(3),
            c in arb_tree(3),
        ) {
            prop_assert_eq!(pq_gram_distance(&a, &a, 2, 3), 0);
            prop_assert_eq!(pq_gram_distance(&a, &b, 2, 3), pq_gram_distance(&b, &a, 2, 3));
            let ab = pq_gram_distance(&a, &b, 2, 3);
            let bc = pq_gram_distance(&b, &c, 2, 3);
            let ac = pq_gram_distance(&a, &c, 2, 3);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn pq_gram_profile_has_expected_cardinality(a in arb_tree(4)) {
            // Total pq-grams = Σ_nodes max(1, fanout + q − 1) for q = 3.
            let profile = tasm_ted::filters::pq_gram_profile(&a, 2, 3);
            let total: i64 = profile.values().sum();
            let expected: i64 = a
                .nodes()
                .map(|id| {
                    let f = a.fanout(id) as i64;
                    if f == 0 { 1 } else { f + 2 }
                })
                .sum();
            prop_assert_eq!(total, expected);
        }
    }
}

mod mapping_properties {
    use super::*;
    use tasm_ted::{edit_script, validate_mapping};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn edit_script_cost_equals_ted(a in arb_tree(3), b in arb_tree(3)) {
            let script = edit_script(&a, &b, &UnitCost);
            prop_assert_eq!(script.cost, ted(&a, &b, &UnitCost));
        }

        #[test]
        fn edit_script_is_a_valid_mapping(a in arb_tree(3), b in arb_tree(3)) {
            let script = edit_script(&a, &b, &UnitCost);
            if let Err(e) = validate_mapping(&script, &a, &b) {
                prop_assert!(false, "invalid mapping: {}", e);
            }
        }

        #[test]
        fn edit_script_under_weighted_costs(a in arb_tree(4), b in arb_tree(4)) {
            let model = PerLabelCost::new(1)
                .with(LabelId(0), 2)
                .with(LabelId(1), 3)
                .with(LabelId(3), 7);
            let script = edit_script(&a, &b, &model);
            prop_assert_eq!(script.cost, ted(&a, &b, &model));
            if let Err(e) = validate_mapping(&script, &a, &b) {
                prop_assert!(false, "invalid mapping: {}", e);
            }
        }

        #[test]
        fn keeps_have_equal_labels_renames_do_not(a in arb_tree(3), b in arb_tree(3)) {
            use tasm_ted::EditOp;
            let script = edit_script(&a, &b, &UnitCost);
            for op in &script.ops {
                match *op {
                    EditOp::Keep { q, t } => prop_assert_eq!(a.label(q), b.label(t)),
                    EditOp::Rename { q, t } => prop_assert_ne!(a.label(q), b.label(t)),
                    _ => {}
                }
            }
        }
    }
}

/// Admissibility of the lower-bound pruning cascade: every tier must
/// lower-bound the exact Zhang–Shasha distance to **every** subtree of
/// the document — the property that makes cascade pruning exact.
mod cascade_admissibility {
    use super::*;
    use tasm_ted::{CascadeDecision, CascadeScratch, LowerBoundCascade, QueryContext};

    /// Queries stay small so `min_subtree` (one ZS run per subtree)
    /// remains cheap.
    fn arb_query(n_labels: u32) -> impl Strategy<Value = Tree> {
        (any::<u64>(), 1usize..=8).prop_map(move |(seed, n)| random_tree(seed, n, n_labels))
    }

    /// Exact `min_{T' ⊆ t} δ(q, T')` by brute force.
    fn min_subtree_ted(q: &Tree, t: &Tree, model: &dyn CostModel) -> Cost {
        t.nodes()
            .map(|id| ted(q, &t.subtree(id), model))
            .min()
            .expect("non-empty")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn histogram_tier_lower_bounds_every_subtree(
            q in arb_query(3),
            t in arb_tree(3),
        ) {
            let ctx = QueryContext::new(&q, &UnitCost);
            let cascade = LowerBoundCascade::from_context(&ctx);
            let mut scratch = CascadeScratch::new();
            let bound = cascade.histogram_bound(t.view(), &mut scratch);
            let exact = min_subtree_ted(&q, &t, &UnitCost);
            prop_assert!(bound <= exact, "histogram {} > min subtree ted {}", bound, exact);
        }

        #[test]
        fn sed_tier_lower_bounds_every_subtree(
            q in arb_query(3),
            t in arb_tree(3),
        ) {
            let ctx = QueryContext::new(&q, &UnitCost);
            let cascade = LowerBoundCascade::from_context(&ctx);
            let mut scratch = CascadeScratch::new();
            let bound = cascade.sed_lower_bound(t.view(), &mut scratch);
            let exact = min_subtree_ted(&q, &t, &UnitCost);
            prop_assert!(bound <= exact, "sed {} > min subtree ted {}", bound, exact);
        }

        #[test]
        fn tiers_stay_admissible_under_weighted_costs(
            q in arb_query(4),
            t in arb_tree(4),
        ) {
            // Label i costs i + 1: fractional renames, document costs the
            // SED tier must under- (never over-) approximate.
            let model = PerLabelCost::new(1)
                .with(LabelId(0), 1)
                .with(LabelId(1), 2)
                .with(LabelId(2), 3)
                .with(LabelId(3), 4);
            let ctx = QueryContext::new(&q, &model);
            let cascade = LowerBoundCascade::from_context(&ctx);
            let mut scratch = CascadeScratch::new();
            let exact = min_subtree_ted(&q, &t, &model);
            let hist = cascade.histogram_bound(t.view(), &mut scratch);
            let sed = cascade.sed_lower_bound(t.view(), &mut scratch);
            prop_assert!(hist <= exact, "histogram {} > {}", hist, exact);
            prop_assert!(sed <= exact, "sed {} > {}", sed, exact);
        }

        #[test]
        fn decide_is_sound_at_every_cutoff(
            q in arb_query(3),
            t in arb_tree(3),
            cutoff_halves in 0u64..24,
        ) {
            // A prune verdict at cutoff c certifies min subtree distance
            // > c — the exactness contract of the cascade.
            let ctx = QueryContext::new(&q, &UnitCost);
            let cascade = LowerBoundCascade::from_context(&ctx);
            let mut scratch = CascadeScratch::new();
            let cutoff = Cost::from_halves(cutoff_halves);
            let decision = cascade.decide(t.view(), cutoff, &mut scratch);
            if decision != CascadeDecision::Evaluate {
                let exact = min_subtree_ted(&q, &t, &UnitCost);
                prop_assert!(
                    exact > cutoff,
                    "{:?} at cutoff {} but min subtree ted is {}",
                    decision, cutoff, exact
                );
            }
        }
    }
}

mod kernel_equality {
    //! The single-path strategy kernel is the same function as
    //! Zhang–Shasha: `δ` is invariant under mirroring both trees, so the
    //! right-path (mirrored) DP and the left-path DP must agree to the
    //! half-unit on every input — including the adversarial shapes each
    //! decomposition is worst on (combs, chains, stars) and under
    //! weighted per-label costs, where the mirrored kernel permutes the
    //! per-node cost arrays.

    use super::*;
    use tasm_ted::{ted_with_kernel, TedKernel};

    /// All three user-facing kernel selections must agree.
    fn assert_kernels_agree(q: &Tree, t: &Tree, model: &dyn CostModel, what: &str) {
        let zs = ted_with_kernel(q, t, model, TedKernel::Zs);
        let st = ted_with_kernel(q, t, model, TedKernel::Strategy);
        let auto = ted_with_kernel(q, t, model, TedKernel::Auto);
        assert_eq!(zs, st, "{what}: zs vs strategy");
        assert_eq!(zs, auto, "{what}: zs vs auto");
        assert_eq!(zs, ted(q, t, model), "{what}: zs vs ted()");
    }

    /// A chain (each node one child), deepest node first in postorder.
    fn chain(n: usize, label_of: impl Fn(usize) -> u32) -> Tree {
        let entries: Vec<(LabelId, u32)> = (0..n)
            .map(|i| (LabelId(label_of(i)), i as u32 + 1))
            .collect();
        Tree::from_postorder(entries).expect("chain encoding is valid")
    }

    /// A left comb: every internal node has a subtree-carrying left
    /// child and a leaf right child (Zhang–Shasha's best case).
    fn left_comb(depth: usize, label_of: impl Fn(usize) -> u32) -> Tree {
        let mut b = TreeBuilder::new();
        fn rec(d: usize, i: &mut usize, label_of: &dyn Fn(usize) -> u32, b: &mut TreeBuilder) {
            let l = LabelId(label_of(*i));
            *i += 1;
            b.start(l);
            if d > 0 {
                rec(d - 1, i, label_of, b);
                let leaf = LabelId(label_of(*i));
                *i += 1;
                b.start(leaf);
                b.end().unwrap();
            }
            b.end().unwrap();
        }
        let mut i = 0;
        rec(depth, &mut i, &label_of, &mut b);
        b.finish().expect("single root")
    }

    /// A right comb: leaf left child, subtree-carrying right child
    /// (Zhang–Shasha's worst case; the right-path kernel's best).
    fn right_comb(depth: usize, label_of: impl Fn(usize) -> u32) -> Tree {
        let mut b = TreeBuilder::new();
        fn rec(d: usize, i: &mut usize, label_of: &dyn Fn(usize) -> u32, b: &mut TreeBuilder) {
            let l = LabelId(label_of(*i));
            *i += 1;
            b.start(l);
            if d > 0 {
                let leaf = LabelId(label_of(*i));
                *i += 1;
                b.start(leaf);
                b.end().unwrap();
                rec(d - 1, i, label_of, b);
            }
            b.end().unwrap();
        }
        let mut i = 0;
        rec(depth, &mut i, &label_of, &mut b);
        b.finish().expect("single root")
    }

    /// A star: one root, `n - 1` leaf children.
    fn star(n: usize, label_of: impl Fn(usize) -> u32) -> Tree {
        let mut b = TreeBuilder::new();
        b.start(LabelId(label_of(0)));
        for i in 1..n {
            b.start(LabelId(label_of(i)));
            b.end().unwrap();
        }
        b.end().unwrap();
        b.finish().expect("single root")
    }

    /// A full binary tree of the given depth.
    fn full_binary(depth: usize, label_of: impl Fn(usize) -> u32) -> Tree {
        let mut b = TreeBuilder::new();
        fn rec(d: usize, i: &mut usize, label_of: &dyn Fn(usize) -> u32, b: &mut TreeBuilder) {
            let l = LabelId(label_of(*i));
            *i += 1;
            b.start(l);
            if d > 0 {
                rec(d - 1, i, label_of, b);
                rec(d - 1, i, label_of, b);
            }
            b.end().unwrap();
        }
        let mut i = 0;
        rec(depth, &mut i, &label_of, &mut b);
        b.finish().expect("single root")
    }

    #[test]
    fn kernels_agree_on_adversarial_shape_pairs() {
        let shapes: Vec<(&str, Tree)> = vec![
            ("chain-7", chain(7, |i| i as u32 % 3)),
            ("chain-1", chain(1, |_| 0)),
            ("left-comb-5", left_comb(5, |i| i as u32 % 4)),
            ("right-comb-5", right_comb(5, |i| i as u32 % 4)),
            ("star-9", star(9, |i| i as u32 % 2)),
            ("binary-3", full_binary(3, |i| i as u32 % 3)),
        ];
        let weighted = PerLabelCost::new(1)
            .with(LabelId(0), 2)
            .with(LabelId(1), 3)
            .with(LabelId(3), 5);
        for (qn, q) in &shapes {
            for (tn, t) in &shapes {
                assert_kernels_agree(q, t, &UnitCost, &format!("{qn} vs {tn} (unit)"));
                assert_kernels_agree(q, t, &weighted, &format!("{qn} vs {tn} (weighted)"));
            }
        }
    }

    #[test]
    fn kernels_agree_on_single_nodes_and_boundaries() {
        // 1-node queries and documents — the τ-boundary degenerate cases
        // of the candidate loop hit these exact inputs.
        let one_a = chain(1, |_| 0);
        let one_b = chain(1, |_| 1);
        assert_kernels_agree(&one_a, &one_a, &UnitCost, "identical single nodes");
        assert_kernels_agree(&one_a, &one_b, &UnitCost, "renamed single nodes");
        assert_kernels_agree(&one_a, &chain(12, |i| i as u32), &UnitCost, "1 vs chain");
        assert_kernels_agree(&star(30, |i| i as u32 % 5), &one_b, &UnitCost, "star vs 1");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn kernels_agree_on_random_trees_unit(q in arb_tree(3), t in arb_tree(3)) {
            let zs = ted_with_kernel(&q, &t, &UnitCost, TedKernel::Zs);
            let st = ted_with_kernel(&q, &t, &UnitCost, TedKernel::Strategy);
            prop_assert_eq!(zs, st);
        }

        #[test]
        fn kernels_agree_on_random_trees_weighted(q in arb_tree(4), t in arb_tree(4)) {
            let model = PerLabelCost::new(1)
                .with(LabelId(0), 1)
                .with(LabelId(1), 2)
                .with(LabelId(2), 3)
                .with(LabelId(3), 4);
            let zs = ted_with_kernel(&q, &t, &model, TedKernel::Zs);
            let st = ted_with_kernel(&q, &t, &model, TedKernel::Strategy);
            let auto = ted_with_kernel(&q, &t, &model, TedKernel::Auto);
            prop_assert_eq!(zs, st);
            prop_assert_eq!(zs, auto);
        }

        #[test]
        fn kernels_agree_on_path_trees(q in arb_path_tree(3), t in arb_path_tree(3)) {
            // Chains are their own mirrors — the permutation is the
            // identity, and any bug there shows up as asymmetry here.
            let zs = ted_with_kernel(&q, &t, &UnitCost, TedKernel::Zs);
            let st = ted_with_kernel(&q, &t, &UnitCost, TedKernel::Strategy);
            prop_assert_eq!(zs, st);
        }
    }
}
