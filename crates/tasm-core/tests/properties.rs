//! Property-based tests for the TASM algorithms.
//!
//! * the prefix ring buffer emits exactly `cand(T, τ)` (Def. 9) — checked
//!   against a brute-force reference and against the simple pruning;
//! * the ring buffer never holds more than τ nodes (Theorem 2);
//! * `TopKHeap::merge` equals offering every entry into one heap;
//! * every returned match respects the Theorem 3 size bound;
//! * the rankings satisfy Def. 1 against exhaustive distances.
//!
//! Cross-algorithm ranking equality (naive/dynamic/postorder/batch/
//! parallel × materialized/streaming × thread counts × cascade on/off)
//! lives in `tests/differential.rs` — one matrix, one oracle — instead
//! of scattered pairwise tests here.

use proptest::prelude::*;
use tasm_core::{
    candidate_set_reference, prb_pruning, simple_pruning, tasm_dynamic,
    tasm_dynamic_with_workspace, tasm_postorder, tasm_postorder_with_workspace, threshold, Match,
    PrefixRingBuffer, TasmOptions, TasmWorkspace, TopKHeap,
};
use tasm_ted::{ted, ted_with_workspace, Cost, TedWorkspace, UnitCost};
use tasm_tree::{LabelId, Tree, TreeBuilder, TreeQueue};

/// Builds a uniformly-shaped random tree of exactly `n` nodes by random
/// attachment: node `i` picks a uniformly random existing parent. Labels
/// are drawn from `n_labels` distinct values so renames and exact matches
/// both occur.
fn random_tree(seed: u64, n: usize, n_labels: u32) -> Tree {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut labels: Vec<u32> = Vec::with_capacity(n);
    labels.push(rng.gen_range(0..n_labels));
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        children[parent].push(i);
        labels.push(rng.gen_range(0..n_labels));
    }
    fn rec(node: usize, children: &[Vec<usize>], labels: &[u32], b: &mut TreeBuilder) {
        b.start(LabelId(labels[node]));
        for &c in &children[node] {
            rec(c, children, labels, b);
        }
        b.end().expect("balanced");
    }
    let mut b = TreeBuilder::with_capacity(n);
    rec(0, &children, &labels, &mut b);
    b.finish().expect("single root")
}

/// Documents: 1–150 nodes over 4 labels.
fn arb_doc() -> impl Strategy<Value = Tree> {
    (any::<u64>(), 1usize..150).prop_map(|(seed, n)| random_tree(seed, n, 4))
}

/// Queries: 1–10 nodes over the same label universe.
fn arb_query() -> impl Strategy<Value = Tree> {
    (any::<u64>(), 1usize..10).prop_map(|(seed, n)| random_tree(seed, n, 4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ring_buffer_equals_reference_candidate_set(doc in arb_doc(), tau in 1u32..40) {
        let mut q = TreeQueue::new(&doc);
        let got = prb_pruning(&mut q, tau);
        let want = candidate_set_reference(&doc, tau);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.root, w.root);
            prop_assert_eq!(&g.tree, &w.tree);
        }
    }

    #[test]
    fn simple_pruning_equals_reference_candidate_set(doc in arb_doc(), tau in 1u32..40) {
        let mut q = TreeQueue::new(&doc);
        let (mut got, _) = simple_pruning(&mut q, tau);
        got.sort_by_key(|c| c.root);
        let want = candidate_set_reference(&doc, tau);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.root, w.root);
            prop_assert_eq!(&g.tree, &w.tree);
        }
    }

    #[test]
    fn ring_buffer_space_bound_theorem_2(doc in arb_doc(), tau in 1u32..40) {
        let mut q = TreeQueue::new(&doc);
        let mut prb = PrefixRingBuffer::new(&mut q, tau);
        while prb.next_candidate().is_some() {}
        prop_assert!(prb.peak_buffered() <= tau as usize);
        prop_assert_eq!(prb.nodes_seen() as usize, doc.len());
    }

    #[test]
    fn candidate_set_partitions_small_subtrees(doc in arb_doc(), tau in 1u32..40) {
        // Every node in a subtree of size <= τ is covered by exactly one
        // candidate; candidates are disjoint.
        let cands = candidate_set_reference(&doc, tau);
        let mut covered = vec![false; doc.len()];
        for c in &cands {
            let lo = (c.root.post() - c.tree.len() as u32) as usize;
            for (i, slot) in covered.iter_mut().enumerate().take(c.root.post() as usize).skip(lo) {
                prop_assert!(!*slot, "overlap at node {}", i + 1);
                *slot = true;
            }
        }
        for id in doc.nodes() {
            if doc.size(id) <= tau {
                prop_assert!(covered[id.index()], "node {} uncovered", id);
            }
        }
    }

    #[test]
    fn heap_merge_equals_single_heap(
        entries in proptest::collection::vec((0u64..6, 1u32..60), 0..24),
        k in 1usize..6,
        split in any::<u64>(),
    ) {
        use tasm_tree::NodeId;
        let mk = |d: u64, r: u32| Match {
            root: NodeId::new(r),
            size: 1,
            distance: tasm_ted::Cost::from_natural(d),
            tree: None,
        };
        let mut one = TopKHeap::new(k);
        let mut left = TopKHeap::new(k);
        let mut right = TopKHeap::new(k);
        for (i, &(d, r)) in entries.iter().enumerate() {
            one.offer(mk(d, r));
            if (split >> (i % 64)) & 1 == 0 {
                left.offer(mk(d, r));
            } else {
                right.offer(mk(d, r));
            }
        }
        left.merge(right);
        prop_assert_eq!(left.into_sorted(), one.into_sorted());
    }

    #[test]
    fn ranking_satisfies_definition_1(
        q in arb_query(),
        t in arb_doc(),
        k in 1usize..6,
    ) {
        let opts = TasmOptions::default();
        let mut stream = TreeQueue::new(&t);
        let ranking = tasm_postorder(&q, &mut stream, k, &UnitCost, 1, opts, None);
        let k_eff = k.min(t.len());
        prop_assert_eq!(ranking.len(), k_eff);
        // Condition 2: sorted by distance.
        for w in ranking.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
        }
        // Condition 1: no excluded subtree beats the k-th ranked one.
        let worst = ranking.last().unwrap().distance;
        let ranked: std::collections::HashSet<u32> =
            ranking.iter().map(|m| m.root.post()).collect();
        for j in t.nodes() {
            if !ranked.contains(&j.post()) {
                let d = ted(&q, &t.subtree(j), &UnitCost);
                prop_assert!(
                    worst <= d,
                    "excluded subtree {} at distance {} beats ranked max {}",
                    j, d, worst
                );
            }
        }
    }

    #[test]
    fn theorem_3_size_bound_holds(
        q in arb_query(),
        t in arb_doc(),
        k in 1usize..6,
    ) {
        let tau = threshold(q.len() as u64, 1, 1, k as u64);
        let mut stream = TreeQueue::new(&t);
        let ranking =
            tasm_postorder(&q, &mut stream, k, &UnitCost, 1, TasmOptions::default(), None);
        for m in &ranking {
            prop_assert!(u64::from(m.size) <= tau, "match size {} > τ {}", m.size, tau);
            // Lemma 3 per match: |T_i| <= δ + |Q|.
            prop_assert!(
                u64::from(m.size) <= m.distance.floor_natural() + q.len() as u64
            );
        }
    }

    #[test]
    fn workspace_reuse_is_identical_to_fresh_allocation(
        runs in proptest::collection::vec((arb_query(), arb_doc(), 1usize..7), 2..5),
    ) {
        // One workspace reused across *different* query/document pairs —
        // consecutive candidates (and whole documents) of different
        // sizes must leave no trace: results are identical to the
        // fresh-allocation wrappers in every field.
        let mut ws = TasmWorkspace::new();
        let mut ted_ws = TedWorkspace::new();
        for (q, t, k) in &runs {
            let (q, t, k) = (q, t, *k);
            let opts = TasmOptions { keep_trees: true, ..Default::default() };

            let fresh_dy = tasm_dynamic(q, t, k, &UnitCost, opts, None);
            let reuse_dy = tasm_dynamic_with_workspace(q, t, k, &UnitCost, opts, &mut ws, None);
            prop_assert_eq!(&fresh_dy, &reuse_dy);

            let mut s1 = TreeQueue::new(t);
            let fresh_po = tasm_postorder(q, &mut s1, k, &UnitCost, 1, opts, None);
            let mut s2 = TreeQueue::new(t);
            let reuse_po =
                tasm_postorder_with_workspace(q, &mut s2, k, &UnitCost, 1, opts, &mut ws, None);
            prop_assert_eq!(&fresh_po, &reuse_po);

            prop_assert_eq!(
                ted(q, t, &UnitCost),
                ted_with_workspace(q, t, &UnitCost, &mut ted_ws)
            );
        }
    }

    #[test]
    fn match_sizes_and_trees_are_consistent(
        q in arb_query(),
        t in arb_doc(),
        k in 1usize..4,
    ) {
        let opts = TasmOptions { keep_trees: true, ..Default::default() };
        let mut stream = TreeQueue::new(&t);
        let ranking = tasm_postorder(&q, &mut stream, k, &UnitCost, 1, opts, None);
        for m in &ranking {
            let tree = m.tree.as_ref().expect("keep_trees");
            prop_assert_eq!(tree.len() as u32, m.size);
            prop_assert_eq!(tree, &t.subtree(m.root));
            prop_assert_eq!(ted(&q, tree, &UnitCost), m.distance);
        }
    }
}

#[test]
fn zero_cost_between_identical_query_everywhere() {
    // A document made of repeated copies of the query: top-k are all exact.
    let mut b = TreeBuilder::new();
    b.start(LabelId(9));
    for _ in 0..6 {
        b.start(LabelId(0));
        b.leaf(LabelId(1));
        b.leaf(LabelId(2));
        b.end().unwrap();
    }
    b.end().unwrap();
    let doc = b.finish().unwrap();
    let query =
        Tree::from_postorder(vec![(LabelId(1), 1), (LabelId(2), 1), (LabelId(0), 3)]).unwrap();
    let mut stream = TreeQueue::new(&doc);
    let top4 = tasm_postorder(
        &query,
        &mut stream,
        4,
        &UnitCost,
        1,
        TasmOptions::default(),
        None,
    );
    assert_eq!(top4.len(), 4);
    assert!(top4.iter().all(|m| m.distance == Cost::ZERO));
}

#[test]
fn generated_docs_are_nontrivial() {
    // Guard against the generators silently collapsing to single nodes:
    // sample documents across many seeds and require real spread.
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::default();
    let strat = arb_doc();
    let mut sizes = Vec::new();
    for _ in 0..200 {
        let tree = strat.new_tree(&mut runner).unwrap().current();
        sizes.push(tree.len());
    }
    let max = *sizes.iter().max().unwrap();
    let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
    assert!(max >= 40, "largest sampled doc only {max} nodes");
    assert!(avg >= 5.0, "average sampled doc only {avg:.1} nodes");
}
