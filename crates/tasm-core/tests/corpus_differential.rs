//! Differential tests pinning the corpus query path to its reference
//! semantics: `tasm_corpus` over N shards must return exactly the
//! concatenation of per-document `tasm_indexed` runs, sorted on the
//! corpus rank key `(distance, shard, postorder, size)` and truncated
//! to `k` — under every combination of thread count, pruning cascade,
//! and TED kernel, and with shards quarantined mid-corpus.
//!
//! The reference is computed ONCE with default options: distances are
//! kernel-independent and the rank key is a total order, so every axis
//! combination must reproduce the identical ranking, byte for byte.

use std::fs;
use std::path::{Path, PathBuf};

use tasm_core::{
    tasm_corpus_batch, tasm_corpus_batch_with_stats, tasm_indexed, BatchQuery, CorpusMatch,
    ScanStats, TasmOptions, TedKernel,
};
use tasm_index::Corpus;
use tasm_ted::UnitCost;
use tasm_tree::{LabelDict, LabelId, Tree, TreeBuilder};

/// Random tree by uniform attachment (the same shape generator the
/// other differential suites use).
fn random_tree(seed: u64, n: usize, n_labels: u32) -> Tree {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut labels: Vec<u32> = Vec::with_capacity(n);
    labels.push(rng.gen_range(0..n_labels));
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        children[parent].push(i);
        labels.push(rng.gen_range(0..n_labels));
    }
    fn rec(node: usize, children: &[Vec<usize>], labels: &[u32], b: &mut TreeBuilder) {
        b.start(LabelId(labels[node]));
        for &c in &children[node] {
            rec(c, children, labels, b);
        }
        b.end().expect("balanced");
    }
    let mut b = TreeBuilder::with_capacity(n);
    rec(0, &children, &labels, &mut b);
    b.finish().expect("single root")
}

/// A dictionary naming labels `l0..l<n>` so every document and query
/// shares one label universe.
fn label_dict(n_labels: u32) -> LabelDict {
    let mut dict = LabelDict::new();
    for i in 0..n_labels {
        dict.intern(&format!("l{i}"));
    }
    dict
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tasm-cdiff-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Five random documents of varied size, one label universe.
fn build_corpus(dir: &Path, n_labels: u32) -> Corpus {
    let dict = label_dict(n_labels);
    let mut corpus = Corpus::create(dir).unwrap();
    for (i, n) in [120usize, 45, 200, 80, 150].iter().enumerate() {
        let tree = random_tree(1000 + i as u64, *n, n_labels);
        corpus.add(&format!("doc-{i}"), &tree, &dict, None).unwrap();
    }
    corpus
}

/// Comparable projection of a corpus ranking.
fn key(ms: &[CorpusMatch]) -> Vec<(String, u32, u64, u32)> {
    ms.iter()
        .map(|m| {
            (
                m.doc.clone(),
                m.hit.root.post(),
                m.hit.distance.halves(),
                m.hit.size,
            )
        })
        .collect()
}

/// Per-document `tasm_indexed` runs over the healthy shards, merged on
/// the corpus rank key — the semantics every axis must reproduce.
fn reference(
    corpus: &Corpus,
    queries: &[&Tree],
    qdict: &LabelDict,
    k: usize,
) -> Vec<Vec<CorpusMatch>> {
    queries
        .iter()
        .map(|q| {
            let mut lane: Vec<CorpusMatch> = Vec::new();
            for (shard, name, doc) in corpus.healthy() {
                let hits = tasm_indexed(q, qdict, doc, k, &UnitCost, 1, TasmOptions::default(), 1);
                lane.extend(hits.into_iter().map(|hit| CorpusMatch {
                    doc: name.to_string(),
                    shard,
                    hit,
                }));
            }
            lane.sort_by_key(|m| (m.hit.distance, m.shard, m.hit.root.post(), m.hit.size));
            lane.truncate(k);
            lane
        })
        .collect()
}

/// Runs the full axis matrix against `corpus` and compares every combo
/// to the shared reference.
fn assert_matrix(corpus: &Corpus, tag: &str) {
    let n_labels = 5;
    let qdict = label_dict(n_labels);
    let q1 = random_tree(77, 6, n_labels);
    let q2 = random_tree(78, 4, n_labels);
    let q3 = random_tree(79, 8, n_labels);
    let queries = [&q1, &q2, &q3];
    let k = 7;
    let want: Vec<_> = reference(corpus, &queries, &qdict, k)
        .iter()
        .map(|lane| key(lane))
        .collect();
    let bqs: Vec<BatchQuery<'_>> = queries
        .iter()
        .map(|query| BatchQuery { query, k })
        .collect();
    for threads in [1usize, 2, 4, 7] {
        for use_cascade in [true, false] {
            for kernel in [TedKernel::Auto, TedKernel::Zs, TedKernel::Strategy] {
                let opts = TasmOptions {
                    use_cascade,
                    kernel,
                    ..Default::default()
                };
                let (got, status) =
                    tasm_corpus_batch(&bqs, &qdict, corpus, &UnitCost, 1, opts, threads);
                assert_eq!(status.total, corpus.total_shards());
                assert_eq!(status.healthy, corpus.healthy_count());
                for (lane, (got_lane, want_lane)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        &key(got_lane),
                        want_lane,
                        "{tag}: lane {lane} diverged at threads={threads} \
                         cascade={use_cascade} kernel={kernel:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn corpus_matches_merged_per_document_runs_across_all_axes() {
    let dir = tmp_dir("healthy");
    let corpus = build_corpus(&dir, 5);
    assert_matrix(&corpus, "healthy corpus");
    fs::remove_dir_all(&dir).unwrap();
}

/// The shard-parallel axis, stats included: for every worker/lane
/// split the scheduler must reproduce the sequential run — rankings
/// down to ids, merged funnels, and a per-shard breakdown that covers
/// exactly the healthy shards in manifest order.
fn assert_scheduled_stats(corpus: &Corpus, tag: &str) {
    let n_labels = 5;
    let qdict = label_dict(n_labels);
    let q1 = random_tree(77, 6, n_labels);
    let q2 = random_tree(78, 4, n_labels);
    let queries = [&q1, &q2];
    let k = 7;
    let bqs: Vec<BatchQuery<'_>> = queries
        .iter()
        .map(|query| BatchQuery { query, k })
        .collect();
    let opts = TasmOptions::default();
    let sequential =
        tasm_corpus_batch_with_stats(&bqs, &qdict, corpus, &UnitCost, 1, opts, 1, None);
    let healthy_shards: Vec<usize> = corpus.healthy().map(|(i, _, _)| i).collect();
    let healthy_names: Vec<String> = corpus
        .healthy()
        .map(|(_, name, _)| name.to_string())
        .collect();
    for threads in [2usize, 4, 7] {
        let scheduled =
            tasm_corpus_batch_with_stats(&bqs, &qdict, corpus, &UnitCost, 1, opts, threads, None);
        for (lane, (got, want)) in scheduled
            .rankings
            .iter()
            .zip(&sequential.rankings)
            .enumerate()
        {
            assert_eq!(
                key(got),
                key(want),
                "{tag}: lane {lane} diverged at threads={threads}"
            );
        }
        assert_eq!(scheduled.status, sequential.status);
        // With one inner lane per worker every shard evaluates exactly
        // as in the sequential run, so the whole funnel is identical.
        // When threads outnumber shards the leftover budget becomes
        // intra-shard lanes, which may prune differently; the candidate
        // count is scan-determined and stays invariant regardless.
        let workers = threads.min(healthy_shards.len());
        if threads / workers <= 1 {
            assert_eq!(scheduled.scan, sequential.scan, "{tag}: threads={threads}");
            assert_eq!(scheduled.lane_scans, sequential.lane_scans);
        }
        assert_eq!(scheduled.scan.candidates, sequential.scan.candidates);
        // Per-shard stats: exactly the healthy shards, manifest order,
        // funnels summing to the merged funnel.
        let shards: Vec<usize> = scheduled.shard_stats.iter().map(|s| s.shard).collect();
        assert_eq!(shards, healthy_shards, "{tag}: threads={threads}");
        let names: Vec<String> = scheduled
            .shard_stats
            .iter()
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(names, healthy_names);
        let mut summed = ScanStats::default();
        for s in &scheduled.shard_stats {
            summed.merge(&s.scan);
        }
        assert_eq!(summed, scheduled.scan, "{tag}: threads={threads}");
    }
}

#[test]
fn scheduled_runs_reproduce_sequential_stats_and_shard_coverage() {
    let dir = tmp_dir("sched-healthy");
    let corpus = build_corpus(&dir, 5);
    // 5 healthy shards: threads 7 → 5 workers × 1 inner lane.
    assert_scheduled_stats(&corpus, "healthy corpus");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn scheduled_runs_reproduce_sequential_stats_when_degraded() {
    let dir = tmp_dir("sched-degraded");
    drop(build_corpus(&dir, 5));
    for name in ["doc-0", "doc-3"] {
        let path = dir.join(format!("{name}.pqi"));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0x08;
        fs::write(&path, &bytes).unwrap();
    }
    let corpus = Corpus::open(&dir).unwrap();
    assert_eq!(corpus.healthy_count(), 3);
    // 3 survivors: threads 7 → 3 workers × 2 inner lanes, covering the
    // intra-shard fallback regime of the scheduler.
    assert_scheduled_stats(&corpus, "degraded corpus");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn degraded_corpus_matches_the_reference_over_surviving_shards() {
    let dir = tmp_dir("degraded");
    drop(build_corpus(&dir, 5));
    // Corrupt two shards; the matrix must hold exactly over the three
    // survivors — corruption never perturbs healthy rankings.
    for name in ["doc-0", "doc-3"] {
        let path = dir.join(format!("{name}.pqi"));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0x08;
        fs::write(&path, &bytes).unwrap();
    }
    let corpus = Corpus::open(&dir).unwrap();
    assert_eq!(corpus.healthy_count(), 3);
    assert!(corpus.is_degraded());
    assert_matrix(&corpus, "degraded corpus");
    fs::remove_dir_all(&dir).unwrap();
}
