//! End-to-end daemon tests: a real [`Server`] behind a real Unix
//! socket, driven by real client connections.
//!
//! The protocol surface (PING/DOCS/QUERY/SHUTDOWN, ERR kinds, BUSY,
//! truncated requests) is exercised without any fault-injection
//! feature; the paths that need a misbehaving *worker* (panic
//! isolation, stalls) live in `server_faults.rs` behind
//! `--features fault-inject`.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tasm_core::{tasm_corpus, tasm_postorder, Doc, DocStore, Server, ServerConfig, TasmOptions};
use tasm_index::Corpus;
use tasm_ted::UnitCost;
use tasm_tree::{bracket, LabelDict, TreeQueue};

const DOC: &str =
    "{dblp{article{auth{John}}{title{X1}}}{article{auth{Mary}}{title{X2}}}{book{title{X3}}}}";

fn store() -> (DocStore, LabelDict) {
    let mut dict = LabelDict::new();
    let tree = bracket::parse(DOC, &mut dict).unwrap();
    let mut store = DocStore::new();
    store.insert(Doc::new("dblp", tree, dict.clone()));
    (store, dict)
}

struct Daemon {
    path: PathBuf,
    handle: JoinHandle<bool>,
}

impl Daemon {
    /// Serves `cfg` over a fresh Unix socket; the thread exits after a
    /// SHUTDOWN request, returning `drain()`'s verdict.
    fn start(name: &str, cfg: ServerConfig) -> Daemon {
        let (store, _) = store();
        Daemon::start_with_store(name, cfg, store)
    }

    fn start_with_store(name: &str, cfg: ServerConfig, store: DocStore) -> Daemon {
        let path = std::env::temp_dir().join(format!(
            "tasm-core-daemon-{}-{name}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).unwrap();
        let server = Server::new(cfg, store, None);
        let handle = std::thread::spawn(move || {
            server.serve_unix(&listener, None).unwrap();
            server.drain()
        });
        Daemon { path, handle }
    }

    fn connect(&self) -> (BufReader<UnixStream>, UnixStream) {
        let stream = UnixStream::connect(&self.path).unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    }

    /// SHUTDOWN over a fresh connection, then join the serve thread.
    fn shutdown(self) -> bool {
        let (mut rd, mut wr) = self.connect();
        wr.write_all(b"SHUTDOWN\n").unwrap();
        assert_eq!(read_line(&mut rd), "OK draining");
        let clean = self.handle.join().unwrap();
        let _ = std::fs::remove_file(&self.path);
        clean
    }
}

fn read_line(rd: &mut BufReader<UnixStream>) -> String {
    let mut line = String::new();
    rd.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

/// Sends one request line and collects the full response (single line,
/// or OK/DOCS header + rows + END).
fn roundtrip(rd: &mut BufReader<UnixStream>, wr: &mut UnixStream, req: &str) -> Vec<String> {
    wr.write_all(req.as_bytes()).unwrap();
    wr.write_all(b"\n").unwrap();
    let head = read_line(rd);
    let mut out = vec![head.clone()];
    if head.starts_with("OK ") && head != "OK draining" || head.starts_with("DOCS ") {
        loop {
            let row = read_line(rd);
            let done = row == "END";
            out.push(row);
            if done {
                break;
            }
        }
    }
    out
}

#[test]
fn ping_docs_query_match_the_oneshot_engine() {
    let daemon = Daemon::start("basic", ServerConfig::default());
    let (mut rd, mut wr) = daemon.connect();

    assert_eq!(roundtrip(&mut rd, &mut wr, "PING"), ["PONG"]);

    let docs = roundtrip(&mut rd, &mut wr, "DOCS");
    assert_eq!(docs[0], "DOCS 1");
    assert!(docs[1].starts_with("dblp "), "{docs:?}");

    // Differential: the daemon's ranking is the one-shot engine's.
    let query_text = "{article{auth}{title}}";
    let resp = roundtrip(
        &mut rd,
        &mut wr,
        &format!("QUERY doc=dblp k=3 q={query_text}"),
    );
    let (_, mut dict) = store();
    let query = bracket::parse(query_text, &mut dict).unwrap();
    let doc = bracket::parse(DOC, &mut dict).unwrap();
    let mut queue = TreeQueue::new(&doc);
    let expect = tasm_postorder(
        &query,
        &mut queue,
        3,
        &UnitCost,
        1,
        TasmOptions::default(),
        None,
    );
    assert_eq!(resp[0], format!("OK {}", expect.len()));
    for (i, m) in expect.iter().enumerate() {
        assert_eq!(
            resp[1 + i],
            format!("{} {} {} {}", i + 1, m.root.post(), m.distance, m.size)
        );
    }
    assert_eq!(resp.last().unwrap(), "END");

    assert!(daemon.shutdown(), "drain must be clean");
}

#[test]
fn protocol_errors_are_structured_and_survivable() {
    let daemon = Daemon::start("errors", ServerConfig::default());
    let (mut rd, mut wr) = daemon.connect();

    // A garbage line costs one ERR proto, not the connection.
    let resp = roundtrip(&mut rd, &mut wr, "FROBNICATE all the things");
    assert!(resp[0].starts_with("ERR proto "), "{resp:?}");
    assert_eq!(roundtrip(&mut rd, &mut wr, "PING"), ["PONG"]);

    let resp = roundtrip(&mut rd, &mut wr, "QUERY doc=nope k=1 q={a}");
    assert!(resp[0].starts_with("ERR doc "), "{resp:?}");

    let resp = roundtrip(&mut rd, &mut wr, "QUERY doc=dblp k=0 q={a}");
    assert!(resp[0].starts_with("ERR parse "), "{resp:?}");

    let resp = roundtrip(&mut rd, &mut wr, "QUERY doc=dblp k=999999999 q={a}");
    assert!(
        resp[0].starts_with("ERR parse ") && resp[0].contains("server limit"),
        "{resp:?}"
    );

    let resp = roundtrip(&mut rd, &mut wr, "QUERY doc=dblp k=1 q={unclosed");
    assert!(resp[0].starts_with("ERR parse "), "{resp:?}");

    assert!(daemon.shutdown());
}

#[test]
fn truncated_request_is_diagnosed_and_dropped() {
    let daemon = Daemon::start("truncated", ServerConfig::default());
    let (mut rd, wr) = daemon.connect();

    // A request cut off mid-line (no trailing newline, then EOF).
    (&wr).write_all(b"QUERY doc=dblp k=1 q={a").unwrap();
    wr.shutdown(Shutdown::Write).unwrap();
    let resp = read_line(&mut rd);
    assert!(
        resp.starts_with("ERR proto truncated request"),
        "got: {resp}"
    );
    // The daemon dropped only THIS connection; a fresh one works.
    let (mut rd2, mut wr2) = daemon.connect();
    assert_eq!(roundtrip(&mut rd2, &mut wr2, "PING"), ["PONG"]);

    assert!(daemon.shutdown());
}

#[test]
fn an_already_expired_deadline_times_out_with_no_partial_ranking() {
    let daemon = Daemon::start("deadline", ServerConfig::default());
    let (mut rd, mut wr) = daemon.connect();

    // timeout=0: the deadline has passed before the scan starts; the
    // forced pre-scan check refuses the request.
    let resp = roundtrip(&mut rd, &mut wr, "QUERY doc=dblp k=2 timeout=0 q={article}");
    assert!(resp[0].starts_with("ERR timeout "), "{resp:?}");
    assert!(resp[0].contains("no partial ranking"), "{resp:?}");

    // The worker is fine afterwards.
    let resp = roundtrip(&mut rd, &mut wr, "QUERY doc=dblp k=1 q={article}");
    assert!(resp[0].starts_with("OK "), "{resp:?}");

    assert!(daemon.shutdown());
}

/// On-disk corpus for the daemon tests: two bracket documents whose
/// subtree structure mirrors the tree-doc fixture.
fn corpus_on_disk(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tasm-daemon-corpus-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut corpus = Corpus::create(&dir).unwrap();
    let docs = [
        (
            "alpha",
            "{dblp{article{auth{John}}{title{X1}}}{book{title{X2}}}}",
        ),
        (
            "beta",
            "{dblp{article{auth{Mary}}{title{X2}}}{article{auth{John}}{title{X3}}}}",
        ),
    ];
    for (name, src) in docs {
        let mut dict = LabelDict::new();
        let tree = bracket::parse(src, &mut dict).unwrap();
        corpus.add(name, &tree, &dict, None).unwrap();
    }
    dir
}

fn corpus_store(dir: &PathBuf) -> DocStore {
    let corpus = Corpus::open(dir).unwrap();
    let mut store = DocStore::new();
    store.insert(Doc::new_corpus("corp", Arc::new(corpus)));
    store
}

#[test]
fn corpus_doc_rows_carry_the_document_and_match_the_engine() {
    let dir = corpus_on_disk("healthy");
    let daemon = Daemon::start_with_store("corpus", ServerConfig::default(), corpus_store(&dir));
    let (mut rd, mut wr) = daemon.connect();

    let docs = roundtrip(&mut rd, &mut wr, "DOCS");
    assert_eq!(docs[0], "DOCS 1");
    assert!(docs[1].starts_with("corp "), "{docs:?}");

    let query_text = "{article{auth{John}}{title{X1}}}";
    let resp = roundtrip(
        &mut rd,
        &mut wr,
        &format!("QUERY doc=corp k=3 q={query_text}"),
    );
    // Healthy corpus: no degraded marker on the OK line.
    assert_eq!(resp[0], "OK 3", "{resp:?}");

    // Differential: identical to the direct corpus engine call.
    let corpus = Corpus::open(&dir).unwrap();
    let mut qdict = corpus.global_dict().clone();
    let query = bracket::parse(query_text, &mut qdict).unwrap();
    let (expect, status) = tasm_corpus(
        &query,
        &qdict,
        &corpus,
        3,
        &UnitCost,
        1,
        TasmOptions::default(),
        1,
    );
    assert!(!status.is_degraded());
    for (i, m) in expect.iter().enumerate() {
        assert_eq!(
            resp[1 + i],
            format!(
                "{} {} {} {} {}",
                i + 1,
                m.hit.root.post(),
                m.hit.distance,
                m.hit.size,
                m.doc
            )
        );
    }
    // The exact match lives in alpha.
    assert!(resp[1].ends_with(" alpha"), "{resp:?}");
    assert_eq!(resp.last().unwrap(), "END");

    // stats=1 adds the funnel with the shard health count.
    let resp = roundtrip(
        &mut rd,
        &mut wr,
        &format!("QUERY doc=corp k=3 stats=1 q={query_text}"),
    );
    let stats_line = resp
        .iter()
        .find(|l| l.starts_with("STATS "))
        .expect("STATS line present");
    assert!(stats_line.contains("candidates="), "{stats_line}");
    assert!(stats_line.contains("shards=2/2"), "{stats_line}");

    assert!(daemon.shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_corpus_answers_with_an_explicit_marker() {
    let dir = corpus_on_disk("degraded");
    // Corrupt beta's shard: the daemon must keep serving alpha.
    let shard = dir.join("beta.pqi");
    let mut bytes = std::fs::read(&shard).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x02;
    std::fs::write(&shard, &bytes).unwrap();

    let daemon = Daemon::start_with_store("degraded", ServerConfig::default(), corpus_store(&dir));
    let (mut rd, mut wr) = daemon.connect();
    let resp = roundtrip(
        &mut rd,
        &mut wr,
        "QUERY doc=corp k=2 stats=1 q={article{auth{John}}{title{X1}}}",
    );
    assert!(resp[0].starts_with("OK 2 degraded=1/2"), "{resp:?}");
    for row in &resp[1..resp.len() - 2] {
        assert!(row.ends_with(" alpha"), "quarantined doc leaked: {resp:?}");
    }
    let stats_line = resp.iter().find(|l| l.starts_with("STATS ")).unwrap();
    assert!(stats_line.contains("shards=1/2"), "{stats_line}");

    assert!(daemon.shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fully_quarantined_corpus_refuses_queries_but_keeps_serving() {
    let dir = corpus_on_disk("dead");
    for name in ["alpha", "beta"] {
        let shard = dir.join(format!("{name}.pqi"));
        let mut bytes = std::fs::read(&shard).unwrap();
        bytes.truncate(bytes.len() - 1);
        std::fs::write(&shard, &bytes).unwrap();
    }
    let daemon = Daemon::start_with_store("dead", ServerConfig::default(), corpus_store(&dir));
    let (mut rd, mut wr) = daemon.connect();
    let resp = roundtrip(&mut rd, &mut wr, "QUERY doc=corp k=1 q={article}");
    assert!(resp[0].starts_with("ERR doc "), "{resp:?}");
    assert!(resp[0].contains("quarantined"), "{resp:?}");
    // The daemon itself is healthy: the refusal is per-document.
    assert_eq!(roundtrip(&mut rd, &mut wr, "PING"), ["PONG"]);
    assert!(daemon.shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queries_after_shutdown_are_shed_with_busy() {
    let daemon = Daemon::start("late", ServerConfig::default());
    // Open the connection BEFORE the drain begins…
    let (mut rd, mut wr) = daemon.connect();
    let (mut srd, mut swr) = daemon.connect();
    swr.write_all(b"SHUTDOWN\n").unwrap();
    assert_eq!(read_line(&mut srd), "OK draining");
    // …and race the request against it: once draining, admission sheds.
    let mut saw_busy = false;
    for _ in 0..10 {
        let resp = roundtrip(&mut rd, &mut wr, "QUERY doc=dblp k=1 q={a}");
        if resp[0].starts_with("BUSY retry-after-ms=") {
            saw_busy = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(saw_busy, "post-drain queries must be shed with BUSY");
    assert!(daemon.handle.join().unwrap(), "drain stays clean");
    let _ = std::fs::remove_file(&daemon.path);
}
