//! Fault-matrix tests for the daemon: every recovery path that needs a
//! *misbehaving worker* to become reachable. Compiled only with
//! `--features fault-inject`, which arms the magic query labels
//! (`__fault_panic__`, `__fault_sleep_<ms>__`) inside the evaluation
//! path.
//!
//! Matrix rows covered here: in-request panic, stall past deadline,
//! overload burst, SIGTERM-style drain with a request in flight. The
//! torn-bytes rows (short read, truncation, corruption) live against
//! the file formats in `tasm-index`/`tasm-tree` and against the CLI in
//! `tasm-cli`.

#![cfg(all(unix, feature = "fault-inject"))]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Duration;

use tasm_core::{Doc, DocStore, Server, ServerConfig};
use tasm_tree::{bracket, LabelDict};

const DOC: &str = "{dblp{article{auth{John}}{title{X1}}}{book{title{X2}}}}";

struct Daemon {
    path: PathBuf,
    handle: JoinHandle<bool>,
}

impl Daemon {
    fn start(name: &str, cfg: ServerConfig) -> Daemon {
        let path = std::env::temp_dir().join(format!(
            "tasm-core-faults-{}-{name}.sock",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).unwrap();
        let mut dict = LabelDict::new();
        let tree = bracket::parse(DOC, &mut dict).unwrap();
        let mut store = DocStore::new();
        store.insert(Doc::new("dblp", tree, dict));
        let server = Server::new(cfg, store, None);
        let handle = std::thread::spawn(move || {
            server.serve_unix(&listener, None).unwrap();
            server.drain()
        });
        Daemon { path, handle }
    }

    fn connect(&self) -> (BufReader<UnixStream>, UnixStream) {
        let stream = UnixStream::connect(&self.path).unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    }

    fn shutdown(self) -> bool {
        let (mut rd, mut wr) = self.connect();
        wr.write_all(b"SHUTDOWN\n").unwrap();
        assert_eq!(read_line(&mut rd), "OK draining");
        let clean = self.handle.join().unwrap();
        let _ = std::fs::remove_file(&self.path);
        clean
    }
}

fn read_line(rd: &mut BufReader<UnixStream>) -> String {
    let mut line = String::new();
    rd.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

fn roundtrip(rd: &mut BufReader<UnixStream>, wr: &mut UnixStream, req: &str) -> Vec<String> {
    wr.write_all(req.as_bytes()).unwrap();
    wr.write_all(b"\n").unwrap();
    let head = read_line(rd);
    let mut out = vec![head.clone()];
    if head.starts_with("OK ") && head != "OK draining" {
        loop {
            let row = read_line(rd);
            let done = row == "END";
            out.push(row);
            if done {
                break;
            }
        }
    }
    out
}

#[test]
fn in_request_panic_is_isolated_and_the_daemon_keeps_serving() {
    let daemon = Daemon::start("panic", ServerConfig::default());
    let (mut rd, mut wr) = daemon.connect();

    let resp = roundtrip(&mut rd, &mut wr, "QUERY doc=dblp k=1 q={__fault_panic__}");
    assert!(resp[0].starts_with("ERR internal "), "{resp:?}");

    // Same daemon, same connection: the poisoned workspace was
    // discarded, a fresh one answers correctly.
    let resp = roundtrip(&mut rd, &mut wr, "QUERY doc=dblp k=2 q={article{auth}}");
    assert!(resp[0].starts_with("OK "), "{resp:?}");
    assert_eq!(resp.last().unwrap(), "END");

    assert!(daemon.shutdown(), "panic must not dirty the drain");
}

#[test]
fn a_stalled_request_times_out_while_later_requests_still_answer() {
    let daemon = Daemon::start("stall", ServerConfig::default());
    let (mut rd, mut wr) = daemon.connect();

    // The worker stalls 200 ms; the request's budget is 30 ms. The
    // pre-scan deadline check refuses it — structured, no partials.
    let resp = roundtrip(
        &mut rd,
        &mut wr,
        "QUERY doc=dblp k=1 timeout=30 q={__fault_sleep_200__}",
    );
    assert!(resp[0].starts_with("ERR timeout "), "{resp:?}");
    assert!(resp[0].contains("30 ms"), "{resp:?}");

    let resp = roundtrip(&mut rd, &mut wr, "QUERY doc=dblp k=1 q={article}");
    assert!(resp[0].starts_with("OK "), "{resp:?}");

    assert!(daemon.shutdown());
}

#[test]
fn overload_burst_is_shed_with_busy_not_queued_without_bound() {
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 2,
        batch_window: Duration::ZERO,
        ..ServerConfig::default()
    };
    let daemon = Daemon::start("burst", cfg);

    // Wedge the single worker for 400 ms…
    let (mut wrd, mut wwr) = daemon.connect();
    wwr.write_all(b"QUERY doc=dblp k=1 timeout=2000 q={__fault_sleep_400__}\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(60)); // worker holds it now

    // …then burst 6 clients at a queue of capacity 2.
    let heads: Vec<String> = (0..6)
        .map(|_| {
            let (mut rd, mut wr) = daemon.connect();
            std::thread::spawn(move || {
                roundtrip(
                    &mut rd,
                    &mut wr,
                    "QUERY doc=dblp k=1 timeout=2000 q={article}",
                )[0]
                .clone()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    let busy = heads
        .iter()
        .filter(|h| h.starts_with("BUSY retry-after-ms="))
        .count();
    let ok = heads.iter().filter(|h| h.starts_with("OK ")).count();
    assert_eq!(busy + ok, 6, "{heads:?}");
    assert!(
        busy >= 4,
        "capacity 2 must shed most of the burst: {heads:?}"
    );
    assert!(ok >= 1, "queued requests still complete: {heads:?}");

    // The wedged request itself completes fine (2 s budget > 400 ms).
    assert!(read_line(&mut wrd).starts_with("OK "), "wedge answer");

    assert!(daemon.shutdown());
}

#[test]
fn drain_waits_for_the_in_flight_request() {
    let daemon = Daemon::start("drain", ServerConfig::default());

    // A request that will still be running when SHUTDOWN lands.
    let (mut rd, mut wr) = daemon.connect();
    wr.write_all(b"QUERY doc=dblp k=1 timeout=2000 q={__fault_sleep_150__}\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(40)); // worker holds it

    let clean = daemon.shutdown(); // SHUTDOWN + drain() verdict
    assert!(clean, "drain must wait out the in-flight request");

    // The in-flight request completed with a real answer, not an error.
    let head = read_line(&mut rd);
    assert!(head.starts_with("OK "), "in-flight answer was: {head}");
}
