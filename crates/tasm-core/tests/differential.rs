//! The differential matrix: **one** generator, every algorithm variant,
//! exact ranking equality down to subtree ids.
//!
//! Five algorithms now claim identical rankings — naive, dynamic,
//! postorder, batch and parallel — across two document
//! representations (materialized tree vs postorder stream), any thread
//! count and with the pruning cascade on or off. Instead of scattered
//! pairwise proptests, this harness pins the whole matrix against a
//! single oracle (`tasm_naive`):
//!
//! ```text
//! {naive, dynamic, postorder, batch, parallel, batch×parallel}
//!   × {materialized Tree, streaming postorder queue}
//!   × threads ∈ {1, 2, 4, 7}
//!   × cascade ∈ {on, off}
//!   × kernel ∈ {zs, strategy, auto}
//! ```
//!
//! Equality is on `(root id, distance, size)` — not just the distance
//! sequence — so tie-breaking must agree everywhere too. A second
//! matrix covers multi-query batches per lane, and an end-to-end case
//! feeds the sharded scans from a real `XmlPostorderQueue` with **no**
//! materialized document (the acceptance criterion of the streaming
//! shard hand-off).
//!
//! The seeded variant (`differential_matrix_seeded`) re-runs the matrix
//! on a deterministic seed sweep; CI shifts the sweep with the
//! `TASM_DIFF_SEED` environment variable (shuffle-style seeds) under
//! `--test-threads=1`.

use proptest::prelude::*;
use tasm_core::{
    tasm_batch, tasm_batch_parallel, tasm_batch_parallel_stream, tasm_dynamic, tasm_indexed,
    tasm_indexed_batch, tasm_naive, tasm_parallel, tasm_parallel_stream, tasm_postorder,
    BatchQuery, Match, TasmOptions, TedKernel,
};
use tasm_index::IndexedDocument;
use tasm_ted::UnitCost;
use tasm_tree::{LabelDict, LabelId, Tree, TreeBuilder, TreeQueue, VecQueue};

/// Thread counts of the parallel axes.
const THREADS: [usize; 4] = [1, 2, 4, 7];

/// The TED-kernel axis: the classic left-path DP, the mirrored
/// right-path kernel, and the per-query shape estimator. All three must
/// return identical rankings everywhere.
const KERNELS: [TedKernel; 3] = [TedKernel::Zs, TedKernel::Strategy, TedKernel::Auto];

/// Builds a uniformly-shaped random tree of exactly `n` nodes by random
/// attachment (node `i` picks a uniformly random existing parent), over
/// `n_labels` distinct labels.
fn random_tree(seed: u64, n: usize, n_labels: u32) -> Tree {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut labels: Vec<u32> = Vec::with_capacity(n);
    labels.push(rng.gen_range(0..n_labels));
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        children[parent].push(i);
        labels.push(rng.gen_range(0..n_labels));
    }
    fn rec(node: usize, children: &[Vec<usize>], labels: &[u32], b: &mut TreeBuilder) {
        b.start(LabelId(labels[node]));
        for &c in &children[node] {
            rec(c, children, labels, b);
        }
        b.end().expect("balanced");
    }
    let mut b = TreeBuilder::with_capacity(n);
    rec(0, &children, &labels, &mut b);
    b.finish().expect("single root")
}

/// A streaming view of `doc` that hides the materialized tree: the
/// algorithms under test only ever see a postorder queue.
fn stream(doc: &Tree) -> VecQueue {
    VecQueue::from_tree(doc)
}

/// The full rank key — id, distance AND size must agree.
fn key(ms: &[Match]) -> Vec<(u32, u64, u32)> {
    ms.iter()
        .map(|m| (m.root.post(), m.distance.halves(), m.size))
        .collect()
}

/// Builds the `.pqi` index of `doc` through a full in-memory file
/// round trip — the indexed rows of the matrix exercise the on-disk
/// format, not just the in-memory builder. Synthesizes a dictionary
/// covering every label id in play (the generator hands out raw
/// `LabelId`s; names only have to be consistent).
fn index_of(doc: &Tree, q_labels: &[LabelId]) -> (IndexedDocument, LabelDict) {
    let max_label = doc
        .labels()
        .iter()
        .chain(q_labels)
        .map(|l| l.0)
        .max()
        .unwrap_or(0);
    let mut dict = LabelDict::new();
    for i in 0..=max_label {
        dict.intern(&format!("L{i}"));
    }
    let mut bytes = Vec::new();
    IndexedDocument::build(doc, &dict)
        .write_to(&mut bytes)
        .expect("write .pqi");
    let idx = IndexedDocument::from_reader(bytes.as_slice()).expect("read .pqi back");
    (idx, dict)
}

/// Runs every single-query variant of the matrix against the oracle.
fn check_single_query_matrix(q: &Tree, doc: &Tree, k: usize) -> Result<(), String> {
    let oracle = key(&tasm_naive(
        q,
        doc,
        k,
        &UnitCost,
        TasmOptions::default(),
        None,
    ));
    let check = |name: String, got: Vec<Match>| -> Result<(), String> {
        let got = key(&got);
        if got != oracle {
            return Err(format!("{name}: {got:?} != oracle {oracle:?}"));
        }
        Ok(())
    };
    let (idx, dict) = index_of(doc, q.labels());
    for (kernel, cascade) in KERNELS.into_iter().flat_map(|kr| [(kr, true), (kr, false)]) {
        let opts = TasmOptions {
            use_cascade: cascade,
            kernel,
            ..Default::default()
        };
        let tag = format!(
            "{kernel}/{}",
            if cascade { "cascade-on" } else { "cascade-off" }
        );

        check(
            format!("dynamic/{tag}"),
            tasm_dynamic(q, doc, k, &UnitCost, opts, None),
        )?;
        check(
            format!("postorder/materialized/{tag}"),
            tasm_postorder(q, &mut TreeQueue::new(doc), k, &UnitCost, 1, opts, None),
        )?;
        check(
            format!("postorder/streaming/{tag}"),
            tasm_postorder(q, &mut stream(doc), k, &UnitCost, 1, opts, None),
        )?;
        let bq = [BatchQuery { query: q, k }];
        check(
            format!("batch/materialized/{tag}"),
            tasm_batch(&bq, &mut TreeQueue::new(doc), &UnitCost, 1, opts, None).remove(0),
        )?;
        check(
            format!("batch/streaming/{tag}"),
            tasm_batch(&bq, &mut stream(doc), &UnitCost, 1, opts, None).remove(0),
        )?;
        for threads in THREADS {
            check(
                format!("parallel/materialized/t{threads}/{tag}"),
                tasm_parallel(q, doc, k, &UnitCost, 1, opts, threads),
            )?;
            check(
                format!("parallel/streaming/t{threads}/{tag}"),
                tasm_parallel_stream(q, &mut stream(doc), k, &UnitCost, 1, opts, threads)
                    .expect("complete stream"),
            )?;
            check(
                format!("indexed/t{threads}/{tag}"),
                tasm_indexed(q, &dict, &idx, k, &UnitCost, 1, opts, threads),
            )?;
        }
    }
    Ok(())
}

/// Runs the multi-query variants: every batch composition must return,
/// per lane, exactly the sequential ranking of that query alone.
fn check_multi_query_matrix(queries: &[(Tree, usize)], doc: &Tree) -> Result<(), String> {
    let oracles: Vec<Vec<(u32, u64, u32)>> = queries
        .iter()
        .map(|(q, k)| {
            key(&tasm_naive(
                q,
                doc,
                *k,
                &UnitCost,
                TasmOptions::default(),
                None,
            ))
        })
        .collect();
    let bqs: Vec<BatchQuery<'_>> = queries
        .iter()
        .map(|(query, k)| BatchQuery { query, k: *k })
        .collect();
    let check = |name: String, got: Vec<Vec<Match>>| -> Result<(), String> {
        if got.len() != oracles.len() {
            return Err(format!("{name}: {} lanes != {}", got.len(), oracles.len()));
        }
        for (i, (g, want)) in got.iter().zip(&oracles).enumerate() {
            let g = key(g);
            if &g != want {
                return Err(format!("{name} lane {i}: {g:?} != oracle {want:?}"));
            }
        }
        Ok(())
    };
    let q_labels: Vec<LabelId> = queries
        .iter()
        .flat_map(|(q, _)| q.labels().iter().copied())
        .collect();
    let (idx, dict) = index_of(doc, &q_labels);
    for (kernel, cascade) in KERNELS.into_iter().flat_map(|kr| [(kr, true), (kr, false)]) {
        let opts = TasmOptions {
            use_cascade: cascade,
            kernel,
            ..Default::default()
        };
        let tag = format!(
            "{kernel}/{}",
            if cascade { "cascade-on" } else { "cascade-off" }
        );
        check(
            format!("batch/materialized/{tag}"),
            tasm_batch(&bqs, &mut TreeQueue::new(doc), &UnitCost, 1, opts, None),
        )?;
        check(
            format!("batch/streaming/{tag}"),
            tasm_batch(&bqs, &mut stream(doc), &UnitCost, 1, opts, None),
        )?;
        for threads in THREADS {
            check(
                format!("batch×parallel/materialized/t{threads}/{tag}"),
                tasm_batch_parallel(&bqs, doc, &UnitCost, 1, opts, threads, None),
            )?;
            check(
                format!("batch×parallel/streaming/t{threads}/{tag}"),
                tasm_batch_parallel_stream(
                    &bqs,
                    &mut stream(doc),
                    &UnitCost,
                    1,
                    opts,
                    threads,
                    None,
                )
                .expect("complete stream"),
            )?;
            check(
                format!("indexed×batch/t{threads}/{tag}"),
                tasm_indexed_batch(&bqs, &dict, &idx, &UnitCost, 1, opts, threads, None),
            )?;
        }
    }
    Ok(())
}

proptest! {
    // The kernel axis tripled the matrix volume per case; fewer random
    // cases keep tier-1 runtime flat (the seeded CI sweep still shifts
    // coverage every run).
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn differential_matrix_single_query(
        doc_seed in any::<u64>(),
        doc_n in 1usize..150,
        q_seed in any::<u64>(),
        q_n in 1usize..10,
        k in 1usize..8,
    ) {
        let doc = random_tree(doc_seed, doc_n, 4);
        let q = random_tree(q_seed, q_n, 4);
        if let Err(e) = check_single_query_matrix(&q, &doc, k) {
            panic!("{e}");
        }
    }

    #[test]
    fn differential_matrix_multi_query(
        doc_seed in any::<u64>(),
        doc_n in 1usize..120,
        specs in proptest::collection::vec((any::<u64>(), 1usize..9, 1usize..7), 1..5),
    ) {
        let doc = random_tree(doc_seed, doc_n, 4);
        let queries: Vec<(Tree, usize)> = specs
            .iter()
            .map(|&(seed, n, k)| (random_tree(seed, n, 4), k))
            .collect();
        if let Err(e) = check_multi_query_matrix(&queries, &doc) {
            panic!("{e}");
        }
    }
}

/// Deterministic seed-sweep version of the matrix for CI: the base seed
/// shifts with `TASM_DIFF_SEED`, so repeated CI runs cover different
/// corners while any failure reproduces with the printed seed.
#[test]
fn differential_matrix_seeded() {
    let base: u64 = std::env::var("TASM_DIFF_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD1FF);
    for round in 0..12u64 {
        let s = base.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(round);
        let doc = random_tree(s, 20 + (s % 120) as usize, 4);
        let q = random_tree(s ^ 0xABCD, 1 + (s % 9) as usize, 4);
        let k = 1 + (s % 7) as usize;
        if let Err(e) = check_single_query_matrix(&q, &doc, k) {
            panic!("seed {base} round {round}: {e}");
        }
        let queries = vec![
            (
                random_tree(s ^ 1, 1 + (s % 8) as usize, 4),
                1 + (s % 5) as usize,
            ),
            (random_tree(s ^ 2, 1 + (s % 6) as usize, 4), 2),
        ];
        if let Err(e) = check_multi_query_matrix(&queries, &doc) {
            panic!("seed {base} round {round}: {e}");
        }
    }
}

/// End-to-end acceptance: the sharded scans fed from a **real XML
/// stream** — parsed on the fly, never materialized — return rankings
/// identical to sequential `tasm_dynamic` on the parsed tree, down to
/// subtree ids.
#[test]
fn xml_stream_matches_materialized_dynamic_down_to_ids() {
    use tasm_tree::LabelDict;
    use tasm_xml::{parse_tree_str, XmlPostorderQueue};

    // A DBLP-shaped document with enough repetition for ties.
    let mut xml = String::from("<dblp>");
    for i in 0..70 {
        xml.push_str(&format!(
            "<article><auth>A{}</auth><title>T{}</title></article>",
            i % 6,
            i % 4
        ));
        if i % 5 == 0 {
            xml.push_str(&format!("<book><title>T{}</title></book>", i % 3));
        }
    }
    xml.push_str("</dblp>");

    let mut dict = LabelDict::new();
    let query = parse_tree_str(
        "<article><auth>A3</auth><title>T2</title></article>",
        &mut dict,
    )
    .unwrap();
    let query2 = parse_tree_str("<book><title>T1</title></book>", &mut dict).unwrap();
    // The oracle parses the document once (same dictionary, so label ids
    // line up with the streaming runs below).
    let doc = parse_tree_str(&xml, &mut dict).unwrap();

    for k in [1usize, 4, 9] {
        let want = key(&tasm_dynamic(
            &query,
            &doc,
            k,
            &UnitCost,
            TasmOptions::default(),
            None,
        ));
        for threads in THREADS {
            // Fresh queue per run: the parser streams, nothing is kept.
            let mut queue = XmlPostorderQueue::new(xml.as_bytes(), &mut dict);
            let got = tasm_parallel_stream(
                &query,
                &mut queue,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                threads,
            )
            .expect("complete stream");
            assert!(queue.is_ok());
            assert_eq!(key(&got), want, "k = {k}, threads = {threads}");
        }
    }

    // Batch×parallel over the XML stream, per lane.
    let bqs = [
        BatchQuery {
            query: &query,
            k: 5,
        },
        BatchQuery {
            query: &query2,
            k: 3,
        },
    ];
    let wants: Vec<_> = bqs
        .iter()
        .map(|bq| {
            key(&tasm_dynamic(
                bq.query,
                &doc,
                bq.k,
                &UnitCost,
                TasmOptions::default(),
                None,
            ))
        })
        .collect();
    for threads in THREADS {
        let mut queue = XmlPostorderQueue::new(xml.as_bytes(), &mut dict);
        let got = tasm_batch_parallel_stream(
            &bqs,
            &mut queue,
            &UnitCost,
            1,
            TasmOptions::default(),
            threads,
            None,
        )
        .expect("complete stream");
        assert!(queue.is_ok());
        for (lane, (g, want)) in got.iter().zip(&wants).enumerate() {
            assert_eq!(&key(g), want, "lane {lane}, threads = {threads}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Weighted-cost axis: the matrix is not unit-cost-specific. The
    /// document-side cost bound `c_t` is the table maximum, as Theorem 3
    /// requires.
    #[test]
    fn differential_matrix_weighted_costs(
        doc_seed in any::<u64>(),
        doc_n in 1usize..100,
        q_seed in any::<u64>(),
        q_n in 1usize..8,
        k in 1usize..5,
    ) {
        use tasm_ted::PerLabelCost;
        let model = PerLabelCost::new(1)
            .with(LabelId(0), 2)
            .with(LabelId(1), 3)
            .with(LabelId(2), 1)
            .with(LabelId(3), 5);
        let c_t = 5; // max of the table
        let doc = random_tree(doc_seed, doc_n, 4);
        let q = random_tree(q_seed, q_n, 4);
        let opts = TasmOptions::default();
        let want = key(&tasm_dynamic(&q, &doc, k, &model, opts, None));
        let got = key(&tasm_postorder(
            &q, &mut stream(&doc), k, &model, c_t, opts, None,
        ));
        prop_assert_eq!(&got, &want);
        // Kernel axis under weighted costs: the mirrored DP permutes
        // per-node costs, so exactness here is load-bearing.
        for kernel in KERNELS {
            let kopts = TasmOptions { kernel, ..opts };
            let kd = key(&tasm_dynamic(&q, &doc, k, &model, kopts, None));
            prop_assert_eq!(&kd, &want, "dynamic kernel {}", kernel);
            let kp = key(&tasm_postorder(
                &q, &mut stream(&doc), k, &model, c_t, kopts, None,
            ));
            prop_assert_eq!(&kp, &want, "postorder kernel {}", kernel);
        }
        for threads in [2usize, 7] {
            let par = key(&tasm_parallel(&q, &doc, k, &model, c_t, opts, threads));
            prop_assert_eq!(&par, &want);
            let par_stream = key(&tasm_parallel_stream(
                &q, &mut stream(&doc), k, &model, c_t, opts, threads,
            )
            .expect("complete stream"));
            prop_assert_eq!(&par_stream, &want);
        }
        // The indexed path re-encodes labels by corpus frequency, so a
        // label-keyed model must be rebuilt in index space: same names,
        // the index's ids. Distances must still agree exactly.
        let (idx, dict) = index_of(&doc, q.labels());
        let mut imodel = PerLabelCost::new(1);
        for (i, w) in [2u64, 3, 1, 5].into_iter().enumerate() {
            if let Some(id) = idx.dict().get(&format!("L{i}")) {
                imodel = imodel.with(id, w);
            }
        }
        for threads in [1usize, 3] {
            let idxed = key(&tasm_indexed(&q, &dict, &idx, k, &imodel, c_t, opts, threads));
            prop_assert_eq!(&idxed, &want, "indexed, threads = {}", threads);
        }
    }
}

/// The matrix holds on hand-shaped corner cases the generator is
/// unlikely to hit exactly: single nodes, deep paths, wide-flat trees.
#[test]
fn differential_matrix_corner_shapes() {
    use tasm_tree::bracket;
    let mut dict = tasm_tree::LabelDict::new();
    let corners = [
        "{a}",
        "{a{a{a{a{a{a{a{a}}}}}}}}",
        "{r{a}{a}{a}{a}{a}{a}{a}{a}{a}{a}{a}{a}}",
        "{r{x{a{b}}}{x{a{b}}}{x{a{b}}}}",
    ];
    for doc_s in corners {
        let doc = bracket::parse(doc_s, &mut dict).unwrap();
        for q_s in ["{a}", "{x{a{b}}}", "{r{a}}"] {
            let q = bracket::parse(q_s, &mut dict).unwrap();
            for k in [1usize, 3, 30] {
                check_single_query_matrix(&q, &doc, k)
                    .unwrap_or_else(|e| panic!("doc {doc_s}, q {q_s}, k {k}: {e}"));
            }
        }
    }
}
