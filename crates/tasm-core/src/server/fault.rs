//! Server-side fault-injection hooks, compiled in only under the
//! `fault-inject` feature.
//!
//! The daemon's recovery paths — panic isolation, deadline abort on a
//! stalled worker — are unreachable from well-formed inputs, so the
//! test suite needs a lever to pull. Under `fault-inject`, two magic
//! query root labels become triggers when the worker picks the request
//! up (i.e. *inside* the evaluation path the recovery machinery
//! guards):
//!
//! * `__fault_panic__` — panics in the worker, exercising
//!   `catch_unwind`, workspace replacement, and the `ERR internal`
//!   response.
//! * `__fault_sleep_<ms>__` — stalls the worker for `<ms>` milliseconds
//!   before the scan starts, exercising deadline expiry (`ERR timeout`)
//!   and drain-deadline overruns.
//!
//! Without the feature the hook compiles to nothing, so release builds
//! carry no magic labels.

/// Trips a configured fault for the given query root label, if any.
#[cfg(feature = "fault-inject")]
pub(crate) fn maybe_inject(root_label: &str) {
    if root_label == "__fault_panic__" {
        panic!("fault-inject: deliberate worker panic requested by query");
    }
    if let Some(ms) = root_label
        .strip_prefix("__fault_sleep_")
        .and_then(|rest| rest.strip_suffix("__"))
        .and_then(|ms| ms.parse::<u64>().ok())
    {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// No-op without the `fault-inject` feature.
#[cfg(not(feature = "fault-inject"))]
pub(crate) fn maybe_inject(_root_label: &str) {}

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn sleep_label_stalls_for_the_requested_time() {
        let start = Instant::now();
        maybe_inject("__fault_sleep_30__");
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn panic_label_panics() {
        let r = std::panic::catch_unwind(|| maybe_inject("__fault_panic__"));
        assert!(r.is_err());
    }

    #[test]
    fn ordinary_labels_do_nothing() {
        let start = Instant::now();
        maybe_inject("article");
        maybe_inject("__fault_sleep_nonsense__");
        assert!(start.elapsed() < Duration::from_millis(20));
    }
}
