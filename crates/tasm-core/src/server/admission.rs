//! Admission control: the bounded request queue between connection
//! threads and evaluation workers.
//!
//! Load shedding happens at the door: a request that would overflow the
//! queue (or arrive while the daemon drains) is refused with an
//! immediate `BUSY` instead of being buffered without bound — bounded
//! latency for everyone beats unbounded queues for no one. Admitted
//! requests are grouped into **shared-scan batches**: a worker that
//! picks up a request briefly holds the door open (the batching window)
//! for compatible requests — same parsed document — and evaluates the
//! group in ONE scan through the batch engine, the scheduling story the
//! lane layer was built for.
//!
//! Drain correctness hangs on one counter: `outstanding` is incremented
//! at submit and decremented only after the connection thread has
//! written the response bytes (the [`OutstandingToken`] RAII guard), so
//! [`Admission::wait_idle`] returning `true` means every admitted
//! request's answer reached its socket.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use super::conn::ResponseSlot;
use super::Doc;
use tasm_tree::{LabelDict, Tree};

/// One admitted query waiting for (or undergoing) evaluation.
pub(crate) struct PendingRequest {
    /// The target document (shared with the store; batch compatibility
    /// is pointer identity on this Arc).
    pub(crate) doc: Arc<Doc>,
    /// The query, parsed into the document's label space.
    pub(crate) query: Tree,
    /// The document dictionary extended with the query's own labels —
    /// the label space `query` actually lives in (corpus evaluation
    /// re-encodes per shard from here).
    pub(crate) dict: LabelDict,
    /// Ranking size (validated `>= 1` at the connection layer).
    pub(crate) k: usize,
    /// The effective deadline duration, for error messages.
    pub(crate) timeout_ms: u64,
    /// Absolute expiry instant, fixed at admission.
    pub(crate) deadline_at: Instant,
    /// Whether the client asked for the `STATS` line (`stats=1`).
    pub(crate) stats: bool,
    /// The query root's label name (fault-injection hook + log line).
    pub(crate) root_label: String,
    /// The original request line, logged verbatim when evaluation
    /// panics.
    pub(crate) raw: String,
    /// Where the worker delivers the response.
    pub(crate) slot: ResponseSlot,
}

/// The request was shed: queue full or the daemon is draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Busy;

/// RAII guard pairing every admitted request with exactly one
/// `outstanding` decrement — even when the connection dies before the
/// response is written.
pub(crate) struct OutstandingToken {
    admission: Arc<Admission>,
}

impl Drop for OutstandingToken {
    fn drop(&mut self) {
        let mut st = self.admission.lock_state();
        st.outstanding -= 1;
        if st.outstanding == 0 {
            self.admission.idle_cv.notify_all();
        }
    }
}

struct State {
    queue: VecDeque<PendingRequest>,
    draining: bool,
    /// Requests admitted whose responses have not hit their sockets yet.
    outstanding: usize,
}

/// The bounded admission queue shared by connections and workers.
pub(crate) struct Admission {
    state: Mutex<State>,
    /// Workers wait here for queue items (and drain wake-ups).
    work_cv: Condvar,
    /// `drain` waits here for `outstanding == 0`.
    idle_cv: Condvar,
    capacity: usize,
    batch_window: Duration,
    max_batch: usize,
    /// Requests refused with `BUSY` (overload visibility).
    shed: AtomicUsize,
}

impl Admission {
    pub(crate) fn new(capacity: usize, batch_window: Duration, max_batch: usize) -> Arc<Self> {
        Arc::new(Admission {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                draining: false,
                outstanding: 0,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            capacity: capacity.max(1),
            batch_window,
            max_batch: max_batch.max(1),
            shed: AtomicUsize::new(0),
        })
    }

    /// The state lock, recovering from poisoning: a panicking worker is
    /// isolated by design and must not wedge admission for everyone.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits `req` or sheds it ([`Busy`]) when the queue is full or
    /// the daemon is draining. On success the returned token MUST be
    /// dropped only after the response has been written.
    pub(crate) fn submit(self: &Arc<Self>, req: PendingRequest) -> Result<OutstandingToken, Busy> {
        let mut st = self.lock_state();
        if st.draining || st.queue.len() >= self.capacity {
            drop(st);
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(Busy);
        }
        st.queue.push_back(req);
        st.outstanding += 1;
        self.work_cv.notify_one();
        Ok(OutstandingToken {
            admission: self.clone(),
        })
    }

    /// Worker entry: blocks for the next batch of compatible requests
    /// (same document, grouped under the batching window), or `None`
    /// once the daemon drains and the queue is empty — the worker's
    /// signal to exit.
    pub(crate) fn next_batch(&self) -> Option<Vec<PendingRequest>> {
        let mut st = self.lock_state();
        loop {
            if let Some(first) = st.queue.pop_front() {
                let mut batch = vec![first];
                let window_end = Instant::now() + self.batch_window;
                loop {
                    // Absorb every compatible request already queued.
                    let mut i = 0;
                    while i < st.queue.len() && batch.len() < self.max_batch {
                        if Arc::ptr_eq(&st.queue[i].doc, &batch[0].doc) {
                            let req = st.queue.remove(i).expect("index in bounds");
                            batch.push(req);
                        } else {
                            i += 1;
                        }
                    }
                    if batch.len() >= self.max_batch || st.draining {
                        break;
                    }
                    let now = Instant::now();
                    if now >= window_end {
                        break;
                    }
                    // Hold the door open for the rest of the window: a
                    // compatible arrival shares this batch's scan.
                    let (s, _) = self
                        .work_cv
                        .wait_timeout(st, window_end - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = s;
                }
                return Some(batch);
            }
            if st.draining {
                return None;
            }
            st = self
                .work_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops admitting (everything new is shed with `BUSY`) and wakes
    /// every waiting worker so the queue drains.
    pub(crate) fn begin_drain(&self) {
        self.lock_state().draining = true;
        self.work_cv.notify_all();
    }

    /// Blocks until every admitted request's response has been written
    /// (`true`) or `limit` elapses first (`false`).
    pub(crate) fn wait_idle(&self, limit: Duration) -> bool {
        let end = Instant::now() + limit;
        let mut st = self.lock_state();
        while st.outstanding > 0 {
            let now = Instant::now();
            if now >= end {
                return false;
            }
            let (s, _) = self
                .idle_cv
                .wait_timeout(st, end - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = s;
        }
        true
    }

    /// Requests shed with `BUSY` so far.
    pub(crate) fn shed_count(&self) -> usize {
        self.shed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_tree::{bracket, LabelDict};

    fn doc() -> Arc<Doc> {
        let mut dict = LabelDict::new();
        let tree = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
        Arc::new(Doc::new("d", tree, dict))
    }

    fn request(doc: &Arc<Doc>) -> PendingRequest {
        let mut dict = doc.dict().clone();
        let query = bracket::parse("{a}", &mut dict).unwrap();
        PendingRequest {
            doc: doc.clone(),
            query,
            dict,
            k: 1,
            timeout_ms: 1000,
            deadline_at: Instant::now() + Duration::from_secs(1),
            stats: false,
            root_label: "a".into(),
            raw: "QUERY doc=d k=1 q={a}".into(),
            slot: ResponseSlot::new(),
        }
    }

    #[test]
    fn overflow_is_shed_with_busy() {
        let adm = Admission::new(2, Duration::ZERO, 4);
        let d = doc();
        let _t1 = adm.submit(request(&d)).unwrap();
        let _t2 = adm.submit(request(&d)).unwrap();
        assert!(adm.submit(request(&d)).is_err());
        assert_eq!(adm.shed_count(), 1);
    }

    #[test]
    fn draining_sheds_everything_and_wakes_workers() {
        let adm = Admission::new(8, Duration::ZERO, 4);
        adm.begin_drain();
        assert!(adm.submit(request(&doc())).is_err());
        assert_eq!(adm.next_batch().map(|b| b.len()), None);
    }

    #[test]
    fn compatible_requests_batch_under_one_scan() {
        let adm = Admission::new(8, Duration::from_millis(5), 4);
        let d = doc();
        let other = doc(); // different Arc: incompatible by identity
        let _t: Vec<_> = (0..3).map(|_| adm.submit(request(&d)).unwrap()).collect();
        let _o = adm.submit(request(&other)).unwrap();
        let batch = adm.next_batch().unwrap();
        assert_eq!(batch.len(), 3, "same-doc requests share the batch");
        let batch2 = adm.next_batch().unwrap();
        assert_eq!(batch2.len(), 1);
        assert!(Arc::ptr_eq(&batch2[0].doc, &other));
    }

    #[test]
    fn max_batch_caps_the_group() {
        let adm = Admission::new(16, Duration::from_millis(5), 2);
        let d = doc();
        let _t: Vec<_> = (0..5).map(|_| adm.submit(request(&d)).unwrap()).collect();
        assert_eq!(adm.next_batch().unwrap().len(), 2);
        assert_eq!(adm.next_batch().unwrap().len(), 2);
        assert_eq!(adm.next_batch().unwrap().len(), 1);
    }

    #[test]
    fn wait_idle_tracks_the_outstanding_tokens() {
        let adm = Admission::new(8, Duration::ZERO, 4);
        let d = doc();
        let t1 = adm.submit(request(&d)).unwrap();
        adm.begin_drain();
        assert!(!adm.wait_idle(Duration::from_millis(10)), "t1 is alive");
        let _ = adm.next_batch(); // worker picks it up; still outstanding
        assert!(!adm.wait_idle(Duration::from_millis(10)));
        drop(t1); // response written
        assert!(adm.wait_idle(Duration::from_millis(100)));
    }
}
