//! Per-connection protocol handling for the query daemon.
//!
//! The wire protocol is deliberately boring: newline-delimited ASCII
//! requests, newline-delimited responses, no framing beyond `\n`, no
//! dependencies beyond `std`. One thread per connection reads lines,
//! classifies failures, and blocks on a [`ResponseSlot`] while a worker
//! evaluates.
//!
//! Requests:
//!
//! ```text
//! PING
//! DOCS
//! QUERY doc=<name> [k=<n>] [timeout=<ms>] [stats=1] q=<query to end of line>
//! SHUTDOWN
//! ```
//!
//! Responses:
//!
//! ```text
//! PONG
//! DOCS <n>      then per document "<name> <nodes>", then "END"
//! OK <n>        then per match "<rank> <root> <distance> <size>", then "END"
//! BUSY retry-after-ms=<n>
//! ERR <kind> <message>     kind ∈ {proto, parse, doc, timeout, internal}
//! ```
//!
//! Corpus documents extend the ranking shape without changing it for
//! tree documents: each match row carries the source document name as a
//! fifth column, and when shards are quarantined the `OK` line carries
//! an explicit `degraded=<healthy>/<total>` marker — a degraded answer
//! is never silent. With `stats=1` the response also carries one
//! `STATS key=value ...` line (the [`ScanStats`] funnel, plus
//! `shards=<healthy>/<total>` for corpus queries) immediately before
//! `END`.
//!
//! Failure discipline: a malformed line gets `ERR proto` and the
//! connection keeps serving (one bad request must not cost the client
//! its session); a connection that closes mid-line gets `ERR proto
//! truncated request` back (best effort) and is dropped; a read that
//! times out idles out with `ERR timeout`; an in-request panic surfaces
//! as `ERR internal` with the daemon alive.

use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use super::admission::{Admission, PendingRequest};
use super::{DocStore, QueryParser, ServerConfig};
use crate::engine::ScanStats;
use tasm_ted::Cost;

/// A duplex byte stream the daemon can serve: cloneable into separate
/// read/write halves, with an idle read timeout.
pub(crate) trait ConnStream: Read + Write + Send + Sized + 'static {
    /// A second handle to the same stream (read half / write half).
    fn try_clone_stream(&self) -> io::Result<Self>;
    /// Read timeout for the receive half.
    fn set_stream_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
}

impl ConnStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_stream_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(dur)
    }
}

#[cfg(unix)]
impl ConnStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn set_stream_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(dur)
    }
}

/// One ranked match, already projected to wire-friendly fields.
#[derive(Debug, Clone)]
pub(crate) struct Row {
    /// Postorder number of the matched subtree's root in the document.
    pub(crate) root: u32,
    /// Tree edit distance to the query.
    pub(crate) distance: Cost,
    /// Node count of the matched subtree.
    pub(crate) size: u32,
    /// Corpus queries: the document the match came from (the fifth
    /// column of the row; tree queries omit it).
    pub(crate) doc: Option<String>,
}

/// Per-request statistics sent on the `STATS` line when the client
/// asked with `stats=1`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WireStats {
    /// The scan/pruning funnel of this request's evaluation.
    pub(crate) scan: ScanStats,
    /// Corpus queries: `(healthy, total)` shard count — rendered as
    /// `shards=h/t` whether or not the corpus is degraded.
    pub(crate) shards: Option<(usize, usize)>,
}

impl WireStats {
    fn render(&self) -> String {
        let s = &self.scan;
        let mut line = format!(
            "STATS candidates={} nodes_seen={} peak_buffered={} pruned_size={} \
             pruned_histogram={} pruned_sed={} evaluated={} evaluated_zs={} \
             evaluated_strategy={}",
            s.candidates,
            s.nodes_seen,
            s.peak_buffered,
            s.pruned_size,
            s.pruned_histogram,
            s.pruned_sed,
            s.evaluated,
            s.evaluated_zs,
            s.evaluated_strategy,
        );
        if let Some((healthy, total)) = self.shards {
            line.push_str(&format!(" shards={healthy}/{total}"));
        }
        line
    }
}

/// What a worker hands back for one request.
#[derive(Debug, Clone)]
pub(crate) enum Response {
    /// A complete ranking (possibly shorter than `k` on small documents).
    Ranking {
        /// The ranked matches, best first.
        rows: Vec<Row>,
        /// `Some((healthy, total))` when a corpus answered degraded:
        /// the `OK` line carries the marker so the partial coverage is
        /// explicit on the wire.
        degraded: Option<(usize, usize)>,
        /// Present iff the request asked with `stats=1`.
        stats: Option<WireStats>,
    },
    /// The request ran past its deadline; no partial ranking exists.
    Timeout {
        /// The deadline the request was admitted under, for the error text.
        limit_ms: u64,
    },
    /// Evaluation panicked; the worker recovered and logged the payload.
    Internal,
}

/// A one-shot rendezvous: the connection thread waits, the worker
/// delivers exactly once.
#[derive(Clone)]
pub(crate) struct ResponseSlot {
    cell: Arc<(Mutex<Option<Response>>, Condvar)>,
}

impl ResponseSlot {
    pub(crate) fn new() -> Self {
        ResponseSlot {
            cell: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    /// Worker side: publish the response and wake the connection.
    pub(crate) fn deliver(&self, resp: Response) {
        let (lock, cv) = &*self.cell;
        let mut slot = lock.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = Some(resp);
        cv.notify_all();
    }

    /// Connection side: block until the worker delivers, or `limit`
    /// elapses (a worker lost to a wedge — `None`).
    pub(crate) fn wait(&self, limit: Duration) -> Option<Response> {
        let end = Instant::now() + limit;
        let (lock, cv) = &*self.cell;
        let mut slot = lock.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(resp) = slot.take() {
                return Some(resp);
            }
            let now = Instant::now();
            if now >= end {
                return None;
            }
            let (s, _) = cv
                .wait_timeout(slot, end - now)
                .unwrap_or_else(PoisonError::into_inner);
            slot = s;
        }
    }
}

/// Everything a connection thread needs, cloneable per accept.
#[derive(Clone)]
pub(crate) struct ConnCtx {
    pub(crate) store: Arc<DocStore>,
    pub(crate) parser: QueryParser,
    pub(crate) admission: Arc<Admission>,
    pub(crate) cfg: ServerConfig,
    /// Flipped by `SHUTDOWN` (and the host's signal handler); the
    /// accept loop polls it.
    pub(crate) stop: Arc<AtomicBool>,
}

/// A parsed request line.
#[derive(Debug, PartialEq, Eq)]
enum Request {
    Ping,
    Docs,
    Shutdown,
    Query {
        doc: String,
        k: usize,
        timeout_ms: Option<u64>,
        stats: bool,
        q: String,
    },
}

/// Finds `q=` at a token boundary; everything after it is the query.
fn find_query_param(rest: &str) -> Option<usize> {
    let b = rest.as_bytes();
    (0..b.len().saturating_sub(1))
        .find(|&i| b[i] == b'q' && b[i + 1] == b'=' && (i == 0 || b[i - 1].is_ascii_whitespace()))
}

fn parse_request(line: &str) -> Result<Request, String> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or_else(|| "empty request".to_string())?;
    match verb {
        "PING" => Ok(Request::Ping),
        "DOCS" => Ok(Request::Docs),
        "SHUTDOWN" => Ok(Request::Shutdown),
        "QUERY" => {
            let rest = line[line.find("QUERY").expect("verb present") + 5..].trim_start();
            let q_at = find_query_param(rest)
                .ok_or_else(|| "QUERY needs q=<query> (to end of line)".to_string())?;
            let (head, tail) = rest.split_at(q_at);
            let q = tail[2..].trim().to_string();
            if q.is_empty() {
                return Err("QUERY needs a non-empty query after q=".to_string());
            }
            let mut doc = None;
            let mut k = 5usize;
            let mut timeout_ms = None;
            let mut stats = false;
            for tok in head.split_whitespace() {
                match tok.split_once('=') {
                    Some(("doc", v)) if !v.is_empty() => doc = Some(v.to_string()),
                    Some(("k", v)) => {
                        k = v
                            .parse()
                            .map_err(|_| format!("k must be a positive integer, got '{v}'"))?;
                    }
                    Some(("timeout", v)) => {
                        let ms: u64 = v
                            .parse()
                            .map_err(|_| format!("timeout must be milliseconds, got '{v}'"))?;
                        timeout_ms = Some(ms);
                    }
                    Some(("stats", v)) => {
                        stats = match v {
                            "1" => true,
                            "0" => false,
                            _ => return Err(format!("stats must be 0 or 1, got '{v}'")),
                        };
                    }
                    _ => return Err(format!("unknown QUERY parameter '{tok}'")),
                }
            }
            let doc = doc.ok_or_else(|| "QUERY needs doc=<name>".to_string())?;
            Ok(Request::Query {
                doc,
                k,
                timeout_ms,
                stats,
                q,
            })
        }
        other => Err(format!(
            "unknown command '{other}' (expected PING, DOCS, QUERY, or SHUTDOWN)"
        )),
    }
}

fn send(writer: &mut impl Write, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn write_response(writer: &mut impl Write, resp: Response) -> io::Result<()> {
    match resp {
        Response::Ranking {
            rows,
            degraded,
            stats,
        } => {
            let mut head = format!("OK {}", rows.len());
            if let Some((healthy, total)) = degraded {
                head.push_str(&format!(" degraded={healthy}/{total}"));
            }
            send(writer, &head)?;
            for (rank, row) in rows.iter().enumerate() {
                let mut line = format!("{} {} {} {}", rank + 1, row.root, row.distance, row.size);
                if let Some(doc) = &row.doc {
                    line.push(' ');
                    line.push_str(doc);
                }
                send(writer, &line)?;
            }
            if let Some(stats) = stats {
                send(writer, &stats.render())?;
            }
            send(writer, "END")
        }
        Response::Timeout { limit_ms } => send(
            writer,
            &format!(
                "ERR timeout request exceeded its {limit_ms} ms deadline; \
                 no partial ranking is returned"
            ),
        ),
        Response::Internal => send(
            writer,
            "ERR internal request evaluation failed; the daemon logged the \
             panic and keeps serving",
        ),
    }
}

/// Serves one connection until EOF, a fatal protocol error, or
/// `SHUTDOWN`.
pub(crate) fn handle_conn<S: ConnStream>(stream: S, ctx: ConnCtx) {
    let _ = stream.set_stream_read_timeout(Some(ctx.cfg.read_timeout));
    let reader = match stream.try_clone_stream() {
        Ok(half) => BufReader::new(half),
        Err(_) => return,
    };
    serve_lines(reader, stream, ctx);
}

/// The protocol loop, generic over the halves so tests can drive it
/// with in-memory pipes.
pub(crate) fn serve_lines<R: BufRead, W: Write>(mut reader: R, mut writer: W, ctx: ConnCtx) {
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // clean EOF
            Ok(_) if !line.ends_with('\n') => {
                // The stream ended mid-line: the request record was cut
                // off. Best-effort diagnosis, then drop the connection —
                // there is no way to resynchronize.
                let _ = send(
                    &mut writer,
                    "ERR proto truncated request (stream ended mid-line)",
                );
                return;
            }
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                let _ = send(
                    &mut writer,
                    "ERR timeout idle connection: no complete request within the read timeout",
                );
                return;
            }
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Non-UTF-8 request bytes: corruption on the wire.
                let _ = send(&mut writer, "ERR proto request is not valid UTF-8");
                return;
            }
            Err(_) => return,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let req = match parse_request(trimmed) {
            Ok(req) => req,
            Err(msg) => {
                // One malformed line must not cost the client its
                // session: answer and keep reading.
                if send(&mut writer, &format!("ERR proto {msg}")).is_err() {
                    return;
                }
                continue;
            }
        };
        let keep_going = match req {
            Request::Ping => send(&mut writer, "PONG").is_ok(),
            Request::Docs => write_docs(&mut writer, &ctx).is_ok(),
            Request::Shutdown => {
                ctx.stop.store(true, Ordering::SeqCst);
                ctx.admission.begin_drain();
                let _ = send(&mut writer, "OK draining");
                false
            }
            Request::Query {
                doc,
                k,
                timeout_ms,
                stats,
                q,
            } => handle_query(&mut writer, &ctx, &doc, k, timeout_ms, stats, &q, trimmed).is_ok(),
        };
        if !keep_going {
            return;
        }
    }
}

fn write_docs(writer: &mut impl Write, ctx: &ConnCtx) -> io::Result<()> {
    send(writer, &format!("DOCS {}", ctx.store.len()))?;
    for doc in ctx.store.iter() {
        send(writer, &format!("{} {}", doc.name(), doc.node_count()))?;
    }
    send(writer, "END")
}

#[allow(clippy::too_many_arguments)]
fn handle_query(
    writer: &mut impl Write,
    ctx: &ConnCtx,
    doc_name: &str,
    k: usize,
    timeout_ms: Option<u64>,
    stats: bool,
    q: &str,
    raw: &str,
) -> io::Result<()> {
    let Some(doc) = ctx.store.get(doc_name) else {
        return send(
            writer,
            &format!("ERR doc unknown document '{doc_name}' (list with DOCS)"),
        );
    };
    if let Some(corpus) = doc.corpus() {
        // A degraded corpus still answers, but a fully quarantined one
        // has nothing left to answer from: refuse explicitly instead of
        // returning a silently empty ranking.
        if corpus.healthy_count() == 0 && corpus.total_shards() > 0 {
            return send(
                writer,
                &format!(
                    "ERR doc corpus '{doc_name}' has all {} shard(s) quarantined \
                     (diagnose with `tasm corpus fsck`)",
                    corpus.total_shards()
                ),
            );
        }
    }
    if k == 0 {
        return send(writer, "ERR parse k must be >= 1");
    }
    if k > ctx.cfg.max_k {
        return send(
            writer,
            &format!(
                "ERR parse k={k} exceeds the server limit of {}",
                ctx.cfg.max_k
            ),
        );
    }
    // Parse into a copy of the document's label space so query labels
    // and document labels share one id universe.
    let mut dict = doc.dict().clone();
    let query = match (ctx.parser)(q, &mut dict) {
        Ok(tree) => tree,
        Err(msg) => return send(writer, &format!("ERR parse {msg}")),
    };
    let root_label = dict.resolve(query.label(query.root())).to_string();
    let dur = timeout_ms
        .map(Duration::from_millis)
        .unwrap_or(ctx.cfg.default_deadline)
        .min(ctx.cfg.max_deadline);
    let limit_ms = dur.as_millis() as u64;
    let slot = ResponseSlot::new();
    let req = PendingRequest {
        doc: doc.clone(),
        query,
        dict,
        k,
        timeout_ms: limit_ms,
        deadline_at: Instant::now() + dur,
        stats,
        root_label,
        raw: raw.to_string(),
        slot: slot.clone(),
    };
    match ctx.admission.submit(req) {
        Err(_) => send(
            writer,
            &format!("BUSY retry-after-ms={}", ctx.cfg.retry_after.as_millis()),
        ),
        Ok(token) => {
            // Generous upper bound: the request deadline plus slack for
            // queueing and response delivery. A miss means a worker was
            // lost in a way panic isolation did not catch.
            let grace = dur + ctx.cfg.drain_deadline + Duration::from_secs(30);
            let outcome = match slot.wait(grace) {
                Some(resp) => write_response(writer, resp),
                None => send(writer, "ERR internal response lost (worker did not answer)"),
            };
            // Only now has the response hit the socket: release the
            // drain accounting.
            drop(token);
            outcome
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_grammar_round_trips() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("DOCS").unwrap(), Request::Docs);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        let q = parse_request("QUERY doc=dblp k=3 timeout=250 q=<a><b/></a>").unwrap();
        assert_eq!(
            q,
            Request::Query {
                doc: "dblp".into(),
                k: 3,
                timeout_ms: Some(250),
                stats: false,
                q: "<a><b/></a>".into(),
            }
        );
        let q = parse_request("QUERY doc=dblp stats=1 q={a}").unwrap();
        match q {
            Request::Query { stats, .. } => assert!(stats),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn query_text_runs_to_end_of_line() {
        let q = parse_request("QUERY doc=d q=<a x=\"1\"> spaces </a>").unwrap();
        match q {
            Request::Query { q, k, .. } => {
                assert_eq!(q, "<a x=\"1\"> spaces </a>");
                assert_eq!(k, 5, "k defaults");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn q_param_is_found_at_token_boundaries_only() {
        // "doc=myq=weird" must not be mistaken for the query parameter.
        let q = parse_request("QUERY doc=myq=weird q={a}").unwrap();
        match q {
            Request::Query { doc, q, .. } => {
                assert_eq!(doc, "myq=weird");
                assert_eq!(q, "{a}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_diagnosed() {
        for (line, needle) in [
            ("NOPE", "unknown command"),
            ("QUERY doc=d", "q=<query>"),
            ("QUERY doc=d q=", "non-empty query"),
            ("QUERY q={a}", "doc=<name>"),
            ("QUERY doc=d k=zero q={a}", "positive integer"),
            ("QUERY doc=d timeout=soon q={a}", "milliseconds"),
            ("QUERY doc=d stats=yes q={a}", "stats must be 0 or 1"),
            ("QUERY doc=d frob=1 q={a}", "unknown QUERY parameter"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }
}
