//! A resident TASM query daemon: parsed documents stay warm, requests
//! multiplex onto the batch engine, and failures stay *contained*.
//!
//! One-shot CLI runs re-parse the document and rebuild every workspace
//! per query — fine for a benchmark, wasteful for a workload. `serve`
//! keeps [`Doc`]s (parsed tree + label dictionary) resident behind a
//! newline-delimited socket protocol (see [`conn`]) and drives each
//! request through the same `tasm_batch` evaluation path the CLI uses,
//! so a ranking from the daemon is byte-for-byte the ranking the
//! one-shot CLI prints (differential-tested).
//!
//! The robustness contract, layer by layer:
//!
//! * **Deadlines** ([`deadline`]): every request carries an absolute
//!   expiry; the scan loop polls it per candidate and aborts with a
//!   structured `ERR timeout` — no partial rankings, no wedged workers.
//! * **Admission control** ([`admission`]): a bounded queue sheds
//!   overload with an immediate `BUSY retry-after-ms=…`; compatible
//!   queries (same document) arriving within the batching window share
//!   one scan.
//! * **Panic isolation**: workers evaluate under `catch_unwind`; a
//!   panicking request gets `ERR internal`, its workspace is discarded
//!   and rebuilt (never reused poisoned), the payload is logged, and
//!   the daemon keeps serving.
//! * **Graceful drain**: [`Server::drain`] stops admission, waits for
//!   in-flight responses to reach their sockets under a drain deadline,
//!   and reports whether the drain was clean.
//! * **Fault injection** ([`fault`]): test-only levers (behind the
//!   `fault-inject` feature) that make the above paths reachable from
//!   integration tests.

pub(crate) mod admission;
pub(crate) mod conn;
pub mod deadline;
pub(crate) mod fault;

use std::io;
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::batch::{tasm_batch_deadline_with_workspace, BatchQuery, BatchWorkspace};
use crate::corpus::tasm_corpus_batch_deadline_with_stats;
use crate::server::admission::{Admission, PendingRequest};
use crate::server::conn::{handle_conn, ConnCtx, ConnStream, Response, Row, WireStats};
use crate::server::deadline::Deadline;
use crate::tasm_dynamic::TasmOptions;
use tasm_index::Corpus;
use tasm_ted::UnitCost;
use tasm_tree::{bracket, LabelDict, Tree, TreeQueue};

/// What a resident document holds: one parsed tree, or a whole corpus
/// of indexed shards.
#[derive(Debug)]
enum DocContent {
    Tree(Tree),
    Corpus(Arc<Corpus>),
}

/// A resident document: a parsed tree (or an opened [`Corpus`]) plus
/// the label dictionary queries against it are parsed into, so both
/// sides share one label-id universe.
#[derive(Debug)]
pub struct Doc {
    name: String,
    content: DocContent,
    dict: LabelDict,
}

impl Doc {
    /// Wraps a parsed document under the name clients address it by.
    pub fn new(name: impl Into<String>, tree: Tree, dict: LabelDict) -> Self {
        Doc {
            name: name.into(),
            content: DocContent::Tree(tree),
            dict,
        }
    }

    /// Wraps an opened corpus: queries against this name run
    /// cross-document over every healthy shard, in explicit degraded
    /// mode when shards are quarantined.
    pub fn new_corpus(name: impl Into<String>, corpus: Arc<Corpus>) -> Self {
        let dict = corpus.global_dict().clone();
        Doc {
            name: name.into(),
            content: DocContent::Corpus(corpus),
            dict,
        }
    }

    /// The name clients pass as `doc=<name>`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parsed document tree (`None` for a corpus document).
    pub fn tree(&self) -> Option<&Tree> {
        match &self.content {
            DocContent::Tree(tree) => Some(tree),
            DocContent::Corpus(_) => None,
        }
    }

    /// The opened corpus (`None` for a single-tree document).
    pub fn corpus(&self) -> Option<&Arc<Corpus>> {
        match &self.content {
            DocContent::Tree(_) => None,
            DocContent::Corpus(corpus) => Some(corpus),
        }
    }

    /// The label dictionary queries are parsed into.
    pub fn dict(&self) -> &LabelDict {
        &self.dict
    }

    /// Node count reported by `DOCS`: the tree's size, or the summed
    /// size of the corpus's healthy shards.
    pub fn node_count(&self) -> u64 {
        match &self.content {
            DocContent::Tree(tree) => tree.len() as u64,
            DocContent::Corpus(corpus) => corpus
                .healthy()
                .map(|(_, _, doc)| doc.tree().len() as u64)
                .sum(),
        }
    }
}

/// The set of documents a [`Server`] answers queries over.
///
/// Insertion order is preserved (it is the `DOCS` listing order).
/// Inserting a document under an existing name replaces it.
#[derive(Debug, Default)]
pub struct DocStore {
    docs: Vec<Arc<Doc>>,
}

impl DocStore {
    /// An empty store.
    pub fn new() -> Self {
        DocStore::default()
    }

    /// Adds `doc`, replacing any document with the same name.
    pub fn insert(&mut self, doc: Doc) {
        let doc = Arc::new(doc);
        match self.docs.iter_mut().find(|d| d.name() == doc.name()) {
            Some(slot) => *slot = doc,
            None => self.docs.push(doc),
        }
    }

    /// Looks a document up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<Doc>> {
        self.docs.iter().find(|d| d.name() == name)
    }

    /// The documents, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Doc>> {
        self.docs.iter()
    }

    /// Number of resident documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the store holds no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// Parses a client's query text into the document's label space.
///
/// Injected so the server core stays below the XML layer: the CLI
/// passes `tasm-xml`'s parser; the default understands the bracket
/// notation (`{a{b}{c}}`). Errors surface to the client as
/// `ERR parse <message>`.
pub type QueryParser = Arc<dyn Fn(&str, &mut LabelDict) -> Result<Tree, String> + Send + Sync>;

/// Tuning knobs for a [`Server`]. Start from [`ServerConfig::default`]
/// and override what the deployment needs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Evaluation worker threads (min 1).
    pub workers: usize,
    /// Bound on queued (admitted, not yet picked up) requests; beyond
    /// it requests are shed with `BUSY`.
    pub queue_capacity: usize,
    /// Most requests one worker evaluates under a single shared scan.
    pub max_batch: usize,
    /// How long a worker holds the batch open for compatible arrivals.
    pub batch_window: Duration,
    /// Deadline applied when a request names none.
    pub default_deadline: Duration,
    /// Hard cap on any client-requested deadline.
    pub max_deadline: Duration,
    /// How long [`Server::drain`] waits for in-flight responses.
    pub drain_deadline: Duration,
    /// The hint sent with `BUSY retry-after-ms=…`.
    pub retry_after: Duration,
    /// Idle-connection read timeout.
    pub read_timeout: Duration,
    /// Hard cap on a request's `k` (protects workspace memory, which
    /// grows with the ring-buffer bound τ = |Q| + k).
    pub max_k: usize,
    /// Thread budget for one corpus request: the shard-level scheduler
    /// splits it across shards first, then across intra-shard lanes
    /// (`0` = all available cores). Rankings are identical for every
    /// value — only latency changes.
    pub corpus_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 16,
            batch_window: Duration::from_millis(1),
            default_deadline: Duration::from_secs(2),
            max_deadline: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
            retry_after: Duration::from_millis(50),
            read_timeout: Duration::from_secs(10),
            max_k: 10_000,
            corpus_threads: 1,
        }
    }
}

/// The bracket-notation query parser used when the host injects none.
fn default_parser() -> QueryParser {
    Arc::new(|text, dict| bracket::parse(text, dict).map_err(|e| e.to_string()))
}

/// Something the accept loop can poll for new connections.
trait Acceptor {
    type Stream: ConnStream;
    fn set_nonblocking_mode(&self, nb: bool) -> io::Result<()>;
    /// `Ok(None)` when no connection is pending right now.
    fn accept_pending(&self) -> io::Result<Option<Self::Stream>>;
}

impl Acceptor for TcpListener {
    type Stream = TcpStream;
    fn set_nonblocking_mode(&self, nb: bool) -> io::Result<()> {
        self.set_nonblocking(nb)
    }
    fn accept_pending(&self) -> io::Result<Option<TcpStream>> {
        match self.accept() {
            Ok((stream, _)) => Ok(Some(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(unix)]
impl Acceptor for UnixListener {
    type Stream = UnixStream;
    fn set_nonblocking_mode(&self, nb: bool) -> io::Result<()> {
        self.set_nonblocking(nb)
    }
    fn accept_pending(&self) -> io::Result<Option<UnixStream>> {
        match self.accept() {
            Ok((stream, _)) => Ok(Some(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// The resident query daemon: worker pool, admission queue, and the
/// accept loops that feed it.
pub struct Server {
    cfg: ServerConfig,
    store: Arc<DocStore>,
    parser: QueryParser,
    admission: Arc<Admission>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Builds the daemon and spawns its evaluation workers. Pass
    /// `parser: None` for the bracket-notation default; the CLI injects
    /// the XML parser here.
    pub fn new(cfg: ServerConfig, store: DocStore, parser: Option<QueryParser>) -> Server {
        let admission = Admission::new(cfg.queue_capacity, cfg.batch_window, cfg.max_batch);
        let corpus_threads = cfg.corpus_threads;
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let admission = admission.clone();
                thread::Builder::new()
                    .name(format!("tasm-worker-{i}"))
                    .spawn(move || worker_loop(&admission, corpus_threads))
                    .expect("spawn evaluation worker")
            })
            .collect();
        Server {
            cfg,
            store: Arc::new(store),
            parser: parser.unwrap_or_else(default_parser),
            admission,
            stop: Arc::new(AtomicBool::new(false)),
            workers,
        }
    }

    /// True once `SHUTDOWN` (or the host via `external_stop`) asked the
    /// daemon to stop accepting.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests shed with `BUSY` so far (overload visibility for the
    /// host's logs).
    pub fn shed_count(&self) -> usize {
        self.admission.shed_count()
    }

    fn conn_ctx(&self) -> ConnCtx {
        ConnCtx {
            store: self.store.clone(),
            parser: self.parser.clone(),
            admission: self.admission.clone(),
            cfg: self.cfg.clone(),
            stop: self.stop.clone(),
        }
    }

    fn accept_loop<A: Acceptor>(
        &self,
        listener: &A,
        external_stop: Option<&AtomicBool>,
    ) -> io::Result<()> {
        listener.set_nonblocking_mode(true)?;
        loop {
            let stopped = self.stop.load(Ordering::SeqCst)
                || external_stop.is_some_and(|s| s.load(Ordering::SeqCst));
            if stopped {
                self.stop.store(true, Ordering::SeqCst);
                return Ok(());
            }
            match listener.accept_pending() {
                Ok(Some(stream)) => {
                    let ctx = self.conn_ctx();
                    // Connection threads are deliberately detached: the
                    // drain accounting tracks admitted *requests*, not
                    // idle readers, so an idle client cannot hold up
                    // shutdown.
                    let _ = thread::Builder::new()
                        .name("tasm-conn".to_string())
                        .spawn(move || handle_conn(stream, ctx));
                }
                Ok(None) => thread::sleep(Duration::from_millis(2)),
                Err(e) => {
                    eprintln!("tasm serve: accept failed: {e}");
                    thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// Serves connections from a pre-bound TCP listener until a stop is
    /// requested (via `SHUTDOWN` or `external_stop`, typically a signal
    /// handler's flag). Returns without draining — call
    /// [`Server::drain`] next.
    pub fn serve_tcp(
        &self,
        listener: &TcpListener,
        external_stop: Option<&AtomicBool>,
    ) -> io::Result<()> {
        self.accept_loop(listener, external_stop)
    }

    /// Serves connections from a pre-bound Unix socket listener; see
    /// [`Server::serve_tcp`].
    #[cfg(unix)]
    pub fn serve_unix(
        &self,
        listener: &UnixListener,
        external_stop: Option<&AtomicBool>,
    ) -> io::Result<()> {
        self.accept_loop(listener, external_stop)
    }

    /// Graceful shutdown: stops admitting (late arrivals get `BUSY`),
    /// waits up to the drain deadline for every in-flight response to
    /// reach its socket, and joins the workers. Returns `true` for a
    /// clean drain; `false` means the deadline passed with work still
    /// in flight (the host should exit nonzero or log loudly).
    pub fn drain(self) -> bool {
        self.admission.begin_drain();
        let clean = self.admission.wait_idle(self.cfg.drain_deadline);
        if clean {
            // Workers exit once the queue is empty under drain; join is
            // bounded. On a dirty drain a wedged worker could block
            // forever, so leave it to process teardown instead.
            for handle in self.workers {
                let _ = handle.join();
            }
        }
        clean
    }
}

/// A worker: pull batches, evaluate under panic isolation, deliver.
fn worker_loop(admission: &Admission, corpus_threads: usize) {
    let mut ws = BatchWorkspace::new();
    while let Some(batch) = admission.next_batch() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            evaluate_batch(&mut ws, &batch, corpus_threads)
        }));
        match outcome {
            Ok(responses) => {
                for (req, resp) in batch.iter().zip(responses) {
                    req.slot.deliver(resp);
                }
            }
            Err(payload) => {
                // Panic isolation: log the payload and the offending
                // request lines, answer ERR internal, and REPLACE the
                // workspace — its buffers were abandoned mid-update and
                // must never be reused.
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>");
                eprintln!(
                    "tasm serve: worker panicked evaluating {} request(s): {msg}",
                    batch.len()
                );
                for req in &batch {
                    eprintln!("tasm serve:   request: {}", req.raw);
                }
                ws = BatchWorkspace::new();
                for req in &batch {
                    req.slot.deliver(Response::Internal);
                }
            }
        }
    }
}

fn rows(matches: Vec<crate::ranking::Match>) -> Vec<Row> {
    matches
        .into_iter()
        .map(|m| Row {
            root: m.root.post(),
            distance: m.distance,
            size: m.size,
            doc: None,
        })
        .collect()
}

/// Evaluates one compatible batch (all requests target the same
/// document). Tree documents run under the earliest member deadline
/// with solo retries on expiry; corpus documents evaluate per request
/// under each member's own deadline (every request carries its own
/// extended dictionary, so corpus queries cannot share one encoding).
fn evaluate_batch(
    ws: &mut BatchWorkspace,
    batch: &[PendingRequest],
    corpus_threads: usize,
) -> Vec<Response> {
    for req in batch {
        fault::maybe_inject(&req.root_label);
    }
    let doc = &batch[0].doc;
    match &doc.content {
        DocContent::Tree(tree) => evaluate_tree_batch(ws, batch, tree),
        DocContent::Corpus(corpus) => batch
            .iter()
            .map(|req| evaluate_corpus_request(req, corpus, corpus_threads))
            .collect(),
    }
}

/// The tree path: one shared scan under the earliest member deadline;
/// on expiry, survivors are retried solo under their own deadlines.
fn evaluate_tree_batch(
    ws: &mut BatchWorkspace,
    batch: &[PendingRequest],
    tree: &Tree,
) -> Vec<Response> {
    let earliest = batch
        .iter()
        .map(|r| r.deadline_at)
        .min()
        .expect("batches are non-empty");
    let deadline = Deadline::at(earliest);
    let queries: Vec<BatchQuery<'_>> = batch
        .iter()
        .map(|r| BatchQuery {
            query: &r.query,
            k: r.k,
        })
        .collect();
    let mut queue = TreeQueue::new(tree);
    let shared = tasm_batch_deadline_with_workspace(
        &queries,
        &mut queue,
        &UnitCost,
        1,
        TasmOptions::default(),
        ws,
        None,
        &deadline,
    );
    match shared {
        Ok(rankings) => {
            let lanes = ws.last_lane_stats().to_vec();
            rankings
                .into_iter()
                .zip(batch)
                .enumerate()
                .map(|(i, (ranking, req))| Response::Ranking {
                    rows: rows(ranking),
                    degraded: None,
                    stats: req.stats.then(|| WireStats {
                        scan: lanes[i],
                        shards: None,
                    }),
                })
                .collect()
        }
        Err(_) => {
            // The shared scan died at the earliest member's deadline.
            // That member is out of time; the others still have budget,
            // so each gets a solo retry under its own deadline.
            batch
                .iter()
                .map(|req| {
                    if Instant::now() >= req.deadline_at {
                        return Response::Timeout {
                            limit_ms: req.timeout_ms,
                        };
                    }
                    let solo = [BatchQuery {
                        query: &req.query,
                        k: req.k,
                    }];
                    let d = Deadline::at(req.deadline_at);
                    let mut queue = TreeQueue::new(tree);
                    match tasm_batch_deadline_with_workspace(
                        &solo,
                        &mut queue,
                        &UnitCost,
                        1,
                        TasmOptions::default(),
                        ws,
                        None,
                        &d,
                    ) {
                        Ok(mut rankings) => Response::Ranking {
                            rows: rows(rankings.pop().expect("one lane")),
                            degraded: None,
                            stats: req.stats.then(|| WireStats {
                                scan: ws.last_lane_stats()[0],
                                shards: None,
                            }),
                        },
                        Err(_) => Response::Timeout {
                            limit_ms: req.timeout_ms,
                        },
                    }
                })
                .collect()
        }
    }
}

/// The corpus path: cross-document top-k over the healthy shards under
/// the request's own deadline, with the degraded marker threaded into
/// the `OK` line (and `STATS`, when requested).
fn evaluate_corpus_request(
    req: &PendingRequest,
    corpus: &Arc<Corpus>,
    corpus_threads: usize,
) -> Response {
    let deadline = Deadline::at(req.deadline_at);
    let queries = [BatchQuery {
        query: &req.query,
        k: req.k,
    }];
    match tasm_corpus_batch_deadline_with_stats(
        &queries,
        &req.dict,
        corpus,
        &UnitCost,
        1,
        TasmOptions::default(),
        corpus_threads,
        None,
        &deadline,
    ) {
        Ok(out) => {
            let (status, scan) = (out.status, out.scan);
            let mut rankings = out.rankings;
            let ranking = rankings.pop().expect("one lane");
            let rows = ranking
                .into_iter()
                .map(|cm| Row {
                    root: cm.hit.root.post(),
                    distance: cm.hit.distance,
                    size: cm.hit.size,
                    doc: Some(cm.doc),
                })
                .collect();
            let health = (status.healthy, status.total);
            Response::Ranking {
                rows,
                degraded: status.is_degraded().then_some(health),
                stats: req.stats.then_some(WireStats {
                    scan,
                    shards: Some(health),
                }),
            }
        }
        Err(_) => Response::Timeout {
            limit_ms: req.timeout_ms,
        },
    }
}
