//! Cooperative per-request deadlines for the scan engine.
//!
//! A resident daemon cannot let one slow query wedge a worker: the scan
//! loop must notice, mid-pass, that its request ran out of time. Rust
//! offers no safe preemption, so the deadline is **cooperative**: a
//! [`Deadline`] token is handed to
//! [`ScanEngine::scan_with_deadline`](crate::ScanEngine::scan_with_deadline)
//! and polled once per candidate. Polling strides (one `Instant::now()`
//! every few candidates) so the check costs nothing on the hot path,
//! and a forced check runs before the scan starts so an
//! already-expired deadline fails immediately instead of after the
//! first stride.
//!
//! An expired deadline aborts the whole request with
//! [`DeadlineExceeded`] — **no partial ranking is returned**. A top-k
//! ranking over a prefix of the candidate set could silently miss
//! better subtrees later in the stream, exactly the failure the
//! streaming integrity checks exist to prevent; refusing is the only
//! honest answer.

use std::cell::Cell;
use std::time::{Duration, Instant};

/// Clock reads are amortized over this many polls.
const POLL_STRIDE: u32 = 8;

/// A cooperative deadline token: cheap to poll from a scan loop, sticky
/// once expired.
///
/// Not `Sync` by design (the stride counter is a [`Cell`]): exactly one
/// thread — the one driving the scan — polls it. Sharded paths keep the
/// token on the producer thread, which is the only place the unbounded
/// per-candidate loop runs.
#[derive(Debug)]
pub struct Deadline {
    at: Option<Instant>,
    polls: Cell<u32>,
    expired: Cell<bool>,
}

impl Deadline {
    /// A deadline that never expires.
    pub fn none() -> Self {
        Deadline {
            at: None,
            polls: Cell::new(0),
            expired: Cell::new(false),
        }
    }

    /// Expires at the given instant.
    pub fn at(at: Instant) -> Self {
        Deadline {
            at: Some(at),
            polls: Cell::new(0),
            expired: Cell::new(false),
        }
    }

    /// Expires `dur` from now.
    pub fn after(dur: Duration) -> Self {
        Deadline::at(Instant::now() + dur)
    }

    /// The expiry instant, if any.
    pub fn instant(&self) -> Option<Instant> {
        self.at
    }

    /// Strided check: reads the clock every [`POLL_STRIDE`]th call and
    /// returns `true` once the deadline has passed. Sticky: after the
    /// first `true`, every later call answers `true` without a clock
    /// read.
    pub fn poll(&self) -> bool {
        if self.expired.get() {
            return true;
        }
        let Some(at) = self.at else { return false };
        let polls = self.polls.get().wrapping_add(1);
        self.polls.set(polls);
        if !polls.is_multiple_of(POLL_STRIDE) {
            return false;
        }
        let hit = Instant::now() >= at;
        if hit {
            self.expired.set(true);
        }
        hit
    }

    /// Forced check (no striding): reads the clock now. Used at scan
    /// start so a request that arrives already past its deadline fails
    /// before any work happens.
    pub fn expired_now(&self) -> bool {
        if self.expired.get() {
            return true;
        }
        match self.at {
            None => false,
            Some(at) => {
                let hit = Instant::now() >= at;
                if hit {
                    self.expired.set(true);
                }
                hit
            }
        }
    }
}

/// A scan was cancelled mid-pass because its [`Deadline`] expired.
///
/// No partial ranking accompanies this error: a top-k over a prefix of
/// the candidate stream could silently miss better matches in the
/// unscanned suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl std::fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadline exceeded: the scan was cancelled and no partial ranking is returned"
        )
    }
}

impl std::error::Error for DeadlineExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        for _ in 0..1000 {
            assert!(!d.poll());
        }
        assert!(!d.expired_now());
        assert_eq!(d.instant(), None);
    }

    #[test]
    fn past_deadline_is_caught_by_the_forced_check() {
        let d = Deadline::after(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.expired_now());
        // Sticky: the strided path answers immediately now.
        assert!(d.poll());
    }

    #[test]
    fn strided_poll_expires_within_a_stride() {
        let d = Deadline::after(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(10));
        let polls_until_hit = (0..=POLL_STRIDE).take_while(|_| !d.poll()).count() as u32;
        assert!(polls_until_hit <= POLL_STRIDE, "{polls_until_hit}");
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let d = Deadline::after(Duration::from_secs(3600));
        for _ in 0..100 {
            assert!(!d.poll());
        }
        assert!(!d.expired_now());
    }
}
