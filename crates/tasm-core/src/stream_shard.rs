//! Streaming shard hand-off: parallel (and batch×parallel) TASM over a
//! postorder **stream** — the document never resides in memory.
//!
//! [`tasm_parallel`](crate::tasm_parallel) shards the candidate *spans*
//! of a materialized tree, which costs `O(n)` memory for the tree
//! itself. This module removes that requirement: one [`ScanEngine`]
//! pass over the stream (the same `O(τ)` prefix ring buffer as the
//! sequential path) derives the candidates, and instead of evaluating
//! them inline it copies each candidate's postorder entries into a
//! **segment** — a flat `(label, size)` buffer holding a run of
//! complete candidate subtrees plus their document root numbers — and
//! hands full segments to worker threads over a bounded pipe.
//!
//! Each worker replays its segments' candidates into a scratch tree
//! (subtree sizes are invariant under renumbering, so the entries are
//! the candidate's local postorder as-is) and fans every candidate out
//! to N per-query evaluation lanes, exactly as the batch and
//! span-sharded paths do. Per-lane heaps merge with
//! [`TopKHeap::merge`](crate::TopKHeap::merge); the rank key is a total
//! order, so the rankings are **identical** to the sequential ones no
//! matter how candidates land on workers (pinned by
//! `tests/differential.rs`).
//!
//! # Memory bound
//!
//! The pipe owns a fixed pool of `2·threads + 1` segments of
//! `O(clamp(τ_scan, 1024, 2¹⁸))` entries each (a candidate larger than
//! the budget grows its segment on demand, bounded by the candidate's
//! actual size); consumed segments return to the producer through a
//! free list, and every buffer (segments, scratch trees, lane matrices)
//! grows but never shrinks. End to end the scan therefore runs in
//! `O(threads · min(τ_scan, max candidate) + Σ m_i² )` memory —
//! document-independent — and its steady state performs **zero heap
//! allocations per candidate** (regression-tested with the counting
//! allocator in `tasm-bench`). Backpressure is the free list: when all
//! segments are in flight the producer blocks until a worker recycles
//! one.
//!
//! Only `std::thread::scope`, `Mutex` and `Condvar` are used — no
//! external dependencies, no unbounded channels.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

use crate::batch::{tasm_batch_deadline_with_workspace, BatchQuery, BatchWorkspace};
use crate::engine::{CandidateSink, ScanEngine, ScanStats};
use crate::lane::{build_lanes, fan_out, reserve_lanes, scan_tau_of};
use crate::parallel::{merge_shard_results, resolve_threads, ShardResult};
use crate::ranking::Match;
use crate::server::deadline::{Deadline, DeadlineExceeded};
use crate::tasm_dynamic::TasmOptions;
use crate::workspace::scratch_fits_cap;
use tasm_ted::{CascadeScratch, CostModel, TedStats, TedWorkspace};
use tasm_tree::{LabelId, NodeId, PostorderEntry, PostorderQueue, Tree};

/// The postorder stream ended abnormally: the scan consumed the whole
/// queue, but the queue reports the document is incomplete (truncated
/// `.pq`/`.pqi` file, malformed XML, an I/O error mid-stream, …).
///
/// The streaming entry points refuse to return a ranking built from a
/// partial document — silently accepting one would report top-k answers
/// that may miss better subtrees in the lost suffix. The message comes
/// from [`PostorderQueue::integrity_error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamIntegrityError(String);

impl StreamIntegrityError {
    /// The queue's description of the abnormal end.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for StreamIntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "incomplete document stream: {}", self.0)
    }
}

impl std::error::Error for StreamIntegrityError {}

/// Failure of a deadline-aware streaming scan: either the stream ended
/// abnormally ([`StreamIntegrityError`]) or the request's cooperative
/// [`Deadline`] expired mid-pass ([`DeadlineExceeded`]). Both refuse to
/// return a partial ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamScanError {
    /// The postorder stream ended abnormally.
    Integrity(StreamIntegrityError),
    /// The request's deadline expired before the scan completed.
    Deadline(DeadlineExceeded),
}

impl std::fmt::Display for StreamScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamScanError::Integrity(e) => e.fmt(f),
            StreamScanError::Deadline(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for StreamScanError {}

impl From<StreamIntegrityError> for StreamScanError {
    fn from(e: StreamIntegrityError) -> Self {
        StreamScanError::Integrity(e)
    }
}

impl From<DeadlineExceeded> for StreamScanError {
    fn from(e: DeadlineExceeded) -> Self {
        StreamScanError::Deadline(e)
    }
}

/// Locks `mutex`, recovering the guard if a peer poisoned it while
/// unwinding: the pipe's abort flag — not poisoning — is the signal
/// that a side died, and the originating panic payload (preserved by
/// the workers' `catch_unwind`) must reach the caller instead of a
/// secondary "poisoned" panic on an innocent thread.
fn lock_recovering<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Segments are flushed once they hold at least this many entries (a
/// single candidate larger than the floor still travels whole — the
/// buffer grows to the candidate's real size at most). Batching many
/// small candidates per hand-off amortizes the pipe synchronization.
const SEGMENT_MIN_NODES: usize = 1024;

/// Upper bound on the flush budget (and thus on each segment's eager
/// reservation, ~12 bytes per entry): a saturated τ must not pre-claim
/// gigabytes up front. With the `2T + 1` pool this caps the pipe at
/// roughly `(2T + 1) · 3 MiB`; larger individual candidates still grow
/// their segment on demand, bounded by the candidate's actual size.
const SEGMENT_MAX_NODES: usize = 1 << 18;

/// One hand-off unit: a run of complete candidate subtrees in stream
/// order, stored as flat postorder entries.
#[derive(Debug, Default)]
struct Segment {
    /// `(document root postorder, candidate length)` per candidate.
    roots: Vec<(u32, u32)>,
    /// Concatenated `(label, local size)` entries of all candidates.
    entries: Vec<PostorderEntry>,
}

impl Segment {
    fn with_capacity(nodes: usize) -> Self {
        Segment {
            roots: Vec::with_capacity(nodes / 2 + 1),
            entries: Vec::with_capacity(nodes + 1),
        }
    }

    fn clear(&mut self) {
        self.roots.clear();
        self.entries.clear();
    }
}

/// The bounded SPMC hand-off pipe: the producer pushes full segments
/// into `ready`, any worker pops the next one (work stealing — shard
/// balance is automatic), and consumed segments return through the
/// `free` pool. Buffers only ever *move*, so the steady state
/// synchronizes without allocating.
struct Pipe {
    ready: Mutex<ReadyState>,
    ready_cv: Condvar,
    free: Mutex<Vec<Segment>>,
    free_cv: Condvar,
    /// Set when either side of the pipe unwinds: both blocking waits
    /// bail out instead of deadlocking on a peer that will never come
    /// back (the panic then propagates through `thread::scope`).
    aborted: AtomicBool,
}

struct ReadyState {
    queue: VecDeque<Segment>,
    done: bool,
}

impl Pipe {
    /// A pipe owning `pool` pre-sized segments.
    fn new(pool: usize, segment_nodes: usize) -> Self {
        Pipe {
            ready: Mutex::new(ReadyState {
                queue: VecDeque::with_capacity(pool),
                done: false,
            }),
            ready_cv: Condvar::new(),
            free: Mutex::new(
                (0..pool)
                    .map(|_| Segment::with_capacity(segment_nodes))
                    .collect(),
            ),
            free_cv: Condvar::new(),
            aborted: AtomicBool::new(false),
        }
    }

    /// Marks the pipe dead and wakes every waiter on both sides.
    ///
    /// Each notify happens while holding the matching mutex: a naked
    /// notify could land in the gap between a waiter's abort check and
    /// its `wait()`, be lost, and turn the panic this exists for into a
    /// hang. Lock results are deliberately not `expect`ed — abort runs
    /// during unwinding, where a poisoned mutex must not double-panic.
    fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        let ready = self.ready.lock();
        self.ready_cv.notify_all();
        drop(ready);
        let free = self.free.lock();
        self.free_cv.notify_all();
        drop(free);
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Producer: publishes a full segment to the workers.
    fn send(&self, seg: Segment) {
        lock_recovering(&self.ready).queue.push_back(seg);
        self.ready_cv.notify_one();
    }

    /// Producer: marks the stream exhausted and wakes every worker.
    fn finish(&self) {
        lock_recovering(&self.ready).done = true;
        self.ready_cv.notify_all();
    }

    /// Worker: takes the next segment, blocking while the stream is
    /// still live; `None` once the producer finished and the queue
    /// drained.
    fn recv(&self) -> Option<Segment> {
        let mut state = lock_recovering(&self.ready);
        loop {
            if self.is_aborted() {
                // A peer died; exit so its panic can propagate.
                return None;
            }
            if let Some(seg) = state.queue.pop_front() {
                return Some(seg);
            }
            if state.done {
                return None;
            }
            state = self
                .ready_cv
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Worker: returns a consumed segment to the pool (capacity kept).
    fn recycle(&self, mut seg: Segment) {
        seg.clear();
        lock_recovering(&self.free).push(seg);
        self.free_cv.notify_one();
    }

    /// Producer: acquires an empty segment, blocking until a worker
    /// recycles one (the backpressure that bounds total memory).
    ///
    /// The abort assertion below fires on the producer when a worker
    /// dies mid-stream; the entry point catches it and re-raises the
    /// *worker's* payload, so the caller sees the original panic.
    fn take_free(&self) -> Segment {
        let mut free = lock_recovering(&self.free);
        loop {
            assert!(
                !self.is_aborted(),
                "stream shard worker died; aborting the scan"
            );
            if let Some(seg) = free.pop() {
                return seg;
            }
            free = self
                .free_cv
                .wait(free)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Unwind guard held by both sides of the pipe: if its holder panics,
/// the pipe is aborted so the other side stops waiting and the panic
/// reaches `thread::scope` instead of deadlocking the scan.
struct AbortOnPanic<'p>(&'p Pipe);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

/// Producer-side [`CandidateSink`]: copies every candidate the scan
/// emits into the segment in hand and flushes it downstream once the
/// node budget is reached.
struct SegmentSink<'p> {
    pipe: &'p Pipe,
    current: Segment,
    budget: usize,
}

impl CandidateSink for SegmentSink<'_> {
    fn consume(&mut self, cand: &Tree, root: NodeId, _stats: &mut ScanStats) {
        self.current.roots.push((root.post(), cand.len() as u32));
        self.current
            .entries
            .extend(cand.postorder().map(|(l, s)| PostorderEntry::new(l, s)));
        if self.current.entries.len() >= self.budget {
            let full = std::mem::replace(&mut self.current, self.pipe.take_free());
            self.pipe.send(full);
        }
    }
}

/// One streaming shard worker: consumes segments until the pipe drains,
/// replaying every candidate through this worker's own lanes.
fn stream_worker(
    pipe: &Pipe,
    queries: &[BatchQuery<'_>],
    model: &dyn CostModel,
    c_t: u64,
    scan_tau: u32,
    opts: TasmOptions,
    want_ted_stats: bool,
) -> ShardResult {
    let _guard = AbortOnPanic(pipe);
    let (mut lanes, _) = build_lanes(queries, model, c_t, opts.kernel);
    let mut teds: Vec<TedWorkspace> = (0..lanes.len()).map(|_| TedWorkspace::new()).collect();
    let mut lb = CascadeScratch::new();
    // Reserve up front so no candidate — whichever worker it lands on —
    // grows a buffer mid-stream (also what keeps the loop zero-alloc).
    reserve_lanes(&lanes, &mut teds, &mut lb, scan_tau);
    let mut scratch = Tree::leaf(LabelId(0));
    if scratch_fits_cap(scan_tau as usize) {
        scratch.reserve(scan_tau as usize);
    }
    let mut ted_stats = want_ted_stats.then(TedStats::new);
    let mut scan = ScanStats::default();
    while let Some(seg) = pipe.recv() {
        let mut lo = 0usize;
        for &(root, len) in &seg.roots {
            let hi = lo + len as usize;
            scratch.set_postorder_unchecked(seg.entries[lo..hi].iter().map(|e| (e.label, e.size)));
            fan_out(
                &mut lanes,
                &mut teds,
                &mut lb,
                &scratch,
                root - len,
                opts,
                ted_stats.as_mut(),
            );
            lo = hi;
        }
        scan.candidates += seg.roots.len();
        pipe.recycle(seg);
    }
    ShardResult {
        lane_funnels: lanes.iter().map(|l| l.stats).collect(),
        heaps: lanes.into_iter().map(|l| l.heap).collect(),
        scan: ScanStats {
            // Scan-layer counters of the pass (nodes seen, ring peak)
            // belong to the producer; workers report only how many
            // candidates they evaluated so the sum checks out.
            candidates: scan.candidates,
            ..ScanStats::default()
        },
        ted_stats,
    }
}

/// Batch×parallel composition over a postorder **stream**: answers
/// every query of `queries` across `threads` worker threads in one
/// pass of `queue`, without ever materializing the document.
///
/// The calling thread runs the `O(τ_scan)` ring-buffer scan and hands
/// candidate segments to the workers through a bounded, recycling pipe
/// (see the [module docs](self) for the memory bound). Every ranking is
/// **exactly** what the sequential
/// [`tasm_postorder`](crate::tasm_postorder) returns for that query
/// alone, for any `threads` (`0` = one per available core; `<= 1`
/// falls back to the shared-scan [`tasm_batch`](crate::tasm_batch)
/// without spawning threads). `c_t` is the maximum document node cost
/// under `model`, as for the sequential entry points.
///
/// # Errors
///
/// [`StreamIntegrityError`] if the queue reports an abnormal end after
/// the scan drained it (truncated postorder file, malformed XML, …):
/// a ranking over a partial document could silently miss better
/// subtrees, so none is returned.
///
/// # Examples
///
/// ```
/// use tasm_tree::{bracket, LabelDict, TreeQueue};
/// use tasm_ted::UnitCost;
/// use tasm_core::{tasm_batch_parallel_stream, BatchQuery, TasmOptions};
///
/// let mut dict = LabelDict::new();
/// let q1 = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let q2 = bracket::parse("{a{b}}", &mut dict).unwrap();
/// let doc = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let queries = [
///     BatchQuery { query: &q1, k: 1 },
///     BatchQuery { query: &q2, k: 1 },
/// ];
/// // Any postorder queue works — an XML stream included.
/// let mut queue = TreeQueue::new(&doc);
/// let rankings = tasm_batch_parallel_stream(
///     &queries, &mut queue, &UnitCost, 1, TasmOptions::default(), 2, None).unwrap();
/// assert_eq!(rankings[0][0].root.post(), 6); // exact match for q1
/// ```
pub fn tasm_batch_parallel_stream<Q: PostorderQueue + ?Sized>(
    queries: &[BatchQuery<'_>],
    queue: &mut Q,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    stats: Option<&mut TedStats>,
) -> Result<Vec<Vec<Match>>, StreamIntegrityError> {
    tasm_batch_parallel_stream_with_stats(queries, queue, model, c_t, opts, threads, stats)
        .map(|out| out.0)
}

/// Successful output of the stats-reporting batch streaming entry
/// points: per-query rankings, the aggregated [`ScanStats`] (one scan;
/// funnel summed over all lanes), and the per-lane statistics in query
/// order.
pub type BatchStreamOutput = (Vec<Vec<Match>>, ScanStats, Vec<ScanStats>);

/// As [`tasm_batch_parallel_stream`], but also returning the aggregated
/// [`ScanStats`] (one scan; funnel summed over all lanes) and the
/// per-lane statistics in query order.
pub fn tasm_batch_parallel_stream_with_stats<Q: PostorderQueue + ?Sized>(
    queries: &[BatchQuery<'_>],
    queue: &mut Q,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    stats: Option<&mut TedStats>,
) -> Result<BatchStreamOutput, StreamIntegrityError> {
    let mut ws = BatchWorkspace::new();
    tasm_batch_parallel_stream_with_workspace(
        queries, queue, model, c_t, opts, threads, &mut ws, stats,
    )
}

/// As [`tasm_batch_parallel_stream_with_stats`], but reusing the
/// caller's [`BatchWorkspace`] for the single-threaded fallback: when
/// `threads` resolves to `<= 1` the scan runs through the shared-scan
/// batch path with the caller's warm buffers, preserving the
/// O(#queries)-allocations-per-scan reuse contract. The sharded path
/// leaves `ws` untouched — each worker owns its state by design.
#[allow(clippy::too_many_arguments)]
pub fn tasm_batch_parallel_stream_with_workspace<Q: PostorderQueue + ?Sized>(
    queries: &[BatchQuery<'_>],
    queue: &mut Q,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    ws: &mut BatchWorkspace,
    stats: Option<&mut TedStats>,
) -> Result<BatchStreamOutput, StreamIntegrityError> {
    match tasm_batch_parallel_stream_deadline_with_workspace(
        queries,
        queue,
        model,
        c_t,
        opts,
        threads,
        ws,
        stats,
        &Deadline::none(),
    ) {
        Ok(out) => Ok(out),
        Err(StreamScanError::Integrity(e)) => Err(e),
        Err(StreamScanError::Deadline(_)) => unreachable!("Deadline::none() never expires"),
    }
}

/// As [`tasm_batch_parallel_stream_with_workspace`], but cooperatively
/// cancellable: the producer — the one thread running the unbounded
/// per-candidate scan loop — polls `deadline` and aborts the whole pass
/// when it expires. Workers drain the already-published segments and
/// exit; their partial heaps are discarded.
///
/// # Errors
///
/// [`StreamScanError::Deadline`] if the deadline expires mid-scan,
/// [`StreamScanError::Integrity`] if the stream ends abnormally. In
/// both cases no partial rankings are returned.
#[allow(clippy::too_many_arguments)]
pub fn tasm_batch_parallel_stream_deadline_with_workspace<Q: PostorderQueue + ?Sized>(
    queries: &[BatchQuery<'_>],
    queue: &mut Q,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    ws: &mut BatchWorkspace,
    stats: Option<&mut TedStats>,
    deadline: &Deadline,
) -> Result<BatchStreamOutput, StreamScanError> {
    if queries.is_empty() {
        return Ok((Vec::new(), ScanStats::default(), Vec::new()));
    }
    let threads = resolve_threads(threads);
    if threads <= 1 {
        // One worker would only add hand-off copies: the shared-scan
        // batch path is the same streaming work inline.
        let rankings = tasm_batch_deadline_with_workspace(
            queries, queue, model, c_t, opts, ws, stats, deadline,
        )?;
        if let Some(msg) = queue.integrity_error() {
            return Err(StreamIntegrityError(msg).into());
        }
        return Ok((
            rankings,
            ws.last_scan_stats(),
            ws.last_lane_stats().to_vec(),
        ));
    }

    // The scan must cover the widest lane threshold; the workers build
    // their own lanes, so only the thresholds are computed here.
    let scan_tau = scan_tau_of(queries, model, c_t);
    // The flush budget is capped so a pathological τ (e.g. saturated by
    // a huge k) cannot pre-reserve gigabytes of segments or defer every
    // flush to the end of the stream; an individual candidate larger
    // than the budget still travels whole (the buffer grows to its real
    // size on demand, bounded by the actual subtree).
    let budget = (scan_tau as usize).clamp(SEGMENT_MIN_NODES, SEGMENT_MAX_NODES);
    let pipe = Pipe::new(2 * threads + 1, budget);
    let want_ted_stats = stats.is_some();

    let (producer_out, worker_outs) = std::thread::scope(|scope| {
        let pipe = &pipe;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    // The guard inside `stream_worker` aborts the pipe
                    // while unwinding; catching here preserves the
                    // payload so the caller re-raises the *original*
                    // panic, not a join shim or a "poisoned" secondary.
                    catch_unwind(AssertUnwindSafe(|| {
                        stream_worker(pipe, queries, model, c_t, scan_tau, opts, want_ted_stats)
                    }))
                })
            })
            .collect();

        // The producer runs on the calling thread: one ring-buffer pass
        // over the stream, segmenting candidates as they fall out. Its
        // own panics are caught too — when a worker dies first, the
        // producer goes down on the `take_free` abort assertion, and
        // that secondary panic must not shadow the worker's.
        let producer_out = catch_unwind(AssertUnwindSafe(|| {
            let _guard = AbortOnPanic(pipe);
            let mut engine = ScanEngine::new(scan_tau);
            if scratch_fits_cap(scan_tau as usize) {
                engine.reserve();
            }
            let mut sink = SegmentSink {
                pipe,
                current: pipe.take_free(),
                budget,
            };
            let scan = engine.scan_with_deadline(queue, &mut sink, deadline);
            let integrity = queue.integrity_error();
            let last = sink.current;
            if scan.is_err() || last.roots.is_empty() {
                // On a deadline abort the partial segment is dropped:
                // the workers' heaps are discarded anyway, so feeding
                // them more candidates is pure waste.
                pipe.recycle(last);
            } else {
                pipe.send(last);
            }
            pipe.finish();
            (scan, integrity)
        }));
        if producer_out.is_err() {
            // The guard already aborted inside the closure, but only
            // after its own unwinding began; make doubly sure no worker
            // is left waiting on a stream that will never finish.
            pipe.abort();
        }

        let worker_outs: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("stream worker died outside catch_unwind"))
            .collect();
        (producer_out, worker_outs)
    });

    // A worker's own panic outranks whatever the producer reports: the
    // producer's failure is usually the *consequence* (abort assertion)
    // of the worker's death, never its cause.
    let mut results: Vec<ShardResult> = Vec::with_capacity(worker_outs.len());
    let mut worker_panic = None;
    for out in worker_outs {
        match out {
            Ok(r) => results.push(r),
            Err(payload) => {
                worker_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
    let (producer_scan, integrity) = match producer_out {
        Ok(out) => out,
        Err(payload) => resume_unwind(payload),
    };
    // A deadline abort outranks integrity reporting: a scan cancelled
    // mid-stream naturally leaves the queue "incomplete".
    let producer_scan = producer_scan?;
    if let Some(msg) = integrity {
        return Err(StreamIntegrityError(msg).into());
    }

    debug_assert_eq!(
        results.iter().map(|r| r.scan.candidates).sum::<usize>(),
        producer_scan.candidates,
        "every candidate must be evaluated by exactly one worker"
    );
    let (rankings, mut aggregate, mut lane_stats) =
        merge_shard_results(queries.len(), results, stats);
    // Scan-layer truth comes from the producer's single pass.
    aggregate.adopt_scan_layer(&producer_scan);
    for ls in &mut lane_stats {
        ls.adopt_scan_layer(&producer_scan);
    }
    Ok((rankings, aggregate, lane_stats))
}

/// Computes the top-`k` ranking of `query` against a postorder
/// **stream**, sharding candidate evaluation across `threads` worker
/// threads — the streaming counterpart of
/// [`tasm_parallel`](crate::tasm_parallel), with no materialized
/// document and `O(threads · τ + m²)` memory.
///
/// Returns **exactly** the sequential
/// [`tasm_postorder`](crate::tasm_postorder) ranking for any `threads`
/// (`0` = one per available core).
///
/// # Errors
///
/// [`StreamIntegrityError`] if the queue ends abnormally (truncated
/// file, malformed XML, …) — see [`tasm_batch_parallel_stream`].
///
/// # Examples
///
/// ```
/// use tasm_tree::{bracket, LabelDict, TreeQueue};
/// use tasm_ted::UnitCost;
/// use tasm_core::{tasm_parallel_stream, TasmOptions};
///
/// let mut dict = LabelDict::new();
/// let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let mut queue = TreeQueue::new(&h);
/// let top2 =
///     tasm_parallel_stream(&g, &mut queue, 2, &UnitCost, 1, TasmOptions::default(), 2).unwrap();
/// assert_eq!(top2[0].root.post(), 6);
/// assert_eq!(top2[1].root.post(), 3);
/// ```
pub fn tasm_parallel_stream<Q: PostorderQueue + ?Sized>(
    query: &Tree,
    queue: &mut Q,
    k: usize,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
) -> Result<Vec<Match>, StreamIntegrityError> {
    tasm_parallel_stream_with_stats(query, queue, k, model, c_t, opts, threads, None)
        .map(|out| out.0)
}

/// As [`tasm_parallel_stream`], but also returning the pass's
/// [`ScanStats`] and, if `stats` is given, merging every worker's
/// [`TedStats`] into it.
#[allow(clippy::too_many_arguments)]
pub fn tasm_parallel_stream_with_stats<Q: PostorderQueue + ?Sized>(
    query: &Tree,
    queue: &mut Q,
    k: usize,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    stats: Option<&mut TedStats>,
) -> Result<(Vec<Match>, ScanStats), StreamIntegrityError> {
    let queries = [BatchQuery { query, k }];
    let (mut rankings, scan, _) =
        tasm_batch_parallel_stream_with_stats(&queries, queue, model, c_t, opts, threads, stats)?;
    Ok((rankings.pop().expect("one lane"), scan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasm_postorder::tasm_postorder;
    use tasm_ted::UnitCost;
    use tasm_tree::{bracket, LabelDict, TreeQueue};

    fn wide_doc(dict: &mut LabelDict, records: usize) -> Tree {
        let mut s = String::from("{dblp");
        for i in 0..records {
            match i % 3 {
                0 => s.push_str("{article{a}{t}}"),
                1 => s.push_str("{book{t}}"),
                _ => s.push_str("{article{a}{t}{y}}"),
            }
        }
        s.push('}');
        bracket::parse(&s, dict).unwrap()
    }

    #[test]
    fn stream_parallel_equals_sequential() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 80);
        let query = bracket::parse("{article{a}{t}}", &mut dict).unwrap();
        let opts = TasmOptions {
            keep_trees: true,
            ..Default::default()
        };
        for k in [1usize, 3, 10] {
            let mut q = TreeQueue::new(&doc);
            let want = tasm_postorder(&query, &mut q, k, &UnitCost, 1, opts, None);
            for threads in [1usize, 2, 3, 4, 7] {
                let mut q = TreeQueue::new(&doc);
                let got =
                    tasm_parallel_stream(&query, &mut q, k, &UnitCost, 1, opts, threads).unwrap();
                assert_eq!(got, want, "k = {k}, threads = {threads}");
            }
        }
    }

    #[test]
    fn stream_batch_parallel_matches_per_query_sequential() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 60);
        let q1 = bracket::parse("{article{a}{t}}", &mut dict).unwrap();
        let q2 = bracket::parse("{book{t}}", &mut dict).unwrap();
        let q3 = bracket::parse("{y}", &mut dict).unwrap();
        let queries = [
            BatchQuery { query: &q1, k: 4 },
            BatchQuery { query: &q2, k: 1 },
            BatchQuery { query: &q3, k: 9 },
        ];
        let opts = TasmOptions::default();
        for threads in [2usize, 4, 7] {
            let mut q = TreeQueue::new(&doc);
            let (rankings, agg, lanes) = tasm_batch_parallel_stream_with_stats(
                &queries, &mut q, &UnitCost, 1, opts, threads, None,
            )
            .unwrap();
            assert_eq!(rankings.len(), 3);
            assert_eq!(lanes.len(), 3);
            assert_eq!(agg.nodes_seen as usize, doc.len());
            for (bq, got) in queries.iter().zip(&rankings) {
                let mut q = TreeQueue::new(&doc);
                let want = tasm_postorder(bq.query, &mut q, bq.k, &UnitCost, 1, opts, None);
                assert_eq!(got, &want, "threads = {threads}");
            }
            // Per-lane funnels sum to the aggregate funnel.
            let funnel_sum: u64 = lanes.iter().map(|l| l.evaluated).sum();
            assert_eq!(funnel_sum, agg.evaluated);
            for lane in &lanes {
                assert_eq!(lane.candidates, agg.candidates);
            }
        }
    }

    #[test]
    fn stream_stats_merge_ted_stats() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 40);
        let query = bracket::parse("{book{t}}", &mut dict).unwrap();
        let mut ted = TedStats::new();
        let mut q = TreeQueue::new(&doc);
        let (m, scan) = tasm_parallel_stream_with_stats(
            &query,
            &mut q,
            2,
            &UnitCost,
            1,
            TasmOptions::default(),
            3,
            Some(&mut ted),
        )
        .unwrap();
        assert_eq!(m.len(), 2);
        assert!(scan.candidates > 0);
        assert!(ted.ted_calls > 0);
    }

    #[test]
    fn zero_and_one_threads_match_sequential() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 20);
        let query = bracket::parse("{book{t}}", &mut dict).unwrap();
        let mut q = TreeQueue::new(&doc);
        let want = tasm_postorder(
            &query,
            &mut q,
            2,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        for threads in [0usize, 1] {
            let mut q = TreeQueue::new(&doc);
            let got = tasm_parallel_stream(
                &query,
                &mut q,
                2,
                &UnitCost,
                1,
                TasmOptions::default(),
                threads,
            )
            .unwrap();
            assert_eq!(got, want, "threads = {threads}");
        }
    }

    #[test]
    fn single_node_stream_works() {
        let mut dict = LabelDict::new();
        let doc = bracket::parse("{a}", &mut dict).unwrap();
        let query = bracket::parse("{a}", &mut dict).unwrap();
        let mut q = TreeQueue::new(&doc);
        let got = tasm_parallel_stream(&query, &mut q, 1, &UnitCost, 1, TasmOptions::default(), 4)
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].distance, tasm_ted::Cost::ZERO);
    }

    #[test]
    #[should_panic(expected = "queue exploded")]
    fn producer_panic_propagates_instead_of_hanging() {
        // A queue that dies mid-stream: the producer's panic must abort
        // the pipe so the workers exit and `thread::scope` can re-raise
        // it — a lost wakeup here would hang the scan forever.
        struct PanicQueue(u32);
        impl PostorderQueue for PanicQueue {
            fn dequeue(&mut self) -> Option<PostorderEntry> {
                self.0 += 1;
                assert!(self.0 <= 5000, "queue exploded");
                // An endless forest of leaves (every prefix valid).
                Some(PostorderEntry::new(LabelId(0), 1))
            }
        }
        let mut dict = LabelDict::new();
        let query = bracket::parse("{a}", &mut dict).unwrap();
        let _ = tasm_parallel_stream(
            &query,
            &mut PanicQueue(0),
            1,
            &UnitCost,
            1,
            TasmOptions::default(),
            4,
        );
    }

    #[test]
    fn empty_query_list_consumes_nothing() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 5);
        let mut q = TreeQueue::new(&doc);
        let out =
            tasm_batch_parallel_stream(&[], &mut q, &UnitCost, 1, TasmOptions::default(), 4, None)
                .unwrap();
        assert!(out.is_empty());
        assert!(q.dequeue().is_some(), "queue untouched");
    }

    /// A queue that serves a fixed prefix of a larger document, then
    /// reports the difference as an integrity error — the in-memory
    /// analogue of a truncated `.pq` file.
    struct TruncatedQueue {
        entries: Vec<PostorderEntry>,
        next: usize,
        missing: usize,
    }

    impl PostorderQueue for TruncatedQueue {
        fn dequeue(&mut self) -> Option<PostorderEntry> {
            let e = self.entries.get(self.next).copied();
            self.next += e.is_some() as usize;
            e
        }

        fn integrity_error(&self) -> Option<String> {
            (self.next >= self.entries.len() && self.missing > 0)
                .then(|| format!("postorder file truncated: {} nodes missing", self.missing))
        }
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_partial_ranking() {
        // Before the fix, both paths happily ranked whatever prefix the
        // queue produced — a truncated corpus file went unnoticed.
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 30);
        let query = bracket::parse("{article{a}{t}}", &mut dict).unwrap();
        let cut = doc.len() / 2; // leaves a valid forest prefix
        for threads in [1usize, 4] {
            let mut q = TruncatedQueue {
                entries: doc
                    .postorder()
                    .take(cut)
                    .map(|(l, s)| PostorderEntry::new(l, s))
                    .collect(),
                next: 0,
                missing: doc.len() - cut,
            };
            let err = tasm_parallel_stream(
                &query,
                &mut q,
                3,
                &UnitCost,
                1,
                TasmOptions::default(),
                threads,
            )
            .unwrap_err();
            assert!(
                err.to_string().contains("truncated"),
                "threads = {threads}: {err}"
            );
        }
    }

    #[test]
    fn worker_panic_payload_reaches_the_caller() {
        // A cost model that explodes on a label only the document
        // contains: the panic happens on a *worker* thread, mid-pipe.
        // Before the fix the caller saw the producer's secondary
        // "stream shard worker died" assert (or a join shim) instead of
        // the original payload.
        struct BoomCost(LabelId);
        impl CostModel for BoomCost {
            fn node_cost(&self, tree: tasm_tree::TreeView<'_>, node: NodeId) -> u64 {
                assert!(tree.label(node) != self.0, "cost model exploded");
                1
            }
            fn max_cost(&self, _: tasm_tree::TreeView<'_>) -> u64 {
                1
            }
        }
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 50);
        let query = bracket::parse("{article{a}{t}}", &mut dict).unwrap();
        let boom = BoomCost(dict.get("book").unwrap());
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut q = TreeQueue::new(&doc);
            let _ = tasm_parallel_stream(&query, &mut q, 2, &boom, 1, TasmOptions::default(), 4);
        }))
        .unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("cost model exploded"),
            "caller saw `{msg}` instead of the worker's own panic"
        );
    }
}
