//! The naive TASM solution (Sec. I): one independent tree-edit-distance
//! computation per document subtree — `O(m² n²)` time. Kept as the
//! ground-truth oracle for the other algorithms and to quantify the
//! `O(n)` speedup of TASM-dynamic in the ablation bench.

use crate::ranking::{Match, TopKHeap};
use crate::tasm_dynamic::TasmOptions;
use tasm_ted::{ted, CostModel, TedStats};
use tasm_tree::Tree;

/// Computes the top-`k` ranking by evaluating `δ(Q, T_j)` separately for
/// every subtree `T_j` of `doc`.
pub fn tasm_naive(
    query: &Tree,
    doc: &Tree,
    k: usize,
    model: &dyn CostModel,
    opts: TasmOptions,
    mut stats: Option<&mut TedStats>,
) -> Vec<Match> {
    let mut heap = TopKHeap::new(k.max(1));
    for j in doc.nodes() {
        let subtree = doc.subtree(j);
        if let Some(s) = stats.as_deref_mut() {
            s.record_call();
            s.record_relevant(subtree.len() as u32);
        }
        let distance = ted(query, &subtree, model);
        heap.offer(Match {
            root: j,
            size: doc.size(j),
            distance,
            tree: opts.keep_trees.then_some(subtree),
        });
    }
    heap.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasm_dynamic::tasm_dynamic;
    use tasm_ted::{Cost, UnitCost};
    use tasm_tree::{bracket, LabelDict};

    #[test]
    fn matches_paper_example_2() {
        let mut dict = LabelDict::new();
        let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
        let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
        let top2 = tasm_naive(&g, &h, 2, &UnitCost, TasmOptions::default(), None);
        assert_eq!(top2[0].root.post(), 6);
        assert_eq!(top2[0].distance, Cost::ZERO);
        assert_eq!(top2[1].root.post(), 3);
        assert_eq!(top2[1].distance, Cost::from_natural(1));
    }

    #[test]
    fn agrees_with_dynamic_exactly() {
        let mut dict = LabelDict::new();
        let q = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
        let t = bracket::parse("{r{a{b}{c}}{z{a{b}}{a{b}{c}{d}}}{a{c}{b}}}", &mut dict).unwrap();
        for k in [1, 2, 3, 5, 20] {
            let naive = tasm_naive(&q, &t, k, &UnitCost, TasmOptions::default(), None);
            let dynamic = tasm_dynamic(&q, &t, k, &UnitCost, TasmOptions::default(), None);
            let a: Vec<(u64, u32)> = naive
                .iter()
                .map(|m| (m.distance.halves(), m.root.post()))
                .collect();
            let b: Vec<(u64, u32)> = dynamic
                .iter()
                .map(|m| (m.distance.halves(), m.root.post()))
                .collect();
            assert_eq!(a, b, "k = {k}");
        }
    }

    #[test]
    fn keep_trees() {
        let mut dict = LabelDict::new();
        let q = bracket::parse("{b}", &mut dict).unwrap();
        let t = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
        let top = tasm_naive(
            &q,
            &t,
            1,
            &UnitCost,
            TasmOptions {
                keep_trees: true,
                ..Default::default()
            },
            None,
        );
        assert_eq!(top[0].tree.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn naive_stats_count_every_subtree() {
        let mut dict = LabelDict::new();
        let q = bracket::parse("{b}", &mut dict).unwrap();
        let t = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
        let mut st = TedStats::new();
        tasm_naive(&q, &t, 1, &UnitCost, TasmOptions::default(), Some(&mut st));
        assert_eq!(st.ted_calls, 3);
        assert_eq!(st.total_relevant(), 3);
    }
}
