//! TASM-postorder (Algorithm 3, Sec. VI): the paper's contribution.
//!
//! The document is consumed once, as a postorder queue. The prefix ring
//! buffer emits the candidate set `cand(T, τ)` for the Theorem 3 threshold
//! `τ = |Q|(c_Q + 1) + k·c_T`; every candidate subtree is handed to
//! TASM-dynamic and merged into a bounded max-heap. Once an intermediate
//! ranking of `k` matches exists, the Lemma 4 bound
//! `τ' = min(τ, max(R) + |Q|)` prunes *inside* each candidate: its subtrees
//! are traversed in reverse postorder and only those smaller than `τ'` are
//! evaluated.
//!
//! Space is `O(m² c_Q + m k c_T)` — independent of the document — and time
//! is `O(m² n)` (Theorem 5).

use crate::ranking::{Match, TopKHeap};
use crate::ring_buffer::PrefixRingBuffer;
use crate::tasm_dynamic::{rank_subtrees_into, TasmOptions};
use crate::threshold::{refined_threshold, threshold};
use tasm_ted::{CostModel, NodeCosts, TedStats};
use tasm_tree::{NodeId, PostorderQueue, Tree};

/// Computes the top-`k` ranking of the subtrees of a streamed document
/// w.r.t. `query`, in a single pass over `queue`.
///
/// `c_t` is the maximum node cost of the document under `model` (Theorem 3
/// needs it up front; under [`UnitCost`](tasm_ted::UnitCost) it is 1). If
/// the stream contains nodes of larger cost the threshold would be
/// unsound, so pass a true upper bound.
///
/// # Examples
///
/// ```
/// use tasm_tree::{bracket, LabelDict, TreeQueue};
/// use tasm_ted::UnitCost;
/// use tasm_core::{tasm_postorder, TasmOptions};
///
/// let mut dict = LabelDict::new();
/// let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let mut queue = TreeQueue::new(&h);
/// let top2 = tasm_postorder(&g, &mut queue, 2, &UnitCost, 1, TasmOptions::default(), None);
/// // Example 2: R = (H6, H3).
/// assert_eq!(top2[0].root.post(), 6);
/// assert_eq!(top2[1].root.post(), 3);
/// ```
pub fn tasm_postorder<Q: PostorderQueue + ?Sized>(
    query: &Tree,
    queue: &mut Q,
    k: usize,
    model: &dyn CostModel,
    c_t: u64,
    opts: TasmOptions,
    mut stats: Option<&mut TedStats>,
) -> Vec<Match> {
    let k = k.max(1);
    let m = query.len() as u64;
    let query_costs = NodeCosts::compute(query, model);
    let tau64 = threshold(m, query_costs.max(), c_t, k as u64);
    let tau = u32::try_from(tau64).unwrap_or(u32::MAX);

    let mut heap = TopKHeap::new(k);
    let mut prb = PrefixRingBuffer::new(queue, tau);

    while let Some(cand) = prb.next_candidate() {
        // Document postorder number of the node before the candidate span.
        let offset = cand.root.post() - cand.tree.len() as u32;
        process_candidate(
            &mut heap,
            query,
            &query_costs,
            &cand.tree,
            offset,
            tau64,
            model,
            opts,
            stats.as_deref_mut(),
        );
    }
    heap.into_sorted()
}

/// Algorithm 3, lines 7–19: traverse the subtrees of candidate `cand` in
/// reverse postorder; evaluate each maximal subtree below the current
/// bound `τ'` with TASM-dynamic and skip over its nodes, descending one
/// node at a time otherwise.
#[allow(clippy::too_many_arguments)]
fn process_candidate(
    heap: &mut TopKHeap,
    query: &Tree,
    query_costs: &NodeCosts,
    cand: &Tree,
    doc_post_offset: u32,
    tau: u64,
    model: &dyn CostModel,
    opts: TasmOptions,
    mut stats: Option<&mut TedStats>,
) {
    let m = query.len() as u64;
    let mut r = cand.len() as u32; // local postorder of the current root
    while r >= 1 {
        let node = NodeId::new(r);
        let size = cand.size(node) as u64;
        let tau_prime = if opts.use_tau_prime && heap.is_full() {
            refined_threshold(tau, heap.max_distance().expect("full heap"), m)
        } else {
            tau
        };
        if !heap.is_full() || size < tau_prime {
            let subtree = cand.subtree(node);
            let sub_offset = doc_post_offset + r - subtree.len() as u32;
            let doc_costs = NodeCosts::compute(&subtree, model);
            rank_subtrees_into(
                heap,
                query,
                query_costs,
                &subtree,
                &doc_costs,
                sub_offset,
                opts,
                stats.as_deref_mut(),
            );
            // All subtrees of `subtree` were ranked as a side effect.
            r -= size as u32;
        } else {
            r -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasm_dynamic::tasm_dynamic;
    use tasm_ted::{Cost, UnitCost};
    use tasm_tree::{bracket, LabelDict, TreeQueue};

    fn parse(s: &str, dict: &mut LabelDict) -> Tree {
        bracket::parse(s, dict).unwrap()
    }

    fn example_d(dict: &mut LabelDict) -> Tree {
        parse(
            "{dblp{article{auth{John}}{title{X1}}}{proceedings{conf{VLDB}}\
             {article{auth{Peter}}{title{X3}}}{article{auth{Mike}}{title{X4}}}}\
             {book{title{X2}}}}",
            dict,
        )
    }

    #[test]
    fn paper_example_2() {
        let mut dict = LabelDict::new();
        let g = parse("{a{b}{c}}", &mut dict);
        let h = parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict);
        let mut q = TreeQueue::new(&h);
        let top2 = tasm_postorder(&g, &mut q, 2, &UnitCost, 1, TasmOptions::default(), None);
        assert_eq!(top2.len(), 2);
        assert_eq!((top2[0].root.post(), top2[0].distance), (6, Cost::ZERO));
        assert_eq!(
            (top2[1].root.post(), top2[1].distance),
            (3, Cost::from_natural(1))
        );
    }

    #[test]
    fn agrees_with_dynamic_on_example_d() {
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let query = parse("{article{auth{Peter}}{title{X3}}}", &mut dict);
        for k in [1usize, 2, 3, 5, 10, 22] {
            let dy = tasm_dynamic(&query, &doc, k, &UnitCost, TasmOptions::default(), None);
            let mut q = TreeQueue::new(&doc);
            let po = tasm_postorder(
                &query,
                &mut q,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                None,
            );
            let dyd: Vec<(u64, u32)> = dy
                .iter()
                .map(|m| (m.distance.halves(), m.root.post()))
                .collect();
            let pod: Vec<(u64, u32)> = po
                .iter()
                .map(|m| (m.distance.halves(), m.root.post()))
                .collect();
            assert_eq!(dyd, pod, "k = {k}");
        }
    }

    #[test]
    fn exact_match_is_top1() {
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let query = parse("{book{title{X2}}}", &mut dict);
        let mut q = TreeQueue::new(&doc);
        let top = tasm_postorder(
            &query,
            &mut q,
            1,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        assert_eq!(top[0].distance, Cost::ZERO);
        assert_eq!(top[0].root.post(), 21);
    }

    #[test]
    fn keep_trees_returns_match_content() {
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let query = parse("{book{title{X2}}}", &mut dict);
        let mut q = TreeQueue::new(&doc);
        let opts = TasmOptions {
            keep_trees: true,
            ..Default::default()
        };
        let top = tasm_postorder(&query, &mut q, 1, &UnitCost, 1, opts, None);
        let tree = top[0].tree.as_ref().expect("kept");
        assert_eq!(tree, &doc.subtree(NodeId::new(21)));
    }

    #[test]
    fn stats_show_pruning_vs_dynamic() {
        // The headline effect (Fig. 11): postorder's largest computed
        // relevant subtree is bounded by τ, dynamic computes the whole doc.
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let query = parse("{auth{X}}", &mut dict);
        let k = 1;

        let mut st_dy = TedStats::new();
        tasm_dynamic(
            &query,
            &doc,
            k,
            &UnitCost,
            TasmOptions::default(),
            Some(&mut st_dy),
        );
        assert_eq!(st_dy.max_relevant_size(), doc.len() as u32);

        let mut st_po = TedStats::new();
        let mut q = TreeQueue::new(&doc);
        tasm_postorder(
            &query,
            &mut q,
            k,
            &UnitCost,
            1,
            TasmOptions::default(),
            Some(&mut st_po),
        );
        let tau = threshold(query.len() as u64, 1, 1, k as u64);
        assert!(u64::from(st_po.max_relevant_size()) <= tau);
    }

    #[test]
    fn k_exceeding_subtree_count() {
        let mut dict = LabelDict::new();
        let doc = parse("{a{b}{c}}", &mut dict);
        let query = parse("{a}", &mut dict);
        let mut q = TreeQueue::new(&doc);
        let all = tasm_postorder(
            &query,
            &mut q,
            10,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        assert_eq!(all.len(), 3);
        // Ascending distances.
        assert!(all.windows(2).all(|w| w[0].distance <= w[1].distance));
    }

    #[test]
    fn single_node_query_and_doc() {
        let mut dict = LabelDict::new();
        let doc = parse("{a}", &mut dict);
        let query = parse("{a}", &mut dict);
        let mut q = TreeQueue::new(&doc);
        let top = tasm_postorder(
            &query,
            &mut q,
            1,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].distance, Cost::ZERO);
    }
}
