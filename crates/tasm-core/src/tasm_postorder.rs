//! TASM-postorder (Algorithm 3, Sec. VI): the paper's contribution.
//!
//! The document is consumed once, as a postorder queue. The prefix ring
//! buffer emits the candidate set `cand(T, τ)` for the Theorem 3 threshold
//! `τ = |Q|(c_Q + 1) + k·c_T`; every candidate subtree is handed to
//! TASM-dynamic and merged into a bounded max-heap. Once an intermediate
//! ranking of `k` matches exists, the Lemma 4 bound
//! `τ' = min(τ, max(R) + |Q|)` prunes *inside* each candidate: its subtrees
//! are traversed in reverse postorder and only those smaller than `τ'` are
//! evaluated.
//!
//! Space is `O(m² c_Q + m k c_T)` — independent of the document — and time
//! is `O(m² n)` (Theorem 5).
//!
//! On top of Algorithm 3, each maximal in-bound subtree is offered to the
//! admissible [`LowerBoundCascade`] against the current heap cutoff
//! `max(R)` before its DP runs: a refuted subtree (every one of its
//! subtrees provably beyond the cutoff) is skipped wholesale, and the
//! surviving ones are evaluated **in place** as [`TreeView`] slices of
//! the candidate arena — no scratch-tree copy.

use crate::engine::{CandidateSink, ScanStats};
use crate::ranking::{Match, TopKHeap};
use crate::tasm_dynamic::{rank_subtrees_into, TasmOptions};
use crate::threshold::{refined_threshold, threshold};
use crate::workspace::TasmWorkspace;
use tasm_ted::{
    CascadeDecision, CascadeScratch, CostModel, LowerBoundCascade, QueryContext, TedStats,
    TedWorkspace,
};
use tasm_tree::{NodeId, PostorderQueue, Tree, TreeView};

/// Computes the top-`k` ranking of the subtrees of a streamed document
/// w.r.t. `query`, in a single pass over `queue`.
///
/// `c_t` is the maximum node cost of the document under `model` (Theorem 3
/// needs it up front; under [`UnitCost`](tasm_ted::UnitCost) it is 1). If
/// the stream contains nodes of larger cost the threshold would be
/// unsound, so pass a true upper bound.
///
/// # Examples
///
/// ```
/// use tasm_tree::{bracket, LabelDict, TreeQueue};
/// use tasm_ted::UnitCost;
/// use tasm_core::{tasm_postorder, TasmOptions};
///
/// let mut dict = LabelDict::new();
/// let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let mut queue = TreeQueue::new(&h);
/// let top2 = tasm_postorder(&g, &mut queue, 2, &UnitCost, 1, TasmOptions::default(), None);
/// // Example 2: R = (H6, H3).
/// assert_eq!(top2[0].root.post(), 6);
/// assert_eq!(top2[1].root.post(), 3);
/// ```
pub fn tasm_postorder<Q: PostorderQueue + ?Sized>(
    query: &Tree,
    queue: &mut Q,
    k: usize,
    model: &dyn CostModel,
    c_t: u64,
    opts: TasmOptions,
    stats: Option<&mut TedStats>,
) -> Vec<Match> {
    let mut ws = TasmWorkspace::new();
    tasm_postorder_with_workspace(query, queue, k, model, c_t, opts, &mut ws, stats)
}

/// As [`tasm_postorder`], but reusing the caller's [`TasmWorkspace`].
///
/// The query context (keyroots, leftmost leaves, node costs) is computed
/// once up front; every candidate is renumbered into, evaluated from and
/// ranked through the workspace's buffers. After
/// [`TasmWorkspace::reserve`] (called internally with the Theorem 3
/// bound τ) the entire candidate loop performs **zero heap allocations**
/// — the document stream costs O(1) allocations total, regardless of its
/// length. Reuse the same workspace across streams to amortize even the
/// warm-up.
#[allow(clippy::too_many_arguments)]
pub fn tasm_postorder_with_workspace<Q: PostorderQueue + ?Sized>(
    query: &Tree,
    queue: &mut Q,
    k: usize,
    model: &dyn CostModel,
    c_t: u64,
    opts: TasmOptions,
    ws: &mut TasmWorkspace,
    stats: Option<&mut TedStats>,
) -> Vec<Match> {
    let k = k.max(1);
    let m = query.len() as u64;
    let ctx = QueryContext::with_kernel(query, model, opts.kernel);
    let cascade = LowerBoundCascade::from_context(&ctx);
    let tau64 = threshold(m, ctx.max_cost(), c_t, k as u64);
    let tau = u32::try_from(tau64).unwrap_or(u32::MAX);
    ws.reserve(query.len(), tau);
    if ctx.uses_strategy_kernel() {
        ws.reserve_mirror(tau);
    }

    let mut heap = TopKHeap::new(k);
    let scan = {
        let TasmWorkspace {
            ted, engine, lb, ..
        } = ws;
        let mut sink = SingleQuerySink {
            heap: &mut heap,
            ctx: &ctx,
            cascade: &cascade,
            tau: tau64,
            opts,
            lb,
            ted,
            stats,
        };
        engine.scan(queue, &mut sink)
    };
    ws.last_scan = scan;
    heap.into_sorted()
}

/// The evaluation layer of TASM-postorder as a [`CandidateSink`]: every
/// candidate the scan engine emits is descended per Algorithm 3
/// (lines 7–19) against one query's context, cascade, heap and τ bound.
pub(crate) struct SingleQuerySink<'a> {
    pub(crate) heap: &'a mut TopKHeap,
    pub(crate) ctx: &'a QueryContext<'a>,
    pub(crate) cascade: &'a LowerBoundCascade<'a>,
    /// The Theorem 3 bound τ for this query (Lemma 4 refines it per
    /// candidate once the heap is full).
    pub(crate) tau: u64,
    pub(crate) opts: TasmOptions,
    pub(crate) lb: &'a mut CascadeScratch,
    pub(crate) ted: &'a mut TedWorkspace,
    pub(crate) stats: Option<&'a mut TedStats>,
}

impl CandidateSink for SingleQuerySink<'_> {
    fn consume(&mut self, cand: &Tree, root: NodeId, scan: &mut ScanStats) {
        // Document postorder number of the node before the candidate span.
        let offset = root.post() - cand.len() as u32;
        process_candidate_parts(
            self.heap,
            self.ctx,
            self.cascade,
            cand,
            offset,
            self.tau,
            self.opts,
            self.lb,
            self.ted,
            scan,
            self.stats.as_deref_mut(),
        );
    }
}

/// Algorithm 3, lines 7–19, against a caller-owned workspace: traverse
/// the subtrees of candidate `cand` in reverse postorder; evaluate each
/// maximal subtree below the current bound `τ'` with TASM-dynamic —
/// unless the lower-bound `cascade` refutes it against the current heap
/// cutoff — and skip over its nodes, descending one node at a time
/// otherwise.
///
/// `doc_post_offset` is the document postorder number of the node
/// preceding the candidate's leftmost node; `tau` is the Theorem 3 bound
/// used by the Lemma 4 refinement; `scan` accumulates the per-tier
/// pruning funnel. Exposed so external drivers (e.g. the allocation
/// regression test) can replicate the candidate loop of
/// [`tasm_postorder_with_workspace`] step by step.
#[allow(clippy::too_many_arguments)]
pub fn process_candidate(
    heap: &mut TopKHeap,
    ctx: &QueryContext<'_>,
    cascade: &LowerBoundCascade<'_>,
    cand: &Tree,
    doc_post_offset: u32,
    tau: u64,
    opts: TasmOptions,
    ws: &mut TasmWorkspace,
    scan: &mut ScanStats,
    stats: Option<&mut TedStats>,
) {
    let TasmWorkspace { ted, lb, .. } = ws;
    process_candidate_parts(
        heap,
        ctx,
        cascade,
        cand,
        doc_post_offset,
        tau,
        opts,
        lb,
        ted,
        scan,
        stats,
    );
}

/// [`process_candidate`] with the workspace split into fields, so
/// internal callers (the single-query sink, the batch lanes, the
/// parallel shard sinks) can borrow the candidate from elsewhere while
/// the evaluation scratch stays mutable.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_candidate_parts(
    heap: &mut TopKHeap,
    ctx: &QueryContext<'_>,
    cascade: &LowerBoundCascade<'_>,
    cand: &Tree,
    doc_post_offset: u32,
    tau: u64,
    opts: TasmOptions,
    lb: &mut CascadeScratch,
    ted: &mut TedWorkspace,
    scan: &mut ScanStats,
    mut stats: Option<&mut TedStats>,
) {
    let m = ctx.len() as u64;
    let mut r = cand.len() as u32; // local postorder of the current root
    while r >= 1 {
        let node = NodeId::new(r);
        let size = cand.size(node) as u64;
        let tau_prime = if opts.use_tau_prime && heap.is_full() {
            refined_threshold(tau, heap.max_distance().expect("full heap"), m)
        } else {
            tau
        };
        // `<=` (not `<`): both Theorem 3 and Lemma 3 bound answer sizes
        // *inclusively* (|T_i| <= δ + |Q|), and a subtree of size exactly
        // τ' can still tie the current maximum on distance and win on
        // postorder number. Evaluating the boundary keeps the ranking
        // exact — the batch and parallel paths rely on it for result-set
        // equality with this sequential path.
        if !heap.is_full() || size <= tau_prime {
            // Zero-copy: the subtree (whole candidate included) is a
            // contiguous slice of the candidate arena.
            let doc: TreeView<'_> = cand.subtree_view(node);
            // The cascade's verdict covers *all* subtrees of `doc` (one
            // DP would rank them all), so a refuted subtree is skipped
            // wholesale. Strictness (`bound > max(R)`) keeps the heap
            // content — and hence every later τ'/cutoff — identical to
            // a cascade-off run.
            if opts.use_cascade && heap.is_full() {
                let cutoff = heap.max_distance().expect("full heap");
                match cascade.decide(doc, cutoff, lb) {
                    CascadeDecision::Evaluate => {}
                    CascadeDecision::PrunedByHistogram => {
                        scan.pruned_histogram += 1;
                        r -= size as u32;
                        continue;
                    }
                    CascadeDecision::PrunedBySed => {
                        scan.pruned_sed += 1;
                        r -= size as u32;
                        continue;
                    }
                }
            }
            scan.evaluated += 1;
            if ctx.uses_strategy_kernel() {
                scan.evaluated_strategy += 1;
            } else {
                scan.evaluated_zs += 1;
            }
            let sub_offset = doc_post_offset + r - size as u32;
            rank_subtrees_into(heap, ctx, doc, sub_offset, opts, ted, stats.as_deref_mut());
            // All subtrees of `doc` were ranked as a side effect.
            r -= size as u32;
        } else {
            scan.pruned_size += 1;
            r -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasm_dynamic::tasm_dynamic;
    use tasm_ted::{Cost, UnitCost};
    use tasm_tree::{bracket, LabelDict, TreeQueue};

    fn parse(s: &str, dict: &mut LabelDict) -> Tree {
        bracket::parse(s, dict).unwrap()
    }

    fn example_d(dict: &mut LabelDict) -> Tree {
        parse(
            "{dblp{article{auth{John}}{title{X1}}}{proceedings{conf{VLDB}}\
             {article{auth{Peter}}{title{X3}}}{article{auth{Mike}}{title{X4}}}}\
             {book{title{X2}}}}",
            dict,
        )
    }

    #[test]
    fn paper_example_2() {
        let mut dict = LabelDict::new();
        let g = parse("{a{b}{c}}", &mut dict);
        let h = parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict);
        let mut q = TreeQueue::new(&h);
        let top2 = tasm_postorder(&g, &mut q, 2, &UnitCost, 1, TasmOptions::default(), None);
        assert_eq!(top2.len(), 2);
        assert_eq!((top2[0].root.post(), top2[0].distance), (6, Cost::ZERO));
        assert_eq!(
            (top2[1].root.post(), top2[1].distance),
            (3, Cost::from_natural(1))
        );
    }

    #[test]
    fn agrees_with_dynamic_on_example_d() {
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let query = parse("{article{auth{Peter}}{title{X3}}}", &mut dict);
        for k in [1usize, 2, 3, 5, 10, 22] {
            let dy = tasm_dynamic(&query, &doc, k, &UnitCost, TasmOptions::default(), None);
            let mut q = TreeQueue::new(&doc);
            let po = tasm_postorder(
                &query,
                &mut q,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                None,
            );
            let dyd: Vec<(u64, u32)> = dy
                .iter()
                .map(|m| (m.distance.halves(), m.root.post()))
                .collect();
            let pod: Vec<(u64, u32)> = po
                .iter()
                .map(|m| (m.distance.halves(), m.root.post()))
                .collect();
            assert_eq!(dyd, pod, "k = {k}");
        }
    }

    #[test]
    fn exact_match_is_top1() {
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let query = parse("{book{title{X2}}}", &mut dict);
        let mut q = TreeQueue::new(&doc);
        let top = tasm_postorder(
            &query,
            &mut q,
            1,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        assert_eq!(top[0].distance, Cost::ZERO);
        assert_eq!(top[0].root.post(), 21);
    }

    #[test]
    fn keep_trees_returns_match_content() {
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let query = parse("{book{title{X2}}}", &mut dict);
        let mut q = TreeQueue::new(&doc);
        let opts = TasmOptions {
            keep_trees: true,
            ..Default::default()
        };
        let top = tasm_postorder(&query, &mut q, 1, &UnitCost, 1, opts, None);
        let tree = top[0].tree.as_ref().expect("kept");
        assert_eq!(tree, &doc.subtree(NodeId::new(21)));
    }

    #[test]
    fn stats_show_pruning_vs_dynamic() {
        // The headline effect (Fig. 11): postorder's largest computed
        // relevant subtree is bounded by τ, dynamic computes the whole doc.
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let query = parse("{auth{X}}", &mut dict);
        let k = 1;

        let mut st_dy = TedStats::new();
        tasm_dynamic(
            &query,
            &doc,
            k,
            &UnitCost,
            TasmOptions::default(),
            Some(&mut st_dy),
        );
        assert_eq!(st_dy.max_relevant_size(), doc.len() as u32);

        let mut st_po = TedStats::new();
        let mut q = TreeQueue::new(&doc);
        tasm_postorder(
            &query,
            &mut q,
            k,
            &UnitCost,
            1,
            TasmOptions::default(),
            Some(&mut st_po),
        );
        let tau = threshold(query.len() as u64, 1, 1, k as u64);
        assert!(u64::from(st_po.max_relevant_size()) <= tau);
    }

    #[test]
    fn k_exceeding_subtree_count() {
        let mut dict = LabelDict::new();
        let doc = parse("{a{b}{c}}", &mut dict);
        let query = parse("{a}", &mut dict);
        let mut q = TreeQueue::new(&doc);
        let all = tasm_postorder(
            &query,
            &mut q,
            10,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        assert_eq!(all.len(), 3);
        // Ascending distances.
        assert!(all.windows(2).all(|w| w[0].distance <= w[1].distance));
    }

    #[test]
    fn single_node_query_and_doc() {
        let mut dict = LabelDict::new();
        let doc = parse("{a}", &mut dict);
        let query = parse("{a}", &mut dict);
        let mut q = TreeQueue::new(&doc);
        let top = tasm_postorder(
            &query,
            &mut q,
            1,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].distance, Cost::ZERO);
    }
}
