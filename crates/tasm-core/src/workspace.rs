//! The evaluation workspace threaded through the TASM matching stack.
//!
//! TASM-postorder's guarantee (Theorem 5) is document-independent memory
//! in a single pass — yet a naive implementation re-allocates on every
//! candidate: a fresh candidate tree from the ring buffer, a fresh
//! subtree copy per evaluated root, fresh cost arrays, keyroot vectors
//! and DP matrices inside Zhang–Shasha. [`TasmWorkspace`] owns every one
//! of those buffers and is reused across the whole stream, so after
//! warm-up (or up front, via [`TasmWorkspace::reserve`] with the
//! Theorem 3 bound τ) the candidate loop performs **zero heap
//! allocations** — verified by the counting-allocator regression test in
//! `tasm-bench`.

use crate::engine::{ScanEngine, ScanStats};
use tasm_ted::{CascadeScratch, TedWorkspace};

/// Reusable scratch state for [`tasm_postorder`](crate::tasm_postorder)
/// and [`tasm_dynamic`](crate::tasm_dynamic).
///
/// Create once (per stream, or per thread for sharded streams) and pass
/// `&mut` to the `_with_workspace` entry points. All buffers grow but
/// never shrink. The scan layer — the [`ScanEngine`] with its candidate
/// scratch tree — lives inside the workspace, so workspace reuse also
/// amortizes the scan warm-up. Evaluated subtrees are zero-copy
/// [`TreeView`](tasm_tree::TreeView) slices of the engine's candidate
/// arena, so no per-subtree scratch tree exists anymore.
#[derive(Debug)]
pub struct TasmWorkspace {
    /// Distance-side scratch: DP matrices, doc keyroots, doc costs.
    pub(crate) ted: TedWorkspace,
    /// The scan layer: ring-buffer pass plus the scratch tree candidates
    /// are renumbered into.
    pub(crate) engine: ScanEngine,
    /// Lower-bound cascade scratch (histogram counters, SED rows).
    pub(crate) lb: CascadeScratch,
    /// Scan + pruning-funnel statistics of the most recent run.
    pub(crate) last_scan: ScanStats,
}

impl Default for TasmWorkspace {
    fn default() -> Self {
        TasmWorkspace::new()
    }
}

impl TasmWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        TasmWorkspace {
            ted: TedWorkspace::new(),
            engine: ScanEngine::new(1),
            lb: CascadeScratch::new(),
            last_scan: ScanStats::default(),
        }
    }

    /// Pre-reserves all buffers for an `m`-node query and candidates of
    /// up to `tau` nodes (the Theorem 3 bound), so that not even the
    /// first candidate allocates. Also re-targets the embedded
    /// [`ScanEngine`] to `tau`.
    ///
    /// The DP matrices need `2 · (m+1) · (tau+1)` cells; to keep a
    /// pathological τ (e.g. saturated by a huge `k`) from reserving
    /// gigabytes up front, reservations above [`RESERVE_CAP_BYTES`] fall
    /// back to on-demand growth, which still reaches the same
    /// steady state.
    pub fn reserve(&mut self, m: usize, tau: u32) {
        self.engine.set_tau(tau);
        let n = tau as usize;
        if matrices_fit_cap(m, n) {
            self.ted.reserve(m, n);
            self.engine.reserve();
            self.lb.reserve(m, n);
        }
    }

    /// Pre-reserves the mirrored-document buffers of the right-path
    /// (strategy) TED kernel for candidates of up to `tau` nodes, under
    /// the same byte cap as [`reserve`](Self::reserve). Separate from
    /// `reserve` so pure left-path runs never pay the extra `O(τ)`
    /// buffers; the drivers call it when the query's resolved kernel is
    /// the strategy kernel
    /// ([`QueryContext::uses_strategy_kernel`](tasm_ted::QueryContext::uses_strategy_kernel)).
    pub fn reserve_mirror(&mut self, tau: u32) {
        let n = tau as usize;
        if scratch_fits_cap(n) {
            self.ted.reserve_mirror(n);
        }
    }

    /// Access to the inner distance workspace (e.g. for standalone
    /// [`ted_full_with_workspace`](tasm_ted::ted_full_with_workspace)
    /// calls sharing the same buffers).
    pub fn ted_mut(&mut self) -> &mut TedWorkspace {
        &mut self.ted
    }

    /// The scan and pruning-funnel statistics of the most recent
    /// [`tasm_postorder_with_workspace`](crate::tasm_postorder_with_workspace)
    /// (or `tasm_dynamic_with_workspace`) run through this workspace.
    pub fn last_scan_stats(&self) -> ScanStats {
        self.last_scan
    }
}

/// Upper bound on the up-front matrix reservation of
/// [`TasmWorkspace::reserve`] (64 MiB).
pub const RESERVE_CAP_BYTES: usize = 64 << 20;

/// Whether the DP matrices for an `m`-node query against `n`-node
/// documents (`2 · (m+1) · (n+1)` cells) fit [`RESERVE_CAP_BYTES`].
/// The single reservation-policy predicate shared by the sequential
/// and batch workspaces.
pub(crate) fn matrices_fit_cap(m: usize, n: usize) -> bool {
    let cells = 2u128 * (m as u128 + 1) * (n as u128 + 1);
    cells * std::mem::size_of::<tasm_ted::Cost>() as u128 <= RESERVE_CAP_BYTES as u128
}

/// Whether the `O(n)` scratch trees (candidate + subtree copies, 8
/// bytes per node) fit [`RESERVE_CAP_BYTES`] — guards a saturated τ.
pub(crate) fn scratch_fits_cap(n: usize) -> bool {
    n.saturating_mul(8) <= RESERVE_CAP_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_caps_pathological_tau() {
        let mut ws = TasmWorkspace::new();
        // Would be ~64 GiB of matrices; must not reserve.
        ws.reserve(64, u32::MAX);
        // And a sane bound reserves fine.
        ws.reserve(8, 1000);
    }
}
