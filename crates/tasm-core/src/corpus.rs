//! Cross-document top-k over a [`Corpus`]: every healthy shard answers
//! through the index-backed path
//! ([`tasm_indexed_batch`](crate::tasm_indexed_batch)), and the
//! per-shard rankings merge into one corpus-wide top-k per query.
//!
//! # Degraded mode is explicit, never silent
//!
//! A corpus opened with quarantined shards still answers: the healthy
//! shards are queried normally and the result carries a
//! [`CorpusStatus`] stating exactly how many shards participated.
//! Callers (the CLI's `--stats`, the daemon's `OK`/`STATS` lines)
//! surface the `healthy/total` marker so a degraded answer can never be
//! mistaken for a complete one.
//!
//! # Determinism
//!
//! Within a shard the rank key `(distance, postorder, size)` is a total
//! order; across shards postorder numbers collide, so the corpus rank
//! key inserts the manifest shard index: `(distance, shard, postorder,
//! size)`. The merge is a plain sort on that key truncated to `k` —
//! independent of shard evaluation order and thread count, and
//! byte-identical to concatenating per-document
//! [`tasm_indexed`](crate::tasm_indexed) runs and sorting (pinned by
//! `tests/corpus_differential.rs`).

use crate::batch::BatchQuery;
use crate::engine::ScanStats;
use crate::indexed::tasm_indexed_batch_with_stats;
use crate::ranking::Match;
use crate::server::deadline::{Deadline, DeadlineExceeded};
use crate::tasm_dynamic::TasmOptions;
use tasm_index::Corpus;
use tasm_ted::{CostModel, TedStats};
use tasm_tree::{LabelDict, Tree};

/// One corpus-level match: a [`Match`] plus which document it came from.
#[derive(Debug, Clone)]
pub struct CorpusMatch {
    /// Document (shard) name the subtree was found in.
    pub doc: String,
    /// Shard index in manifest order (the rank-key tiebreaker).
    pub shard: usize,
    /// The match inside that document (root postorder, size, distance).
    pub hit: Match,
}

/// How much of the corpus answered: `healthy` of `total` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusStatus {
    /// Shards that passed verification and were queried.
    pub healthy: usize,
    /// Shards listed by the manifest.
    pub total: usize,
}

impl CorpusStatus {
    /// Whether any shard was quarantined — the answer misses whatever
    /// the damaged shards contained.
    pub fn is_degraded(&self) -> bool {
        self.healthy < self.total
    }

    /// The `healthy/total` marker surfaced by `--stats` and the daemon.
    pub fn marker(&self) -> String {
        format!("{}/{}", self.healthy, self.total)
    }
}

/// Full result of a stats-carrying corpus batch: per-query rankings,
/// corpus health, the merged [`ScanStats`] funnel, and the per-query
/// funnels in query order.
pub type CorpusBatchOutput = (
    Vec<Vec<CorpusMatch>>,
    CorpusStatus,
    ScanStats,
    Vec<ScanStats>,
);

/// Corpus-wide top-`k` for one query: every healthy shard of `corpus`
/// answers via the `.pqi` index, merged on the deterministic corpus
/// rank key. See the module docs for the degraded-mode contract.
///
/// `src_dict` is the dictionary `query` was parsed with (any dictionary
/// works — each shard re-encodes the query into its own label space).
#[allow(clippy::too_many_arguments)]
pub fn tasm_corpus(
    query: &Tree,
    src_dict: &LabelDict,
    corpus: &Corpus,
    k: usize,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
) -> (Vec<CorpusMatch>, CorpusStatus) {
    let queries = [BatchQuery { query, k }];
    let (mut rankings, status, _, _) =
        tasm_corpus_batch_with_stats(&queries, src_dict, corpus, model, c_t, opts, threads, None);
    (rankings.pop().expect("one lane"), status)
}

/// Batch composition of [`tasm_corpus`]: every query of `queries` is
/// answered over every healthy shard, sharing each shard's candidate
/// pass across the whole batch.
#[allow(clippy::too_many_arguments)]
pub fn tasm_corpus_batch(
    queries: &[BatchQuery<'_>],
    src_dict: &LabelDict,
    corpus: &Corpus,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
) -> (Vec<Vec<CorpusMatch>>, CorpusStatus) {
    let (rankings, status, _, _) =
        tasm_corpus_batch_with_stats(queries, src_dict, corpus, model, c_t, opts, threads, None);
    (rankings, status)
}

/// As [`tasm_corpus_batch`], but also returning the merged [`ScanStats`]
/// funnel (summed over shards) and the per-query funnels in query order.
#[allow(clippy::too_many_arguments)]
pub fn tasm_corpus_batch_with_stats(
    queries: &[BatchQuery<'_>],
    src_dict: &LabelDict,
    corpus: &Corpus,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    stats: Option<&mut TedStats>,
) -> CorpusBatchOutput {
    tasm_corpus_batch_deadline_with_stats(
        queries,
        src_dict,
        corpus,
        model,
        c_t,
        opts,
        threads,
        stats,
        &Deadline::none(),
    )
    .expect("no deadline to exceed")
}

/// As [`tasm_corpus_batch_with_stats`], polling `deadline` between
/// shards: a corpus query that cannot finish in time fails with
/// [`DeadlineExceeded`] instead of stalling the caller. The granularity
/// is one shard — the per-shard index pass itself is not interrupted.
#[allow(clippy::too_many_arguments)]
pub fn tasm_corpus_batch_deadline_with_stats(
    queries: &[BatchQuery<'_>],
    src_dict: &LabelDict,
    corpus: &Corpus,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    mut stats: Option<&mut TedStats>,
    deadline: &Deadline,
) -> Result<CorpusBatchOutput, DeadlineExceeded> {
    let status = CorpusStatus {
        healthy: corpus.healthy_count(),
        total: corpus.total_shards(),
    };
    if queries.is_empty() {
        return Ok((Vec::new(), status, ScanStats::default(), Vec::new()));
    }
    let mut merged: Vec<Vec<CorpusMatch>> = (0..queries.len()).map(|_| Vec::new()).collect();
    let mut scan = ScanStats::default();
    let mut lane_scans = vec![ScanStats::default(); queries.len()];
    for (shard, name, doc) in corpus.healthy() {
        if deadline.expired_now() {
            return Err(DeadlineExceeded);
        }
        let (rankings, shard_scan, shard_lanes) = tasm_indexed_batch_with_stats(
            queries,
            src_dict,
            doc,
            model,
            c_t,
            opts,
            threads,
            stats.as_deref_mut(),
        );
        scan.merge(&shard_scan);
        for (lane, shard_lane) in lane_scans.iter_mut().zip(&shard_lanes) {
            lane.merge(shard_lane);
        }
        for (lane, ranking) in merged.iter_mut().zip(rankings) {
            lane.extend(ranking.into_iter().map(|hit| CorpusMatch {
                doc: name.to_string(),
                shard,
                hit,
            }));
        }
    }
    for (lane, bq) in merged.iter_mut().zip(queries) {
        lane.sort_by(|a, b| {
            (a.hit.distance, a.shard, a.hit.root.post(), a.hit.size).cmp(&(
                b.hit.distance,
                b.shard,
                b.hit.root.post(),
                b.hit.size,
            ))
        });
        lane.truncate(bq.k);
    }
    Ok((merged, status, scan, lane_scans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexed::tasm_indexed;
    use std::fs;
    use std::path::PathBuf;
    use tasm_ted::UnitCost;
    use tasm_tree::bracket;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tasm-core-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn build_corpus(dir: &PathBuf) -> Corpus {
        let mut corpus = Corpus::create(dir).unwrap();
        let docs = [
            (
                "a",
                "{dblp{article{auth{John}}{title{X1}}}{book{title{X2}}}}",
            ),
            ("b", "{dblp{article{auth{Mike}}{title{X3}}{year}}}"),
            (
                "c",
                "{lib{proceedings{conf{VLDB}}}{article{auth{John}}{title{X9}}}}",
            ),
        ];
        for (name, src) in docs {
            let mut dict = LabelDict::new();
            let tree = bracket::parse(src, &mut dict).unwrap();
            corpus.add(name, &tree, &dict, None).unwrap();
        }
        corpus
    }

    fn key(ms: &[CorpusMatch]) -> Vec<(String, u32, u64, u32)> {
        ms.iter()
            .map(|m| {
                (
                    m.doc.clone(),
                    m.hit.root.post(),
                    m.hit.distance.halves(),
                    m.hit.size,
                )
            })
            .collect()
    }

    #[test]
    fn corpus_ranking_merges_per_document_runs() {
        let dir = tmp_dir("merge");
        let corpus = build_corpus(&dir);
        let mut qdict = LabelDict::new();
        let q = bracket::parse("{article{auth{John}}{title{X1}}}", &mut qdict).unwrap();
        let k = 4;
        let (got, status) = tasm_corpus(
            &q,
            &qdict,
            &corpus,
            k,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
        );
        assert!(!status.is_degraded());
        assert_eq!(status.marker(), "3/3");
        assert_eq!(got.len(), k);

        // Reference: per-document tasm_indexed runs, concatenated and
        // sorted on the corpus rank key.
        let mut want: Vec<CorpusMatch> = Vec::new();
        for (shard, name, doc) in corpus.healthy() {
            let hits = tasm_indexed(&q, &qdict, doc, k, &UnitCost, 1, TasmOptions::default(), 1);
            want.extend(hits.into_iter().map(|hit| CorpusMatch {
                doc: name.to_string(),
                shard,
                hit,
            }));
        }
        want.sort_by_key(|m| (m.hit.distance, m.shard, m.hit.root.post(), m.hit.size));
        want.truncate(k);
        assert_eq!(key(&got), key(&want));
        // The best hit is the exact match in document "a".
        assert_eq!(got[0].doc, "a");
        assert_eq!(got[0].hit.distance.halves(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantined_shards_degrade_but_keep_healthy_rankings() {
        let dir = tmp_dir("degraded");
        drop(build_corpus(&dir));
        let mut qdict = LabelDict::new();
        let q = bracket::parse("{article{auth{John}}{title{X1}}}", &mut qdict).unwrap();
        // Corrupt shard b; the other shards' results must be identical
        // to merged per-document runs over just the healthy shards.
        let shard = dir.join("b.pqi");
        let mut bytes = fs::read(&shard).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&shard, &bytes).unwrap();
        let corpus = Corpus::open(&dir).unwrap();
        let (got, status) = tasm_corpus(
            &q,
            &qdict,
            &corpus,
            6,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
        );
        assert!(status.is_degraded());
        assert_eq!(status.marker(), "2/3");
        let mut want: Vec<CorpusMatch> = Vec::new();
        for (shard, name, doc) in corpus.healthy() {
            let hits = tasm_indexed(&q, &qdict, doc, 6, &UnitCost, 1, TasmOptions::default(), 1);
            want.extend(hits.into_iter().map(|hit| CorpusMatch {
                doc: name.to_string(),
                shard,
                hit,
            }));
        }
        want.sort_by_key(|m| (m.hit.distance, m.shard, m.hit.root.post(), m.hit.size));
        want.truncate(6);
        let got_key = key(&got);
        assert_eq!(got_key, key(&want));
        assert!(got_key.iter().all(|(doc, ..)| doc != "b"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_corpus_answers_empty() {
        let dir = tmp_dir("empty");
        let corpus = Corpus::create(&dir).unwrap();
        let mut qdict = LabelDict::new();
        let q = bracket::parse("{a{b}}", &mut qdict).unwrap();
        let (got, status) = tasm_corpus(
            &q,
            &qdict,
            &corpus,
            3,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
        );
        assert!(got.is_empty());
        assert_eq!(status.marker(), "0/0");
        assert!(!status.is_degraded());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn expired_deadline_fails_between_shards() {
        let dir = tmp_dir("deadline");
        let corpus = build_corpus(&dir);
        let mut qdict = LabelDict::new();
        let q = bracket::parse("{a{b}}", &mut qdict).unwrap();
        let queries = [BatchQuery { query: &q, k: 2 }];
        let deadline = Deadline::after(std::time::Duration::from_millis(0));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let got = tasm_corpus_batch_deadline_with_stats(
            &queries,
            &qdict,
            &corpus,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
            None,
            &deadline,
        );
        assert!(got.is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
