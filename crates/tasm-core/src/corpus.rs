//! Cross-document top-k over a [`Corpus`]: every healthy shard answers
//! through the index-backed path
//! ([`tasm_indexed_batch`](crate::tasm_indexed_batch)), and the
//! per-shard rankings merge into one corpus-wide top-k per query.
//!
//! # The corpus is the parallel unit
//!
//! Shards are independent documents, so the natural work unit is
//! (shard × query-batch). The scheduler splits the thread budget
//! *across* shards first: `workers = min(threads, shards)` scoped
//! worker threads pull shard indices from a shared counter, each
//! answering the whole query batch over its shards. Leftover budget
//! falls back *inside* the shards — each worker passes
//! `threads / workers` lanes down to the per-shard indexed pass — so a
//! two-shard corpus on eight threads still uses all eight. With one
//! thread (or one shard) the loop runs inline on the caller's thread,
//! which is exactly the old sequential path.
//!
//! # Degraded mode is explicit, never silent
//!
//! A corpus opened with quarantined shards still answers: the healthy
//! shards are queried normally and the result carries a
//! [`CorpusStatus`] stating exactly how many shards participated.
//! Callers (the CLI's `--stats`, the daemon's `OK`/`STATS` lines)
//! surface the `healthy/total` marker so a degraded answer can never be
//! mistaken for a complete one.
//!
//! # Determinism
//!
//! Within a shard the rank key `(distance, postorder, size)` is a total
//! order; across shards postorder numbers collide, so the corpus rank
//! key inserts the manifest shard index: `(distance, shard, postorder,
//! size)`. Every per-shard ranking is thread-count-invariant, the
//! corpus key is a **total** order over all corpus matches (shard +
//! postorder is unique), and each lane keeps exactly the `k` smallest
//! keys of the union — so the merged ranking is independent of shard
//! evaluation order, worker count and inner lane count, and
//! byte-identical to concatenating per-document
//! [`tasm_indexed`](crate::tasm_indexed) runs and sorting (pinned by
//! `tests/corpus_differential.rs`).
//!
//! Merging is **bounded**: each worker folds every shard run into its
//! per-lane accumulator with a sorted two-way merge truncated to `k`,
//! so memory per lane is O(k), not O(shards · k).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use crate::batch::BatchQuery;
use crate::engine::ScanStats;
use crate::indexed::tasm_indexed_batch_deadline_with_stats;
use crate::parallel::resolve_threads;
use crate::ranking::Match;
use crate::server::deadline::{Deadline, DeadlineExceeded};
use crate::tasm_dynamic::TasmOptions;
use tasm_index::{Corpus, IndexedDocument};
use tasm_ted::{Cost, CostModel, TedStats};
use tasm_tree::{LabelDict, Tree};

/// One corpus-level match: a [`Match`] plus which document it came from.
#[derive(Debug, Clone)]
pub struct CorpusMatch {
    /// Document (shard) name the subtree was found in.
    pub doc: String,
    /// Shard index in manifest order (the rank-key tiebreaker).
    pub shard: usize,
    /// The match inside that document (root postorder, size, distance).
    pub hit: Match,
}

/// How much of the corpus answered: `healthy` of `total` shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusStatus {
    /// Shards that passed verification and were queried.
    pub healthy: usize,
    /// Shards listed by the manifest.
    pub total: usize,
}

impl CorpusStatus {
    /// Whether any shard was quarantined — the answer misses whatever
    /// the damaged shards contained.
    pub fn is_degraded(&self) -> bool {
        self.healthy < self.total
    }

    /// The `healthy/total` marker surfaced by `--stats` and the daemon.
    pub fn marker(&self) -> String {
        format!("{}/{}", self.healthy, self.total)
    }
}

/// Where the time of one corpus answer went: per-shard wall clock and
/// scan funnel, in manifest shard order (healthy shards only).
#[derive(Debug, Clone)]
pub struct CorpusShardStats {
    /// Manifest shard index.
    pub shard: usize,
    /// Document name of the shard.
    pub name: String,
    /// Wall-clock nanoseconds the shard's indexed pass took (measured
    /// on whichever worker ran it, so overlapping shards each report
    /// their own time).
    pub nanos: u64,
    /// The shard's own [`ScanStats`] funnel.
    pub scan: ScanStats,
}

impl CorpusShardStats {
    /// The shard's wall-clock time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.nanos as f64 / 1e6
    }
}

/// Full result of a stats-carrying corpus batch: per-query rankings,
/// corpus health, the merged [`ScanStats`] funnel, the per-query
/// funnels in query order, and the per-shard timing breakdown.
#[derive(Debug, Clone)]
pub struct CorpusBatchOutput {
    /// One ranking per query, in query order, each at most `k` long.
    pub rankings: Vec<Vec<CorpusMatch>>,
    /// How many shards answered.
    pub status: CorpusStatus,
    /// The merged scan funnel, summed over shards.
    pub scan: ScanStats,
    /// Per-query funnels in query order, summed over shards.
    pub lane_scans: Vec<ScanStats>,
    /// Per-shard wall clock + funnel, in manifest shard order.
    pub shard_stats: Vec<CorpusShardStats>,
}

/// The corpus rank key: a **total** order over all corpus matches
/// (shard index + postorder is unique), so any k-smallest-of-union
/// merge yields the same ranking regardless of merge order.
fn rank_key(m: &CorpusMatch) -> (Cost, usize, u32, u32) {
    (m.hit.distance, m.shard, m.hit.root.post(), m.hit.size)
}

/// Folds `incoming` into `lane`, both sorted on [`rank_key`], keeping
/// only the `k` smallest keys of the union. This is the bounded merge:
/// a lane never grows past `k`, so accumulating S shard runs costs
/// O(k) memory per lane instead of O(S · k).
fn merge_ranked(lane: &mut Vec<CorpusMatch>, incoming: Vec<CorpusMatch>, k: usize) {
    if incoming.is_empty() {
        lane.truncate(k);
        return;
    }
    if lane.is_empty() {
        *lane = incoming;
        lane.truncate(k);
        return;
    }
    let mut a = std::mem::take(lane).into_iter().peekable();
    let mut b = incoming.into_iter().peekable();
    while lane.len() < k {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                let next = if rank_key(x) <= rank_key(y) {
                    a.next()
                } else {
                    b.next()
                };
                lane.push(next.expect("peeked"));
            }
            (Some(_), None) => lane.push(a.next().expect("peeked")),
            (None, Some(_)) => lane.push(b.next().expect("peeked")),
            (None, None) => break,
        }
    }
}

/// Everything one worker accumulated over the shards it pulled.
struct CorpusWorkerOutput {
    /// Per-query rankings, each bounded to `k` and sorted on the key.
    lanes: Vec<Vec<CorpusMatch>>,
    /// Per-query funnels, summed over this worker's shards.
    lane_scans: Vec<ScanStats>,
    /// Merged funnel over this worker's shards.
    scan: ScanStats,
    /// Timing + funnel per shard this worker ran.
    shard_stats: Vec<CorpusShardStats>,
    /// TED counters, collected only when the caller asked for them.
    ted: Option<TedStats>,
}

/// One scheduler worker: pulls shard indices from the shared counter
/// until the corpus is drained, the deadline expires, or another worker
/// cancels the batch. Runs the whole query batch over each shard with
/// `inner` intra-shard lanes.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    shards: &[(usize, &str, &IndexedDocument)],
    next: &AtomicUsize,
    cancelled: &AtomicBool,
    queries: &[BatchQuery<'_>],
    src_dict: &LabelDict,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    inner: usize,
    want_ted: bool,
    expiry: Option<Instant>,
) -> Result<CorpusWorkerOutput, DeadlineExceeded> {
    // `Deadline` is deliberately not `Sync`, so each worker mints its
    // own token from the shared expiry instant.
    let deadline = match expiry {
        Some(at) => Deadline::at(at),
        None => Deadline::none(),
    };
    let mut out = CorpusWorkerOutput {
        lanes: (0..queries.len()).map(|_| Vec::new()).collect(),
        lane_scans: vec![ScanStats::default(); queries.len()],
        scan: ScanStats::default(),
        shard_stats: Vec::new(),
        ted: want_ted.then(TedStats::new),
    };
    loop {
        let idx = next.fetch_add(1, Ordering::Relaxed);
        if idx >= shards.len() {
            return Ok(out);
        }
        if cancelled.load(Ordering::Relaxed) {
            return Err(DeadlineExceeded);
        }
        let (shard, name, doc) = shards[idx];
        let started = Instant::now();
        let run = tasm_indexed_batch_deadline_with_stats(
            queries,
            src_dict,
            doc,
            model,
            c_t,
            opts,
            inner,
            out.ted.as_mut(),
            &deadline,
        );
        let (rankings, shard_scan, shard_lanes) = match run {
            Ok(r) => r,
            Err(e) => {
                cancelled.store(true, Ordering::Relaxed);
                return Err(e);
            }
        };
        out.scan.merge(&shard_scan);
        for (lane, shard_lane) in out.lane_scans.iter_mut().zip(&shard_lanes) {
            lane.merge(shard_lane);
        }
        out.shard_stats.push(CorpusShardStats {
            shard,
            name: name.to_string(),
            nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            scan: shard_scan,
        });
        for ((lane, ranking), bq) in out.lanes.iter_mut().zip(rankings).zip(queries) {
            let incoming: Vec<CorpusMatch> = ranking
                .into_iter()
                .map(|hit| CorpusMatch {
                    doc: name.to_string(),
                    shard,
                    hit,
                })
                .collect();
            merge_ranked(lane, incoming, bq.k);
        }
    }
}

/// Corpus-wide top-`k` for one query: every healthy shard of `corpus`
/// answers via the `.pqi` index, merged on the deterministic corpus
/// rank key. See the module docs for the degraded-mode contract.
///
/// `src_dict` is the dictionary `query` was parsed with (any dictionary
/// works — each shard re-encodes the query into its own label space).
#[allow(clippy::too_many_arguments)]
pub fn tasm_corpus(
    query: &Tree,
    src_dict: &LabelDict,
    corpus: &Corpus,
    k: usize,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
) -> (Vec<CorpusMatch>, CorpusStatus) {
    let queries = [BatchQuery { query, k }];
    let out =
        tasm_corpus_batch_with_stats(&queries, src_dict, corpus, model, c_t, opts, threads, None);
    let mut rankings = out.rankings;
    (rankings.pop().expect("one lane"), out.status)
}

/// Batch composition of [`tasm_corpus`]: every query of `queries` is
/// answered over every healthy shard, sharing each shard's candidate
/// pass across the whole batch.
#[allow(clippy::too_many_arguments)]
pub fn tasm_corpus_batch(
    queries: &[BatchQuery<'_>],
    src_dict: &LabelDict,
    corpus: &Corpus,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
) -> (Vec<Vec<CorpusMatch>>, CorpusStatus) {
    let out =
        tasm_corpus_batch_with_stats(queries, src_dict, corpus, model, c_t, opts, threads, None);
    (out.rankings, out.status)
}

/// As [`tasm_corpus_batch`], but also returning the merged [`ScanStats`]
/// funnel (summed over shards) and the per-query funnels in query order.
#[allow(clippy::too_many_arguments)]
pub fn tasm_corpus_batch_with_stats(
    queries: &[BatchQuery<'_>],
    src_dict: &LabelDict,
    corpus: &Corpus,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    stats: Option<&mut TedStats>,
) -> CorpusBatchOutput {
    tasm_corpus_batch_deadline_with_stats(
        queries,
        src_dict,
        corpus,
        model,
        c_t,
        opts,
        threads,
        stats,
        &Deadline::none(),
    )
    .expect("no deadline to exceed")
}

/// As [`tasm_corpus_batch_with_stats`], under a cooperative `deadline`:
/// a corpus query that cannot finish in time fails with
/// [`DeadlineExceeded`] instead of stalling the caller. The deadline is
/// polled *inside* each shard at candidate-region granularity (see
/// [`tasm_indexed_batch_deadline_with_stats`]), so even a single large
/// shard cannot overrun the budget by its whole evaluation time. Once
/// any worker trips the deadline, the batch is cancelled: the remaining
/// workers stop at their next shard pull and no partial ranking is
/// returned.
#[allow(clippy::too_many_arguments)]
pub fn tasm_corpus_batch_deadline_with_stats(
    queries: &[BatchQuery<'_>],
    src_dict: &LabelDict,
    corpus: &Corpus,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    mut stats: Option<&mut TedStats>,
    deadline: &Deadline,
) -> Result<CorpusBatchOutput, DeadlineExceeded> {
    let status = CorpusStatus {
        healthy: corpus.healthy_count(),
        total: corpus.total_shards(),
    };
    if queries.is_empty() {
        return Ok(CorpusBatchOutput {
            rankings: Vec::new(),
            status,
            scan: ScanStats::default(),
            lane_scans: Vec::new(),
            shard_stats: Vec::new(),
        });
    }
    let shards: Vec<(usize, &str, &IndexedDocument)> = corpus.healthy().collect();
    if shards.is_empty() {
        return Ok(CorpusBatchOutput {
            rankings: (0..queries.len()).map(|_| Vec::new()).collect(),
            status,
            scan: ScanStats::default(),
            lane_scans: vec![ScanStats::default(); queries.len()],
            shard_stats: Vec::new(),
        });
    }
    if deadline.expired_now() {
        return Err(DeadlineExceeded);
    }

    let threads = resolve_threads(threads).max(1);
    // Split the budget across shards first; leftover threads become
    // intra-shard lanes inside each worker's indexed pass.
    let workers = threads.min(shards.len());
    let inner = (threads / workers).max(1);
    let want_ted = stats.is_some();
    let expiry = deadline.instant();
    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);

    let outputs: Vec<CorpusWorkerOutput> = if workers <= 1 {
        // One worker runs inline on the caller's thread — exactly the
        // old sequential shard loop, no thread machinery.
        vec![run_worker(
            &shards, &next, &cancelled, queries, src_dict, model, c_t, opts, inner, want_ted,
            expiry,
        )?]
    } else {
        let joined: Result<Vec<CorpusWorkerOutput>, DeadlineExceeded> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            run_worker(
                                &shards, &next, &cancelled, queries, src_dict, model, c_t, opts,
                                inner, want_ted, expiry,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("corpus worker panicked"))
                    .collect()
            });
        joined?
    };

    // Cross-worker merge. Each worker's lanes are sorted on the total
    // corpus rank key and bounded to k, so folding them in any order
    // yields the same k-smallest-of-union ranking.
    let mut rankings: Vec<Vec<CorpusMatch>> = (0..queries.len()).map(|_| Vec::new()).collect();
    let mut scan = ScanStats::default();
    let mut lane_scans = vec![ScanStats::default(); queries.len()];
    let mut shard_stats: Vec<CorpusShardStats> = Vec::with_capacity(shards.len());
    for out in outputs {
        scan.merge(&out.scan);
        for (lane, w) in lane_scans.iter_mut().zip(&out.lane_scans) {
            lane.merge(w);
        }
        shard_stats.extend(out.shard_stats);
        if let (Some(dst), Some(src)) = (stats.as_deref_mut(), out.ted.as_ref()) {
            dst.merge(src);
        }
        for ((lane, wlane), bq) in rankings.iter_mut().zip(out.lanes).zip(queries) {
            merge_ranked(lane, wlane, bq.k);
        }
    }
    shard_stats.sort_by_key(|s| s.shard);
    Ok(CorpusBatchOutput {
        rankings,
        status,
        scan,
        lane_scans,
        shard_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexed::tasm_indexed;
    use std::fs;
    use std::path::PathBuf;
    use tasm_ted::UnitCost;
    use tasm_tree::bracket;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tasm-core-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn build_corpus(dir: &PathBuf) -> Corpus {
        let mut corpus = Corpus::create(dir).unwrap();
        let docs = [
            (
                "a",
                "{dblp{article{auth{John}}{title{X1}}}{book{title{X2}}}}",
            ),
            ("b", "{dblp{article{auth{Mike}}{title{X3}}{year}}}"),
            (
                "c",
                "{lib{proceedings{conf{VLDB}}}{article{auth{John}}{title{X9}}}}",
            ),
        ];
        for (name, src) in docs {
            let mut dict = LabelDict::new();
            let tree = bracket::parse(src, &mut dict).unwrap();
            corpus.add(name, &tree, &dict, None).unwrap();
        }
        corpus
    }

    fn key(ms: &[CorpusMatch]) -> Vec<(String, u32, u64, u32)> {
        ms.iter()
            .map(|m| {
                (
                    m.doc.clone(),
                    m.hit.root.post(),
                    m.hit.distance.halves(),
                    m.hit.size,
                )
            })
            .collect()
    }

    #[test]
    fn corpus_ranking_merges_per_document_runs() {
        let dir = tmp_dir("merge");
        let corpus = build_corpus(&dir);
        let mut qdict = LabelDict::new();
        let q = bracket::parse("{article{auth{John}}{title{X1}}}", &mut qdict).unwrap();
        let k = 4;
        let (got, status) = tasm_corpus(
            &q,
            &qdict,
            &corpus,
            k,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
        );
        assert!(!status.is_degraded());
        assert_eq!(status.marker(), "3/3");
        assert_eq!(got.len(), k);

        // Reference: per-document tasm_indexed runs, concatenated and
        // sorted on the corpus rank key.
        let mut want: Vec<CorpusMatch> = Vec::new();
        for (shard, name, doc) in corpus.healthy() {
            let hits = tasm_indexed(&q, &qdict, doc, k, &UnitCost, 1, TasmOptions::default(), 1);
            want.extend(hits.into_iter().map(|hit| CorpusMatch {
                doc: name.to_string(),
                shard,
                hit,
            }));
        }
        want.sort_by_key(|m| (m.hit.distance, m.shard, m.hit.root.post(), m.hit.size));
        want.truncate(k);
        assert_eq!(key(&got), key(&want));
        // The best hit is the exact match in document "a".
        assert_eq!(got[0].doc, "a");
        assert_eq!(got[0].hit.distance.halves(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantined_shards_degrade_but_keep_healthy_rankings() {
        let dir = tmp_dir("degraded");
        drop(build_corpus(&dir));
        let mut qdict = LabelDict::new();
        let q = bracket::parse("{article{auth{John}}{title{X1}}}", &mut qdict).unwrap();
        // Corrupt shard b; the other shards' results must be identical
        // to merged per-document runs over just the healthy shards.
        let shard = dir.join("b.pqi");
        let mut bytes = fs::read(&shard).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&shard, &bytes).unwrap();
        let corpus = Corpus::open(&dir).unwrap();
        let (got, status) = tasm_corpus(
            &q,
            &qdict,
            &corpus,
            6,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
        );
        assert!(status.is_degraded());
        assert_eq!(status.marker(), "2/3");
        let mut want: Vec<CorpusMatch> = Vec::new();
        for (shard, name, doc) in corpus.healthy() {
            let hits = tasm_indexed(&q, &qdict, doc, 6, &UnitCost, 1, TasmOptions::default(), 1);
            want.extend(hits.into_iter().map(|hit| CorpusMatch {
                doc: name.to_string(),
                shard,
                hit,
            }));
        }
        want.sort_by_key(|m| (m.hit.distance, m.shard, m.hit.root.post(), m.hit.size));
        want.truncate(6);
        let got_key = key(&got);
        assert_eq!(got_key, key(&want));
        assert!(got_key.iter().all(|(doc, ..)| doc != "b"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_corpus_answers_empty() {
        let dir = tmp_dir("empty");
        let corpus = Corpus::create(&dir).unwrap();
        let mut qdict = LabelDict::new();
        let q = bracket::parse("{a{b}}", &mut qdict).unwrap();
        let (got, status) = tasm_corpus(
            &q,
            &qdict,
            &corpus,
            3,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
        );
        assert!(got.is_empty());
        assert_eq!(status.marker(), "0/0");
        assert!(!status.is_degraded());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounded_merge_never_grows_past_k() {
        use crate::ranking::Match;
        use tasm_tree::NodeId;
        // 40 shards × 8 hits each, merged into one lane with k = 5: the
        // lane must stay at 5 after every fold (the unbounded version
        // would peak at 320) and equal the sort-everything reference.
        let k = 5;
        let mk = |shard: usize, post: u32, dist: u64| CorpusMatch {
            doc: format!("d{shard}"),
            shard,
            hit: Match {
                root: NodeId::new(post),
                size: 3,
                distance: Cost::from_natural(dist),
                tree: None,
            },
        };
        let mut lane: Vec<CorpusMatch> = Vec::new();
        let mut all: Vec<CorpusMatch> = Vec::new();
        for shard in 0..40 {
            // Per-shard runs arrive sorted on the rank key, like real
            // `tasm_indexed_batch` output.
            let incoming: Vec<CorpusMatch> = (0..8)
                .map(|i| mk(shard, 10 + i, ((shard * 7 + i as usize * 3) % 11) as u64))
                .collect();
            let mut sorted = incoming.clone();
            sorted.sort_by_key(|m| (m.hit.distance, m.hit.root.post(), m.hit.size));
            all.extend(sorted.clone());
            merge_ranked(&mut lane, sorted, k);
            assert!(lane.len() <= k, "lane grew to {} entries", lane.len());
        }
        assert_eq!(lane.len(), k);
        all.sort_by_key(rank_key);
        all.truncate(k);
        assert_eq!(key(&lane), key(&all));
        // And the lane itself is sorted, ready for the next fold.
        assert!(lane.windows(2).all(|w| rank_key(&w[0]) <= rank_key(&w[1])));
    }

    #[test]
    fn deadline_interrupts_mid_shard() {
        // One large shard: the old corpus loop only polled *between*
        // shards, so a deadline expiring mid-shard was ignored and the
        // whole shard evaluated anyway. The region-granular poll must
        // fail the request instead.
        let dir = tmp_dir("midshard");
        let mut corpus = Corpus::create(&dir).unwrap();
        let mut src = String::from("{r");
        for i in 0..20_000 {
            src.push_str(if i % 2 == 0 { "{a{b}{c}}" } else { "{a{b}{d}}" });
        }
        src.push('}');
        let mut dict = LabelDict::new();
        let tree = bracket::parse(&src, &mut dict).unwrap();
        corpus.add("big", &tree, &dict, None).unwrap();

        let mut qdict = LabelDict::new();
        let q = bracket::parse("{a{b}{c}}", &mut qdict).unwrap();
        let queries = [BatchQuery { query: &q, k: 5 }];

        // Sanity: without a deadline the single-shard corpus answers.
        let ok = tasm_corpus_batch_deadline_with_stats(
            &queries,
            &qdict,
            &corpus,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
            None,
            &Deadline::none(),
        );
        assert!(ok.is_ok());

        // A deadline far shorter than the shard's evaluation time must
        // abort mid-shard — there is no between-shards poll to save it.
        let deadline = Deadline::after(std::time::Duration::from_micros(100));
        let got = tasm_corpus_batch_deadline_with_stats(
            &queries,
            &qdict,
            &corpus,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
            None,
            &deadline,
        );
        assert_eq!(got.unwrap_err(), DeadlineExceeded);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scheduler_reports_per_shard_stats_and_matches_sequential() {
        let dir = tmp_dir("shardstats");
        let corpus = build_corpus(&dir);
        let mut qdict = LabelDict::new();
        let q = bracket::parse("{article{auth{John}}{title{X1}}}", &mut qdict).unwrap();
        let queries = [BatchQuery { query: &q, k: 4 }];
        let sequential = tasm_corpus_batch_with_stats(
            &queries,
            &qdict,
            &corpus,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
            None,
        );
        for threads in [2, 4, 7] {
            let scheduled = tasm_corpus_batch_with_stats(
                &queries,
                &qdict,
                &corpus,
                &UnitCost,
                1,
                TasmOptions::default(),
                threads,
                None,
            );
            assert_eq!(key(&scheduled.rankings[0]), key(&sequential.rankings[0]));
            // With inner == 1 lane (threads ≤ shards) each shard is
            // evaluated exactly as in the sequential run, so the whole
            // funnel is identical. Intra-shard lanes (threads = 7 over
            // 3 shards) may prune differently; the candidate count is
            // scan-determined and stays invariant.
            if threads <= 4 {
                assert_eq!(scheduled.scan, sequential.scan);
                assert_eq!(scheduled.lane_scans, sequential.lane_scans);
            }
            assert_eq!(scheduled.scan.candidates, sequential.scan.candidates);
            // Per-shard stats cover every healthy shard, in manifest
            // order, regardless of which worker ran which shard.
            let shards: Vec<usize> = scheduled.shard_stats.iter().map(|s| s.shard).collect();
            assert_eq!(shards, vec![0, 1, 2]);
            let names: Vec<&str> = scheduled
                .shard_stats
                .iter()
                .map(|s| s.name.as_str())
                .collect();
            assert_eq!(names, vec!["a", "b", "c"]);
            // The per-shard funnels sum to the merged funnel.
            let mut summed = ScanStats::default();
            for s in &scheduled.shard_stats {
                summed.merge(&s.scan);
            }
            assert_eq!(summed, scheduled.scan);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn expired_deadline_fails_between_shards() {
        let dir = tmp_dir("deadline");
        let corpus = build_corpus(&dir);
        let mut qdict = LabelDict::new();
        let q = bracket::parse("{a{b}}", &mut qdict).unwrap();
        let queries = [BatchQuery { query: &q, k: 2 }];
        let deadline = Deadline::after(std::time::Duration::from_millis(0));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let got = tasm_corpus_batch_deadline_with_stats(
            &queries,
            &qdict,
            &corpus,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
            None,
            &deadline,
        );
        assert!(got.is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
