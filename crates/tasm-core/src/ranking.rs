//! Top-k ranking: matches and the bounded max-heap (Sec. VI-B).
//!
//! The intermediate ranking `R` of TASM-postorder is "a max-heap that stores
//! (key, value) pairs: `max(R)` returns the maximum key in constant time;
//! `pop-heap` deletes the maximum element; `merge-heap` merges two heaps".
//! [`TopKHeap`] is that structure specialised to hold at most `k` entries:
//! pushing into a full heap either rejects the newcomer or evicts the
//! current maximum.

use std::collections::BinaryHeap;

use tasm_ted::Cost;
use tasm_tree::{NodeId, Tree};

/// One ranked answer: a document subtree and its distance to the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Root of the matched subtree: its postorder number in the document.
    pub root: NodeId,
    /// Number of nodes of the matched subtree.
    pub size: u32,
    /// Tree edit distance to the query.
    pub distance: Cost,
    /// The matched subtree itself, if the caller asked to keep trees
    /// (streaming evaluation cannot recover it afterwards).
    pub tree: Option<Tree>,
}

impl Match {
    /// The total order used by the ranking: by distance, then by postorder
    /// number (earlier document positions win ties), then by size.
    fn rank_key(&self) -> (Cost, u32, u32) {
        (self.distance, self.root.post(), self.size)
    }
}

/// Heap entry wrapper ordering matches by [`Match::rank_key`].
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry(Match);

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.rank_key().cmp(&other.0.rank_key())
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A max-heap keeping the `k` smallest matches seen so far.
#[derive(Debug, Clone)]
pub struct TopKHeap {
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl TopKHeap {
    /// Creates a heap for a top-`k` ranking.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`; a top-0 ranking is meaningless.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be at least 1");
        TopKHeap {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// The ranking size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of matches currently held (`<= k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap holds no matches yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the heap already holds `k` matches (an *intermediate
    /// ranking* in the paper's sense, enabling the `τ'` bound of Lemma 4).
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// The largest ranked distance, `max(R)`; `None` until non-empty.
    pub fn max_distance(&self) -> Option<Cost> {
        self.heap.peek().map(|e| e.0.distance)
    }

    /// Offers a match. If the heap is full and the newcomer does not beat
    /// the current maximum (by the deterministic rank key) it is rejected.
    /// Returns `true` if the match was kept.
    pub fn offer(&mut self, m: Match) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(Entry(m));
            return true;
        }
        let worst = self.heap.peek().expect("full heap is non-empty");
        if m.rank_key() < worst.0.rank_key() {
            self.heap.pop();
            self.heap.push(Entry(m));
            true
        } else {
            false
        }
    }

    /// Whether a candidate distance could still enter the ranking (i.e. the
    /// heap is not full, or the distance is strictly below the maximum).
    /// Cheaper than building a [`Match`] when it would be rejected.
    pub fn would_accept(&self, distance: Cost) -> bool {
        !self.is_full() || distance < self.max_distance().expect("full")
    }

    /// Merges another heap into this one (the paper's `merge-heap` followed
    /// by popping back down to `k`).
    ///
    /// The result keeps **this** heap's `k`; `other`'s `k` only bounded
    /// how many entries it contributes. Because the rank key
    /// ([`Match::rank_key`]: distance, then document postorder number,
    /// then size) is a total order, the merged content is the unique
    /// top-`k` of the union and does not depend on merge order — the
    /// guarantee `tasm_parallel` relies on when combining per-shard
    /// heaps.
    pub fn merge(&mut self, other: TopKHeap) {
        for e in other.heap {
            self.offer(e.0);
        }
    }

    /// Attaches subtrees to matches whose root postorder number lies in
    /// `[lo, hi]` and that do not carry a tree yet. `make` receives the
    /// document postorder number of the match root.
    ///
    /// Rebuilds the heap (O(k log k)); `k` is small by assumption.
    pub fn attach_trees(&mut self, lo: u32, hi: u32, mut make: impl FnMut(u32) -> Tree) {
        let entries = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .map(|mut e| {
                let post = e.0.root.post();
                if e.0.tree.is_none() && (lo..=hi).contains(&post) {
                    e.0.tree = Some(make(post));
                }
                e
            })
            .collect();
    }

    /// Consumes the heap, returning matches sorted ascending (the final
    /// ranking `R` of Def. 1).
    pub fn into_sorted(self) -> Vec<Match> {
        let mut v: Vec<Match> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_by_key(|a| a.rank_key());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(dist: u64, root: u32) -> Match {
        Match {
            root: NodeId::new(root),
            size: 1,
            distance: Cost::from_natural(dist),
            tree: None,
        }
    }

    #[test]
    fn keeps_k_smallest() {
        let mut h = TopKHeap::new(2);
        for (d, r) in [(5, 1), (3, 2), (7, 3), (1, 4)] {
            h.offer(m(d, r));
        }
        let out = h.into_sorted();
        let dists: Vec<u64> = out.iter().map(|x| x.distance.floor_natural()).collect();
        assert_eq!(dists, vec![1, 3]);
    }

    #[test]
    fn max_distance_tracks_worst_kept() {
        let mut h = TopKHeap::new(2);
        assert_eq!(h.max_distance(), None);
        h.offer(m(5, 1));
        h.offer(m(3, 2));
        assert_eq!(h.max_distance(), Some(Cost::from_natural(5)));
        h.offer(m(1, 3));
        assert_eq!(h.max_distance(), Some(Cost::from_natural(3)));
    }

    #[test]
    fn ties_prefer_smaller_postorder() {
        let mut h = TopKHeap::new(1);
        h.offer(m(2, 9));
        // Same distance, smaller id: replaces.
        assert!(h.offer(m(2, 3)));
        // Same distance, larger id: rejected.
        assert!(!h.offer(m(2, 7)));
        let out = h.into_sorted();
        assert_eq!(out[0].root, NodeId::new(3));
    }

    #[test]
    fn would_accept_matches_offer_semantics() {
        let mut h = TopKHeap::new(1);
        assert!(h.would_accept(Cost::from_natural(100)));
        h.offer(m(4, 1));
        assert!(h.would_accept(Cost::from_natural(3)));
        assert!(!h.would_accept(Cost::from_natural(4))); // tie on distance: only
                                                         // smaller ids would win; conservative helper says no
        assert!(!h.would_accept(Cost::from_natural(5)));
    }

    #[test]
    fn merge_combines_rankings() {
        let mut a = TopKHeap::new(3);
        a.offer(m(1, 1));
        a.offer(m(4, 2));
        let mut b = TopKHeap::new(3);
        b.offer(m(2, 3));
        b.offer(m(3, 4));
        b.offer(m(9, 5));
        a.merge(b);
        let dists: Vec<u64> = a
            .into_sorted()
            .iter()
            .map(|x| x.distance.floor_natural())
            .collect();
        assert_eq!(dists, vec![1, 2, 3]);
    }

    #[test]
    fn into_sorted_is_ascending_and_stable_by_id() {
        let mut h = TopKHeap::new(4);
        for (d, r) in [(2, 8), (2, 2), (1, 5), (2, 4)] {
            h.offer(m(d, r));
        }
        let out = h.into_sorted();
        let keys: Vec<(u64, u32)> = out
            .iter()
            .map(|x| (x.distance.floor_natural(), x.root.post()))
            .collect();
        assert_eq!(keys, vec![(1, 5), (2, 2), (2, 4), (2, 8)]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_panics() {
        let _ = TopKHeap::new(0);
    }

    #[test]
    fn merge_with_duplicate_scores_is_order_independent() {
        // Duplicate distances everywhere: the id tiebreak must decide, and
        // the same ids must survive regardless of which heap held them.
        let entries = [(2u64, 5u32), (2, 1), (2, 9), (2, 3), (2, 7)];
        let (mut left, mut right) = (TopKHeap::new(3), TopKHeap::new(3));
        for (i, &(d, r)) in entries.iter().enumerate() {
            if i % 2 == 0 {
                left.offer(m(d, r));
            } else {
                right.offer(m(d, r));
            }
        }
        let mut one = TopKHeap::new(3);
        for &(d, r) in &entries {
            one.offer(m(d, r));
        }
        left.merge(right);
        let merged: Vec<u32> = left.into_sorted().iter().map(|x| x.root.post()).collect();
        let direct: Vec<u32> = one.into_sorted().iter().map(|x| x.root.post()).collect();
        assert_eq!(merged, direct);
        assert_eq!(merged, vec![1, 3, 5]);
    }

    #[test]
    fn merge_empty_heaps() {
        // Empty into full, full into empty, empty into empty.
        let mut full = TopKHeap::new(2);
        full.offer(m(1, 1));
        full.offer(m(2, 2));
        full.merge(TopKHeap::new(2));
        assert_eq!(full.len(), 2);

        let mut empty = TopKHeap::new(2);
        let mut donor = TopKHeap::new(2);
        donor.offer(m(3, 3));
        empty.merge(donor);
        assert_eq!(empty.len(), 1);
        assert_eq!(empty.max_distance(), Some(Cost::from_natural(3)));

        let mut a = TopKHeap::new(5);
        a.merge(TopKHeap::new(5));
        assert!(a.is_empty());
    }

    #[test]
    fn merge_k1_keeps_single_best() {
        let mut a = TopKHeap::new(1);
        a.offer(m(4, 2));
        let mut b = TopKHeap::new(1);
        b.offer(m(4, 1)); // same distance, smaller id: must win
        a.merge(b);
        let out = a.into_sorted();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].root, NodeId::new(1));
    }

    #[test]
    fn merge_keeps_receivers_k() {
        let mut small = TopKHeap::new(2);
        small.offer(m(5, 1));
        let mut big = TopKHeap::new(4);
        for (d, r) in [(1, 2), (2, 3), (3, 4), (4, 5)] {
            big.offer(m(d, r));
        }
        small.merge(big);
        assert_eq!(small.k(), 2);
        let dists: Vec<u64> = small
            .into_sorted()
            .iter()
            .map(|x| x.distance.floor_natural())
            .collect();
        assert_eq!(dists, vec![1, 2]);
    }
}
