//! Index-backed TASM: candidate generation from a persistent `.pqi`
//! label index instead of a full document scan.
//!
//! The scan entry points pay `O(n)` per pass: every node of the document
//! streams through the prefix ring buffer even when the top-k answers
//! hide in a few subtrees. An [`IndexedDocument`] inverts that cost
//! model for the index-once / query-many workload:
//!
//! 1. the candidate set `cand(T, τ)` (Def. 9) is derived from the
//!    subtree-size column — examining only the nodes *above* the
//!    candidate frontier, not all `n`;
//! 2. the per-label postings bound every candidate region's label
//!    overlap with each query (rarest labels first — they have the
//!    shortest postings), giving the admissible histogram lower bound
//!    `δ(Q, S) >= |Q| − common` for **every** subtree `S` of the region
//!    (the same bound as `tasm_ted`'s filter cascade, hoisted from
//!    per-candidate to per-region);
//! 3. regions are evaluated most-promising first, so the top-k heaps
//!    tighten early and later regions whose bound exceeds every lane's
//!    cutoff are skipped without ever materializing a candidate.
//!
//! Skipping is **exact**: a region is dropped only when every lane's
//! heap is full and the bound *strictly* exceeds its cutoff — the same
//! admissibility argument as
//! [`LowerBoundCascade::decide`](tasm_ted::LowerBoundCascade::decide) —
//! and the rank key (distance, document postorder, size) is a total
//! order, so the ranking is independent of evaluation order. Evaluated
//! regions flow through the unchanged lane machinery
//! ([`fan_out`](crate::lane::fan_out) into the cascade, heaps and
//! [`ScanStats`] funnel), so `tasm_indexed` returns **identical**
//! rankings to [`tasm_postorder`](crate::tasm_postorder) /
//! [`tasm_naive`](crate::tasm_naive) (pinned by `tests/differential.rs`).

use crate::batch::BatchQuery;
use crate::engine::{ScanEngine, ScanStats};
use crate::lane::{build_lanes, fan_out, reserve_lanes, scan_tau_of, EvalLane};
use crate::parallel::{
    merge_shard_results, resolve_threads, shard_spans, ShardResult, ShardSink, SpanQueue,
};
use crate::ranking::Match;
use crate::server::deadline::{Deadline, DeadlineExceeded};
use crate::tasm_dynamic::TasmOptions;
use crate::workspace::scratch_fits_cap;
use tasm_index::IndexedDocument;
use tasm_ted::{CascadeScratch, Cost, CostModel, TedStats, TedWorkspace};
use tasm_tree::{LabelDict, LabelId, NodeId, Tree};

/// Once every lane's heap is full, how many further seed regions the
/// parallel driver evaluates before freezing the cutoffs and handing
/// the filtered remainder to the shard workers.
const SEED_EXTRA: usize = 16;

/// The admissible per-region lower bound: each of the `m` query nodes
/// without an equal-label partner in the region costs at least one
/// natural unit (node costs are clamped `>= 1`, Def. 4), for every
/// subtree inside the region.
fn region_bound(m: u64, common: u32) -> Cost {
    Cost::from_natural(m.saturating_sub(u64::from(common)))
}

/// Whether any lane still has use for region `ri`: an unfilled heap
/// accepts everything; a full one only if the region bound does not
/// strictly exceed its cutoff (ties must be evaluated, exactly as in
/// the per-candidate cascade).
fn region_wanted(lanes: &[EvalLane<'_>], msizes: &[u64], commons: &[Vec<u32>], ri: usize) -> bool {
    lanes
        .iter()
        .enumerate()
        .any(|(li, lane)| match lane.heap.max_distance() {
            Some(cutoff) if lane.heap.is_full() => {
                region_bound(msizes[li], commons[li][ri]) <= cutoff
            }
            _ => true,
        })
}

/// Evaluates one `(lml, root)` span through every lane: clones the
/// subtree out of the materialized document (local postorder, sizes
/// invariant) and fans it out exactly as the scan sinks do.
#[allow(clippy::too_many_arguments)]
fn eval_span(
    span: (u32, u32),
    doc: &Tree,
    scratch: &mut Tree,
    lanes: &mut [EvalLane<'_>],
    teds: &mut [TedWorkspace],
    lb: &mut CascadeScratch,
    scan: &mut ScanStats,
    opts: TasmOptions,
    ted_stats: Option<&mut TedStats>,
) {
    let (lo, hi) = span;
    scratch.clone_subtree_from(doc, NodeId::new(hi));
    scan.candidates += 1;
    scan.nodes_seen = scan.nodes_seen.saturating_add(hi - lo + 1);
    scan.peak_buffered = scan.peak_buffered.max((hi - lo + 1) as usize);
    fan_out(lanes, teds, lb, scratch, lo - 1, opts, ted_stats);
}

/// Counts a region skip in every lane's funnel: the histogram tier
/// refuted it for each of them (a region is only skipped when **all**
/// lanes refuse it).
fn count_region_skip(lanes: &mut [EvalLane<'_>]) {
    for lane in lanes {
        lane.stats.pruned_histogram += 1;
    }
}

/// Top-`k` ranking of `query` against an indexed document, identical to
/// [`tasm_postorder`](crate::tasm_postorder) but generated from the
/// `.pqi` index instead of a full scan.
///
/// `src_dict` is the dictionary `query` was parsed with; the query is
/// re-encoded into the index's frequency-ordered label space
/// internally. Label-dependent [`CostModel`]s must therefore be defined
/// over the **index** label space (resolve names through
/// [`IndexedDocument::dict`]); label-agnostic models like
/// [`UnitCost`](tasm_ted::UnitCost) need no care. Matched subtrees
/// (`keep_trees`) carry index-space labels.
///
/// # Examples
///
/// ```
/// use tasm_tree::{bracket, LabelDict};
/// use tasm_ted::UnitCost;
/// use tasm_index::IndexedDocument;
/// use tasm_core::{tasm_indexed, TasmOptions};
///
/// let mut dict = LabelDict::new();
/// let q = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let doc = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let idx = IndexedDocument::build(&doc, &dict);
/// let top2 = tasm_indexed(&q, &dict, &idx, 2, &UnitCost, 1, TasmOptions::default(), 1);
/// assert_eq!(top2[0].root.post(), 6);
/// assert_eq!(top2[1].root.post(), 3);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn tasm_indexed(
    query: &Tree,
    src_dict: &LabelDict,
    idx: &IndexedDocument,
    k: usize,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
) -> Vec<Match> {
    tasm_indexed_with_stats(query, src_dict, idx, k, model, c_t, opts, threads, None).0
}

/// As [`tasm_indexed`], but also returning the [`ScanStats`] of the
/// index-driven pass. `nodes_seen` counts the nodes the index actually
/// examined (candidate-frontier walk plus evaluated regions) — compare
/// it against the document size to see what the index saved.
#[allow(clippy::too_many_arguments)]
pub fn tasm_indexed_with_stats(
    query: &Tree,
    src_dict: &LabelDict,
    idx: &IndexedDocument,
    k: usize,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    stats: Option<&mut TedStats>,
) -> (Vec<Match>, ScanStats) {
    let queries = [BatchQuery { query, k }];
    let (mut rankings, scan, _) =
        tasm_indexed_batch_with_stats(&queries, src_dict, idx, model, c_t, opts, threads, stats);
    (rankings.pop().expect("one lane"), scan)
}

/// Batch composition over an indexed document: answers every query of
/// `queries` from one candidate-region pass over the index, with the
/// region filter keeping a region alive as long as **any** lane still
/// wants it. See [`tasm_indexed`] for the label-space contract.
#[allow(clippy::too_many_arguments)]
pub fn tasm_indexed_batch(
    queries: &[BatchQuery<'_>],
    src_dict: &LabelDict,
    idx: &IndexedDocument,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    stats: Option<&mut TedStats>,
) -> Vec<Vec<Match>> {
    tasm_indexed_batch_with_stats(queries, src_dict, idx, model, c_t, opts, threads, stats).0
}

/// What a stats-carrying indexed batch returns: per-query rankings,
/// the aggregated [`ScanStats`], and the per-lane funnels in query
/// order.
pub type IndexedBatchOutput = (Vec<Vec<Match>>, ScanStats, Vec<ScanStats>);

/// As [`tasm_indexed_batch`], but also returning the aggregated
/// [`ScanStats`] and the per-lane statistics in query order (region
/// skips count into each lane's histogram tier).
#[allow(clippy::too_many_arguments)]
pub fn tasm_indexed_batch_with_stats(
    queries: &[BatchQuery<'_>],
    src_dict: &LabelDict,
    idx: &IndexedDocument,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    stats: Option<&mut TedStats>,
) -> IndexedBatchOutput {
    tasm_indexed_batch_deadline_with_stats(
        queries,
        src_dict,
        idx,
        model,
        c_t,
        opts,
        threads,
        stats,
        &Deadline::none(),
    )
    .expect("no deadline to exceed")
}

/// As [`tasm_indexed_batch_with_stats`], cooperatively cancellable at
/// **region** granularity: the promise-ordered region loop polls
/// `deadline` per region (strided — see [`Deadline::poll`]) and the
/// shard workers poll per candidate, so one large document cannot
/// overrun a request deadline by more than a single region evaluation.
/// Expiry anywhere aborts the whole call with [`DeadlineExceeded`] —
/// no partial ranking is returned.
#[allow(clippy::too_many_arguments)]
pub fn tasm_indexed_batch_deadline_with_stats(
    queries: &[BatchQuery<'_>],
    src_dict: &LabelDict,
    idx: &IndexedDocument,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    stats: Option<&mut TedStats>,
    deadline: &Deadline,
) -> Result<IndexedBatchOutput, DeadlineExceeded> {
    if queries.is_empty() {
        return Ok((Vec::new(), ScanStats::default(), Vec::new()));
    }
    if deadline.expired_now() {
        return Err(DeadlineExceeded);
    }
    let threads = resolve_threads(threads);
    let trees: Vec<&Tree> = queries.iter().map(|bq| bq.query).collect();
    let (encoded, _work_dict) = idx.encode_queries(&trees, src_dict);
    let equeries: Vec<BatchQuery<'_>> = encoded
        .iter()
        .zip(queries)
        .map(|(query, bq)| BatchQuery { query, k: bq.k })
        .collect();

    let (mut lanes, scan_tau) = build_lanes(&equeries, model, c_t, opts.kernel);
    debug_assert_eq!(scan_tau, scan_tau_of(&equeries, model, c_t));
    let msizes: Vec<u64> = encoded.iter().map(|q| q.len() as u64).collect();

    // Scan-free candidate generation: spans from the size column,
    // per-lane label overlap from the postings.
    let (spans, generated) = idx.candidate_spans(scan_tau);
    let commons: Vec<Vec<u32>> = encoded
        .iter()
        .map(|q| idx.region_common(&spans, q))
        .collect();

    // Most promising regions first: smallest best-lane deficit, ties in
    // document order. Deterministic, and independent of thread count.
    let mut order: Vec<u32> = (0..spans.len() as u32).collect();
    order.sort_by_key(|&ri| {
        let ri = ri as usize;
        let deficit = (0..lanes.len())
            .map(|li| msizes[li].saturating_sub(u64::from(commons[li][ri])))
            .min()
            .unwrap_or(0);
        (deficit, spans[ri].0)
    });

    let mut teds: Vec<TedWorkspace> = (0..lanes.len()).map(|_| TedWorkspace::new()).collect();
    let mut lb = CascadeScratch::new();
    reserve_lanes(&lanes, &mut teds, &mut lb, scan_tau);
    let mut scratch = Tree::leaf(LabelId(0));
    if scratch_fits_cap(scan_tau as usize) {
        scratch.reserve(scan_tau as usize);
    }
    let want_ted_stats = stats.is_some();
    let mut ted_local = want_ted_stats.then(TedStats::new);
    let mut scan = ScanStats {
        nodes_seen: u32::try_from(generated).unwrap_or(u32::MAX),
        ..ScanStats::default()
    };

    // Seed phase (and, with <= 1 thread, the whole run): walk regions in
    // promise order, skipping those no lane can use any more.
    let mut rest_start = order.len();
    let mut extra_after_full = 0usize;
    for (pos, &ri) in order.iter().enumerate() {
        if deadline.poll() {
            return Err(DeadlineExceeded);
        }
        if threads > 1 && lanes.iter().all(|l| l.heap.is_full()) {
            extra_after_full += 1;
            if extra_after_full > SEED_EXTRA {
                rest_start = pos;
                break;
            }
        }
        if region_wanted(&lanes, &msizes, &commons, ri as usize) {
            eval_span(
                spans[ri as usize],
                idx.tree(),
                &mut scratch,
                &mut lanes,
                &mut teds,
                &mut lb,
                &mut scan,
                opts,
                ted_local.as_mut(),
            );
        } else {
            count_region_skip(&mut lanes);
        }
    }

    // Remainder: filter against the (now frozen) cutoffs — admissible
    // because cutoffs only tighten — and shard the survivors.
    let mut survivors: Vec<(u32, u32)> = Vec::new();
    for &ri in &order[rest_start..] {
        if region_wanted(&lanes, &msizes, &commons, ri as usize) {
            survivors.push(spans[ri as usize]);
        } else {
            count_region_skip(&mut lanes);
        }
    }
    survivors.sort_unstable();
    let shards = shard_spans(&survivors, threads);

    let mut results: Vec<ShardResult> = Vec::with_capacity(shards.len() + 1);
    if shards.len() <= 1 {
        // Too few survivors to be worth worker threads: finish on the
        // warm seed lanes.
        for &span in &survivors {
            if deadline.poll() {
                return Err(DeadlineExceeded);
            }
            eval_span(
                span,
                idx.tree(),
                &mut scratch,
                &mut lanes,
                &mut teds,
                &mut lb,
                &mut scan,
                opts,
                ted_local.as_mut(),
            );
        }
    } else {
        let doc = idx.tree();
        let equeries = &equeries;
        // `Deadline` is deliberately `!Sync`, so each worker mints its
        // own token from the shared expiry instant.
        let expiry = deadline.instant();
        let worker_results: Result<Vec<ShardResult>, DeadlineExceeded> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| {
                        scope.spawn(move || {
                            let worker_deadline = match expiry {
                                Some(at) => Deadline::at(at),
                                None => Deadline::none(),
                            };
                            let (lanes, _) = build_lanes(equeries, model, c_t, opts.kernel);
                            let mut teds: Vec<TedWorkspace> =
                                (0..lanes.len()).map(|_| TedWorkspace::new()).collect();
                            let mut lb = CascadeScratch::new();
                            reserve_lanes(&lanes, &mut teds, &mut lb, scan_tau);
                            let mut engine = ScanEngine::new(scan_tau);
                            if scratch_fits_cap(scan_tau as usize) {
                                engine.reserve();
                            }
                            let mut sink = ShardSink {
                                lanes,
                                teds,
                                lb,
                                opts,
                                spans: shard,
                                next: 0,
                                stats: want_ted_stats.then(TedStats::new),
                            };
                            let mut queue = SpanQueue::new(doc, shard);
                            let scan = engine.scan_with_deadline(
                                &mut queue,
                                &mut sink,
                                &worker_deadline,
                            )?;
                            debug_assert_eq!(scan.candidates, shard.len());
                            Ok(ShardResult {
                                lane_funnels: sink.lanes.iter().map(|l| l.stats).collect(),
                                heaps: sink.lanes.into_iter().map(|l| l.heap).collect(),
                                scan,
                                ted_stats: sink.stats,
                            })
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("indexed shard worker panicked"))
                    .collect()
            });
        results.extend(worker_results?);
    }

    results.push(ShardResult {
        lane_funnels: lanes.iter().map(|l| l.stats).collect(),
        heaps: lanes.into_iter().map(|l| l.heap).collect(),
        scan,
        ted_stats: ted_local,
    });
    Ok(merge_shard_results(queries.len(), results, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasm_postorder::tasm_postorder;
    use tasm_ted::UnitCost;
    use tasm_tree::{bracket, TreeQueue};

    fn wide_doc(dict: &mut LabelDict, records: usize) -> Tree {
        let mut s = String::from("{dblp");
        for i in 0..records {
            match i % 4 {
                0 => s.push_str("{article{auth{John}}{title{X1}}}"),
                1 => s.push_str("{book{title{X2}}}"),
                2 => s.push_str("{article{auth{Mike}}{title{X3}}{year}}"),
                _ => s.push_str("{proceedings{conf{VLDB}}}"),
            }
        }
        s.push('}');
        bracket::parse(&s, dict).unwrap()
    }

    fn key(ms: &[Match]) -> Vec<(u32, u64, u32)> {
        ms.iter()
            .map(|m| (m.root.post(), m.distance.halves(), m.size))
            .collect()
    }

    #[test]
    fn indexed_matches_sequential_ranking() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 25);
        let q = bracket::parse("{article{auth{John}}{title{X9}}}", &mut dict).unwrap();
        let idx = IndexedDocument::build(&doc, &dict);
        for k in [1, 3, 10] {
            let mut queue = TreeQueue::new(&doc);
            let want = tasm_postorder(
                &q,
                &mut queue,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                None,
            );
            for threads in [1, 3] {
                let got = tasm_indexed(
                    &q,
                    &dict,
                    &idx,
                    k,
                    &UnitCost,
                    1,
                    TasmOptions::default(),
                    threads,
                );
                assert_eq!(key(&got), key(&want), "k = {k}, threads = {threads}");
            }
        }
    }

    #[test]
    fn indexed_examines_fewer_nodes_once_heap_is_tight() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 200);
        let q = bracket::parse("{article{auth{John}}{title{X1}}}", &mut dict).unwrap();
        let idx = IndexedDocument::build(&doc, &dict);
        let (ranking, scan) = tasm_indexed_with_stats(
            &q,
            &dict,
            &idx,
            1,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
            None,
        );
        assert_eq!(ranking[0].distance, Cost::ZERO); // exact matches exist
        assert!(
            u64::from(scan.nodes_seen) < doc.len() as u64,
            "index examined {} of {} nodes",
            scan.nodes_seen,
            doc.len()
        );
        assert!(scan.pruned_histogram > 0, "region filter never fired");
    }

    #[test]
    fn expired_deadline_aborts_before_any_region() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 30);
        let q = bracket::parse("{article{auth{John}}{title{X1}}}", &mut dict).unwrap();
        let idx = IndexedDocument::build(&doc, &dict);
        let queries = [BatchQuery { query: &q, k: 3 }];
        let deadline = Deadline::after(std::time::Duration::ZERO);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let got = tasm_indexed_batch_deadline_with_stats(
            &queries,
            &dict,
            &idx,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
            None,
            &deadline,
        );
        assert_eq!(got.unwrap_err(), DeadlineExceeded);
    }

    #[test]
    fn no_deadline_matches_the_plain_entry_point() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 40);
        let q = bracket::parse("{article{auth{Mike}}{title{X3}}}", &mut dict).unwrap();
        let idx = IndexedDocument::build(&doc, &dict);
        let queries = [BatchQuery { query: &q, k: 5 }];
        for threads in [1, 3] {
            let (want, _, _) = tasm_indexed_batch_with_stats(
                &queries,
                &dict,
                &idx,
                &UnitCost,
                1,
                TasmOptions::default(),
                threads,
                None,
            );
            let (got, _, _) = tasm_indexed_batch_deadline_with_stats(
                &queries,
                &dict,
                &idx,
                &UnitCost,
                1,
                TasmOptions::default(),
                threads,
                None,
                &Deadline::none(),
            )
            .unwrap();
            assert_eq!(
                got.iter().map(|l| key(l)).collect::<Vec<_>>(),
                want.iter().map(|l| key(l)).collect::<Vec<_>>(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 4);
        let idx = IndexedDocument::build(&doc, &dict);
        let (rankings, scan, lanes) = tasm_indexed_batch_with_stats(
            &[],
            &dict,
            &idx,
            &UnitCost,
            1,
            TasmOptions::default(),
            2,
            None,
        );
        assert!(rankings.is_empty() && lanes.is_empty());
        assert_eq!(scan, ScanStats::default());
    }
}
