//! Multi-query batching: N TASM queries answered in **one** document
//! scan.
//!
//! A production matcher rarely serves one query at a time. The scan
//! layer's work — ring-buffer maintenance, candidate materialization,
//! stream decoding — depends only on the document and the size
//! threshold, so it can be shared: the [`ScanEngine`] runs once at
//! `τ_scan = max_i τ_i` and every candidate is offered to one
//! evaluation *lane* per query, each with its own
//! [`QueryContext`](tasm_ted::QueryContext), its own Theorem 3/Lemma 4
//! pruning bound and its own [`TopKHeap`](crate::TopKHeap). A query
//! whose own τ is smaller than `τ_scan`
//! simply prunes harder inside each candidate; the per-lane bounds are
//! exactly the sequential ones, so every lane returns **exactly** the
//! ranking [`tasm_postorder`](crate::tasm_postorder) would (pinned by
//! the differential matrix in `tests/differential.rs`).
//!
//! Memory stays document-independent: `O(Σ m_i² + τ_scan · Σ m_i)` for
//! the lane matrices plus the shared `O(τ_scan)` ring — and with a warm
//! [`BatchWorkspace`] a scan performs O(#queries) allocations total,
//! regardless of the document's length (regression-tested with the
//! counting allocator in `tasm-bench`).

use crate::engine::{CandidateSink, ScanEngine, ScanStats};
use crate::lane::{build_lanes, fan_out, reserve_lanes, EvalLane};
use crate::ranking::Match;
use crate::server::deadline::{Deadline, DeadlineExceeded};
use crate::tasm_dynamic::TasmOptions;
use crate::workspace::scratch_fits_cap;
use tasm_ted::{CascadeScratch, CostModel, TedStats, TedWorkspace};
use tasm_tree::{NodeId, PostorderQueue, Tree};

/// One query of a batch: the query tree and its ranking size.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery<'a> {
    /// The query tree.
    pub query: &'a Tree,
    /// The ranking size `k` for this query (clamped to `>= 1`).
    pub k: usize,
}

/// Reusable scratch state for [`tasm_batch_with_workspace`]: the shared
/// scan engine plus one distance workspace per lane. All buffers grow
/// but never shrink; reuse across streams for an allocation profile of
/// O(#queries) per scan.
#[derive(Debug)]
pub struct BatchWorkspace {
    engine: ScanEngine,
    /// Lower-bound cascade scratch (only one lane checks at a time, so
    /// it is shared).
    lb: CascadeScratch,
    /// One distance workspace per lane; grown to the batch width.
    lanes: Vec<TedWorkspace>,
    /// Scan + pruning-funnel statistics of the most recent run
    /// (aggregated over all lanes).
    last_scan: ScanStats,
    /// Per-lane statistics of the most recent run: the shared
    /// scan-layer counters plus each lane's own pruning funnel.
    last_lanes: Vec<ScanStats>,
}

impl Default for BatchWorkspace {
    fn default() -> Self {
        BatchWorkspace::new()
    }
}

impl BatchWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        BatchWorkspace {
            engine: ScanEngine::new(1),
            lb: CascadeScratch::new(),
            lanes: Vec::new(),
            last_scan: ScanStats::default(),
            last_lanes: Vec::new(),
        }
    }

    /// The scan and pruning-funnel statistics of the most recent
    /// [`tasm_batch_with_workspace`] run: one shared scan, with the
    /// funnel counters aggregated over every query lane.
    pub fn last_scan_stats(&self) -> ScanStats {
        self.last_scan
    }

    /// Per-lane statistics of the most recent run, in query order: each
    /// record carries the shared scan-layer counters (every lane saw
    /// the same candidates) and that lane's own pruning funnel.
    pub fn last_lane_stats(&self) -> &[ScanStats] {
        &self.last_lanes
    }
}

/// [`CandidateSink`] fanning each candidate out to every query lane.
struct MultiQuerySink<'a> {
    lanes: Vec<EvalLane<'a>>,
    teds: &'a mut [TedWorkspace],
    lb: &'a mut CascadeScratch,
    opts: TasmOptions,
    stats: Option<&'a mut TedStats>,
}

impl CandidateSink for MultiQuerySink<'_> {
    fn consume(&mut self, cand: &Tree, root: NodeId, _scan: &mut ScanStats) {
        let offset = root.post() - cand.len() as u32;
        fan_out(
            &mut self.lanes,
            self.teds,
            self.lb,
            cand,
            offset,
            self.opts,
            self.stats.as_deref_mut(),
        );
    }
}

/// Answers every query of `queries` over **one** pass of `queue`,
/// returning one ranking per query, in input order.
///
/// Each ranking is exactly what the sequential
/// [`tasm_postorder`](crate::tasm_postorder) returns for that query
/// alone; the shared scan only amortizes the per-candidate stream work
/// across the batch. `c_t` is the maximum document node cost under
/// `model`, as for the sequential entry point. `stats` (if any)
/// aggregates the evaluation work of **all** lanes.
///
/// # Examples
///
/// ```
/// use tasm_tree::{bracket, LabelDict, TreeQueue};
/// use tasm_ted::UnitCost;
/// use tasm_core::{tasm_batch, BatchQuery, TasmOptions};
///
/// let mut dict = LabelDict::new();
/// let q1 = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let q2 = bracket::parse("{a{b}}", &mut dict).unwrap();
/// let doc = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let queries = [
///     BatchQuery { query: &q1, k: 2 },
///     BatchQuery { query: &q2, k: 1 },
/// ];
/// let mut queue = TreeQueue::new(&doc);
/// let rankings =
///     tasm_batch(&queries, &mut queue, &UnitCost, 1, TasmOptions::default(), None);
/// assert_eq!(rankings.len(), 2);
/// assert_eq!(rankings[0][0].root.post(), 6); // exact match for q1
/// ```
pub fn tasm_batch<Q: PostorderQueue + ?Sized>(
    queries: &[BatchQuery<'_>],
    queue: &mut Q,
    model: &dyn CostModel,
    c_t: u64,
    opts: TasmOptions,
    stats: Option<&mut TedStats>,
) -> Vec<Vec<Match>> {
    let mut ws = BatchWorkspace::new();
    tasm_batch_with_workspace(queries, queue, model, c_t, opts, &mut ws, stats)
}

/// As [`tasm_batch`], but reusing the caller's [`BatchWorkspace`]: with
/// warm buffers a whole scan costs O(#queries) heap allocations,
/// independent of the document's length.
pub fn tasm_batch_with_workspace<Q: PostorderQueue + ?Sized>(
    queries: &[BatchQuery<'_>],
    queue: &mut Q,
    model: &dyn CostModel,
    c_t: u64,
    opts: TasmOptions,
    ws: &mut BatchWorkspace,
    stats: Option<&mut TedStats>,
) -> Vec<Vec<Match>> {
    match tasm_batch_deadline_with_workspace(
        queries,
        queue,
        model,
        c_t,
        opts,
        ws,
        stats,
        &Deadline::none(),
    ) {
        Ok(rankings) => rankings,
        Err(DeadlineExceeded) => unreachable!("Deadline::none() never expires"),
    }
}

/// As [`tasm_batch_with_workspace`], but cooperatively cancellable: the
/// whole batch shares one scan, so one `deadline` bounds it (the
/// `tasm serve` daemon passes the *earliest* member deadline and
/// retries survivors solo when a batch is cancelled).
///
/// # Errors
///
/// [`DeadlineExceeded`] if the deadline expires before the scan
/// completes — no partial rankings are returned (a top-k over a prefix
/// of the candidate stream could miss better subtrees), and the
/// workspace's last-run statistics are left untouched.
#[allow(clippy::too_many_arguments)]
pub fn tasm_batch_deadline_with_workspace<Q: PostorderQueue + ?Sized>(
    queries: &[BatchQuery<'_>],
    queue: &mut Q,
    model: &dyn CostModel,
    c_t: u64,
    opts: TasmOptions,
    ws: &mut BatchWorkspace,
    stats: Option<&mut TedStats>,
    deadline: &Deadline,
) -> Result<Vec<Vec<Match>>, DeadlineExceeded> {
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    if ws.lanes.len() < queries.len() {
        ws.lanes.resize_with(queries.len(), TedWorkspace::new);
    }

    // Per-query contexts and bounds; the scan must cover the widest τ.
    let (mut lanes, scan_tau) = build_lanes(queries, model, c_t, opts.kernel);

    // Reserve lanes for the widest candidate the scan can emit; the same
    // byte cap as `TasmWorkspace::reserve` guards pathological τ.
    let teds = &mut ws.lanes[..queries.len()];
    reserve_lanes(&lanes, teds, &mut ws.lb, scan_tau);
    ws.engine.set_tau(scan_tau);
    if scratch_fits_cap(scan_tau as usize) {
        ws.engine.reserve();
    }

    let mut sink = MultiQuerySink {
        lanes,
        teds,
        lb: &mut ws.lb,
        opts,
        stats,
    };
    let shared = ws.engine.scan_with_deadline(queue, &mut sink, deadline)?;
    lanes = sink.lanes;

    // Stats: every lane saw the one shared pass; the aggregate sums the
    // per-lane funnels on top of it.
    let mut aggregate = shared;
    ws.last_lanes.clear();
    for lane in &mut lanes {
        lane.stats.adopt_scan_layer(&shared);
        aggregate.merge_funnel(&lane.stats);
        ws.last_lanes.push(lane.stats);
    }
    ws.last_scan = aggregate;
    Ok(lanes
        .into_iter()
        .map(|lane| lane.heap.into_sorted())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasm_postorder::tasm_postorder;
    use tasm_ted::UnitCost;
    use tasm_tree::{bracket, LabelDict, TreeQueue};

    fn example_d(dict: &mut LabelDict) -> Tree {
        bracket::parse(
            "{dblp{article{auth{John}}{title{X1}}}{proceedings{conf{VLDB}}\
             {article{auth{Peter}}{title{X3}}}{article{auth{Mike}}{title{X4}}}}\
             {book{title{X2}}}}",
            dict,
        )
        .unwrap()
    }

    #[test]
    fn batch_equals_sequential_per_query() {
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let q1 = bracket::parse("{article{auth{Peter}}{title{X3}}}", &mut dict).unwrap();
        let q2 = bracket::parse("{book{title{X2}}}", &mut dict).unwrap();
        let q3 = bracket::parse("{auth{X}}", &mut dict).unwrap();
        let opts = TasmOptions {
            keep_trees: true,
            ..Default::default()
        };
        let queries = [
            BatchQuery { query: &q1, k: 3 },
            BatchQuery { query: &q2, k: 1 },
            BatchQuery { query: &q3, k: 22 },
        ];
        let mut queue = TreeQueue::new(&doc);
        let batch = tasm_batch(&queries, &mut queue, &UnitCost, 1, opts, None);
        assert_eq!(batch.len(), 3);
        for (bq, got) in queries.iter().zip(&batch) {
            let mut q = TreeQueue::new(&doc);
            let want = tasm_postorder(bq.query, &mut q, bq.k, &UnitCost, 1, opts, None);
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn empty_batch_returns_nothing_and_consumes_nothing() {
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let mut queue = TreeQueue::new(&doc);
        let out = tasm_batch(&[], &mut queue, &UnitCost, 1, TasmOptions::default(), None);
        assert!(out.is_empty());
        // The queue was not touched: a full sequential run still works.
        let q = bracket::parse("{book{title{X2}}}", &mut dict).unwrap();
        let top = tasm_postorder(
            &q,
            &mut queue,
            1,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        assert_eq!(top[0].root.post(), 21);
    }

    #[test]
    fn workspace_reuse_across_batches_is_identical() {
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let q1 = bracket::parse("{article{auth}{title}}", &mut dict).unwrap();
        let q2 = bracket::parse("{title{X1}}", &mut dict).unwrap();
        let queries = [
            BatchQuery { query: &q1, k: 4 },
            BatchQuery { query: &q2, k: 2 },
        ];
        let mut ws = BatchWorkspace::new();
        let run = |ws: &mut BatchWorkspace| {
            let mut queue = TreeQueue::new(&doc);
            tasm_batch_with_workspace(
                &queries,
                &mut queue,
                &UnitCost,
                1,
                TasmOptions::default(),
                ws,
                None,
            )
        };
        let first = run(&mut ws);
        let second = run(&mut ws);
        assert_eq!(first, second);
        let mut queue = TreeQueue::new(&doc);
        let fresh = tasm_batch(
            &queries,
            &mut queue,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        assert_eq!(first, fresh);
    }

    #[test]
    fn batch_stats_aggregate_all_lanes() {
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let q1 = bracket::parse("{auth{X}}", &mut dict).unwrap();
        let q2 = bracket::parse("{title{X}}", &mut dict).unwrap();
        let mut solo1 = TedStats::new();
        let mut q = TreeQueue::new(&doc);
        tasm_postorder(
            &q1,
            &mut q,
            1,
            &UnitCost,
            1,
            TasmOptions::default(),
            Some(&mut solo1),
        );
        let mut both = TedStats::new();
        let queries = [
            BatchQuery { query: &q1, k: 1 },
            BatchQuery { query: &q2, k: 1 },
        ];
        let mut q = TreeQueue::new(&doc);
        tasm_batch(
            &queries,
            &mut q,
            &UnitCost,
            1,
            TasmOptions::default(),
            Some(&mut both),
        );
        assert!(both.ted_calls >= solo1.ted_calls);
    }
}
