//! The *simple pruning* baseline of Sec. V-B, kept for the ablation
//! experiments.
//!
//! It buffers every incoming node until a non-candidate node (size > τ)
//! arrives, then emits the buffered subtrees rooted among that node's
//! children. Correct, but the look-ahead — and hence the buffer — is O(n):
//! in data-centric XML (e.g. DBLP, where over 99% of the root's subtrees
//! are below τ) nearly the whole document sits in the buffer until the root
//! is processed. The prefix ring buffer replaces this with an O(τ) buffer;
//! the `ablation-buffer` experiment contrasts the two peak sizes.

use crate::ring_buffer::{Candidate, PruningStats, INITIAL_RESERVE_CAP};
use tasm_tree::{NodeId, PostorderEntry, PostorderQueue, Tree};

/// Runs the simple pruning, returning the candidate set and stats
/// (notably `peak_buffered`, the point of the ablation).
pub fn simple_pruning<Q: PostorderQueue + ?Sized>(
    queue: &mut Q,
    tau: u32,
) -> (Vec<Candidate>, PruningStats) {
    let tau = tau.max(1);
    let mut stats = PruningStats::default();
    // Initial-capacity guess from the ring bound τ + 1, capped so a
    // saturated τ (e.g. u32::MAX for "no pruning") cannot demand a
    // gigantic up-front allocation; geometric growth takes over after.
    let guess = (tau as usize + 1).min(INITIAL_RESERVE_CAP);
    let mut out = Vec::with_capacity(guess);
    // All buffered nodes, indexed by (id - base - 1) where ids of removed
    // prefixes have been compacted away. O(n) by design (the point of
    // the ablation), but it starts at the candidate bound, not empty.
    let mut buf: Vec<PostorderEntry> = Vec::with_capacity(guess);
    /// A completed top-level subtree currently in the buffer.
    #[derive(Clone, Copy)]
    struct Pending {
        /// Document postorder number of the subtree root.
        root: u32,
        /// Index into `buf` of the subtree's first node.
        start: usize,
        size: u32,
    }
    let mut pending: Vec<Pending> = Vec::new();
    let mut id = 0u32;

    let emit = |p: Pending, buf: &[PostorderEntry], out: &mut Vec<Candidate>| {
        let slice = &buf[p.start..p.start + p.size as usize];
        let labels = slice.iter().map(|e| e.label).collect();
        let sizes = slice.iter().map(|e| e.size).collect();
        out.push(Candidate {
            tree: Tree::from_postorder_unchecked(labels, sizes),
            root: NodeId::new(p.root),
        });
    };

    while let Some(entry) = queue.dequeue() {
        id += 1;
        if entry.size <= tau {
            // Candidate node: absorb the completed child subtrees.
            let mut need = entry.size - 1;
            let mut start = buf.len();
            while need > 0 {
                let child = pending.pop().expect("valid postorder stream");
                start = child.start;
                need -= child.size;
            }
            buf.push(entry);
            pending.push(Pending {
                root: id,
                start,
                size: entry.size,
            });
        } else {
            // Non-candidate node: every completed subtree still pending
            // inside its span is a candidate (its ancestors up to and
            // including this node are all > τ). Emit them left to right.
            let lml = id - entry.size + 1;
            let from = pending
                .iter()
                .position(|p| p.root >= lml)
                .unwrap_or(pending.len());
            for p in pending.drain(from..) {
                emit(p, &buf, &mut out);
            }
            // Drop the emitted nodes from the buffer; anything left is a
            // pending subtree to the left of this node's span.
            let keep = pending
                .last()
                .map(|p| p.start + p.size as usize)
                .unwrap_or(0);
            buf.truncate(keep);
            // The non-candidate node itself is never buffered.
        }
        stats.peak_buffered = stats.peak_buffered.max(buf.len());
    }
    // End of stream: the root is always a non-candidate or the last pending
    // subtree; emit whatever remains (mirrors "when the root node arrives").
    for p in pending.drain(..) {
        emit(p, &buf, &mut out);
    }
    stats.nodes_seen = id;
    stats.candidates = out.len();
    stats.candidate_nodes = out.iter().map(|c| c.tree.len() as u64).sum();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring_buffer::{candidate_set_reference, prb_pruning_stats};
    use tasm_tree::{bracket, LabelDict, TreeQueue};

    fn example_d() -> Tree {
        let mut dict = LabelDict::new();
        bracket::parse(
            "{dblp{article{auth{John}}{title{X1}}}{proceedings{conf{VLDB}}\
             {article{auth{Peter}}{title{X3}}}{article{auth{Mike}}{title{X4}}}}\
             {book{title{X2}}}}",
            &mut dict,
        )
        .unwrap()
    }

    #[test]
    fn matches_example_5() {
        // Example 5: with τ = 6 the first non-candidate is d18; subtrees
        // D7, D12, D17 are emitted at that point, D5 and D21 at the root.
        let t = example_d();
        let mut q = TreeQueue::new(&t);
        let (cands, stats) = simple_pruning(&mut q, 6);
        let roots: Vec<u32> = cands.iter().map(|c| c.root.post()).collect();
        // Emission order: D7, D12, D17 (at d18), then D5, D21 (at root).
        assert_eq!(roots, vec![7, 12, 17, 5, 21]);
        // Example 5: nodes d1..d17 are all buffered when d18 arrives.
        assert_eq!(stats.peak_buffered, 17);
        assert_eq!(stats.candidates, 5);
    }

    #[test]
    fn same_candidate_set_as_reference() {
        let t = example_d();
        for tau in 1..=23 {
            let mut q = TreeQueue::new(&t);
            let (cands, _) = simple_pruning(&mut q, tau);
            let mut got: Vec<u32> = cands.iter().map(|c| c.root.post()).collect();
            got.sort_unstable();
            let want: Vec<u32> = candidate_set_reference(&t, tau)
                .iter()
                .map(|c| c.root.post())
                .collect();
            assert_eq!(got, want, "τ = {tau}");
            for c in &cands {
                assert_eq!(c.tree, t.subtree(c.root));
            }
        }
    }

    #[test]
    fn buffer_blowup_vs_ring_buffer() {
        // Wide flat tree: simple pruning buffers ~everything, the ring
        // buffer stays at τ.
        let mut dict = LabelDict::new();
        let mut s = String::from("{dblp");
        for i in 0..100 {
            s.push_str(&format!("{{article{{a{i}}}{{t{i}}}}}"));
        }
        s.push('}');
        let t = bracket::parse(&s, &mut dict).unwrap();

        let mut q1 = TreeQueue::new(&t);
        let (_, simple) = simple_pruning(&mut q1, 6);
        let mut q2 = TreeQueue::new(&t);
        let ring = prb_pruning_stats(&mut q2, 6, None);

        assert_eq!(simple.candidates, ring.candidates);
        assert_eq!(simple.peak_buffered, 300); // all children of the root
        assert!(ring.peak_buffered <= 6);
    }

    #[test]
    fn single_node() {
        let mut dict = LabelDict::new();
        let t = bracket::parse("{a}", &mut dict).unwrap();
        let mut q = TreeQueue::new(&t);
        let (cands, _) = simple_pruning(&mut q, 4);
        assert_eq!(cands.len(), 1);
    }
}
