//! TASM-dynamic (Sec. IV-F): the state-of-the-art baseline the paper
//! improves on.
//!
//! One tree-edit-distance computation between the query and the whole
//! document fills the tree distance matrix `td`; its last row holds
//! `δ(Q, T_j)` for every subtree `T_j`, so ranking the last row solves
//! TASM. Time `O(m² n)` for shallow documents, but **space `O(m n)`**:
//! both the document and the matrix must be memory-resident, which is what
//! TASM-postorder eliminates.

use crate::engine::{CandidateSink, ScanStats};
use crate::ranking::{Match, TopKHeap};
use crate::tasm_postorder::SingleQuerySink;
use crate::workspace::TasmWorkspace;
use tasm_ted::{
    ted_row_with_workspace, Cost, CostModel, LowerBoundCascade, QueryContext, TedKernel, TedStats,
    TedWorkspace,
};
use tasm_tree::{NodeId, Tree, TreeView};

/// Options shared by the TASM algorithms.
#[derive(Debug, Clone, Copy)]
pub struct TasmOptions {
    /// Keep a copy of each matched subtree in the [`Match`] (costs O(k·τ)
    /// memory; required to show match content after streaming evaluation).
    pub keep_trees: bool,
    /// Apply the Lemma 4 refinement `τ' = min(τ, max(R) + |Q|)` inside
    /// candidate subtrees (Algorithm 3, line 10). Disabling it keeps only
    /// the static Theorem 3 bound — the `ablation-tau` experiment measures
    /// what the refinement buys.
    pub use_tau_prime: bool,
    /// Run the admissible [`LowerBoundCascade`] (label-histogram deficit,
    /// then banded substring SED) against the current heap cutoff before
    /// each exact DP evaluation. Pruning is strict (`bound > max(R)`),
    /// so the ranking is **identical** with the cascade on or off
    /// (property-tested); disabling it measures what the cascade buys.
    pub use_cascade: bool,
    /// Which TED kernel evaluates surviving candidates: the classic
    /// Zhang–Shasha left-path decomposition, the right-path (mirrored)
    /// strategy kernel, or a per-query shape estimate (`Auto`, the
    /// default). Resolved once per query at lane/context construction;
    /// every selection returns **identical** rankings (pinned by the
    /// differential matrix).
    pub kernel: TedKernel,
}

impl Default for TasmOptions {
    fn default() -> Self {
        TasmOptions {
            keep_trees: false,
            use_tau_prime: true,
            use_cascade: true,
            kernel: TedKernel::Auto,
        }
    }
}

/// Computes the top-`k` ranking of the subtrees of `doc` w.r.t. `query`
/// (Def. 1) by the TASM-dynamic algorithm.
///
/// # Examples
///
/// Example 2 of the paper: top-2 for query G in document H is `(H6, H3)`
/// with distances 0 and 1.
///
/// ```
/// use tasm_tree::{bracket, LabelDict, NodeId};
/// use tasm_ted::UnitCost;
/// use tasm_core::{tasm_dynamic, TasmOptions};
///
/// let mut dict = LabelDict::new();
/// let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let top2 = tasm_dynamic(&g, &h, 2, &UnitCost, TasmOptions::default(), None);
/// assert_eq!(top2[0].root, NodeId::new(6));
/// assert_eq!(top2[0].distance.floor_natural(), 0);
/// assert_eq!(top2[1].root, NodeId::new(3));
/// assert_eq!(top2[1].distance.floor_natural(), 1);
/// ```
pub fn tasm_dynamic(
    query: &Tree,
    doc: &Tree,
    k: usize,
    model: &dyn CostModel,
    opts: TasmOptions,
    stats: Option<&mut TedStats>,
) -> Vec<Match> {
    let mut ws = TasmWorkspace::new();
    tasm_dynamic_with_workspace(query, doc, k, model, opts, &mut ws, stats)
}

/// As [`tasm_dynamic`], but reusing the caller's [`TasmWorkspace`] for
/// the distance matrices and document-side buffers (the dominant, O(m·n)
/// allocations). The query-side [`QueryContext`] is still rebuilt per
/// call — O(m), negligible next to the DP — so queries may change freely
/// between calls.
///
/// Structurally this is the scan-engine evaluation layer with the
/// pruning disabled: the whole (already materialized) document is fed to
/// the single-query sink as one candidate under an unbounded τ, so one
/// DP fills the distance matrix and its last row ranks every subtree.
pub fn tasm_dynamic_with_workspace(
    query: &Tree,
    doc: &Tree,
    k: usize,
    model: &dyn CostModel,
    opts: TasmOptions,
    ws: &mut TasmWorkspace,
    stats: Option<&mut TedStats>,
) -> Vec<Match> {
    let ctx = QueryContext::with_kernel(query, model, opts.kernel);
    let cascade = LowerBoundCascade::from_context(&ctx);
    let mut heap = TopKHeap::new(k.max(1));
    let mut scan = ScanStats::default();
    {
        let TasmWorkspace { ted, lb, .. } = ws;
        let mut sink = SingleQuerySink {
            heap: &mut heap,
            ctx: &ctx,
            cascade: &cascade,
            tau: u64::MAX,
            opts,
            lb,
            ted,
            stats,
        };
        sink.consume(doc, doc.root(), &mut scan);
        scan.candidates = 1;
    }
    ws.last_scan = scan;
    heap.into_sorted()
}

/// Core of TASM-dynamic, reusable by TASM-postorder: computes the distance
/// matrix for (`ctx.query()`, `doc`) inside the workspace and offers every
/// subtree of `doc` to `heap`. The document side arrives as a borrowed
/// [`TreeView`] — for TASM-postorder a zero-copy slice of the candidate
/// arena — so the call is allocation-free once the workspace is warm
/// (`keep_trees` aside, which clones at most `k` surviving subtrees).
///
/// `doc_post_offset` shifts reported postorder numbers: when `doc` is a
/// candidate subtree of a larger document, pass the document postorder
/// number of the node *preceding* the candidate's leftmost node.
pub(crate) fn rank_subtrees_into(
    heap: &mut TopKHeap,
    ctx: &QueryContext<'_>,
    doc: TreeView<'_>,
    doc_post_offset: u32,
    opts: TasmOptions,
    ted_ws: &mut TedWorkspace,
    stats: Option<&mut TedStats>,
) {
    let row = ted_row_with_workspace(ctx, doc, ted_ws, stats);
    for j in doc.nodes() {
        let distance: Cost = row[j.post() as usize];
        heap.offer(Match {
            root: NodeId::new(doc_post_offset + j.post()),
            size: doc.size(j),
            distance,
            tree: None,
        });
    }
    if opts.keep_trees {
        // Attach subtree copies to the surviving matches rooted in this
        // doc. Done once per doc rather than per offer: only the at most k
        // survivors pay the clone.
        let lo = doc_post_offset + 1;
        let hi = doc_post_offset + doc.len() as u32;
        heap.attach_trees(lo, hi, |doc_post| {
            doc.subtree(NodeId::new(doc_post - doc_post_offset))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_ted::UnitCost;
    use tasm_tree::{bracket, LabelDict};

    fn gh() -> (Tree, Tree) {
        let mut dict = LabelDict::new();
        let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
        let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
        (g, h)
    }

    #[test]
    fn paper_example_2_top2() {
        let (g, h) = gh();
        let top2 = tasm_dynamic(&g, &h, 2, &UnitCost, TasmOptions::default(), None);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].root.post(), 6);
        assert_eq!(top2[0].distance, Cost::ZERO);
        assert_eq!(top2[1].root.post(), 3);
        assert_eq!(top2[1].distance, Cost::from_natural(1));
    }

    #[test]
    fn k_larger_than_document_returns_all() {
        let (g, h) = gh();
        let all = tasm_dynamic(&g, &h, 100, &UnitCost, TasmOptions::default(), None);
        assert_eq!(all.len(), 7);
        // Sorted ascending by (distance, id): from Fig. 3 last row
        // (2,3,1,2,2,0,4) => 0@6, 1@3, 2@1, 2@4, 2@5, 3@2, 4@7.
        let got: Vec<(u64, u32)> = all
            .iter()
            .map(|m| (m.distance.floor_natural(), m.root.post()))
            .collect();
        assert_eq!(
            got,
            vec![(0, 6), (1, 3), (2, 1), (2, 4), (2, 5), (3, 2), (4, 7)]
        );
    }

    #[test]
    fn top1_is_exact_match() {
        let (g, h) = gh();
        let top1 = tasm_dynamic(&g, &h, 1, &UnitCost, TasmOptions::default(), None);
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].root.post(), 6);
        assert_eq!(top1[0].size, 3);
    }

    #[test]
    fn keep_trees_attaches_subtrees() {
        let (g, h) = gh();
        let opts = TasmOptions {
            keep_trees: true,
            ..Default::default()
        };
        let top2 = tasm_dynamic(&g, &h, 2, &UnitCost, opts, None);
        let t6 = top2[0].tree.as_ref().expect("tree kept");
        assert_eq!(t6, &h.subtree(NodeId::new(6)));
        assert_eq!(top2[1].tree.as_ref().unwrap(), &h.subtree(NodeId::new(3)));
    }

    #[test]
    fn stats_see_whole_document() {
        let (g, h) = gh();
        let mut st = TedStats::new();
        tasm_dynamic(&g, &h, 2, &UnitCost, TasmOptions::default(), Some(&mut st));
        // TASM-dynamic computes the whole document: max relevant size = |H|.
        assert_eq!(st.max_relevant_size(), 7);
        assert_eq!(st.ted_calls, 1);
    }
}
