//! The streaming scan engine: one prefix-ring-buffer pass over a
//! postorder queue, feeding candidate subtrees to a pluggable sink.
//!
//! TASM-postorder's structure (Algorithm 3) splits naturally into two
//! layers: a **scan** that consumes the document stream once and emits
//! the candidate set `cand(T, τ)` with `O(τ)` memory (Sec. V), and an
//! **evaluation** of each candidate against one or more queries.
//! [`ScanEngine`] owns the scan layer — the ring buffer and the scratch
//! tree candidates are renumbered into — and drives any
//! [`CandidateSink`]:
//!
//! * the single-query sink behind [`tasm_postorder`](crate::tasm_postorder);
//! * the multi-query sink behind [`tasm_batch`](crate::tasm_batch),
//!   which amortizes ring-buffer maintenance and candidate
//!   materialization across N queries in one pass;
//! * the per-shard sinks of [`tasm_parallel`](crate::tasm_parallel),
//!   where each worker runs its own engine over a contiguous slice of
//!   the candidate stream.
//!
//! The engine preserves the zero-allocation steady state of PR 2: the
//! scratch tree grows but never shrinks, so once its capacity covers τ
//! the scan emits candidates without heap allocation.

use crate::ring_buffer::PrefixRingBuffer;
use crate::server::deadline::{Deadline, DeadlineExceeded};
use tasm_tree::{LabelId, NodeId, PostorderQueue, Tree};

/// A consumer of candidate subtrees emitted by a [`ScanEngine`] pass.
///
/// `consume` is called once per candidate, in ascending order of the
/// candidate root's postorder number in the scanned stream. `cand` is
/// renumbered to local postorder `1..=cand.len()`; `root` is the
/// candidate root's postorder number **in the stream** (so local node
/// `j` corresponds to stream node `root.post() - cand.len() as u32 +
/// j.post()`, as in [`Candidate::doc_post`](crate::Candidate::doc_post)).
/// `stats` is the pass's [`ScanStats`]: evaluation-layer sinks record
/// their per-tier pruning-funnel counters into it.
///
/// The candidate borrow ends when `consume` returns: sinks that need a
/// candidate beyond the call must copy it.
pub trait CandidateSink {
    /// Evaluates (or otherwise processes) one candidate subtree.
    fn consume(&mut self, cand: &Tree, root: NodeId, stats: &mut ScanStats);
}

/// Statistics of one [`ScanEngine::scan`] pass: the scan-layer counters
/// plus the evaluation-layer **pruning funnel** — how many subtree
/// evaluations each tier of the
/// [`LowerBoundCascade`](tasm_ted::LowerBoundCascade) killed before the
/// `O(m²·n²)` DP ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Candidate subtrees emitted to the sink.
    pub candidates: usize,
    /// Nodes consumed from the queue.
    pub nodes_seen: u32,
    /// Peak number of simultaneously buffered nodes (`<= τ`, Theorem 2).
    pub peak_buffered: usize,
    /// Subtree roots rejected by the τ' size bound during the
    /// Algorithm 3 descent (the descent then steps one node down, so
    /// smaller subtrees may still be evaluated).
    pub pruned_size: u64,
    /// Maximal in-bound subtrees skipped (with their whole subtree) by
    /// the label-histogram tier.
    pub pruned_histogram: u64,
    /// Maximal in-bound subtrees skipped by the substring-SED tier.
    pub pruned_sed: u64,
    /// Subtrees that survived every tier and were evaluated by the exact
    /// DP (one DP ranks the subtree *and* all its descendants).
    pub evaluated: u64,
    /// Of the evaluated subtrees, how many ran under the classic
    /// Zhang–Shasha left-path kernel. The split is per *query* (the
    /// kernel is resolved once at context construction), so one of the
    /// two per-kernel counters is zero for a single-query scan.
    pub evaluated_zs: u64,
    /// Of the evaluated subtrees, how many ran under the right-path
    /// (mirrored) strategy kernel.
    pub evaluated_strategy: u64,
}

impl ScanStats {
    /// Sums another pass's counters into this one (used by the batch
    /// lanes sharing a scan and by `tasm_parallel` merging per-shard
    /// stats; `peak_buffered` takes the maximum).
    pub fn merge(&mut self, other: &ScanStats) {
        self.candidates += other.candidates;
        self.nodes_seen += other.nodes_seen;
        self.peak_buffered = self.peak_buffered.max(other.peak_buffered);
        self.pruned_size += other.pruned_size;
        self.pruned_histogram += other.pruned_histogram;
        self.pruned_sed += other.pruned_sed;
        self.evaluated += other.evaluated;
        self.evaluated_zs += other.evaluated_zs;
        self.evaluated_strategy += other.evaluated_strategy;
    }

    /// Sums only the pruning-funnel counters of `other` into this one,
    /// leaving the scan-layer counters (`candidates`, `nodes_seen`,
    /// `peak_buffered`) untouched. Used to aggregate per-lane funnels
    /// over **one** shared scan without double-counting the pass.
    pub fn merge_funnel(&mut self, other: &ScanStats) {
        self.pruned_size += other.pruned_size;
        self.pruned_histogram += other.pruned_histogram;
        self.pruned_sed += other.pruned_sed;
        self.evaluated += other.evaluated;
        self.evaluated_zs += other.evaluated_zs;
        self.evaluated_strategy += other.evaluated_strategy;
    }

    /// Copies the scan-layer counters of a shared pass into this
    /// (per-lane) record, leaving the funnel counters untouched — every
    /// lane of a shared scan saw the same candidates.
    pub fn adopt_scan_layer(&mut self, shared: &ScanStats) {
        self.candidates = shared.candidates;
        self.nodes_seen = shared.nodes_seen;
        self.peak_buffered = shared.peak_buffered;
    }

    /// Evaluation decisions the cascade faced: pruned (any tier beyond
    /// the size bound) plus actually evaluated.
    pub fn eval_decisions(&self) -> u64 {
        self.pruned_histogram + self.pruned_sed + self.evaluated
    }

    /// Fraction of in-bound subtree evaluations the cascade pruned
    /// (0.0 when nothing was decided).
    pub fn prune_rate(&self) -> f64 {
        let total = self.eval_decisions();
        if total == 0 {
            0.0
        } else {
            (self.pruned_histogram + self.pruned_sed) as f64 / total as f64
        }
    }
}

/// The streaming scan layer of TASM: owns the prefix ring buffer of one
/// pass and the scratch tree candidates are renumbered into, and drives
/// a pluggable [`CandidateSink`] over the candidate set `cand(T, τ)`.
///
/// Create once (or embed in a workspace) and reuse across streams: the
/// scratch tree grows but never shrinks, so repeated scans are
/// allocation-free in steady state apart from the `O(τ)` ring itself.
///
/// # Examples
///
/// ```
/// use tasm_core::{CandidateSink, ScanEngine};
/// use tasm_tree::{bracket, LabelDict, NodeId, Tree, TreeQueue};
///
/// struct CountNodes(u64);
/// impl CandidateSink for CountNodes {
///     fn consume(&mut self, cand: &Tree, _root: NodeId, _stats: &mut tasm_core::ScanStats) {
///         self.0 += cand.len() as u64;
///     }
/// }
///
/// let mut dict = LabelDict::new();
/// let doc = bracket::parse("{dblp{article{a}{t}}{article{a}{t}}}", &mut dict).unwrap();
/// let mut sink = CountNodes(0);
/// let mut engine = ScanEngine::new(3);
/// let stats = engine.scan(&mut TreeQueue::new(&doc), &mut sink);
/// assert_eq!(stats.candidates, 2); // the two article subtrees
/// assert_eq!(sink.0, 6);
/// ```
#[derive(Debug)]
pub struct ScanEngine {
    tau: u32,
    /// Scratch tree the ring buffer renumbers each candidate into
    /// (grow-don't-shrink).
    cand: Tree,
}

impl ScanEngine {
    /// Creates an engine emitting the candidate set for threshold
    /// `tau >= 1` (clamped).
    pub fn new(tau: u32) -> Self {
        ScanEngine {
            tau: tau.max(1),
            cand: Tree::leaf(LabelId(0)),
        }
    }

    /// The scan threshold τ.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// Re-targets the engine to a new threshold, keeping the (grown)
    /// scratch capacity.
    pub fn set_tau(&mut self, tau: u32) {
        self.tau = tau.max(1);
    }

    /// Pre-reserves the candidate scratch for the current τ so that not
    /// even the first candidate allocates. Capped by the caller (see
    /// [`TasmWorkspace::reserve`](crate::TasmWorkspace::reserve)).
    pub fn reserve(&mut self) {
        self.cand.reserve(self.tau as usize);
    }

    /// Runs one full pass: consumes `queue` through a fresh prefix ring
    /// buffer and feeds every candidate of `cand(T, τ)` to `sink`, in
    /// stream order.
    ///
    /// The queue may encode a single tree or a forest of complete
    /// subtrees (every prefix a valid forest) — the latter is how
    /// [`tasm_parallel`](crate::tasm_parallel) shards one document
    /// across engines.
    pub fn scan<Q: PostorderQueue + ?Sized>(
        &mut self,
        queue: &mut Q,
        sink: &mut dyn CandidateSink,
    ) -> ScanStats {
        match self.scan_with_deadline(queue, sink, &Deadline::none()) {
            Ok(stats) => stats,
            Err(DeadlineExceeded) => unreachable!("Deadline::none() never expires"),
        }
    }

    /// As [`scan`](Self::scan), but cooperatively cancellable: the
    /// `deadline` token is checked once before the pass starts (forced)
    /// and once per candidate (strided — see [`Deadline::poll`]). When
    /// it expires the pass stops where it is and **no partial result**
    /// reaches the caller beyond what the sink already consumed; the
    /// sink's state must be discarded, since a ranking over a prefix of
    /// the candidate stream could silently miss better subtrees.
    ///
    /// This is the cancellation point the `tasm serve` daemon relies on
    /// to keep slow queries from wedging a worker.
    pub fn scan_with_deadline<Q: PostorderQueue + ?Sized>(
        &mut self,
        queue: &mut Q,
        sink: &mut dyn CandidateSink,
        deadline: &Deadline,
    ) -> Result<ScanStats, DeadlineExceeded> {
        if deadline.expired_now() {
            return Err(DeadlineExceeded);
        }
        let mut prb = PrefixRingBuffer::new(queue, self.tau);
        let mut stats = ScanStats::default();
        while let Some(root) = prb.next_candidate_into(&mut self.cand) {
            if deadline.poll() {
                return Err(DeadlineExceeded);
            }
            sink.consume(&self.cand, root, &mut stats);
            stats.candidates += 1;
        }
        stats.nodes_seen = prb.nodes_seen();
        stats.peak_buffered = prb.peak_buffered();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring_buffer::prb_pruning;
    use tasm_tree::{bracket, LabelDict, TreeQueue};

    /// Collects owned copies of every candidate (test sink).
    struct Collect(Vec<(u32, Tree)>);

    impl CandidateSink for Collect {
        fn consume(&mut self, cand: &Tree, root: NodeId, _stats: &mut ScanStats) {
            self.0.push((root.post(), cand.clone()));
        }
    }

    fn example_d(dict: &mut LabelDict) -> Tree {
        bracket::parse(
            "{dblp{article{auth{John}}{title{X1}}}{proceedings{conf{VLDB}}\
             {article{auth{Peter}}{title{X3}}}{article{auth{Mike}}{title{X4}}}}\
             {book{title{X2}}}}",
            dict,
        )
        .unwrap()
    }

    #[test]
    fn engine_emits_exactly_the_candidate_set() {
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        for tau in 1..=23u32 {
            let mut engine = ScanEngine::new(tau);
            let mut sink = Collect(Vec::new());
            let mut q = TreeQueue::new(&doc);
            let stats = engine.scan(&mut q, &mut sink);
            let mut q = TreeQueue::new(&doc);
            let want = prb_pruning(&mut q, tau);
            assert_eq!(stats.candidates, want.len(), "τ = {tau}");
            assert_eq!(stats.nodes_seen as usize, doc.len());
            assert!(stats.peak_buffered <= tau.max(1) as usize);
            for ((root, tree), w) in sink.0.iter().zip(&want) {
                assert_eq!(*root, w.root.post());
                assert_eq!(tree, &w.tree);
            }
        }
    }

    #[test]
    fn engine_is_reusable_across_streams_and_taus() {
        let mut dict = LabelDict::new();
        let doc = example_d(&mut dict);
        let mut engine = ScanEngine::new(6);
        engine.reserve();
        let mut first = Collect(Vec::new());
        engine.scan(&mut TreeQueue::new(&doc), &mut first);
        assert_eq!(first.0.len(), 5); // Example 3: cand(D, 6)

        engine.set_tau(22);
        assert_eq!(engine.tau(), 22);
        let mut second = Collect(Vec::new());
        engine.scan(&mut TreeQueue::new(&doc), &mut second);
        assert_eq!(second.0.len(), 1);
        assert_eq!(second.0[0].1, doc);
    }

    #[test]
    fn tau_is_clamped_to_one() {
        let engine = ScanEngine::new(0);
        assert_eq!(engine.tau(), 1);
    }

    #[test]
    fn scan_stats_merge_and_prune_rate() {
        let a = ScanStats {
            candidates: 3,
            nodes_seen: 10,
            peak_buffered: 4,
            pruned_size: 1,
            pruned_histogram: 6,
            pruned_sed: 2,
            evaluated: 2,
            evaluated_zs: 2,
            evaluated_strategy: 0,
        };
        let mut b = ScanStats {
            candidates: 2,
            nodes_seen: 5,
            peak_buffered: 6,
            ..Default::default()
        };
        b.merge(&a);
        assert_eq!(b.candidates, 5);
        assert_eq!(b.nodes_seen, 15);
        assert_eq!(b.peak_buffered, 6); // max, not sum
        assert_eq!(b.eval_decisions(), 10);
        assert!((b.prune_rate() - 0.8).abs() < 1e-9);
        assert_eq!(ScanStats::default().prune_rate(), 0.0);
    }
}
