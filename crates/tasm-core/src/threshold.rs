//! The subtree-size upper bound τ (Sec. VI-A, Theorem 3) and its
//! intermediate-ranking refinement τ' (Lemma 4).
//!
//! Theorem 3: for query `Q`, result size `k`, maximum node costs `c_Q`
//! (query) and `c_T` (document), every subtree in the final top-k ranking
//! has size at most
//!
//! ```text
//! τ = |Q| · (c_Q + 1) + k · c_T
//! ```
//!
//! independent of the document's size and structure. Once an intermediate
//! ranking with `k` entries exists, Lemma 4 tightens this to
//! `τ' = min(τ, max(R) + |Q|)`.

use tasm_ted::{Cost, CostModel, NodeCosts};
use tasm_tree::Tree;

/// Computes τ = `|Q|·(c_Q + 1) + k·c_T` (Theorem 3).
///
/// `c_q` and `c_t` are the maximum node costs of query and document in
/// natural units (both `>= 1`; e.g. 1 and 1 under unit costs). The result
/// is a subtree size measured in nodes.
///
/// # Examples
///
/// The paper's running DBLP numbers (Sec. VI-B): a 15-node query, `k = 20`,
/// unit costs: τ = 2·|Q| + k = 50.
///
/// ```
/// use tasm_core::threshold;
/// assert_eq!(threshold(15, 1, 1, 20), 50);
/// ```
pub fn threshold(query_size: u64, c_q: u64, c_t: u64, k: u64) -> u64 {
    query_size
        .saturating_mul(c_q.max(1).saturating_add(1))
        .saturating_add(k.saturating_mul(c_t.max(1)))
}

/// Computes τ for a concrete query under a cost model, given the maximum
/// document node cost `c_t`.
pub fn threshold_for_query(query: &Tree, model: &dyn CostModel, c_t: u64, k: u64) -> u64 {
    let c_q = NodeCosts::compute(query.view(), model).max();
    threshold(query.len() as u64, c_q, c_t, k)
}

/// The refined bound τ' of Lemma 4, as a *size*: subtrees of size `>= τ'`
/// cannot strictly improve an intermediate ranking whose worst distance is
/// `max_ranked`.
///
/// Lemma 3 gives `|T_i| <= δ(Q, T_i) + |Q|`; since sizes are integral,
/// a subtree with `|T_i| >= ceil(max(R)) + |Q|` has
/// `δ(Q, T_i) >= |T_i| - |Q| >= ceil(max(R)) >= max(R)` and can be pruned.
/// The ceiling keeps the bound sound for fractional (half-unit) distances.
pub fn refined_threshold(tau: u64, max_ranked: Cost, query_size: u64) -> u64 {
    let ceil_nat = max_ranked.halves().div_ceil(2);
    tau.min(ceil_nat.saturating_add(query_size))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_ted::{FanoutWeighted, UnitCost};
    use tasm_tree::{bracket, LabelDict};

    #[test]
    fn paper_dblp_example() {
        // |Q| = 15, unit costs, k = 20 => τ = 2|Q| + k = 50 (Sec. VI-B).
        assert_eq!(threshold(15, 1, 1, 20), 50);
    }

    #[test]
    fn unit_cost_formula() {
        // τ = |Q|·2 + k under unit costs.
        assert_eq!(threshold(4, 1, 1, 5), 13);
        assert_eq!(threshold(64, 1, 1, 10000), 128 + 10000);
    }

    #[test]
    fn costs_are_clamped() {
        assert_eq!(threshold(10, 0, 0, 3), threshold(10, 1, 1, 3));
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        assert_eq!(threshold(u64::MAX, u64::MAX, u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn threshold_for_query_uses_max_query_cost() {
        let mut d = LabelDict::new();
        let q = bracket::parse("{a{b}{c}{d}}", &mut d).unwrap();
        // Unit: τ = 4*2 + 5 = 13.
        assert_eq!(threshold_for_query(&q, &UnitCost, 1, 5), 13);
        // Fanout-weighted: root costs 1 + 3 => c_q = 4, τ = 4*5 + 5*2 = 30.
        let model = FanoutWeighted { base: 1, weight: 1 };
        assert_eq!(threshold_for_query(&q, &model, 2, 5), 30);
    }

    #[test]
    fn refined_threshold_integral() {
        // max(R) = 3.0, |Q| = 4: τ' = min(τ, 3 + 4).
        assert_eq!(refined_threshold(100, Cost::from_natural(3), 4), 7);
        assert_eq!(refined_threshold(5, Cost::from_natural(3), 4), 5);
    }

    #[test]
    fn refined_threshold_rounds_up_fractional_distances() {
        // max(R) = 2.5 must behave like 3: pruning at size >= 2 + |Q| would
        // discard subtrees with distance 2.0 < 2.5.
        assert_eq!(refined_threshold(100, Cost::from_halves(5), 4), 3 + 4);
    }

    #[test]
    fn refined_threshold_zero_distance() {
        // Perfect matches found: only subtrees smaller than |Q| could tie.
        assert_eq!(refined_threshold(100, Cost::ZERO, 4), 4);
    }
}
