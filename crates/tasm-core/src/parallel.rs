//! Sharded parallel TASM: the candidate stream split across worker
//! threads, each running its own scan engine, merged by the top-k heap.
//!
//! The candidate set `cand(T, τ)` (Def. 9) is a sequence of **disjoint**
//! subtrees in document order, and candidate evaluation (Algorithm 3,
//! lines 7–19) touches nothing outside the candidate plus the query-side
//! state. That makes the scan embarrassingly parallel once the candidate
//! spans are known: shard the spans into contiguous, node-balanced
//! ranges, give every worker its own [`ScanEngine`] + [`TasmWorkspace`]
//! over a [`SpanQueue`] replaying just its spans (a valid postorder
//! *forest* stream), and merge the per-shard heaps with
//! [`TopKHeap::merge`] at the end.
//!
//! Determinism: the heap's rank key (distance, document postorder, size)
//! is a total order, every subtree that can appear in the final ranking
//! is evaluated by exactly one shard (its candidate is in exactly one
//! shard), and merging keeps the k smallest keys — so the result is
//! **identical** to the sequential [`tasm_postorder`] ranking for any
//! thread count (property tested in `tests/properties.rs`).
//!
//! Only `std::thread::scope` is used — no external dependencies.

use crate::engine::{CandidateSink, ScanStats};
use crate::ranking::{Match, TopKHeap};
use crate::tasm_dynamic::TasmOptions;
use crate::tasm_postorder::{process_candidate_parts, tasm_postorder_with_workspace};
use crate::threshold::threshold;
use crate::workspace::TasmWorkspace;
use tasm_ted::{CostModel, LowerBoundCascade, QueryContext, TedStats};
use tasm_tree::{NodeId, PostorderEntry, PostorderQueue, Tree, TreeQueue};

/// A postorder queue replaying selected `(lml, root)` spans of an
/// in-memory document — each span a complete subtree, so every prefix of
/// the stream is a valid forest (what the ring buffer requires).
struct SpanQueue<'a> {
    doc: &'a Tree,
    spans: &'a [(u32, u32)],
    /// Index of the span currently being replayed.
    span_idx: usize,
    /// Next document postorder number within the current span (0 = start
    /// of the span not yet entered).
    pos: u32,
}

impl<'a> SpanQueue<'a> {
    fn new(doc: &'a Tree, spans: &'a [(u32, u32)]) -> Self {
        SpanQueue {
            doc,
            spans,
            span_idx: 0,
            pos: 0,
        }
    }
}

impl PostorderQueue for SpanQueue<'_> {
    fn dequeue(&mut self) -> Option<PostorderEntry> {
        loop {
            let &(lo, hi) = self.spans.get(self.span_idx)?;
            if self.pos == 0 {
                self.pos = lo;
            }
            if self.pos > hi {
                self.span_idx += 1;
                self.pos = 0;
                continue;
            }
            let id = NodeId::new(self.pos);
            self.pos += 1;
            // Subtree sizes are invariant under the renumbering of a span
            // to local postorder, so the arena values stream unchanged.
            return Some(PostorderEntry {
                label: self.doc.label(id),
                size: self.doc.size(id),
            });
        }
    }

    fn len_hint(&self) -> Option<usize> {
        Some(
            self.spans
                .iter()
                .map(|&(lo, hi)| (hi - lo + 1) as usize)
                .sum(),
        )
    }
}

/// Computes the `(lml, root)` document-postorder spans of `cand(T, τ)`
/// in document order: the maximal subtrees of size `<= tau` (every
/// candidate's parent, if any, is larger than τ). One O(n) pass.
pub(crate) fn candidate_spans(doc: &Tree, tau: u32) -> Vec<(u32, u32)> {
    let parents = doc.parents();
    doc.nodes()
        .filter(|&id| doc.size(id) <= tau && parents[id.index()].is_none_or(|p| doc.size(p) > tau))
        .map(|id| (doc.lml(id).post(), id.post()))
        .collect()
}

/// Splits `spans` into at most `shards` contiguous groups of roughly
/// equal **node** weight (candidate counts can be wildly uneven in
/// size); every group is non-empty.
pub(crate) fn shard_spans(spans: &[(u32, u32)], shards: usize) -> Vec<&[(u32, u32)]> {
    let span_weight = |&(lo, hi): &(u32, u32)| u64::from(hi - lo + 1);
    if spans.is_empty() {
        return Vec::new();
    }
    let shards = shards.clamp(1, spans.len());
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut remaining_weight: u64 = spans.iter().map(span_weight).sum();
    for s in 0..shards {
        if s + 1 == shards {
            out.push(&spans[start..]);
            break;
        }
        // Fill this shard up to its fair share of the remaining weight,
        // but leave at least one span for each remaining shard. Since
        // `shards <= spans.len()`, the cap always leaves this shard at
        // least one span as well.
        let target = remaining_weight / (shards - s) as u64;
        let cap = spans.len() - (shards - s - 1);
        let mut weight = 0u64;
        let mut end = start;
        while end < cap && (end == start || weight + span_weight(&spans[end]) <= target) {
            weight += span_weight(&spans[end]);
            end += 1;
        }
        out.push(&spans[start..end]);
        remaining_weight -= weight;
        start = end;
    }
    out
}

/// Shard-side sink: maps each emitted candidate back to its document
/// span (the scan re-derives candidates 1:1 with the shard's spans, in
/// order) and hands it to the standard single-query evaluation.
struct ShardSink<'a> {
    heap: &'a mut TopKHeap,
    ctx: &'a QueryContext<'a>,
    cascade: &'a LowerBoundCascade<'a>,
    tau: u64,
    opts: TasmOptions,
    lb: &'a mut tasm_ted::CascadeScratch,
    ted: &'a mut tasm_ted::TedWorkspace,
    spans: &'a [(u32, u32)],
    next: usize,
    stats: Option<&'a mut TedStats>,
}

impl CandidateSink for ShardSink<'_> {
    fn consume(&mut self, cand: &Tree, _local_root: NodeId, scan: &mut ScanStats) {
        let (lml, root) = self.spans[self.next];
        self.next += 1;
        debug_assert_eq!(
            cand.len() as u32,
            root - lml + 1,
            "shard scan must re-derive exactly the sharded candidate"
        );
        process_candidate_parts(
            self.heap,
            self.ctx,
            self.cascade,
            cand,
            lml - 1,
            self.tau,
            self.opts,
            self.lb,
            self.ted,
            scan,
            self.stats.as_deref_mut(),
        );
    }
}

/// Computes the top-`k` ranking of `query` against the in-memory `doc`
/// with the candidate stream sharded across `threads` worker threads.
///
/// Returns **exactly** the ranking of the sequential
/// [`tasm_postorder`] for any `threads >= 1` (`0` means "use
/// [`std::thread::available_parallelism`]"). Each worker owns a full
/// [`TasmWorkspace`] and a [`ScanEngine`] over its shard of the
/// candidate spans; the per-shard heaps are combined with
/// [`TopKHeap::merge`].
///
/// Unlike the streaming entry point this needs the materialized
/// document (`O(n)` memory) — sharding requires random access to the
/// candidate spans. `c_t` is the maximum document node cost under
/// `model`, as for [`tasm_postorder`].
///
/// # Examples
///
/// ```
/// use tasm_tree::{bracket, LabelDict};
/// use tasm_ted::UnitCost;
/// use tasm_core::{tasm_parallel, TasmOptions};
///
/// let mut dict = LabelDict::new();
/// let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let top2 = tasm_parallel(&g, &h, 2, &UnitCost, 1, TasmOptions::default(), 2);
/// assert_eq!(top2[0].root.post(), 6);
/// assert_eq!(top2[1].root.post(), 3);
/// ```
pub fn tasm_parallel(
    query: &Tree,
    doc: &Tree,
    k: usize,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
) -> Vec<Match> {
    tasm_parallel_with_stats(query, doc, k, model, c_t, opts, threads, None).0
}

/// As [`tasm_parallel`], but also returning the merged per-shard
/// [`ScanStats`] (scan counters summed, pruning funnel aggregated) and,
/// if `stats` is given, merging every worker's [`TedStats`] into it.
#[allow(clippy::too_many_arguments)]
pub fn tasm_parallel_with_stats(
    query: &Tree,
    doc: &Tree,
    k: usize,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    mut stats: Option<&mut TedStats>,
) -> (Vec<Match>, ScanStats) {
    let k = k.max(1);
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    };
    let m = query.len() as u64;
    let c_q = QueryContext::new(query, model).max_cost();
    let tau64 = threshold(m, c_q, c_t, k as u64);
    let tau = u32::try_from(tau64).unwrap_or(u32::MAX);

    let spans = candidate_spans(doc, tau);
    let shards = shard_spans(&spans, threads);
    if shards.len() <= 1 {
        // One shard (or no candidates at all): the sequential path is the
        // same work without the thread.
        let mut queue = TreeQueue::new(doc);
        let mut ws = TasmWorkspace::new();
        let matches = tasm_postorder_with_workspace(
            query,
            &mut queue,
            k,
            model,
            c_t,
            opts,
            &mut ws,
            stats.as_deref_mut(),
        );
        return (matches, ws.last_scan_stats());
    }

    let want_ted_stats = stats.is_some();
    let results: Vec<(TopKHeap, ScanStats, Option<TedStats>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                scope.spawn(move || {
                    let ctx = QueryContext::new(query, model);
                    let cascade = LowerBoundCascade::from_context(&ctx);
                    let mut ws = TasmWorkspace::new();
                    ws.reserve(query.len(), tau); // also targets ws.engine at τ
                    let mut heap = TopKHeap::new(k);
                    let mut ted_stats = want_ted_stats.then(TedStats::new);
                    let scan = {
                        let TasmWorkspace {
                            ted, engine, lb, ..
                        } = &mut ws;
                        let mut sink = ShardSink {
                            heap: &mut heap,
                            ctx: &ctx,
                            cascade: &cascade,
                            tau: tau64,
                            opts,
                            lb,
                            ted,
                            spans: shard,
                            next: 0,
                            stats: ted_stats.as_mut(),
                        };
                        let mut queue = SpanQueue::new(doc, shard);
                        engine.scan(&mut queue, &mut sink)
                    };
                    debug_assert_eq!(scan.candidates, shard.len());
                    (heap, scan, ted_stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    let mut merged: Option<TopKHeap> = None;
    let mut scan = ScanStats::default();
    for (heap, shard_scan, ted_stats) in results {
        scan.merge(&shard_scan);
        if let (Some(out), Some(ts)) = (stats.as_deref_mut(), ted_stats.as_ref()) {
            out.merge(ts);
        }
        merged = Some(match merged {
            None => heap,
            Some(mut acc) => {
                acc.merge(heap);
                acc
            }
        });
    }
    let merged = merged.expect("at least two shards");
    (merged.into_sorted(), scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasm_postorder::tasm_postorder;
    use tasm_ted::UnitCost;
    use tasm_tree::{bracket, LabelDict};

    fn wide_doc(dict: &mut LabelDict, records: usize) -> Tree {
        let mut s = String::from("{dblp");
        for i in 0..records {
            match i % 3 {
                0 => s.push_str("{article{a}{t}}"),
                1 => s.push_str("{book{t}}"),
                _ => s.push_str("{article{a}{t}{y}}"),
            }
        }
        s.push('}');
        bracket::parse(&s, dict).unwrap()
    }

    #[test]
    fn candidate_spans_match_reference() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 40);
        for tau in 1..=12u32 {
            let spans = candidate_spans(&doc, tau);
            let want = crate::ring_buffer::candidate_set_reference(&doc, tau);
            assert_eq!(spans.len(), want.len(), "τ = {tau}");
            for (s, w) in spans.iter().zip(&want) {
                assert_eq!(s.1, w.root.post());
                assert_eq!(s.1 - s.0 + 1, w.tree.len() as u32);
            }
        }
    }

    #[test]
    fn shard_spans_cover_everything_contiguously() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 50);
        let spans = candidate_spans(&doc, 5);
        for shards in 1..=8 {
            let groups = shard_spans(&spans, shards);
            assert!(!groups.is_empty() && groups.len() <= shards);
            assert!(groups.iter().all(|g| !g.is_empty()));
            let flat: Vec<_> = groups.iter().flat_map(|g| g.iter().copied()).collect();
            assert_eq!(flat, spans, "shards = {shards}");
        }
    }

    #[test]
    fn shard_spans_handles_empty_input() {
        assert_eq!(shard_spans(&[], 4).len(), 0);
    }

    #[test]
    fn parallel_equals_sequential_on_wide_doc() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 60);
        let query = bracket::parse("{article{a}{t}}", &mut dict).unwrap();
        let opts = TasmOptions {
            keep_trees: true,
            ..Default::default()
        };
        for k in [1usize, 3, 10] {
            let mut q = TreeQueue::new(&doc);
            let want = tasm_postorder(&query, &mut q, k, &UnitCost, 1, opts, None);
            for threads in [1usize, 2, 3, 4, 7] {
                let got = tasm_parallel(&query, &doc, k, &UnitCost, 1, opts, threads);
                assert_eq!(got, want, "k = {k}, threads = {threads}");
            }
        }
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 20);
        let query = bracket::parse("{book{t}}", &mut dict).unwrap();
        let got = tasm_parallel(&query, &doc, 2, &UnitCost, 1, TasmOptions::default(), 0);
        let mut q = TreeQueue::new(&doc);
        let want = tasm_postorder(
            &query,
            &mut q,
            2,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        assert_eq!(got, want);
    }

    #[test]
    fn single_node_document_works() {
        let mut dict = LabelDict::new();
        let doc = bracket::parse("{a}", &mut dict).unwrap();
        let query = bracket::parse("{a}", &mut dict).unwrap();
        let got = tasm_parallel(&query, &doc, 1, &UnitCost, 1, TasmOptions::default(), 4);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].distance, tasm_ted::Cost::ZERO);
    }
}
