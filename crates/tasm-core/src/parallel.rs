//! Sharded parallel TASM: the candidate stream split across worker
//! threads, each running its own scan engine, merged by the top-k heap.
//!
//! The candidate set `cand(T, τ)` (Def. 9) is a sequence of **disjoint**
//! subtrees in document order, and candidate evaluation (Algorithm 3,
//! lines 7–19) touches nothing outside the candidate plus the query-side
//! state. That makes the scan embarrassingly parallel once the candidate
//! spans are known: shard the spans into contiguous, node-balanced
//! ranges, give every worker its own [`ScanEngine`] over a [`SpanQueue`]
//! replaying just its spans (a valid postorder *forest* stream), and
//! merge the per-shard heaps with [`TopKHeap::merge`] at the end.
//!
//! The two scan axes **compose**: each shard worker fans its candidates
//! out to N per-query evaluation lanes — exactly the lanes of
//! [`tasm_batch`](crate::tasm_batch) — so [`tasm_batch_parallel`]
//! answers N queries across T threads in one sharded pass.
//! [`tasm_parallel`] is the single-lane special case.
//!
//! Determinism: the heap's rank key (distance, document postorder, size)
//! is a total order, every subtree that can appear in a final ranking
//! is evaluated by exactly one shard (its candidate is in exactly one
//! shard), and merging keeps the k smallest keys — so every lane's
//! result is **identical** to the sequential [`tasm_postorder`](crate::tasm_postorder) ranking
//! for any thread count (pinned by `tests/differential.rs`).
//!
//! Sharding spans needs random access to the materialized document; for
//! parallel scans over a pure postorder *stream* see
//! [`tasm_parallel_stream`](crate::tasm_parallel_stream).
//!
//! Only `std::thread::scope` is used — no external dependencies.

use crate::batch::{tasm_batch_with_workspace, BatchQuery, BatchWorkspace};
use crate::engine::{CandidateSink, ScanEngine, ScanStats};
use crate::lane::{build_lanes, fan_out, reserve_lanes, scan_tau_of, EvalLane};
use crate::ranking::{Match, TopKHeap};
use crate::tasm_dynamic::TasmOptions;
use crate::workspace::scratch_fits_cap;
use tasm_ted::{CascadeScratch, CostModel, TedStats, TedWorkspace};
use tasm_tree::{NodeId, PostorderEntry, PostorderQueue, Tree, TreeQueue};

/// A postorder queue replaying selected `(lml, root)` spans of an
/// in-memory document — each span a complete subtree, so every prefix of
/// the stream is a valid forest (what the ring buffer requires).
pub(crate) struct SpanQueue<'a> {
    doc: &'a Tree,
    spans: &'a [(u32, u32)],
    /// Index of the span currently being replayed.
    span_idx: usize,
    /// Next document postorder number within the current span (0 = start
    /// of the span not yet entered).
    pos: u32,
}

impl<'a> SpanQueue<'a> {
    pub(crate) fn new(doc: &'a Tree, spans: &'a [(u32, u32)]) -> Self {
        SpanQueue {
            doc,
            spans,
            span_idx: 0,
            pos: 0,
        }
    }
}

impl PostorderQueue for SpanQueue<'_> {
    fn dequeue(&mut self) -> Option<PostorderEntry> {
        loop {
            let &(lo, hi) = self.spans.get(self.span_idx)?;
            if self.pos == 0 {
                self.pos = lo;
            }
            if self.pos > hi {
                self.span_idx += 1;
                self.pos = 0;
                continue;
            }
            let id = NodeId::new(self.pos);
            self.pos += 1;
            // Subtree sizes are invariant under the renumbering of a span
            // to local postorder, so the arena values stream unchanged.
            return Some(PostorderEntry {
                label: self.doc.label(id),
                size: self.doc.size(id),
            });
        }
    }

    fn len_hint(&self) -> Option<usize> {
        Some(
            self.spans
                .iter()
                .map(|&(lo, hi)| (hi - lo + 1) as usize)
                .sum(),
        )
    }
}

/// Computes the `(lml, root)` document-postorder spans of `cand(T, τ)`
/// in document order: the maximal subtrees of size `<= tau` (every
/// candidate's parent, if any, is larger than τ). One O(n) pass.
pub(crate) fn candidate_spans(doc: &Tree, tau: u32) -> Vec<(u32, u32)> {
    let parents = doc.parents();
    doc.nodes()
        .filter(|&id| doc.size(id) <= tau && parents[id.index()].is_none_or(|p| doc.size(p) > tau))
        .map(|id| (doc.lml(id).post(), id.post()))
        .collect()
}

/// Splits `spans` into at most `shards` contiguous groups of roughly
/// equal **node** weight (candidate counts can be wildly uneven in
/// size); every group is non-empty.
pub(crate) fn shard_spans(spans: &[(u32, u32)], shards: usize) -> Vec<&[(u32, u32)]> {
    let span_weight = |&(lo, hi): &(u32, u32)| u64::from(hi - lo + 1);
    if spans.is_empty() {
        return Vec::new();
    }
    let shards = shards.clamp(1, spans.len());
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut remaining_weight: u64 = spans.iter().map(span_weight).sum();
    for s in 0..shards {
        if s + 1 == shards {
            out.push(&spans[start..]);
            break;
        }
        // Fill this shard up to its fair share of the remaining weight,
        // but leave at least one span for each remaining shard. Since
        // `shards <= spans.len()`, the cap always leaves this shard at
        // least one span as well.
        let target = remaining_weight / (shards - s) as u64;
        let cap = spans.len() - (shards - s - 1);
        let mut weight = 0u64;
        let mut end = start;
        while end < cap && (end == start || weight + span_weight(&spans[end]) <= target) {
            weight += span_weight(&spans[end]);
            end += 1;
        }
        out.push(&spans[start..end]);
        remaining_weight -= weight;
        start = end;
    }
    out
}

/// Shard-side sink: maps each emitted candidate back to its document
/// span (the scan re-derives candidates 1:1 with the shard's spans, in
/// order) and fans it out to every query lane of the shard.
pub(crate) struct ShardSink<'a> {
    pub(crate) lanes: Vec<EvalLane<'a>>,
    pub(crate) teds: Vec<TedWorkspace>,
    pub(crate) lb: CascadeScratch,
    pub(crate) opts: TasmOptions,
    pub(crate) spans: &'a [(u32, u32)],
    pub(crate) next: usize,
    pub(crate) stats: Option<TedStats>,
}

impl CandidateSink for ShardSink<'_> {
    fn consume(&mut self, cand: &Tree, _local_root: NodeId, _scan: &mut ScanStats) {
        let (lml, root) = self.spans[self.next];
        self.next += 1;
        debug_assert_eq!(
            cand.len() as u32,
            root - lml + 1,
            "shard scan must re-derive exactly the sharded candidate"
        );
        fan_out(
            &mut self.lanes,
            &mut self.teds,
            &mut self.lb,
            cand,
            lml - 1,
            self.opts,
            self.stats.as_mut(),
        );
    }
}

/// Resolves a `threads` argument: `0` means "one per available core".
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// The result one shard worker hands back: per-lane heaps and funnels
/// plus the shard's scan-layer counters and (optional) distance stats.
pub(crate) struct ShardResult {
    pub(crate) heaps: Vec<TopKHeap>,
    pub(crate) lane_funnels: Vec<ScanStats>,
    pub(crate) scan: ScanStats,
    pub(crate) ted_stats: Option<TedStats>,
}

/// Merges per-shard results into one ranking per lane plus the
/// aggregated statistics, preserving lane (query) order. `scan-layer`
/// counters sum across shards (each scanned disjoint candidates);
/// per-lane funnels sum; the aggregate adds all lane funnels on top.
pub(crate) fn merge_shard_results(
    n_lanes: usize,
    results: Vec<ShardResult>,
    mut stats: Option<&mut TedStats>,
) -> (Vec<Vec<Match>>, ScanStats, Vec<ScanStats>) {
    let mut merged: Vec<Option<TopKHeap>> = (0..n_lanes).map(|_| None).collect();
    let mut lane_stats = vec![ScanStats::default(); n_lanes];
    let mut scan = ScanStats::default();
    for shard in results {
        scan.merge(&shard.scan);
        if let (Some(out), Some(ts)) = (stats.as_deref_mut(), shard.ted_stats.as_ref()) {
            out.merge(ts);
        }
        for (i, (heap, funnel)) in shard.heaps.into_iter().zip(shard.lane_funnels).enumerate() {
            lane_stats[i].merge(&funnel);
            merged[i] = Some(match merged[i].take() {
                None => heap,
                Some(mut acc) => {
                    acc.merge(heap);
                    acc
                }
            });
        }
    }
    let mut aggregate = scan;
    for ls in &mut lane_stats {
        ls.adopt_scan_layer(&scan);
        aggregate.merge_funnel(ls);
    }
    let rankings = merged
        .into_iter()
        .map(|h| h.expect("every lane ran on every shard").into_sorted())
        .collect();
    (rankings, aggregate, lane_stats)
}

/// Computes the top-`k` ranking of `query` against the in-memory `doc`
/// with the candidate stream sharded across `threads` worker threads.
///
/// Returns **exactly** the ranking of the sequential
/// [`tasm_postorder`](crate::tasm_postorder) for any `threads >= 1` (`0` means "use
/// [`std::thread::available_parallelism`]"). Each worker owns a full
/// [`TasmWorkspace`] and a [`ScanEngine`] over its shard of the
/// candidate spans; the per-shard heaps are combined with
/// [`TopKHeap::merge`].
///
/// Unlike the streaming entry point this needs the materialized
/// document (`O(n)` memory) — sharding requires random access to the
/// candidate spans. `c_t` is the maximum document node cost under
/// `model`, as for [`tasm_postorder`](crate::tasm_postorder).
///
/// # Examples
///
/// ```
/// use tasm_tree::{bracket, LabelDict};
/// use tasm_ted::UnitCost;
/// use tasm_core::{tasm_parallel, TasmOptions};
///
/// let mut dict = LabelDict::new();
/// let g = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let h = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let top2 = tasm_parallel(&g, &h, 2, &UnitCost, 1, TasmOptions::default(), 2);
/// assert_eq!(top2[0].root.post(), 6);
/// assert_eq!(top2[1].root.post(), 3);
/// ```
pub fn tasm_parallel(
    query: &Tree,
    doc: &Tree,
    k: usize,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
) -> Vec<Match> {
    tasm_parallel_with_stats(query, doc, k, model, c_t, opts, threads, None).0
}

/// As [`tasm_parallel`], but also returning the merged per-shard
/// [`ScanStats`] (scan counters summed, pruning funnel aggregated) and,
/// if `stats` is given, merging every worker's [`TedStats`] into it.
#[allow(clippy::too_many_arguments)]
pub fn tasm_parallel_with_stats(
    query: &Tree,
    doc: &Tree,
    k: usize,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    stats: Option<&mut TedStats>,
) -> (Vec<Match>, ScanStats) {
    let queries = [BatchQuery { query, k }];
    let (mut rankings, scan, _) =
        tasm_batch_parallel_with_stats(&queries, doc, model, c_t, opts, threads, stats);
    (rankings.pop().expect("one lane"), scan)
}

/// Batch×parallel composition over a materialized document: answers
/// every query of `queries` with the candidate spans sharded across
/// `threads` worker threads, each shard fanning its candidates out to
/// one evaluation lane per query.
///
/// Every ranking is **exactly** what the sequential
/// [`tasm_postorder`](crate::tasm_postorder) returns for that query
/// alone, for any `threads >= 1` (`0` = one per available core): the
/// scan work is paid once per shard instead of once per query, and the
/// per-lane heaps merge deterministically. `c_t` is the maximum
/// document node cost under `model`, as for the sequential entry
/// points.
///
/// For a document that exists only as a postorder *stream*, use
/// [`tasm_batch_parallel_stream`](crate::tasm_batch_parallel_stream).
///
/// # Examples
///
/// ```
/// use tasm_tree::{bracket, LabelDict};
/// use tasm_ted::UnitCost;
/// use tasm_core::{tasm_batch_parallel, BatchQuery, TasmOptions};
///
/// let mut dict = LabelDict::new();
/// let q1 = bracket::parse("{a{b}{c}}", &mut dict).unwrap();
/// let q2 = bracket::parse("{a{b}}", &mut dict).unwrap();
/// let doc = bracket::parse("{x{a{b}{d}}{a{b}{c}}}", &mut dict).unwrap();
/// let queries = [
///     BatchQuery { query: &q1, k: 1 },
///     BatchQuery { query: &q2, k: 1 },
/// ];
/// let rankings =
///     tasm_batch_parallel(&queries, &doc, &UnitCost, 1, TasmOptions::default(), 2, None);
/// assert_eq!(rankings.len(), 2);
/// assert_eq!(rankings[0][0].root.post(), 6); // exact match for q1
/// ```
pub fn tasm_batch_parallel(
    queries: &[BatchQuery<'_>],
    doc: &Tree,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    stats: Option<&mut TedStats>,
) -> Vec<Vec<Match>> {
    tasm_batch_parallel_with_stats(queries, doc, model, c_t, opts, threads, stats).0
}

/// As [`tasm_batch_parallel`], but also returning the aggregated
/// [`ScanStats`] (scan-layer counters summed over the shards, funnel
/// over all lanes) and the per-lane statistics in query order.
#[allow(clippy::too_many_arguments)]
pub fn tasm_batch_parallel_with_stats(
    queries: &[BatchQuery<'_>],
    doc: &Tree,
    model: &(dyn CostModel + Sync),
    c_t: u64,
    opts: TasmOptions,
    threads: usize,
    stats: Option<&mut TedStats>,
) -> (Vec<Vec<Match>>, ScanStats, Vec<ScanStats>) {
    if queries.is_empty() {
        return (Vec::new(), ScanStats::default(), Vec::new());
    }
    let threads = resolve_threads(threads);
    // The scan must cover the widest lane threshold; the workers build
    // their own lanes, so only the thresholds are computed here.
    let scan_tau = scan_tau_of(queries, model, c_t);

    let spans = candidate_spans(doc, scan_tau);
    let shards = shard_spans(&spans, threads);
    if shards.len() <= 1 {
        // One shard (or no candidates at all): the shared-scan batch
        // path is the same work without the thread.
        let mut queue = TreeQueue::new(doc);
        let mut ws = BatchWorkspace::new();
        let rankings =
            tasm_batch_with_workspace(queries, &mut queue, model, c_t, opts, &mut ws, stats);
        return (
            rankings,
            ws.last_scan_stats(),
            ws.last_lane_stats().to_vec(),
        );
    }

    let want_ted_stats = stats.is_some();
    let results: Vec<ShardResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                scope.spawn(move || {
                    let (lanes, _) = build_lanes(queries, model, c_t, opts.kernel);
                    let mut teds: Vec<TedWorkspace> =
                        (0..lanes.len()).map(|_| TedWorkspace::new()).collect();
                    let mut lb = CascadeScratch::new();
                    reserve_lanes(&lanes, &mut teds, &mut lb, scan_tau);
                    let mut engine = ScanEngine::new(scan_tau);
                    if scratch_fits_cap(scan_tau as usize) {
                        engine.reserve();
                    }
                    let mut sink = ShardSink {
                        lanes,
                        teds,
                        lb,
                        opts,
                        spans: shard,
                        next: 0,
                        stats: want_ted_stats.then(TedStats::new),
                    };
                    let mut queue = SpanQueue::new(doc, shard);
                    let scan = engine.scan(&mut queue, &mut sink);
                    debug_assert_eq!(scan.candidates, shard.len());
                    ShardResult {
                        lane_funnels: sink.lanes.iter().map(|l| l.stats).collect(),
                        heaps: sink.lanes.into_iter().map(|l| l.heap).collect(),
                        scan,
                        ted_stats: sink.stats,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    merge_shard_results(queries.len(), results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasm_postorder::tasm_postorder;
    use tasm_ted::UnitCost;
    use tasm_tree::{bracket, LabelDict};

    fn wide_doc(dict: &mut LabelDict, records: usize) -> Tree {
        let mut s = String::from("{dblp");
        for i in 0..records {
            match i % 3 {
                0 => s.push_str("{article{a}{t}}"),
                1 => s.push_str("{book{t}}"),
                _ => s.push_str("{article{a}{t}{y}}"),
            }
        }
        s.push('}');
        bracket::parse(&s, dict).unwrap()
    }

    #[test]
    fn candidate_spans_match_reference() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 40);
        for tau in 1..=12u32 {
            let spans = candidate_spans(&doc, tau);
            let want = crate::ring_buffer::candidate_set_reference(&doc, tau);
            assert_eq!(spans.len(), want.len(), "τ = {tau}");
            for (s, w) in spans.iter().zip(&want) {
                assert_eq!(s.1, w.root.post());
                assert_eq!(s.1 - s.0 + 1, w.tree.len() as u32);
            }
        }
    }

    #[test]
    fn shard_spans_cover_everything_contiguously() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 50);
        let spans = candidate_spans(&doc, 5);
        for shards in 1..=8 {
            let groups = shard_spans(&spans, shards);
            assert!(!groups.is_empty() && groups.len() <= shards);
            assert!(groups.iter().all(|g| !g.is_empty()));
            let flat: Vec<_> = groups.iter().flat_map(|g| g.iter().copied()).collect();
            assert_eq!(flat, spans, "shards = {shards}");
        }
    }

    #[test]
    fn shard_spans_handles_empty_input() {
        assert_eq!(shard_spans(&[], 4).len(), 0);
    }

    #[test]
    fn parallel_equals_sequential_on_wide_doc() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 60);
        let query = bracket::parse("{article{a}{t}}", &mut dict).unwrap();
        let opts = TasmOptions {
            keep_trees: true,
            ..Default::default()
        };
        for k in [1usize, 3, 10] {
            let mut q = TreeQueue::new(&doc);
            let want = tasm_postorder(&query, &mut q, k, &UnitCost, 1, opts, None);
            for threads in [1usize, 2, 3, 4, 7] {
                let got = tasm_parallel(&query, &doc, k, &UnitCost, 1, opts, threads);
                assert_eq!(got, want, "k = {k}, threads = {threads}");
            }
        }
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let mut dict = LabelDict::new();
        let doc = wide_doc(&mut dict, 20);
        let query = bracket::parse("{book{t}}", &mut dict).unwrap();
        let got = tasm_parallel(&query, &doc, 2, &UnitCost, 1, TasmOptions::default(), 0);
        let mut q = TreeQueue::new(&doc);
        let want = tasm_postorder(
            &query,
            &mut q,
            2,
            &UnitCost,
            1,
            TasmOptions::default(),
            None,
        );
        assert_eq!(got, want);
    }

    #[test]
    fn single_node_document_works() {
        let mut dict = LabelDict::new();
        let doc = bracket::parse("{a}", &mut dict).unwrap();
        let query = bracket::parse("{a}", &mut dict).unwrap();
        let got = tasm_parallel(&query, &doc, 1, &UnitCost, 1, TasmOptions::default(), 4);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].distance, tasm_ted::Cost::ZERO);
    }
}
