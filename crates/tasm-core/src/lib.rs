//! TASM: Top-k Approximate Subtree Matching (Augsten, Böhlen, Barbosa,
//! Palpanas — ICDE 2010).
//!
//! Given a small query tree `Q` and a large document tree `T`, find the `k`
//! subtrees of `T` closest to `Q` under the tree edit distance (Def. 1).
//! This crate implements the paper's contribution:
//!
//! * [`threshold`] — the query-only upper bound
//!   `τ = |Q|(c_Q + 1) + k·c_T` on answer subtree sizes (Theorem 3);
//! * [`PrefixRingBuffer`] / [`prb_pruning`] — candidate-set computation in
//!   one postorder scan with `O(τ)` memory (Sec. V, Algorithms 1–2);
//! * [`tasm_postorder`] — the single-pass, document-size-independent-memory
//!   TASM algorithm (Algorithm 3);
//! * [`tasm_dynamic`] — the state-of-the-art baseline (Sec. IV-F) and
//!   [`tasm_naive`] — the ground-truth oracle;
//! * [`simple_pruning`] — the O(n)-buffer pruning baseline of Sec. V-B;
//! * [`ScanEngine`] / [`CandidateSink`] — the streaming scan layer the
//!   algorithms above are built on, reusable for custom evaluations;
//! * [`tasm_batch`] — N queries answered in **one** shared document scan;
//! * [`tasm_parallel`] — the candidate stream sharded across worker
//!   threads, merged with [`TopKHeap::merge`];
//! * [`tasm_batch_parallel`] — the two axes composed: N query lanes
//!   inside each of T span shards of a materialized document;
//! * [`tasm_parallel_stream`] / [`tasm_batch_parallel_stream`] — the
//!   sharded scans over a pure postorder **stream**: candidates travel
//!   to the workers as pooled postorder segments, so the document is
//!   never materialized and memory stays `O(threads · τ + Σ m_i²)`;
//! * [`tasm_indexed`] / [`tasm_indexed_batch`] — scan-free candidate
//!   generation from a persistent `.pqi` label index
//!   ([`IndexedDocument`](tasm_index::IndexedDocument)): candidate
//!   regions come from the subtree-size column and the label postings
//!   bound each region before it is ever materialized;
//! * [`tasm_corpus`] / [`tasm_corpus_batch`] — cross-document top-k
//!   over a crash-safe corpus store ([`Corpus`](tasm_index::Corpus)):
//!   every healthy shard answers via the index path and the per-shard
//!   rankings merge on a deterministic corpus rank key, with
//!   quarantined shards surfaced as an explicit `healthy/total`
//!   degraded marker ([`CorpusStatus`]).
//!
//! Between the scan and every evaluation sits the admissible
//! lower-bound **pruning cascade**
//! ([`LowerBoundCascade`](tasm_ted::LowerBoundCascade)): once the top-k
//! heap is full, each in-bound subtree is first tested against the
//! current cutoff `max(R)` with a label-histogram deficit and a banded
//! substring edit distance; refuted subtrees never reach the `O(m²·n²)`
//! DP, and surviving ones are evaluated zero-copy as
//! [`TreeView`](tasm_tree::TreeView) slices of the candidate arena.
//! [`ScanStats`] reports the per-tier funnel.
//!
//! # Quick start
//!
//! ```
//! use tasm_tree::{bracket, LabelDict, TreeQueue};
//! use tasm_ted::UnitCost;
//! use tasm_core::{tasm_postorder, TasmOptions};
//!
//! let mut dict = LabelDict::new();
//! let query = bracket::parse("{article{auth}{title}}", &mut dict).unwrap();
//! let doc = bracket::parse(
//!     "{dblp{article{auth{John}}{title{X1}}}{book{title{X2}}}}",
//!     &mut dict,
//! ).unwrap();
//!
//! let mut stream = TreeQueue::new(&doc); // any postorder queue works
//! let top1 = tasm_postorder(&query, &mut stream, 1, &UnitCost, 1,
//!                           TasmOptions::default(), None);
//! assert_eq!(top1[0].root.post(), 5); // the article subtree
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod corpus;
mod engine;
mod indexed;
mod lane;
mod naive;
mod parallel;
mod ranking;
mod ring_buffer;
mod server;
mod simple_pruning;
mod stream_shard;
mod tasm_dynamic;
mod tasm_postorder;
mod threshold;
mod workspace;

pub use batch::{
    tasm_batch, tasm_batch_deadline_with_workspace, tasm_batch_with_workspace, BatchQuery,
    BatchWorkspace,
};
pub use corpus::{
    tasm_corpus, tasm_corpus_batch, tasm_corpus_batch_deadline_with_stats,
    tasm_corpus_batch_with_stats, CorpusBatchOutput, CorpusMatch, CorpusShardStats, CorpusStatus,
};
pub use engine::{CandidateSink, ScanEngine, ScanStats};
pub use indexed::{
    tasm_indexed, tasm_indexed_batch, tasm_indexed_batch_deadline_with_stats,
    tasm_indexed_batch_with_stats, tasm_indexed_with_stats, IndexedBatchOutput,
};
pub use naive::tasm_naive;
pub use parallel::{
    tasm_batch_parallel, tasm_batch_parallel_with_stats, tasm_parallel, tasm_parallel_with_stats,
};
pub use ranking::{Match, TopKHeap};
pub use ring_buffer::{
    candidate_set_reference, prb_pruning, prb_pruning_stats, Candidate, PrefixRingBuffer,
    PruningStats,
};
pub use server::deadline::{Deadline, DeadlineExceeded};
pub use server::{Doc, DocStore, QueryParser, Server, ServerConfig};
pub use simple_pruning::simple_pruning;
pub use stream_shard::{
    tasm_batch_parallel_stream, tasm_batch_parallel_stream_deadline_with_workspace,
    tasm_batch_parallel_stream_with_stats, tasm_batch_parallel_stream_with_workspace,
    tasm_parallel_stream, tasm_parallel_stream_with_stats, BatchStreamOutput, StreamIntegrityError,
    StreamScanError,
};
pub use tasm_dynamic::{tasm_dynamic, tasm_dynamic_with_workspace, TasmOptions};
pub use tasm_postorder::{process_candidate, tasm_postorder, tasm_postorder_with_workspace};
pub use tasm_ted::TedKernel;
pub use threshold::{refined_threshold, threshold, threshold_for_query};
pub use workspace::{TasmWorkspace, RESERVE_CAP_BYTES};
