//! Per-query evaluation lanes: the unit shared by every multi-query
//! scan composition.
//!
//! A *lane* is everything one query needs to evaluate candidates: its
//! [`QueryContext`], its admissible [`LowerBoundCascade`], its own
//! Theorem 3 bound τ_i, its [`TopKHeap`] and its pruning-funnel
//! counters. The scan axes compose by instantiating lanes in different
//! places:
//!
//! * [`tasm_batch`](crate::tasm_batch) — N lanes behind **one** shared
//!   scan;
//! * [`tasm_batch_parallel`](crate::tasm_batch_parallel) — N lanes
//!   inside **each** span shard (batch×parallel, materialized);
//! * [`tasm_batch_parallel_stream`](crate::tasm_batch_parallel_stream)
//!   — N lanes inside each streaming shard worker (batch×parallel over
//!   a postorder stream, no materialized tree).
//!
//! Per-lane heaps of the sharded paths merge with
//! [`TopKHeap::merge`]; the rank key is a total order, so any
//! composition returns exactly the sequential per-query rankings
//! (pinned by `tests/differential.rs`).

use crate::batch::BatchQuery;
use crate::engine::ScanStats;
use crate::ranking::TopKHeap;
use crate::tasm_dynamic::TasmOptions;
use crate::tasm_postorder::process_candidate_parts;
use crate::threshold::threshold;
use crate::workspace::{matrices_fit_cap, scratch_fits_cap};
use tasm_ted::{
    CascadeScratch, CostModel, LowerBoundCascade, QueryContext, TedKernel, TedStats, TedWorkspace,
};
use tasm_tree::Tree;

/// One per-query evaluation lane of a (possibly sharded) scan.
pub(crate) struct EvalLane<'a> {
    pub(crate) ctx: QueryContext<'a>,
    /// This lane's admissible lower-bound cascade (its own cutoff).
    pub(crate) cascade: LowerBoundCascade<'a>,
    /// This query's own Theorem 3 bound τ_i (pruning is per lane).
    pub(crate) tau: u64,
    pub(crate) heap: TopKHeap,
    /// Funnel counters of this lane only; the scan-layer counters
    /// belong to the pass and are adopted afterwards.
    pub(crate) stats: ScanStats,
}

impl<'a> EvalLane<'a> {
    /// Builds the lane for one query (`k` clamped to `>= 1`); `kernel`
    /// is resolved to a decomposition path here, once per query.
    pub(crate) fn new(
        query: &'a Tree,
        k: usize,
        model: &'a dyn CostModel,
        c_t: u64,
        kernel: TedKernel,
    ) -> Self {
        let k = k.max(1);
        let ctx = QueryContext::with_kernel(query, model, kernel);
        let cascade = LowerBoundCascade::from_context(&ctx);
        let tau = threshold(query.len() as u64, ctx.max_cost(), c_t, k as u64);
        EvalLane {
            ctx,
            cascade,
            tau,
            heap: TopKHeap::new(k),
            stats: ScanStats::default(),
        }
    }

    /// This lane's threshold clamped to the scan's `u32` domain.
    pub(crate) fn tau32(&self) -> u32 {
        u32::try_from(self.tau).unwrap_or(u32::MAX)
    }
}

/// The widest lane threshold of a batch — `τ_scan = max_i τ_i`, which
/// the shared scan must cover — computed *without* building the lanes
/// (no contexts, cascades or heaps; used by the sharded drivers whose
/// workers rebuild their own lanes anyway).
pub(crate) fn scan_tau_of(queries: &[BatchQuery<'_>], model: &dyn CostModel, c_t: u64) -> u32 {
    queries
        .iter()
        .map(|bq| {
            let tau =
                crate::threshold::threshold_for_query(bq.query, model, c_t, bq.k.max(1) as u64);
            u32::try_from(tau).unwrap_or(u32::MAX)
        })
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Builds one lane per batch query and returns them with the widest
/// lane threshold — the shared scan must cover `τ_scan = max_i τ_i`.
pub(crate) fn build_lanes<'a>(
    queries: &[BatchQuery<'a>],
    model: &'a dyn CostModel,
    c_t: u64,
    kernel: TedKernel,
) -> (Vec<EvalLane<'a>>, u32) {
    let mut scan_tau = 1u32;
    let lanes = queries
        .iter()
        .map(|bq| {
            let lane = EvalLane::new(bq.query, bq.k, model, c_t, kernel);
            scan_tau = scan_tau.max(lane.tau32());
            lane
        })
        .collect();
    (lanes, scan_tau)
}

/// Pre-reserves every lane's DP workspace plus the shared cascade
/// scratch for candidates of up to `scan_tau` nodes, under the same
/// byte cap as [`TasmWorkspace::reserve`](crate::TasmWorkspace::reserve)
/// (a pathological τ falls back to on-demand growth).
pub(crate) fn reserve_lanes(
    lanes: &[EvalLane<'_>],
    teds: &mut [TedWorkspace],
    lb: &mut CascadeScratch,
    scan_tau: u32,
) {
    let n = scan_tau as usize;
    let mut max_m = 0usize;
    for (lane, ted) in lanes.iter().zip(teds.iter_mut()) {
        let m = lane.ctx.len();
        max_m = max_m.max(m);
        if matrices_fit_cap(m, n) {
            ted.reserve(m, n);
            if lane.ctx.uses_strategy_kernel() {
                ted.reserve_mirror(n);
            }
        }
    }
    if scratch_fits_cap(n) {
        lb.reserve(max_m, n);
    }
}

/// Offers one candidate to every lane: per-lane Lemma 4 cutoff, cascade
/// decision and heap, with the funnel counters landing in each lane's
/// own [`ScanStats`]. `doc_post_offset` is the document postorder
/// number of the node preceding the candidate span.
pub(crate) fn fan_out(
    lanes: &mut [EvalLane<'_>],
    teds: &mut [TedWorkspace],
    lb: &mut CascadeScratch,
    cand: &Tree,
    doc_post_offset: u32,
    opts: TasmOptions,
    mut ted_stats: Option<&mut TedStats>,
) {
    for (lane, ted) in lanes.iter_mut().zip(teds.iter_mut()) {
        process_candidate_parts(
            &mut lane.heap,
            &lane.ctx,
            &lane.cascade,
            cand,
            doc_post_offset,
            lane.tau,
            opts,
            lb,
            ted,
            &mut lane.stats,
            ted_stats.as_deref_mut(),
        );
    }
}
