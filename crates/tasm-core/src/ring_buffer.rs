//! The prefix ring buffer (Sec. V of the paper): candidate-set computation
//! in a single postorder scan with `O(τ)` memory.
//!
//! Given a size threshold τ, the **candidate set** `cand(T, τ)` (Def. 9)
//! contains every subtree of size `<= τ` whose proper ancestors all root
//! subtrees larger than τ. The prefix ring buffer emits exactly this set
//! while consuming the document as a postorder queue, using `b = τ + 1`
//! slots (Theorem 2): no candidate needs a look-ahead of more than
//! `τ - |T_i|` nodes (Lemma 1).
//!
//! # Data layout
//!
//! Two synchronized rings of `b = τ + 1` slots, as in the paper's
//! Algorithm 1/Fig. 8: `lbl` holds node labels and `pfx` the *prefix array*
//! (Def. 10). The node with postorder number `id` lives in slot
//! `(id − 1) % b`, and its `pfx` entry is
//!
//! * for a non-leaf: the postorder number of its leftmost leaf
//!   (`lml = id − size + 1`), i.e. a pointer **left**;
//! * for a leaf: the postorder number of the root of the largest *valid*
//!   subtree (size `<= τ`) whose leftmost leaf it is, i.e. a pointer
//!   **right** (at least its own id).
//!
//! A slot holds a leaf iff `pfx[slot] >= id`. The subtree size of a
//! non-leaf is recovered as `id − pfx[slot] + 1`, so no separate size ring
//! is needed.
//!
//! Note: the paper's Algorithm 2 pseudocode stores `c − size` while its
//! Figure 8 stores `c − size + 1` (the true `lml`); we follow Figure 8 and
//! keep one consistent slot convention.

use tasm_ted::TedStats;
use tasm_tree::{LabelId, NodeId, PostorderQueue, Tree};

/// A candidate subtree emitted by the pruning scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The subtree, renumbered to local postorder `1..=tree.len()`.
    pub tree: Tree,
    /// Postorder number of the subtree's root **in the document**. The
    /// local node `j` corresponds to document node
    /// `root.post() − tree.len() as u32 + j.post()`.
    pub root: NodeId,
}

impl Candidate {
    /// Maps a local postorder number to the document postorder number.
    #[inline]
    pub fn doc_post(&self, local: NodeId) -> NodeId {
        NodeId::new(self.root.post() - self.tree.len() as u32 + local.post())
    }
}

/// Streaming candidate-set computation over a postorder queue
/// (Algorithms 1–2, `prb-pruning` / `prb-next`).
///
/// Iterate with [`PrefixRingBuffer::next_candidate`]; candidates are
/// yielded in ascending order of their root's postorder number, which for
/// disjoint subtrees is also ascending document order.
#[derive(Debug)]
pub struct PrefixRingBuffer<'q, Q: PostorderQueue + ?Sized> {
    queue: &'q mut Q,
    /// Ring capacity `b = τ + 1`.
    b: usize,
    tau: u32,
    lbl: Vec<LabelId>,
    pfx: Vec<u32>,
    /// Slot of the leftmost buffered node.
    s: usize,
    /// Slot one past the rightmost buffered node.
    e: usize,
    /// Number of nodes appended so far (= postorder number of the newest).
    c: u32,
    /// Peak number of buffered nodes (instrumentation; Theorem 2 says <= τ).
    peak: usize,
}

impl<'q, Q: PostorderQueue + ?Sized> PrefixRingBuffer<'q, Q> {
    /// Creates the buffer for threshold `tau` over `queue`.
    ///
    /// # Panics (debug)
    ///
    /// `tau` must be `>= 1`: `cand(T, 0)` is empty by Def. 9, so a zero
    /// threshold is always a caller bug (typically an unvalidated user
    /// argument — reject it at the boundary, as [`ScanEngine`] and the
    /// CLI do). The old behavior of silently clamping `0` to `1` turned
    /// that bug into a plausible-looking leaf ranking.
    ///
    /// [`ScanEngine`]: crate::ScanEngine
    pub fn new(queue: &'q mut Q, tau: u32) -> Self {
        debug_assert!(tau >= 1, "PrefixRingBuffer requires tau >= 1, got {tau}");
        let tau = tau.max(1);
        let b = tau as usize + 1;
        PrefixRingBuffer {
            queue,
            b,
            tau,
            lbl: vec![LabelId(0); b],
            pfx: vec![0; b],
            s: 0,
            e: 0,
            c: 0,
            peak: 0,
        }
    }

    /// The threshold τ.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// Peak number of simultaneously buffered nodes so far.
    pub fn peak_buffered(&self) -> usize {
        self.peak
    }

    /// Number of nodes consumed from the queue so far.
    pub fn nodes_seen(&self) -> u32 {
        self.c
    }

    #[inline]
    fn slot(&self, id: u32) -> usize {
        ((id - 1) as usize) % self.b
    }

    #[inline]
    fn buffered(&self) -> usize {
        (self.e + self.b - self.s) % self.b
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.s == (self.e + 1) % self.b
    }

    /// Postorder number of the node in the leftmost slot.
    #[inline]
    fn leftmost_id(&self) -> u32 {
        self.c + 1 - self.buffered() as u32
    }

    /// Advances the scan to the next candidate subtree (the paper's
    /// `prb-next`), returning `None` when queue and buffer are exhausted.
    pub fn next_candidate(&mut self) -> Option<Candidate> {
        let (lo, root) = self.advance()?;
        let cand = self.materialize(lo, root);
        self.consume(root);
        Some(cand)
    }

    /// As [`PrefixRingBuffer::next_candidate`], but renumbering the
    /// candidate into the caller-owned `scratch` tree instead of
    /// allocating one, and returning the candidate root's postorder
    /// number **in the document** (`None` when exhausted).
    ///
    /// This is the borrowed-candidate fast path used by `tasm_postorder`:
    /// once `scratch`'s capacity covers the largest candidate (at most τ
    /// nodes), the scan emits candidates with zero heap allocation. The
    /// local-to-document numbering correspondence is as in
    /// [`Candidate::doc_post`].
    pub fn next_candidate_into(&mut self, scratch: &mut Tree) -> Option<NodeId> {
        let (lo, root) = self.advance()?;
        self.materialize_into(lo, root, scratch);
        self.consume(root);
        Some(NodeId::new(root))
    }

    /// Core of the scan: finds the next candidate span `lo..=root`
    /// (document postorder numbers) without removing it from the ring.
    fn advance(&mut self) -> Option<(u32, u32)> {
        loop {
            // Step 1: fill the ring from the queue.
            let mut queue_empty = false;
            while !self.is_full() {
                match self.queue.dequeue() {
                    Some(entry) => self.append(entry.label, entry.size),
                    None => {
                        queue_empty = true;
                        break;
                    }
                }
            }
            if self.s == self.e {
                // Buffer drained and (necessarily) queue empty.
                return None;
            }
            // Step 2: examine the leftmost node.
            if self.is_full() || queue_empty {
                let id = self.leftmost_id();
                if self.pfx[self.s] >= id {
                    // Leaf: it starts a candidate subtree; the prefix array
                    // points at the root of the largest valid subtree.
                    return Some((id, self.pfx[self.s]));
                }
                // Non-leaf at the leftmost position: by Lemma 2 it roots a
                // subtree larger than τ — skip it.
                self.s = (self.s + 1) % self.b;
            }
        }
    }

    /// Removes an emitted candidate from the ring: jump past its root.
    #[inline]
    fn consume(&mut self, root: u32) {
        self.s = self.slot(root + 1);
    }

    /// Appends one postorder entry (Step 1 of the pruning).
    fn append(&mut self, label: LabelId, size: u32) {
        self.c += 1;
        let id = self.c;
        debug_assert!(size >= 1 && size <= id, "postorder sizes are 1..=id");
        let lml = id - size + 1;
        self.lbl[self.e] = label;
        self.pfx[self.e] = lml;
        if size <= self.tau {
            // Register this node as the (currently largest) valid subtree
            // rooted above its leftmost leaf. For a leaf this writes its own
            // slot (lml = id).
            let lml_slot = self.slot(lml);
            self.pfx[lml_slot] = id;
        }
        self.e = (self.e + 1) % self.b;
        self.peak = self.peak.max(self.buffered());
    }

    /// Copies nodes `lo..=root` out of the ring as an owned tree.
    ///
    /// Subtree sizes are recovered from the prefix array: a slot holds a
    /// leaf iff its pointer is `>= id` (size 1), otherwise the pointer is
    /// the node's leftmost leaf.
    fn materialize(&self, lo: u32, root: u32) -> Candidate {
        let n = (root - lo + 1) as usize;
        let mut labels = Vec::with_capacity(n);
        let mut sizes = Vec::with_capacity(n);
        for id in lo..=root {
            let (label, size) = self.node_entry(id);
            labels.push(label);
            sizes.push(size);
        }
        // Renumber: local sizes are already local (subtree sizes are
        // invariant under the shift), validity is by construction.
        Candidate {
            tree: Tree::from_postorder_unchecked(labels, sizes),
            root: NodeId::new(root),
        }
    }

    /// As [`PrefixRingBuffer::materialize`], but renumbering into the
    /// caller's scratch tree (allocation-free once warm).
    fn materialize_into(&self, lo: u32, root: u32, scratch: &mut Tree) {
        scratch.set_postorder_unchecked((lo..=root).map(|id| self.node_entry(id)));
    }

    /// Recovers the `(label, local subtree size)` of buffered node `id`.
    #[inline]
    fn node_entry(&self, id: u32) -> (LabelId, u32) {
        let slot = self.slot(id);
        let p = self.pfx[slot];
        let size = if p >= id { 1 } else { id - p + 1 };
        debug_assert!(size <= self.tau, "candidate node exceeds τ");
        (self.lbl[slot], size)
    }
}

/// Cap on speculative accumulator reservations derived from τ, so a
/// saturated τ (u32::MAX = "no pruning") cannot demand a huge up-front
/// allocation. Geometric growth takes over beyond it.
pub(crate) const INITIAL_RESERVE_CAP: usize = 4096;

/// Convenience: runs the full pruning (Algorithm 1, `prb-pruning`) and
/// collects the candidate set.
pub fn prb_pruning<Q: PostorderQueue + ?Sized>(queue: &mut Q, tau: u32) -> Vec<Candidate> {
    let mut prb = PrefixRingBuffer::new(queue, tau);
    // The stream length is unknown, but the ring bound b = τ + 1 is a
    // sound first guess for the accumulator (capped; geometric growth
    // after).
    let mut out = Vec::with_capacity(prb.b.min(INITIAL_RESERVE_CAP));
    while let Some(c) = prb.next_candidate() {
        out.push(c);
    }
    out
}

/// Reference implementation of `cand(T, τ)` straight from Def. 9, for an
/// in-memory tree: all subtrees of size `<= τ` whose ancestors are all
/// larger than τ. O(n · height); test oracle for the ring buffer.
pub fn candidate_set_reference(tree: &Tree, tau: u32) -> Vec<Candidate> {
    let parents = tree.parents();
    // Exact-size accumulator: subtree sizes are strictly increasing
    // towards the root, so "all ancestors larger than τ" is equivalent to
    // "the parent is larger than τ" — one cheap counting pass. The
    // emission loop below still walks all ancestors, staying literal to
    // Def. 9 (this is the test oracle).
    let n_cands = tree
        .nodes()
        .filter(|&id| {
            tree.size(id) <= tau && parents[id.index()].is_none_or(|p| tree.size(p) > tau)
        })
        .count();
    let mut out = Vec::with_capacity(n_cands);
    for id in tree.nodes() {
        if tree.size(id) > tau {
            continue;
        }
        // Check all ancestors are larger than τ.
        let mut ok = true;
        let mut a = parents[id.index()];
        while let Some(anc) = a {
            if tree.size(anc) <= tau {
                ok = false;
                break;
            }
            a = parents[anc.index()];
        }
        if ok {
            out.push(Candidate {
                tree: tree.subtree(id),
                root: id,
            });
        }
    }
    debug_assert_eq!(
        out.len(),
        n_cands,
        "parent-size shortcut disagrees with Def. 9"
    );
    out
}

/// Statistics of a pruning run, for the ablation experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruningStats {
    /// Candidates emitted.
    pub candidates: usize,
    /// Total nodes across all candidates.
    pub candidate_nodes: u64,
    /// Peak buffered nodes.
    pub peak_buffered: usize,
    /// Nodes consumed from the queue.
    pub nodes_seen: u32,
}

/// Runs the pruning, collecting only statistics (used by experiments that
/// do not need the candidate trees). `stats_sink` receives one relevant
/// "document side" record per candidate if provided.
pub fn prb_pruning_stats<Q: PostorderQueue + ?Sized>(
    queue: &mut Q,
    tau: u32,
    mut stats_sink: Option<&mut TedStats>,
) -> PruningStats {
    let mut prb = PrefixRingBuffer::new(queue, tau);
    let mut st = PruningStats::default();
    while let Some(c) = prb.next_candidate() {
        st.candidates += 1;
        st.candidate_nodes += c.tree.len() as u64;
        if let Some(s) = stats_sink.as_deref_mut() {
            s.record_relevant(c.tree.len() as u32);
        }
    }
    st.peak_buffered = prb.peak_buffered();
    st.nodes_seen = prb.nodes_seen();
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_tree::{bracket, LabelDict, TreeQueue};

    /// The example document D of Fig. 4a.
    fn example_d() -> (Tree, LabelDict) {
        let mut dict = LabelDict::new();
        let t = bracket::parse(
            "{dblp{article{auth{John}}{title{X1}}}{proceedings{conf{VLDB}}\
             {article{auth{Peter}}{title{X3}}}{article{auth{Mike}}{title{X4}}}}\
             {book{title{X2}}}}",
            &mut dict,
        )
        .unwrap();
        assert_eq!(t.len(), 22);
        (t, dict)
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "tau >= 1")]
    fn zero_tau_is_rejected_not_silently_clamped() {
        // Before the fix, tau = 0 was clamped to 1 without a word and
        // the scan returned a plausible-looking leaf ranking.
        let (t, _) = example_d();
        let mut q = TreeQueue::new(&t);
        let _ = PrefixRingBuffer::new(&mut q, 0);
    }

    #[test]
    fn paper_example_3_candidate_set() {
        // cand(D, 6) = {D5, D7, D12, D17, D21} (Example 3 / Fig. 6).
        let (t, _) = example_d();
        let mut q = TreeQueue::new(&t);
        let cands = prb_pruning(&mut q, 6);
        let roots: Vec<u32> = cands.iter().map(|c| c.root.post()).collect();
        assert_eq!(roots, vec![5, 7, 12, 17, 21]);
        let sizes: Vec<usize> = cands.iter().map(|c| c.tree.len()).collect();
        assert_eq!(sizes, vec![5, 2, 5, 5, 3]);
    }

    #[test]
    fn candidates_match_subtree_content() {
        let (t, _) = example_d();
        let mut q = TreeQueue::new(&t);
        for cand in prb_pruning(&mut q, 6) {
            assert_eq!(cand.tree, t.subtree(cand.root), "candidate {}", cand.root);
        }
    }

    #[test]
    fn doc_post_mapping() {
        let (t, _) = example_d();
        let mut q = TreeQueue::new(&t);
        let cands = prb_pruning(&mut q, 6);
        // D12 spans document ids 8..=12; local node 1 is doc node 8.
        let d12 = &cands[2];
        assert_eq!(d12.root.post(), 12);
        assert_eq!(d12.doc_post(NodeId::new(1)).post(), 8);
        assert_eq!(d12.doc_post(NodeId::new(5)).post(), 12);
    }

    #[test]
    fn reference_matches_ring_buffer_on_example() {
        let (t, _) = example_d();
        for tau in 1..=23 {
            let mut q = TreeQueue::new(&t);
            let got: Vec<u32> = prb_pruning(&mut q, tau)
                .iter()
                .map(|c| c.root.post())
                .collect();
            let want: Vec<u32> = candidate_set_reference(&t, tau)
                .iter()
                .map(|c| c.root.post())
                .collect();
            assert_eq!(got, want, "τ = {tau}");
        }
    }

    #[test]
    fn whole_tree_is_single_candidate_when_tau_large() {
        let (t, _) = example_d();
        let mut q = TreeQueue::new(&t);
        let cands = prb_pruning(&mut q, 22);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].root.post(), 22);
        assert_eq!(cands[0].tree, t);
    }

    #[test]
    fn tau_one_yields_leaves_under_big_internals() {
        // τ = 1: candidates are leaves whose ancestors all have size > 1 —
        // i.e. every leaf (internal nodes always have size >= 2).
        let (t, _) = example_d();
        let mut q = TreeQueue::new(&t);
        let cands = prb_pruning(&mut q, 1);
        let n_leaves = t.nodes().filter(|&i| t.is_leaf(i)).count();
        assert_eq!(cands.len(), n_leaves);
        assert!(cands.iter().all(|c| c.tree.len() == 1));
    }

    #[test]
    fn single_node_document() {
        let mut d = LabelDict::new();
        let t = bracket::parse("{a}", &mut d).unwrap();
        let mut q = TreeQueue::new(&t);
        let cands = prb_pruning(&mut q, 5);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].tree.len(), 1);
    }

    #[test]
    fn peak_buffer_is_bounded_by_tau() {
        let (t, _) = example_d();
        for tau in 1..=10u32 {
            let mut q = TreeQueue::new(&t);
            let st = prb_pruning_stats(&mut q, tau, None);
            assert!(
                st.peak_buffered <= tau as usize,
                "peak {} > τ {}",
                st.peak_buffered,
                tau
            );
            assert_eq!(st.nodes_seen, 22);
        }
    }

    #[test]
    fn deep_path_document() {
        // Path of 10 nodes, τ = 3: only the bottom 3-node subtree (rooted
        // at the node of size 3) qualifies; ancestors sizes 4..10 are all
        // bigger than τ.
        let mut d = LabelDict::new();
        let t = bracket::parse("{a{a{a{a{a{a{a{a{a{a}}}}}}}}}}", &mut d).unwrap();
        let mut q = TreeQueue::new(&t);
        let cands = prb_pruning(&mut q, 3);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].root.post(), 3);
        assert_eq!(cands[0].tree.len(), 3);
    }

    #[test]
    fn wide_flat_document_streams_with_small_buffer() {
        // DBLP-shaped: root with 200 children of size 3 each; τ = 6. The
        // simple pruning would buffer all 600 nodes; the ring buffer must
        // stay <= τ.
        let mut dict = LabelDict::new();
        let mut s = String::from("{dblp");
        for i in 0..200 {
            s.push_str(&format!("{{article{{a{i}}}{{t{i}}}}}"));
        }
        s.push('}');
        let t = bracket::parse(&s, &mut dict).unwrap();
        assert_eq!(t.len(), 601);
        let mut q = TreeQueue::new(&t);
        let mut prb = PrefixRingBuffer::new(&mut q, 6);
        let mut count = 0;
        while let Some(c) = prb.next_candidate() {
            assert_eq!(c.tree.len(), 3);
            count += 1;
        }
        assert_eq!(count, 200);
        assert!(prb.peak_buffered() <= 6);
    }

    #[test]
    fn stats_sink_records_candidate_sizes() {
        let (t, _) = example_d();
        let mut q = TreeQueue::new(&t);
        let mut sink = TedStats::new();
        let st = prb_pruning_stats(&mut q, 6, Some(&mut sink));
        assert_eq!(st.candidates, 5);
        assert_eq!(st.candidate_nodes, 5 + 2 + 5 + 5 + 3);
        assert_eq!(sink.total_relevant(), 5);
        assert_eq!(sink.relevant_by_size[&5], 3);
    }
}
