//! Experiment harness and benchmarks for the TASM reproduction.
//!
//! * [`harness`] — one function per figure of the paper's Sec. VII
//!   (Figs. 9a–c, 10, 11a–c, 12) plus two ablations; driven by the
//!   `experiments` binary.
//! * [`alloc`] — a counting global allocator for the Fig. 10 memory
//!   experiment and the zero-allocation regression tests.
//! * [`report`] — the `BENCH_tasm.json` perf-trajectory summary.
//!
//! Criterion micro-benchmarks live in `benches/`.

// `alloc` wraps the system allocator, which requires `unsafe`; everything
// else in the workspace forbids it.
#![warn(missing_docs)]

pub mod alloc;
pub mod harness;
pub mod report;
