//! A counting global allocator for the memory experiment (Fig. 10).
//!
//! Wraps the system allocator and tracks live bytes and the high-water
//! mark. The experiment binary installs it with `#[global_allocator]`,
//! resets the peak before each algorithm run and reads the delta after —
//! the Rust analogue of the paper's "memory used by the Java virtual
//! machine" measurements.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// Counting wrapper around the system allocator.
pub struct CountingAlloc;

// SAFETY: delegates entirely to `System`; the counters are monotonic
// atomics with no aliasing concerns.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            if new_size >= layout.size() {
                let live = LIVE.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                PEAK.fetch_max(live, Ordering::Relaxed);
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// Bytes currently allocated.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Total number of allocation events (alloc + realloc calls) since
/// process start. Monotonic; diff two snapshots to count the allocations
/// a code region performed — the zero-allocation steady-state regression
/// test is built on this.
pub fn alloc_count() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

/// High-water mark since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live volume and returns that
/// baseline. The next [`peak_bytes`] minus the baseline is the extra
/// memory an algorithm needed.
pub fn reset_peak() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

/// Runs `f`, returning its result and the extra peak heap it required
/// beyond what was live at entry.
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(baseline))
}
