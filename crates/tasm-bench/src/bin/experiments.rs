//! Regenerates every table and figure of the paper's evaluation (Sec. VII).
//!
//! ```text
//! cargo run -p tasm-bench --release --bin experiments -- all --scale 16
//! cargo run -p tasm-bench --release --bin experiments -- fig9a fig10
//! ```
//!
//! Results are printed as tables and written to `results/*.csv`.
//! `--scale N` divides the paper's document sizes by N (default 16;
//! `--scale 1` reproduces the full published sizes given enough RAM/time).

use tasm_bench::alloc::{measure_peak, CountingAlloc};
use tasm_bench::harness::{self, Ctx};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const USAGE: &str = "\
usage: experiments [fig9a|fig9b|fig9c|fig10|fig11|fig12|ablation-tau|ablation-buffer|bench|scaling|index|corpus|funnel|all]...
                   [--scale N] [--quick] [--json] [--label S]

`bench` times the tasm_postorder hot path (candidates/s, ns/candidate,
peak heap, cascade prune rate); `scaling` times multi-query batching
(one shared scan vs N independent scans) and sharded parallel scans
(1/2/4 threads); `index` compares .pqi index-driven candidate
generation against the full scan (nodes examined, identical rankings);
`corpus` times multi-shard corpus queries (healthy and degraded)
against merged per-document runs; `funnel` prints the per-tier prune
funnel of the lower-bound cascade. With `--json`, bench, scaling,
index and corpus append snapshots (named by --label) to
BENCH_tasm.json in the current directory — the perf trajectory.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale: usize = 16;
    let mut json = false;
    let mut label = String::from("tasm-bench experiments");
    let mut which: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--scale" => {
                scale = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale needs a number");
                    std::process::exit(2);
                });
            }
            "--quick" => scale = 128,
            "--json" => json = true,
            "--label" => {
                label = iter.next().cloned().unwrap_or_else(|| {
                    eprintln!("--label needs a value");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => which.push(other.to_string()),
        }
    }
    // `--json` always implies the perf-trajectory workloads
    // (`experiments -- --json` is the canonical call; with an explicit
    // workload list they are appended rather than silently ignored).
    if json
        && !which
            .iter()
            .any(|w| w == "bench" || w == "scaling" || w == "index" || w == "corpus" || w == "all")
    {
        which.push("bench".to_string());
        which.push("scaling".to_string());
        which.push("index".to_string());
        which.push("corpus".to_string());
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = [
            "fig9a",
            "fig9b",
            "fig9c",
            "fig10",
            "fig11",
            "fig12",
            "ablation-tau",
            "ablation-buffer",
            "bench",
            "scaling",
            "index",
            "corpus",
            "funnel",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let ctx = Ctx::new(scale);
    println!(
        "TASM experiments — scale 1/{} of the paper's document sizes; CSVs in {}",
        ctx.scale,
        ctx.out_dir.display()
    );
    for w in &which {
        match w.as_str() {
            "fig9a" => harness::fig9a(&ctx),
            "fig9b" => harness::fig9b(&ctx),
            "fig9c" => harness::fig9c(&ctx),
            "fig10" => harness::fig10(&ctx, &|f: &mut dyn FnMut()| measure_peak(f).1),
            "fig11" => harness::fig11(&ctx),
            "fig12" => harness::fig12(&ctx),
            "ablation-tau" => harness::ablation_tau(&ctx),
            "ablation-buffer" => harness::ablation_buffer(&ctx),
            "funnel" => harness::funnel(&ctx),
            "bench" => {
                let out = json.then(|| std::path::PathBuf::from(tasm_bench::report::BENCH_JSON));
                harness::bench_summary(
                    &ctx,
                    &|f: &mut dyn FnMut()| measure_peak(f).1,
                    out.as_deref(),
                    &label,
                );
            }
            "scaling" => {
                let out = json.then(|| std::path::PathBuf::from(tasm_bench::report::BENCH_JSON));
                harness::scaling_summary(
                    &ctx,
                    &|f: &mut dyn FnMut()| measure_peak(f).1,
                    out.as_deref(),
                    &format!("{label} (scaling)"),
                );
            }
            "index" => {
                let out = json.then(|| std::path::PathBuf::from(tasm_bench::report::BENCH_JSON));
                harness::index_summary(
                    &ctx,
                    &|f: &mut dyn FnMut()| measure_peak(f).1,
                    out.as_deref(),
                    &format!("{label} (index)"),
                );
            }
            "corpus" => {
                let out = json.then(|| std::path::PathBuf::from(tasm_bench::report::BENCH_JSON));
                harness::corpus_summary(&ctx, out.as_deref(), &format!("{label} (corpus)"));
            }
            other => {
                eprintln!("unknown experiment '{other}'\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
}
