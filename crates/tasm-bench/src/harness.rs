//! Experiment harness: one function per figure of Sec. VII.
//!
//! Each experiment prints the paper-matching series to stdout and writes a
//! CSV under the output directory. Scale-down is controlled by
//! `Ctx::scale`: paper document sizes (in "paper megabytes") are divided
//! by it before being converted to node counts, so `--scale 1` runs the
//! full published sizes and the default `--scale 16` runs a
//! laptop-friendly version with identical curve shapes.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use tasm_core::{
    prb_pruning_stats, simple_pruning, tasm_batch_parallel, tasm_batch_parallel_stream,
    tasm_batch_with_workspace, tasm_dynamic, tasm_indexed_with_stats, tasm_parallel,
    tasm_parallel_stream, tasm_postorder, tasm_postorder_with_workspace, threshold, BatchQuery,
    BatchWorkspace, TasmOptions, TasmWorkspace,
};
use tasm_data::{
    dblp_tree, psd_tree, random_query, xmark_tree, DblpConfig, PsdConfig, XMarkConfig,
    DBLP_NODES_PER_MB, PSD_NODES_PER_MB, XMARK_NODES_PER_MB,
};
use tasm_index::IndexedDocument;
use tasm_ted::{TedStats, UnitCost};
use tasm_tree::{LabelDict, LabelId, Tree, TreeBuilder, TreeQueue};
use tasm_xml::{parse_tree, write_tree, XmlPostorderQueue};

/// Paper x-axis: XMark document sizes in MB (Fig. 9a).
pub const XMARK_MBS: [usize; 5] = [112, 224, 448, 896, 1792];
/// Paper query sizes (Figs. 9a/9b).
pub const QUERY_SIZES: [u32; 5] = [4, 8, 16, 32, 64];
/// Paper k sweep (Fig. 9c), log-scale.
pub const K_SWEEP: [usize; 5] = [1, 10, 100, 1_000, 10_000];

/// Experiment context: scaling, directories, memory budget.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Divide paper document sizes by this factor (1 = full scale).
    pub scale: usize,
    /// Directory for cached generated XML documents.
    pub data_dir: PathBuf,
    /// Directory for result CSVs.
    pub out_dir: PathBuf,
    /// Memory budget emulating the paper's 4 GB machine: TASM-dynamic runs
    /// whose predicted footprint exceeds it are reported as OOM, mirroring
    /// the missing data points in Figs. 9–10.
    pub mem_budget: u64,
}

impl Ctx {
    /// Standard context rooted at `results/`.
    pub fn new(scale: usize) -> Self {
        Ctx {
            scale: scale.max(1),
            data_dir: PathBuf::from("results/data"),
            out_dir: PathBuf::from("results"),
            mem_budget: 4 << 30,
        }
    }

    fn ensure_dirs(&self) {
        fs::create_dir_all(&self.data_dir).expect("create data dir");
        fs::create_dir_all(&self.out_dir).expect("create results dir");
    }

    /// Scaled node count for a paper-MB XMark document.
    pub fn xmark_nodes(&self, paper_mb: usize) -> usize {
        (paper_mb * XMARK_NODES_PER_MB / self.scale).max(2_000)
    }
}

/// A simple CSV writer.
pub struct Csv {
    out: BufWriter<File>,
}

impl Csv {
    /// Creates `<out_dir>/<name>.csv` with the given header.
    pub fn create(ctx: &Ctx, name: &str, header: &str) -> Self {
        ctx.ensure_dirs();
        let path = ctx.out_dir.join(format!("{name}.csv"));
        let mut out = BufWriter::new(File::create(&path).expect("create csv"));
        writeln!(out, "{header}").expect("write csv header");
        Csv { out }
    }

    /// Writes one row.
    pub fn row(&mut self, row: impl std::fmt::Display) {
        writeln!(self.out, "{row}").expect("write csv row");
    }
}

/// Generates (or reuses) the XMark-like document for a paper-MB size and
/// returns the in-memory tree plus the path of its XML serialization.
/// The same seed per size keeps documents identical across experiments.
pub fn xmark_doc(ctx: &Ctx, paper_mb: usize, dict: &mut LabelDict) -> (Tree, PathBuf) {
    ctx.ensure_dirs();
    let nodes = ctx.xmark_nodes(paper_mb);
    let tree = xmark_tree(dict, &XMarkConfig::new(paper_mb as u64, nodes));
    let path = ctx
        .data_dir
        .join(format!("xmark_{paper_mb}mb_s{}.xml", ctx.scale));
    if !path.exists() {
        let file = File::create(&path).expect("create xml");
        write_tree(&tree, dict, BufWriter::new(file)).expect("write xml");
    }
    (tree, path)
}

/// Predicted TASM-dynamic footprint: the two `(m+1)×(n+1)` cost matrices
/// plus the document arena — what decides the paper's OOM points.
pub fn dynamic_footprint(m: usize, n: usize) -> u64 {
    let matrices = 2 * (m as u64 + 1) * (n as u64 + 1) * 8;
    let arena = n as u64 * 8;
    matrices + arena
}

/// Times TASM-postorder streaming an XML file (parse + match, one pass).
pub fn time_postorder_file(
    query: &Tree,
    dict: &mut LabelDict,
    path: &Path,
    k: usize,
) -> (Duration, usize) {
    let t0 = Instant::now();
    let file = File::open(path).expect("open xml");
    let mut queue = XmlPostorderQueue::new(BufReader::new(file), dict);
    let matches = tasm_postorder(
        query,
        &mut queue,
        k,
        &UnitCost,
        1,
        TasmOptions::default(),
        None,
    );
    assert!(queue.is_ok(), "stream failed");
    (t0.elapsed(), matches.len())
}

/// Times TASM-dynamic on an XML file (parse + match), or `None` if the
/// predicted footprint exceeds the context's memory budget.
pub fn time_dynamic_file(
    ctx: &Ctx,
    query: &Tree,
    dict: &mut LabelDict,
    path: &Path,
    n_nodes: usize,
    k: usize,
) -> Option<(Duration, usize)> {
    if dynamic_footprint(query.len(), n_nodes) > ctx.mem_budget {
        return None;
    }
    let t0 = Instant::now();
    let file = File::open(path).expect("open xml");
    let doc = parse_tree(BufReader::new(file), dict).expect("parse xml");
    let matches = tasm_dynamic(query, &doc, k, &UnitCost, TasmOptions::default(), None);
    Some((t0.elapsed(), matches.len()))
}

/// Fig. 9a: execution time vs document size, k = 5, |Q| ∈ {4, 8, 64}.
pub fn fig9a(ctx: &Ctx) {
    let k = 5;
    let mut csv = Csv::create(ctx, "fig9a", "doc_mb,nodes,query_size,algorithm,seconds");
    println!(
        "\n=== Fig. 9a: time vs document size (k = {k}, scale 1/{}) ===",
        ctx.scale
    );
    println!(
        "{:>8} {:>10} {:>6}  {:>12} {:>12}",
        "MB", "nodes", "|Q|", "postorder(s)", "dynamic(s)"
    );
    for &mb in &XMARK_MBS {
        for &qsize in &[4u32, 8, 64] {
            let mut dict = LabelDict::new();
            let (tree, path) = xmark_doc(ctx, mb, &mut dict);
            let n = tree.len();
            let (query, _) = random_query(&tree, qsize, 0xA5 + qsize as u64);
            drop(tree); // postorder must not benefit from the parsed doc
            let (dt_pos, _) = time_postorder_file(&query, &mut dict, &path, k);
            let dy = time_dynamic_file(ctx, &query, &mut dict, &path, n, k);
            let dy_str = match dy {
                Some((d, _)) => {
                    csv.row(format_args!("{mb},{n},{qsize},dynamic,{}", d.as_secs_f64()));
                    format!("{:.3}", d.as_secs_f64())
                }
                None => "OOM".to_string(),
            };
            csv.row(format_args!(
                "{mb},{n},{qsize},postorder,{}",
                dt_pos.as_secs_f64()
            ));
            println!(
                "{:>8} {:>10} {:>6}  {:>12.3} {:>12}",
                mb,
                n,
                qsize,
                dt_pos.as_secs_f64(),
                dy_str
            );
        }
    }
}

/// Fig. 9b: execution time vs query size, k = 5.
pub fn fig9b(ctx: &Ctx) {
    let k = 5;
    let mut csv = Csv::create(ctx, "fig9b", "doc_mb,nodes,query_size,algorithm,seconds");
    println!(
        "\n=== Fig. 9b: time vs query size (k = {k}, scale 1/{}) ===",
        ctx.scale
    );
    println!(
        "{:>8} {:>10} {:>6}  {:>12} {:>12}",
        "MB", "nodes", "|Q|", "postorder(s)", "dynamic(s)"
    );
    for &mb in &[112usize, 224, 1792] {
        for &qsize in &QUERY_SIZES {
            let mut dict = LabelDict::new();
            let (tree, path) = xmark_doc(ctx, mb, &mut dict);
            let n = tree.len();
            let (query, _) = random_query(&tree, qsize, 0xB7 + qsize as u64);
            drop(tree);
            let (dt_pos, _) = time_postorder_file(&query, &mut dict, &path, k);
            csv.row(format_args!(
                "{mb},{n},{qsize},postorder,{}",
                dt_pos.as_secs_f64()
            ));
            // The paper plots dynamic only for the two smaller documents.
            let dy_str = if mb <= 224 {
                match time_dynamic_file(ctx, &query, &mut dict, &path, n, k) {
                    Some((d, _)) => {
                        csv.row(format_args!("{mb},{n},{qsize},dynamic,{}", d.as_secs_f64()));
                        format!("{:.3}", d.as_secs_f64())
                    }
                    None => "OOM".to_string(),
                }
            } else {
                "-".to_string()
            };
            println!(
                "{:>8} {:>10} {:>6}  {:>12.3} {:>12}",
                mb,
                n,
                qsize,
                dt_pos.as_secs_f64(),
                dy_str
            );
        }
    }
}

/// Fig. 9c: execution time vs k (log scale), |Q| = 16.
pub fn fig9c(ctx: &Ctx) {
    let qsize = 16u32;
    let mut csv = Csv::create(ctx, "fig9c", "doc_mb,nodes,k,algorithm,seconds");
    println!(
        "\n=== Fig. 9c: time vs k (|Q| = {qsize}, scale 1/{}) ===",
        ctx.scale
    );
    println!(
        "{:>8} {:>10} {:>7}  {:>12} {:>12}",
        "MB", "nodes", "k", "postorder(s)", "dynamic(s)"
    );
    for &mb in &[112usize, 224] {
        for &k in &K_SWEEP {
            let mut dict = LabelDict::new();
            let (tree, path) = xmark_doc(ctx, mb, &mut dict);
            let n = tree.len();
            let (query, _) = random_query(&tree, qsize, 0xC1);
            drop(tree);
            let (dt_pos, _) = time_postorder_file(&query, &mut dict, &path, k);
            csv.row(format_args!(
                "{mb},{n},{k},postorder,{}",
                dt_pos.as_secs_f64()
            ));
            let dy_str = match time_dynamic_file(ctx, &query, &mut dict, &path, n, k) {
                Some((d, _)) => {
                    csv.row(format_args!("{mb},{n},{k},dynamic,{}", d.as_secs_f64()));
                    format!("{:.3}", d.as_secs_f64())
                }
                None => "OOM".to_string(),
            };
            println!(
                "{:>8} {:>10} {:>7}  {:>12.3} {:>12}",
                mb,
                n,
                k,
                dt_pos.as_secs_f64(),
                dy_str
            );
        }
    }
}

/// Fig. 10: peak extra heap vs document size, k = 5, |Q| ∈ {4, 16}.
///
/// `measure` abstracts the allocator probe so the harness stays testable;
/// the experiments binary passes `alloc::measure_peak`.
pub fn fig10(ctx: &Ctx, measure: &dyn Fn(&mut dyn FnMut()) -> usize) {
    let k = 5;
    let mut csv = Csv::create(ctx, "fig10", "doc_mb,nodes,query_size,algorithm,peak_mb");
    println!(
        "\n=== Fig. 10: peak memory vs document size (k = {k}, scale 1/{}) ===",
        ctx.scale
    );
    println!(
        "{:>8} {:>10} {:>6}  {:>14} {:>14}",
        "MB", "nodes", "|Q|", "postorder(MB)", "dynamic(MB)"
    );
    for &mb in &XMARK_MBS {
        for &qsize in &[4u32, 16] {
            let mut dict = LabelDict::new();
            let (tree, path) = xmark_doc(ctx, mb, &mut dict);
            let n = tree.len();
            let (query, _) = random_query(&tree, qsize, 0xD3 + qsize as u64);
            drop(tree);

            // Streaming algorithm: extra heap beyond the (small) baseline.
            let mut run_pos = || {
                let file = File::open(&path).expect("open");
                let mut queue = XmlPostorderQueue::new(BufReader::new(file), &mut dict);
                let m = tasm_postorder(
                    &query,
                    &mut queue,
                    k,
                    &UnitCost,
                    1,
                    TasmOptions::default(),
                    None,
                );
                std::hint::black_box(m.len());
            };
            let peak_pos = measure(&mut run_pos);

            // Dynamic: parse + matrices, unless over the 4 GB budget.
            let over = dynamic_footprint(query.len(), n) > ctx.mem_budget;
            let peak_dy = if over {
                None
            } else {
                let mut run_dy = || {
                    let file = File::open(&path).expect("open");
                    let doc = parse_tree(BufReader::new(file), &mut dict).expect("parse");
                    let m = tasm_dynamic(&query, &doc, k, &UnitCost, TasmOptions::default(), None);
                    std::hint::black_box(m.len());
                };
                Some(measure(&mut run_dy))
            };

            let to_mb = |b: usize| b as f64 / (1024.0 * 1024.0);
            csv.row(format_args!(
                "{mb},{n},{qsize},postorder,{:.3}",
                to_mb(peak_pos)
            ));
            let dy_str = match peak_dy {
                Some(b) => {
                    csv.row(format_args!("{mb},{n},{qsize},dynamic,{:.3}", to_mb(b)));
                    format!("{:>14.2}", to_mb(b))
                }
                None => format!("{:>14}", "OOM"),
            };
            println!(
                "{:>8} {:>10} {:>6}  {:>14.2} {dy_str}",
                mb,
                n,
                qsize,
                to_mb(peak_pos)
            );
        }
    }
}

/// Figs. 11a/11b/11c: number of relevant subtrees per size class for
/// TASM-dynamic vs TASM-postorder, on PSD-like (scatter) and DBLP-like
/// (histogram) documents, top-1, |Q| = 4.
pub fn fig11(ctx: &Ctx) {
    let k = 1;
    let qsize = 4u32;
    println!("\n=== Fig. 11: relevant-subtree size distributions (top-1, |Q| = {qsize}) ===");

    // PSD-like (Figs. 11a, 11b).
    let (psd_dy, psd_po, psd_n) = relevant_stats(ctx, Dataset::Psd, qsize, k);
    let mut csv = Csv::create(ctx, "fig11ab_psd", "algorithm,subtree_size,count");
    for (s, c) in psd_dy.series() {
        csv.row(format_args!("dynamic,{s},{c}"));
    }
    for (s, c) in psd_po.series() {
        csv.row(format_args!("postorder,{s},{c}"));
    }
    println!("\nPSD-like document ({psd_n} nodes):");
    println!(
        "  dynamic:   {:>9} relevant subtrees, sizes 1..{} (incl. whole document)",
        psd_dy.total_relevant(),
        psd_dy.max_relevant_size()
    );
    println!(
        "  postorder: {:>9} relevant subtrees, sizes 1..{} (vs paper's 18)",
        psd_po.total_relevant(),
        psd_po.max_relevant_size()
    );

    // DBLP-like histogram (Fig. 11c), paper bins.
    let (dblp_dy, dblp_po, dblp_n) = relevant_stats(ctx, Dataset::Dblp, qsize, k);
    let bins: Vec<u32> = vec![
        10,
        50,
        100,
        500,
        1_000,
        10_000,
        100_000,
        1_000_000,
        10_000_000,
        100_000_000,
    ];
    let hd = dblp_dy.binned(&bins);
    let hp = dblp_po.binned(&bins);
    let mut csv = Csv::create(ctx, "fig11c_dblp", "bin_upper,dynamic,postorder");
    println!("\nDBLP-like document ({dblp_n} nodes), histogram (bin = sizes below bound):");
    println!("{:>12} {:>12} {:>12}", "bin", "dynamic", "postorder");
    for ((b, cd), (_, cp)) in hd.iter().zip(&hp) {
        csv.row(format_args!("{b},{cd},{cp}"));
        println!("{:>12} {:>12} {:>12}", b, cd, cp);
    }
    let tau = threshold(qsize as u64, 1, 1, k as u64);
    println!("(paper: postorder bins ≥ 50 are empty; τ = {tau})");
}

/// Fig. 12: cumulative subtree size difference css_dyn − css_pos over
/// subtree size, top-1 queries on DBLP-like and PSD-like documents.
pub fn fig12(ctx: &Ctx) {
    let k = 1;
    let qsize = 4u32;
    println!("\n=== Fig. 12: cumulative subtree size difference (top-1) ===");
    let mut csv = Csv::create(
        ctx,
        "fig12",
        "dataset,subtree_size,css_dyn,css_pos,difference",
    );
    for ds in [Dataset::Dblp, Dataset::Psd] {
        let (dy, po, n) = relevant_stats(ctx, ds, qsize, k);
        println!("\n{} ({} nodes):", ds.name(), n);
        println!(
            "{:>12} {:>16} {:>16} {:>16}",
            "size x", "css_dyn(x)", "css_pos(x)", "difference"
        );
        let mut x = 1u64;
        while x <= n as u64 * 10 {
            let cd = dy.css(x.min(u32::MAX as u64) as u32);
            let cp = po.css(x.min(u32::MAX as u64) as u32);
            let diff = cd as i64 - cp as i64;
            csv.row(format_args!("{},{x},{cd},{cp},{diff}", ds.name()));
            println!("{:>12} {:>16} {:>16} {:>16}", x, cd, cp, diff);
            x *= 10;
        }
    }
}

/// Ablation: what the Lemma 4 refinement τ' buys on top of Theorem 3's τ.
pub fn ablation_tau(ctx: &Ctx) {
    println!("\n=== Ablation: τ' refinement (Lemma 4) on/off ===");
    let mut csv = Csv::create(
        ctx,
        "ablation_tau",
        "dataset,k,tau_prime,seconds,fd_cells,relevant_subtrees",
    );
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>14} {:>10}",
        "dataset", "k", "τ'", "time(s)", "fd cells", "subtrees"
    );
    for ds in [Dataset::Dblp, Dataset::Psd] {
        let mut dict = LabelDict::new();
        let doc = ds.generate(ctx, &mut dict);
        let (query, _) = random_query(&doc, 8, 0xE1);
        for &k in &[5usize, 100] {
            for use_tau_prime in [true, false] {
                let mut st = TedStats::new();
                let opts = TasmOptions {
                    use_tau_prime,
                    ..Default::default()
                };
                let t0 = Instant::now();
                let mut q = TreeQueue::new(&doc);
                let m = tasm_postorder(&query, &mut q, k, &UnitCost, 1, opts, Some(&mut st));
                let dt = t0.elapsed();
                std::hint::black_box(m.len());
                csv.row(format_args!(
                    "{},{k},{use_tau_prime},{},{},{}",
                    ds.name(),
                    dt.as_secs_f64(),
                    st.fd_cells,
                    st.total_relevant()
                ));
                println!(
                    "{:>8} {:>6} {:>10} {:>10.3} {:>14} {:>10}",
                    ds.name(),
                    k,
                    if use_tau_prime { "on" } else { "off" },
                    dt.as_secs_f64(),
                    st.fd_cells,
                    st.total_relevant()
                );
            }
        }
    }
}

/// Ablation: ring buffer vs the simple pruning of Sec. V-B (peak buffer).
pub fn ablation_buffer(ctx: &Ctx) {
    println!("\n=== Ablation: prefix ring buffer vs simple pruning (Sec. V-B) ===");
    let mut csv = Csv::create(
        ctx,
        "ablation_buffer",
        "dataset,tau,ring_peak,simple_peak,candidates",
    );
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>12}",
        "dataset", "τ", "ring peak", "simple peak", "candidates"
    );
    for ds in [Dataset::Dblp, Dataset::Psd] {
        let mut dict = LabelDict::new();
        let doc = ds.generate(ctx, &mut dict);
        for &tau in &[13u32, 50, 200] {
            let mut q = TreeQueue::new(&doc);
            let ring = prb_pruning_stats(&mut q, tau, None);
            let mut q = TreeQueue::new(&doc);
            let (_, simple) = simple_pruning(&mut q, tau);
            assert_eq!(ring.candidates, simple.candidates);
            csv.row(format_args!(
                "{},{tau},{},{},{}",
                ds.name(),
                ring.peak_buffered,
                simple.peak_buffered,
                ring.candidates
            ));
            println!(
                "{:>8} {:>6} {:>12} {:>12} {:>12}",
                ds.name(),
                tau,
                ring.peak_buffered,
                simple.peak_buffered,
                ring.candidates
            );
        }
    }
}

/// Perf snapshot for the BENCH trajectory: streams generated documents
/// through `tasm_postorder` and reports candidates/s, ns/candidate and a
/// peak-heap proxy. With `json_out` set, a [`crate::report::BENCH_JSON`]
/// summary is written for machine consumption.
///
/// A right-comb query of `2·depth + 1` nodes over the document's own
/// labels: every internal node has a leaf left child and carries its
/// subtree on the right. Zhang–Shasha's worst decomposition (every
/// right-spine node is a keyroot) and the strategy kernel's best — the
/// query shape of the deep-query BENCH workload.
pub fn deep_query(doc: &Tree, depth: usize) -> Tree {
    let labels = doc.labels();
    let label = |i: usize| labels[(i * 37) % labels.len()];
    let mut b = TreeBuilder::new();
    fn rec(d: usize, i: &mut usize, label: &dyn Fn(usize) -> LabelId, b: &mut TreeBuilder) {
        let l = label(*i);
        *i += 1;
        b.start(l);
        if d > 0 {
            let leaf = label(*i);
            *i += 1;
            b.start(leaf);
            b.end().expect("balanced");
            rec(d - 1, i, label, b);
        }
        b.end().expect("balanced");
    }
    let mut i = 0;
    rec(depth, &mut i, &label, &mut b);
    b.finish().expect("single root")
}

/// Workload sizes scale with `ctx.scale` (default 16 ⇒ ~50k-node
/// documents); compare runs only at equal scale.
pub fn bench_summary(
    ctx: &Ctx,
    measure: &dyn Fn(&mut dyn FnMut()) -> usize,
    json_out: Option<&Path>,
    label: &str,
) -> Vec<crate::report::BenchRecord> {
    use crate::report::BenchRecord;
    let nodes = (800_000 / ctx.scale).max(2_000);
    println!("\n=== bench: tasm_postorder hot path ({nodes}-node documents) ===");
    println!(
        "{:>14} {:>9} {:>4} {:>6} {:>10} {:>12} {:>14} {:>12} {:>8}",
        "workload", "nodes", "|Q|", "k", "seconds", "cand/s", "ns/candidate", "peak(KiB)", "pruned"
    );
    let mut records = Vec::new();
    for (dataset, qsize, k) in [
        ("dblp", 8u32, 5usize),
        ("xmark", 8, 5),
        ("xmark", 16, 100),
        // The deep-query workload: a right-comb query, where the
        // left-path (ZS) and right-path (strategy) TED decompositions
        // differ most — tracks what the auto kernel selection buys.
        ("xmark-deep", 16, 100),
    ] {
        let mut dict = LabelDict::new();
        let doc = match dataset {
            "dblp" => dblp_tree(&mut dict, &DblpConfig::new(7, nodes)),
            _ => xmark_tree(&mut dict, &XMarkConfig::new(7, nodes)),
        };
        let query = if dataset == "xmark-deep" {
            deep_query(&doc, qsize as usize / 2)
        } else {
            random_query(&doc, qsize, 0xBE40 + qsize as u64).0
        };
        let tau = threshold(query.len() as u64, 1, 1, k as u64);
        let mut q = TreeQueue::new(&doc);
        let candidates =
            prb_pruning_stats(&mut q, u32::try_from(tau).unwrap_or(u32::MAX), None).candidates;

        let mut ws = TasmWorkspace::new();
        let mut run = || {
            let mut q = TreeQueue::new(&doc);
            let m = tasm_postorder_with_workspace(
                &query,
                &mut q,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                &mut ws,
                None,
            );
            std::hint::black_box(m.len());
        };
        run(); // warm-up
        let seconds = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                run();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        let peak_heap_bytes = measure(&mut run);
        let scan = ws.last_scan_stats();

        let r = BenchRecord {
            name: format!("{dataset} q{} k{k}", query.len()),
            nodes: doc.len(),
            query_size: query.len(),
            k,
            tau,
            candidates,
            seconds,
            peak_heap_bytes,
            ..Default::default()
        }
        .with_scan_stats(&scan);
        println!(
            "{:>14} {:>9} {:>4} {:>6} {:>10.4} {:>12.0} {:>14.0} {:>12.1} {:>7.1}%",
            r.name,
            r.nodes,
            r.query_size,
            r.k,
            r.seconds,
            r.candidates_per_sec(),
            r.ns_per_candidate(),
            r.peak_heap_bytes as f64 / 1024.0,
            100.0 * r.prune_rate(),
        );
        records.push(r);
    }
    if let Some(path) = json_out {
        crate::report::write_json(path, label, ctx.scale, &records).expect("write bench json");
        println!("wrote {} (snapshot \"{label}\")", path.display());
    }
    records
}

/// Scan-engine scaling snapshot: multi-query batching (one shared scan
/// vs N independent sequential scans) and sharded parallel scans
/// (1/2/4 worker threads), on a DBLP-shaped document.
///
/// Batch records are named `batch xN …` with the matching independent
/// baseline `seq xN …`; `candidates` counts candidate *evaluations*
/// (scan candidates × batch width) so candidates/s is directly
/// comparable between the two. Parallel records are `parallel tN …`
/// (t1 = the sequential engine path). With `json_out` set, the records
/// are appended to the [`crate::report::BENCH_JSON`] trajectory.
pub fn scaling_summary(
    ctx: &Ctx,
    measure: &dyn Fn(&mut dyn FnMut()) -> usize,
    json_out: Option<&Path>,
    label: &str,
) -> Vec<crate::report::BenchRecord> {
    use crate::report::BenchRecord;
    let nodes = (800_000 / ctx.scale).max(2_000);
    let (qsize, k) = (8u32, 5usize);
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(7, nodes));
    println!("\n=== scaling: batch + parallel scan engine ({nodes}-node DBLP document) ===");
    println!(
        "{:>16} {:>9} {:>6} {:>10} {:>14} {:>14} {:>12}",
        "config", "nodes", "k", "seconds", "evaluations", "ns/candidate", "peak(KiB)"
    );
    let mut records = Vec::new();
    let push = |records: &mut Vec<BenchRecord>, r: BenchRecord| {
        println!(
            "{:>16} {:>9} {:>6} {:>10.4} {:>14} {:>14.0} {:>12.1}",
            r.name,
            r.nodes,
            r.k,
            r.seconds,
            r.candidates,
            r.ns_per_candidate(),
            r.peak_heap_bytes as f64 / 1024.0
        );
        records.push(r);
    };

    let time3 = |run: &mut dyn FnMut()| -> f64 {
        run(); // warm-up
        (0..3)
            .map(|_| {
                let t0 = Instant::now();
                run();
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };

    // --- Multi-query batching: one shared scan vs N independent scans.
    for &width in &[1usize, 4, 16] {
        let queries: Vec<Tree> = (0..width)
            .map(|i| random_query(&doc, qsize, 0x5CA1E + i as u64).0)
            .collect();
        let tau = queries
            .iter()
            .map(|q| threshold(q.len() as u64, 1, 1, k as u64))
            .max()
            .expect("non-empty batch");
        let mut q = TreeQueue::new(&doc);
        let scan_candidates =
            prb_pruning_stats(&mut q, u32::try_from(tau).unwrap_or(u32::MAX), None).candidates;
        let evaluations = scan_candidates * width;

        let mut ws = TasmWorkspace::new();
        let mut run_seq = || {
            for query in &queries {
                let mut q = TreeQueue::new(&doc);
                let m = tasm_postorder_with_workspace(
                    query,
                    &mut q,
                    k,
                    &UnitCost,
                    1,
                    TasmOptions::default(),
                    &mut ws,
                    None,
                );
                std::hint::black_box(m.len());
            }
        };
        let seq_seconds = time3(&mut run_seq);
        let seq_peak = measure(&mut run_seq);

        let mut bws = BatchWorkspace::new();
        let mut run_batch = || {
            let batch: Vec<BatchQuery<'_>> = queries
                .iter()
                .map(|query| BatchQuery { query, k })
                .collect();
            let mut q = TreeQueue::new(&doc);
            let r = tasm_batch_with_workspace(
                &batch,
                &mut q,
                &UnitCost,
                1,
                TasmOptions::default(),
                &mut bws,
                None,
            );
            std::hint::black_box(r.len());
        };
        let batch_seconds = time3(&mut run_batch);
        let batch_peak = measure(&mut run_batch);

        let batch_scan = bws.last_scan_stats();
        for (name, seconds, peak, scan) in [
            (format!("seq x{width}"), seq_seconds, seq_peak, None),
            (
                format!("batch x{width}"),
                batch_seconds,
                batch_peak,
                Some(batch_scan),
            ),
        ] {
            let mut r = BenchRecord {
                name: format!("{name} dblp q{qsize} k{k}"),
                nodes: doc.len(),
                query_size: qsize as usize,
                k,
                tau,
                candidates: evaluations,
                seconds,
                peak_heap_bytes: peak,
                ..Default::default()
            };
            if let Some(scan) = scan {
                r = r.with_scan_stats(&scan);
            }
            push(&mut records, r);
        }
    }

    // --- Sharded parallel scans.
    let (query, _) = random_query(&doc, qsize, 0x5CA1E);
    let tau = threshold(query.len() as u64, 1, 1, k as u64);
    let mut q = TreeQueue::new(&doc);
    let candidates =
        prb_pruning_stats(&mut q, u32::try_from(tau).unwrap_or(u32::MAX), None).candidates;
    for &threads in &[1usize, 2, 4] {
        let mut run = || {
            let m = tasm_parallel(
                &query,
                &doc,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                threads,
            );
            std::hint::black_box(m.len());
        };
        let seconds = time3(&mut run);
        let peak = measure(&mut run);
        push(
            &mut records,
            BenchRecord {
                name: format!("parallel t{threads} dblp q{qsize} k{k}"),
                nodes: doc.len(),
                query_size: qsize as usize,
                k,
                tau,
                candidates,
                seconds,
                peak_heap_bytes: peak,
                ..Default::default()
            },
        );
        // Streaming shard hand-off: the same sharded scan fed from a
        // postorder stream, document never materialized (parity with
        // `parallel tN` expected; flat on 1-core containers).
        let mut run = || {
            let mut q = TreeQueue::new(&doc);
            let m = tasm_parallel_stream(
                &query,
                &mut q,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                threads,
            );
            std::hint::black_box(m.expect("complete stream").len());
        };
        let seconds = time3(&mut run);
        let peak = measure(&mut run);
        push(
            &mut records,
            BenchRecord {
                name: format!("stream t{threads} dblp q{qsize} k{k}"),
                nodes: doc.len(),
                query_size: qsize as usize,
                k,
                tau,
                candidates,
                seconds,
                peak_heap_bytes: peak,
                ..Default::default()
            },
        );
    }

    // --- Batch×parallel composition: 4 query lanes × T threads, both
    // over the materialized spans and over the postorder stream.
    let lane_queries: Vec<Tree> = (0..4)
        .map(|i| random_query(&doc, qsize, 0x5CA1E + i as u64).0)
        .collect();
    let lane_tau = lane_queries
        .iter()
        .map(|q| threshold(q.len() as u64, 1, 1, k as u64))
        .max()
        .expect("non-empty batch");
    let mut q = TreeQueue::new(&doc);
    let lane_candidates =
        prb_pruning_stats(&mut q, u32::try_from(lane_tau).unwrap_or(u32::MAX), None).candidates;
    let lane_evaluations = lane_candidates * lane_queries.len();
    for &threads in &[1usize, 2, 4] {
        let batch: Vec<BatchQuery<'_>> = lane_queries
            .iter()
            .map(|query| BatchQuery { query, k })
            .collect();
        let mut run = || {
            let r = tasm_batch_parallel(
                &batch,
                &doc,
                &UnitCost,
                1,
                TasmOptions::default(),
                threads,
                None,
            );
            std::hint::black_box(r.len());
        };
        let seconds = time3(&mut run);
        let peak = measure(&mut run);
        push(
            &mut records,
            BenchRecord {
                name: format!("batchpar x4 t{threads} dblp q{qsize} k{k}"),
                nodes: doc.len(),
                query_size: qsize as usize,
                k,
                tau: lane_tau,
                candidates: lane_evaluations,
                seconds,
                peak_heap_bytes: peak,
                ..Default::default()
            },
        );
        let mut run = || {
            let mut q = TreeQueue::new(&doc);
            let r = tasm_batch_parallel_stream(
                &batch,
                &mut q,
                &UnitCost,
                1,
                TasmOptions::default(),
                threads,
                None,
            );
            std::hint::black_box(r.expect("complete stream").len());
        };
        let seconds = time3(&mut run);
        let peak = measure(&mut run);
        push(
            &mut records,
            BenchRecord {
                name: format!("batchpar-stream x4 t{threads} dblp q{qsize} k{k}"),
                nodes: doc.len(),
                query_size: qsize as usize,
                k,
                tau: lane_tau,
                candidates: lane_evaluations,
                seconds,
                peak_heap_bytes: peak,
                ..Default::default()
            },
        );
    }

    if let Some(path) = json_out {
        crate::report::write_json(path, label, ctx.scale, &records).expect("write bench json");
        println!("wrote {} (snapshot \"{label}\")", path.display());
    }
    records
}

/// Index-vs-scan snapshot: the same top-k queries answered by a full
/// streaming scan (`scan …`) and by the `.pqi` label index
/// (`indexed …`), on the [`bench_summary`] workloads. `nodes_examined`
/// is the comparison that matters — the scan touches every document
/// node, the index only the posting-driven candidate regions — and the
/// rankings are asserted identical before anything is recorded. With
/// `json_out` set, the records are appended to the
/// [`crate::report::BENCH_JSON`] trajectory.
pub fn index_summary(
    ctx: &Ctx,
    measure: &dyn Fn(&mut dyn FnMut()) -> usize,
    json_out: Option<&Path>,
    label: &str,
) -> Vec<crate::report::BenchRecord> {
    use crate::report::BenchRecord;
    let nodes = (800_000 / ctx.scale).max(2_000);
    println!("\n=== index: .pqi candidate generation vs full scan ({nodes}-node documents) ===");
    println!(
        "{:>20} {:>9} {:>4} {:>4} {:>10} {:>10} {:>10} {:>12}",
        "workload", "nodes", "|Q|", "k", "seconds", "cand", "examined", "peak(KiB)"
    );
    let mut records = Vec::new();
    for (dataset, qsize, k) in [("dblp", 11u32, 5usize), ("xmark", 8, 5)] {
        let mut dict = LabelDict::new();
        let doc = match dataset {
            "dblp" => dblp_tree(&mut dict, &DblpConfig::new(7, nodes)),
            _ => xmark_tree(&mut dict, &XMarkConfig::new(7, nodes)),
        };
        let (query, _) = random_query(&doc, qsize, 0x1DE0 + qsize as u64);
        let tau = threshold(query.len() as u64, 1, 1, k as u64);
        let idx = IndexedDocument::build(&doc, &dict);

        let push = |records: &mut Vec<BenchRecord>,
                    name: String,
                    run: &mut dyn FnMut() -> tasm_core::ScanStats| {
            let mut timed = || {
                std::hint::black_box(run());
            };
            timed(); // warm-up
            let seconds = (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    timed();
                    t0.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min);
            let peak_heap_bytes = measure(&mut timed);
            let scan = run();
            let r = BenchRecord {
                name,
                nodes: doc.len(),
                query_size: query.len(),
                k,
                tau,
                candidates: scan.candidates,
                seconds,
                peak_heap_bytes,
                ..Default::default()
            }
            .with_scan_stats(&scan);
            println!(
                "{:>20} {:>9} {:>4} {:>4} {:>10.4} {:>10} {:>10} {:>12.1}",
                r.name,
                r.nodes,
                r.query_size,
                r.k,
                r.seconds,
                r.candidates,
                r.nodes_examined,
                r.peak_heap_bytes as f64 / 1024.0,
            );
            records.push(r);
        };

        // Both paths must return the exact same ranking before either
        // one is worth timing.
        let scan_ranking = {
            let mut q = TreeQueue::new(&doc);
            tasm_postorder(
                &query,
                &mut q,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                None,
            )
        };
        let (indexed_ranking, _) = tasm_indexed_with_stats(
            &query,
            &dict,
            &idx,
            k,
            &UnitCost,
            1,
            TasmOptions::default(),
            1,
            None,
        );
        assert_eq!(
            scan_ranking, indexed_ranking,
            "{dataset}: indexed ranking diverged from the scan"
        );

        let mut ws = TasmWorkspace::new();
        push(
            &mut records,
            format!("scan {dataset} q{} k{k}", query.len()),
            &mut || {
                let mut q = TreeQueue::new(&doc);
                let m = tasm_postorder_with_workspace(
                    &query,
                    &mut q,
                    k,
                    &UnitCost,
                    1,
                    TasmOptions::default(),
                    &mut ws,
                    None,
                );
                std::hint::black_box(m.len());
                ws.last_scan_stats()
            },
        );
        push(
            &mut records,
            format!("indexed {dataset} q{} k{k}", query.len()),
            &mut || {
                let (m, scan) = tasm_indexed_with_stats(
                    &query,
                    &dict,
                    &idx,
                    k,
                    &UnitCost,
                    1,
                    TasmOptions::default(),
                    1,
                    None,
                );
                std::hint::black_box(m.len());
                scan
            },
        );
    }
    if let Some(path) = json_out {
        crate::report::write_json(path, label, ctx.scale, &records).expect("write bench json");
        println!("wrote {} (snapshot \"{label}\")", path.display());
    }
    records
}

/// Corpus-store experiment: one query over a multi-shard on-disk
/// corpus — healthy at 1 and 4 threads, degraded with a quarantined
/// shard, and the merged per-document baseline the corpus path must
/// reproduce. Each ranking is checked against the baseline before its
/// timing is reported, so the numbers only ever describe correct runs.
pub fn corpus_summary(
    ctx: &Ctx,
    json_out: Option<&Path>,
    label: &str,
) -> Vec<crate::report::BenchRecord> {
    use crate::report::BenchRecord;
    use tasm_core::tasm_corpus;
    use tasm_index::Corpus;

    let shards = 4usize;
    let nodes = (800_000 / ctx.scale / shards).max(1_000);
    println!(
        "\n=== corpus: {shards}-shard store vs merged per-document runs ({nodes}-node shards) ==="
    );
    println!(
        "{:>24} {:>9} {:>7} {:>4} {:>10} {:>8}",
        "workload", "nodes", "healthy", "k", "seconds", "matches"
    );

    let dir = std::env::temp_dir().join(format!("tasm-bench-corpus-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let mut dict = LabelDict::new();
    let mut builder = Corpus::create(&dir).expect("create corpus");
    let mut total_nodes = 0usize;
    for i in 0..shards {
        let doc = dblp_tree(&mut dict, &DblpConfig::new(7 + i as u64, nodes));
        total_nodes += doc.len();
        builder
            .add(&format!("doc-{i}"), &doc, &dict, None)
            .expect("add shard");
    }
    drop(builder);
    let query_src = dblp_tree(&mut dict, &DblpConfig::new(99, nodes));
    let (query, _) = random_query(&query_src, 11, 0xC0DE);
    let k = 10usize;
    let tau = threshold(query.len() as u64, 1, 1, k as u64);

    // The reference every corpus run must reproduce exactly: per-shard
    // indexed runs merged on the corpus rank key.
    let reference = |corpus: &Corpus| {
        let mut merged = Vec::new();
        for (shard, _, doc) in corpus.healthy() {
            let (hits, _) = tasm_indexed_with_stats(
                &query,
                &dict,
                doc,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                1,
                None,
            );
            merged.extend(
                hits.into_iter()
                    .map(|h| (h.distance, shard, h.root.post(), h.size)),
            );
        }
        merged.sort();
        merged.truncate(k);
        merged
    };

    let mut records = Vec::new();
    let run_one =
        |records: &mut Vec<BenchRecord>, name: String, corpus: &Corpus, threads: usize| {
            let want = reference(corpus);
            let (matches, status) = tasm_corpus(
                &query,
                &dict,
                corpus,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                threads,
            );
            let got: Vec<_> = matches
                .iter()
                .map(|m| (m.hit.distance, m.shard, m.hit.root.post(), m.hit.size))
                .collect();
            assert_eq!(got, want, "{name}: corpus ranking diverged from the merge");
            let seconds = (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    std::hint::black_box(tasm_corpus(
                        &query,
                        &dict,
                        corpus,
                        k,
                        &UnitCost,
                        1,
                        TasmOptions::default(),
                        threads,
                    ));
                    t0.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min);
            let r = BenchRecord {
                name,
                nodes: total_nodes,
                query_size: query.len(),
                k,
                tau,
                candidates: matches.len(),
                seconds,
                ..Default::default()
            };
            println!(
                "{:>24} {:>9} {:>3}/{:<3} {:>4} {:>10.4} {:>8}",
                r.name, r.nodes, status.healthy, status.total, r.k, r.seconds, r.candidates,
            );
            records.push(r);
        };

    // Open-path load time: every shard is read into one buffer and
    // decoded through the zero-copy slice path (`open_bytes`), CRC
    // verified once over the buffer. This is the daemon's cold-start
    // cost per corpus.
    {
        let open_seconds = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(Corpus::open(&dir).expect("open corpus"));
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        let r = BenchRecord {
            name: "corpus open (zero-copy)".into(),
            nodes: total_nodes,
            query_size: query.len(),
            k,
            tau,
            candidates: shards,
            seconds: open_seconds,
            ..Default::default()
        };
        println!(
            "{:>24} {:>9} {:>3}/{:<3} {:>4} {:>10.4} {:>8}",
            r.name, r.nodes, shards, shards, r.k, r.seconds, r.candidates,
        );
        records.push(r);
    }

    let corpus = Corpus::open(&dir).expect("open corpus");
    run_one(&mut records, "corpus healthy t1".into(), &corpus, 1);
    run_one(&mut records, "corpus healthy t4".into(), &corpus, 4);

    // Quarantine one shard by flipping a bit mid-file: the degraded run
    // must still match the merge over the three survivors.
    let victim = dir.join("doc-1.pqi");
    let mut bytes = fs::read(&victim).expect("read shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&victim, &bytes).expect("corrupt shard");
    let degraded = Corpus::open(&dir).expect("open degraded corpus");
    assert!(degraded.is_degraded());
    run_one(&mut records, "corpus degraded t1".into(), &degraded, 1);

    let _ = fs::remove_dir_all(&dir);
    if let Some(path) = json_out {
        crate::report::write_json(path, label, ctx.scale, &records).expect("write bench json");
        println!("wrote {} (snapshot \"{label}\")", path.display());
    }
    records
}

/// Per-tier prune-funnel table: how many subtree evaluations each tier
/// of the lower-bound cascade kills on the recorded workloads, so
/// future PRs can see which tier is earning its keep.
///
/// Runs `tasm_postorder` with the cascade enabled over the same
/// generated documents as [`bench_summary`] plus a PSD-shaped one, and
/// prints (and CSVs) the funnel: candidates emitted, size-skipped
/// roots, histogram prunes, SED prunes, exact evaluations, prune rate.
pub fn funnel(ctx: &Ctx) {
    use tasm_data::{psd_tree, PsdConfig};
    let nodes = (800_000 / ctx.scale).max(2_000);
    println!("\n=== prune funnel: lower-bound cascade per-tier kills ({nodes}-node documents) ===");
    println!(
        "{:>16} {:>10} {:>11} {:>11} {:>9} {:>10} {:>9}",
        "workload", "candidates", "size-skip", "histogram", "sed", "evaluated", "pruned"
    );
    let mut csv = Csv::create(
        ctx,
        "funnel",
        "workload,candidates,pruned_size,pruned_histogram,pruned_sed,evaluated,prune_rate",
    );
    for (dataset, qsize, k) in [
        ("dblp", 8u32, 5usize),
        ("xmark", 8, 5),
        ("xmark", 16, 100),
        ("psd", 8, 5),
    ] {
        let mut dict = LabelDict::new();
        let doc = match dataset {
            "dblp" => dblp_tree(&mut dict, &DblpConfig::new(7, nodes)),
            "psd" => psd_tree(&mut dict, &PsdConfig::new(7, nodes)),
            _ => xmark_tree(&mut dict, &XMarkConfig::new(7, nodes)),
        };
        let (query, _) = random_query(&doc, qsize, 0xBE40 + qsize as u64);
        let mut ws = TasmWorkspace::new();
        let mut q = TreeQueue::new(&doc);
        let m = tasm_postorder_with_workspace(
            &query,
            &mut q,
            k,
            &UnitCost,
            1,
            TasmOptions::default(),
            &mut ws,
            None,
        );
        std::hint::black_box(m.len());
        let scan = ws.last_scan_stats();
        let name = format!("{dataset} q{} k{k}", query.len());
        println!(
            "{:>16} {:>10} {:>11} {:>11} {:>9} {:>10} {:>8.1}%",
            name,
            scan.candidates,
            scan.pruned_size,
            scan.pruned_histogram,
            scan.pruned_sed,
            scan.evaluated,
            100.0 * scan.prune_rate(),
        );
        csv.row(format_args!(
            "{name},{},{},{},{},{},{:.4}",
            scan.candidates,
            scan.pruned_size,
            scan.pruned_histogram,
            scan.pruned_sed,
            scan.evaluated,
            scan.prune_rate()
        ));
    }
}

/// Which real-world-like dataset an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// DBLP-like (shallow, wide).
    Dblp,
    /// PSD-like (deeper records).
    Psd,
}

impl Dataset {
    /// Dataset display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Dblp => "DBLP",
            Dataset::Psd => "PSD",
        }
    }

    /// Generates the scaled document (paper: DBLP 26 M nodes, PSD 37 M).
    pub fn generate(self, ctx: &Ctx, dict: &mut LabelDict) -> Tree {
        match self {
            Dataset::Dblp => {
                let nodes = (476 * DBLP_NODES_PER_MB / ctx.scale).max(5_000);
                dblp_tree(dict, &DblpConfig::new(476, nodes))
            }
            Dataset::Psd => {
                let nodes = (683 * PSD_NODES_PER_MB / ctx.scale).max(5_000);
                psd_tree(dict, &PsdConfig::new(683, nodes))
            }
        }
    }
}

/// Runs top-k with both algorithms on a dataset, returning their relevant
/// subtree statistics and the document size.
fn relevant_stats(ctx: &Ctx, ds: Dataset, qsize: u32, k: usize) -> (TedStats, TedStats, usize) {
    let mut dict = LabelDict::new();
    let doc = ds.generate(ctx, &mut dict);
    let (query, _) = random_query(&doc, qsize, 0xF00D);
    let mut dy = TedStats::new();
    tasm_dynamic(
        &query,
        &doc,
        k,
        &UnitCost,
        TasmOptions::default(),
        Some(&mut dy),
    );
    let mut po = TedStats::new();
    let mut q = TreeQueue::new(&doc);
    tasm_postorder(
        &query,
        &mut q,
        k,
        &UnitCost,
        1,
        TasmOptions::default(),
        Some(&mut po),
    );
    (dy, po, doc.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> Ctx {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tasm_bench_test_{}_{unique}", std::process::id()));
        Ctx {
            scale: 4096,
            data_dir: dir.join("data"),
            out_dir: dir,
            mem_budget: 4 << 30,
        }
    }

    #[test]
    fn xmark_doc_caches_file() {
        let ctx = tiny_ctx();
        let mut dict = LabelDict::new();
        let (t1, p1) = xmark_doc(&ctx, 112, &mut dict);
        assert!(p1.exists());
        let mut dict2 = LabelDict::new();
        let (t2, p2) = xmark_doc(&ctx, 112, &mut dict2);
        assert_eq!(p1, p2);
        assert_eq!(t1, t2, "same seed must give the same document");
        std::fs::remove_dir_all(&ctx.out_dir).ok();
    }

    #[test]
    fn postorder_and_dynamic_agree_via_files() {
        let ctx = tiny_ctx();
        let mut dict = LabelDict::new();
        let (tree, path) = xmark_doc(&ctx, 112, &mut dict);
        let n = tree.len();
        let (query, _) = random_query(&tree, 8, 1);
        let (_, found_pos) = time_postorder_file(&query, &mut dict, &path, 5);
        let (_, found_dy) = time_dynamic_file(&ctx, &query, &mut dict, &path, n, 5).expect("fits");
        assert_eq!(found_pos, 5);
        assert_eq!(found_dy, 5);
        std::fs::remove_dir_all(&ctx.out_dir).ok();
    }

    #[test]
    fn dynamic_footprint_is_monotonic() {
        assert!(dynamic_footprint(8, 1000) < dynamic_footprint(8, 2000));
        assert!(dynamic_footprint(8, 1000) < dynamic_footprint(16, 1000));
        // The paper's OOM case: 64-node query on 26 M nodes blows 4 GB.
        assert!(dynamic_footprint(64, 26_000_000) > (4u64 << 30));
    }

    #[test]
    fn scaling_summary_produces_comparable_records() {
        let ctx = tiny_ctx();
        let records = scaling_summary(
            &ctx,
            &|f: &mut dyn FnMut()| {
                f();
                0
            },
            None,
            "test",
        );
        // 3 batch widths × (seq + batch) + 3 thread counts × (span-
        // sharded + streaming) + 3 thread counts × (batch×parallel
        // materialized + streaming).
        assert_eq!(records.len(), 18);
        for width in [1usize, 4, 16] {
            let seq = records
                .iter()
                .find(|r| r.name.starts_with(&format!("seq x{width} ")))
                .expect("seq record");
            let batch = records
                .iter()
                .find(|r| r.name.starts_with(&format!("batch x{width} ")))
                .expect("batch record");
            // Same evaluation count: candidates/s is directly comparable.
            assert_eq!(seq.candidates, batch.candidates);
            assert!(seq.candidates > 0);
        }
        assert!(records.iter().any(|r| r.name.starts_with("parallel t2 ")));
        assert!(records.iter().any(|r| r.name.starts_with("stream t2 ")));
        for threads in [1usize, 2, 4] {
            // Streaming and materialized variants time the same work, so
            // their records must be directly comparable.
            let get = |prefix: String| {
                records
                    .iter()
                    .find(|r| r.name.starts_with(&prefix))
                    .unwrap_or_else(|| panic!("missing record {prefix}"))
            };
            let span = get(format!("parallel t{threads} "));
            let stream = get(format!("stream t{threads} "));
            assert_eq!(span.candidates, stream.candidates);
            let bp = get(format!("batchpar x4 t{threads} "));
            let bps = get(format!("batchpar-stream x4 t{threads} "));
            assert_eq!(bp.candidates, bps.candidates);
            assert!(bp.candidates > 0);
        }
        std::fs::remove_dir_all(&ctx.out_dir).ok();
    }

    #[test]
    fn relevant_stats_show_pruning() {
        let ctx = tiny_ctx();
        let (dy, po, n) = relevant_stats(&ctx, Dataset::Dblp, 4, 1);
        assert_eq!(dy.max_relevant_size() as usize, n);
        let tau = threshold(4, 1, 1, 1);
        assert!(u64::from(po.max_relevant_size()) <= tau);
        std::fs::remove_dir_all(&ctx.out_dir).ok();
    }
}
