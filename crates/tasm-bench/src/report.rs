//! Machine-readable benchmark reporting (`BENCH_tasm.json`).
//!
//! The perf trajectory of this repo is seeded by a small JSON summary of
//! the TASM-postorder hot path: how many candidate subtrees per second the
//! matching stack evaluates, the inverse ns/candidate, and a peak-heap
//! proxy from the counting allocator. Both the `experiments bench --json`
//! subcommand and the criterion `tasm.rs` bench (opt-in via
//! `TASM_BENCH_JSON=1`) append snapshots to this file so each PR can be
//! compared against the recorded baseline.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Canonical output file name, written to the current directory.
pub const BENCH_JSON: &str = "BENCH_tasm.json";

/// One benchmarked workload: a full `tasm_postorder` pass over a
/// generated document.
#[derive(Debug, Clone, Default)]
pub struct BenchRecord {
    /// Workload name (dataset + parameters).
    pub name: String,
    /// Document size in nodes.
    pub nodes: usize,
    /// Query size in nodes.
    pub query_size: usize,
    /// Ranking size.
    pub k: usize,
    /// Theorem 3 threshold τ for this workload.
    pub tau: u64,
    /// Number of candidate subtrees emitted by the ring buffer.
    pub candidates: usize,
    /// Document nodes the pass actually examined: every streamed node
    /// for a scan, only the posting-driven candidate-region nodes for an
    /// index-driven pass (0 when not recorded).
    pub nodes_examined: u64,
    /// Best-of-N wall-clock seconds for one full pass.
    pub seconds: f64,
    /// Extra peak heap (bytes) one pass needed, per the counting
    /// allocator; 0 when measured without the counting allocator.
    pub peak_heap_bytes: usize,
    /// Subtree roots rejected by the τ' size bound during the descent.
    pub pruned_size: u64,
    /// In-bound subtrees skipped by the label-histogram cascade tier.
    pub pruned_histogram: u64,
    /// In-bound subtrees skipped by the substring-SED cascade tier.
    pub pruned_sed: u64,
    /// Subtrees that survived every tier and were evaluated by the DP.
    pub evaluated: u64,
}

impl BenchRecord {
    /// Candidate subtrees evaluated per second.
    pub fn candidates_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.candidates as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Nanoseconds spent per candidate subtree.
    pub fn ns_per_candidate(&self) -> f64 {
        if self.candidates > 0 {
            self.seconds * 1e9 / self.candidates as f64
        } else {
            0.0
        }
    }

    /// Document nodes streamed per second.
    pub fn nodes_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.nodes as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Fraction of in-bound subtree evaluations the lower-bound cascade
    /// pruned before the DP (0.0 when no decisions were recorded).
    pub fn prune_rate(&self) -> f64 {
        let total = self.pruned_histogram + self.pruned_sed + self.evaluated;
        if total == 0 {
            0.0
        } else {
            (self.pruned_histogram + self.pruned_sed) as f64 / total as f64
        }
    }

    /// Copies the pruning-funnel counters out of a scan's [`ScanStats`].
    pub fn with_scan_stats(mut self, scan: &tasm_core::ScanStats) -> Self {
        self.nodes_examined = u64::from(scan.nodes_seen);
        self.pruned_size = scan.pruned_size;
        self.pruned_histogram = scan.pruned_histogram;
        self.pruned_sed = scan.pruned_sed;
        self.evaluated = scan.evaluated;
        self
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one snapshot (a `history` entry) as a pretty-printed JSON
/// object indented for the trajectory file (no serde in the tree).
pub fn render_snapshot(label: &str, scale: usize, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("    {\n");
    let _ = writeln!(out, "      \"label\": \"{}\",", json_escape(label));
    let _ = writeln!(out, "      \"scale\": {scale},");
    out.push_str("      \"workloads\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("        {\n");
        let _ = writeln!(out, "          \"name\": \"{}\",", json_escape(&r.name));
        let _ = writeln!(out, "          \"nodes\": {},", r.nodes);
        let _ = writeln!(out, "          \"query_size\": {},", r.query_size);
        let _ = writeln!(out, "          \"k\": {},", r.k);
        let _ = writeln!(out, "          \"tau\": {},", r.tau);
        let _ = writeln!(out, "          \"candidates\": {},", r.candidates);
        let _ = writeln!(out, "          \"nodes_examined\": {},", r.nodes_examined);
        let _ = writeln!(out, "          \"seconds\": {:.6},", r.seconds);
        let _ = writeln!(
            out,
            "          \"candidates_per_sec\": {:.1},",
            r.candidates_per_sec()
        );
        let _ = writeln!(
            out,
            "          \"ns_per_candidate\": {:.1},",
            r.ns_per_candidate()
        );
        let _ = writeln!(
            out,
            "          \"nodes_per_sec\": {:.1},",
            r.nodes_per_sec()
        );
        let _ = writeln!(out, "          \"pruned_size\": {},", r.pruned_size);
        let _ = writeln!(
            out,
            "          \"pruned_histogram\": {},",
            r.pruned_histogram
        );
        let _ = writeln!(out, "          \"pruned_sed\": {},", r.pruned_sed);
        let _ = writeln!(out, "          \"evaluated\": {},", r.evaluated);
        let _ = writeln!(out, "          \"prune_rate\": {:.4},", r.prune_rate());
        let _ = writeln!(out, "          \"peak_heap_bytes\": {}", r.peak_heap_bytes);
        out.push_str(if i + 1 == records.len() {
            "        }\n"
        } else {
            "        },\n"
        });
    }
    out.push_str("      ]\n    }");
    out
}

/// Renders the full trajectory file from already-rendered snapshots.
pub fn render_file(snapshots: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"tasm_postorder_stream\",");
    let _ = writeln!(
        out,
        "  \"command\": \"cargo run --release -p tasm-bench --bin experiments -- bench --json\","
    );
    let _ = writeln!(
        out,
        "  \"note\": \"Perf trajectory: one entry per recorded snapshot; new runs append. Compare runs only at equal scale.\","
    );
    out.push_str("  \"history\": [\n");
    out.push_str(&snapshots.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Extracts the rendered `history` entries from a trajectory file this
/// module previously wrote (`None` for foreign or unparseable content).
fn existing_history(text: &str) -> Option<String> {
    let start = text.find("\"history\": [\n")? + "\"history\": [\n".len();
    let end = text.rfind("\n  ]\n}")?;
    if end <= start {
        return None;
    }
    Some(text[start..end].to_string())
}

/// Appends the summary as a new `history` snapshot of the trajectory
/// file at `path` (conventionally [`BENCH_JSON`]), preserving previously
/// recorded snapshots — including the committed baseline — so
/// regenerating never destroys the comparison point. Unrecognized file
/// content is replaced by a fresh single-snapshot trajectory.
pub fn write_json(
    path: &Path,
    label: &str,
    scale: usize,
    records: &[BenchRecord],
) -> io::Result<()> {
    let snap = render_snapshot(label, scale, records);
    let snapshots = match fs::read_to_string(path)
        .ok()
        .as_deref()
        .and_then(existing_history)
    {
        Some(prev) => vec![prev, snap],
        None => vec![snap],
    };
    fs::write(path, render_file(&snapshots))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BenchRecord {
        BenchRecord {
            name: "dblp q8 k5".into(),
            nodes: 50_000,
            query_size: 8,
            k: 5,
            tau: 21,
            candidates: 10_000,
            nodes_examined: 50_000,
            seconds: 0.5,
            peak_heap_bytes: 4096,
            pruned_size: 7,
            pruned_histogram: 9_000,
            pruned_sed: 500,
            evaluated: 500,
        }
    }

    #[test]
    fn rates_are_consistent() {
        let r = record();
        assert_eq!(r.candidates_per_sec(), 20_000.0);
        assert_eq!(r.ns_per_candidate(), 50_000.0);
        assert_eq!(r.nodes_per_sec(), 100_000.0);
    }

    #[test]
    fn prune_rate_counts_cascade_decisions() {
        let r = record();
        assert!((r.prune_rate() - 0.95).abs() < 1e-9);
        let mut none = record();
        (none.pruned_histogram, none.pruned_sed, none.evaluated) = (0, 0, 0);
        assert_eq!(none.prune_rate(), 0.0);
    }

    #[test]
    fn renders_valid_enough_json() {
        let json = render_file(&[render_snapshot("test", 16, &[record()])]);
        assert!(json.contains("\"candidates_per_sec\": 20000.0"));
        assert!(json.contains("\"name\": \"dblp q8 k5\""));
        assert!(json.contains("\"label\": \"test\""));
        assert!(json.contains("\"pruned_histogram\": 9000"));
        assert!(json.contains("\"prune_rate\": 0.9500"));
        // Balanced braces/brackets at least.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn write_json_appends_to_history() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let unique = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "tasm_report_test_{}_{unique}.json",
            std::process::id()
        ));
        let _ = fs::remove_file(&path);

        write_json(&path, "baseline", 4, &[record()]).unwrap();
        write_json(&path, "after-change", 4, &[record()]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"label\": \"baseline\""), "{text}");
        assert!(text.contains("\"label\": \"after-change\""), "{text}");
        assert_eq!(text.matches("\"workloads\"").count(), 2);
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());

        // Foreign content is replaced, not corrupted.
        fs::write(&path, "not json at all").unwrap();
        write_json(&path, "fresh", 4, &[record()]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"label\": \"fresh\""));
        assert!(!text.contains("not json"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn escapes_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn zero_division_is_guarded() {
        let mut r = record();
        r.seconds = 0.0;
        r.candidates = 0;
        assert_eq!(r.candidates_per_sec(), 0.0);
        assert_eq!(r.ns_per_candidate(), 0.0);
        assert_eq!(r.nodes_per_sec(), 0.0);
    }
}
