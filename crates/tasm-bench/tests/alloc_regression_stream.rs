//! Allocation regression for the streaming shard hand-off: after
//! warm-up, the sharded streaming scan performs **zero allocations per
//! candidate** — candidate segments recycle through the bounded pipe's
//! pool, every worker reserves its lanes up front, and scratch trees
//! grow but never shrink. A longer document therefore costs exactly the
//! same number of allocations as a shorter one (the per-run constant:
//! thread spawns, pipe setup, lane construction).
//!
//! Like the other regression tests, this file holds a single `#[test]`
//! so no sibling test can allocate concurrently while the counters are
//! diffed.

use tasm_bench::alloc::{alloc_count, CountingAlloc};
use tasm_core::{tasm_batch_parallel_stream, BatchQuery, TasmOptions};
use tasm_ted::UnitCost;
use tasm_tree::{bracket, LabelDict, Tree, TreeQueue};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A DBLP-shaped document with candidates of varying sizes.
fn varied_doc(dict: &mut LabelDict, records: usize) -> Tree {
    let mut s = String::from("{dblp");
    for i in 0..records {
        match i % 4 {
            0 => s.push_str("{article{a}{t}}"),
            1 => s.push_str("{x}"),
            2 => s.push_str("{article{a}{t}{y}{z}}"),
            _ => s.push_str("{book{t}}"),
        }
    }
    s.push('}');
    bracket::parse(&s, dict).unwrap()
}

#[test]
fn streaming_sharded_scan_allocations_are_document_independent() {
    let mut dict = LabelDict::new();
    let short_doc = varied_doc(&mut dict, 120);
    let long_doc = varied_doc(&mut dict, 1200);
    let queries: Vec<Tree> = ["{article{a}{t}}", "{book{t}}"]
        .iter()
        .map(|q| bracket::parse(q, &mut dict).unwrap())
        .collect();
    let batch: Vec<BatchQuery<'_>> = queries
        .iter()
        .map(|query| BatchQuery { query, k: 2 })
        .collect();
    let opts = TasmOptions::default();
    let threads = 3;

    let run = |doc: &Tree| -> usize {
        let mut q = TreeQueue::new(doc);
        let before = alloc_count();
        let r = tasm_batch_parallel_stream(&batch, &mut q, &UnitCost, 1, opts, threads, None)
            .expect("complete stream");
        assert_eq!(r.len(), batch.len());
        assert!(r.iter().all(|lane| lane.len() == 2));
        alloc_count() - before
    };

    // Per-run setup (threads, pipe pool, lanes) allocates; the candidate
    // loop must not. Take the minimum over a few runs so an unrelated
    // allocation on another runtime thread cannot inflate a sample.
    let min3 = |doc: &Tree| (0..3).map(|_| run(doc)).min().unwrap();
    let short_allocs = min3(&short_doc);
    let long_allocs = min3(&long_doc);

    // The long document streams ~10× the candidates (~2700 more). If
    // even a fraction of candidates allocated, the delta would be in the
    // thousands; the pipe hand-off itself must stay pooled, so the only
    // tolerated difference is scheduler noise in thread bookkeeping.
    let delta = long_allocs.abs_diff(short_allocs);
    assert!(
        delta <= 8,
        "streaming sharded scan allocations must not scale with the \
         document: short {short_allocs}, long {long_allocs} (delta {delta})"
    );
}
