//! Allocation regression for the batch path: with a warm
//! [`BatchWorkspace`], a `tasm_batch` scan performs O(#queries)
//! allocations **independent of the document's length** — the candidate
//! loop itself stays allocation-free across every lane.
//!
//! Like the single-query regression test, this file holds a single
//! `#[test]` so no sibling test can allocate concurrently while the
//! counters are diffed.

use tasm_bench::alloc::{alloc_count, CountingAlloc};
use tasm_core::{tasm_batch_with_workspace, BatchQuery, BatchWorkspace, TasmOptions};
use tasm_ted::UnitCost;
use tasm_tree::{bracket, LabelDict, Tree, TreeQueue};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A DBLP-shaped document with candidates of varying sizes.
fn varied_doc(dict: &mut LabelDict, records: usize) -> Tree {
    let mut s = String::from("{dblp");
    for i in 0..records {
        match i % 4 {
            0 => s.push_str("{article{a}{t}}"),
            1 => s.push_str("{x}"),
            2 => s.push_str("{article{a}{t}{y}{z}}"),
            _ => s.push_str("{book{t}}"),
        }
    }
    s.push('}');
    bracket::parse(&s, dict).unwrap()
}

#[test]
fn batch_scan_allocations_are_document_independent() {
    let mut dict = LabelDict::new();
    let short_doc = varied_doc(&mut dict, 60);
    let long_doc = varied_doc(&mut dict, 600);
    let queries: Vec<Tree> = [
        "{article{a}{t}}",
        "{book{t}}",
        "{article{a}{t}{y}{z}}",
        "{x}",
    ]
    .iter()
    .map(|q| bracket::parse(q, &mut dict).unwrap())
    .collect();
    let opts = TasmOptions::default();

    for width in [1usize, 4] {
        let batch: Vec<BatchQuery<'_>> = queries[..width]
            .iter()
            .map(|query| BatchQuery { query, k: 2 })
            .collect();
        let mut ws = BatchWorkspace::new();
        let mut run = |doc: &Tree| {
            let mut q = TreeQueue::new(doc);
            let before = alloc_count();
            let r = tasm_batch_with_workspace(&batch, &mut q, &UnitCost, 1, opts, &mut ws, None);
            assert_eq!(r.len(), width);
            alloc_count() - before
        };
        run(&short_doc); // warm the workspace
        let short_allocs = run(&short_doc);
        let long_allocs = run(&long_doc);
        assert_eq!(
            short_allocs, long_allocs,
            "width {width}: per-scan allocations must not depend on document \
             length (short: {short_allocs}, long: {long_allocs})"
        );
        // O(#queries), with a generous constant: contexts, heaps and the
        // result vectors are the only per-scan allocations left.
        assert!(
            short_allocs <= 32 * width + 16,
            "width {width}: {short_allocs} allocations per warm scan is not O(#queries)"
        );
    }
}
