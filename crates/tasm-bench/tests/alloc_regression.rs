//! Zero-allocation steady-state regression test (the PR-2 tentpole
//! guarantee, extended to the PR-4 pruning cascade and the PR-8
//! strategy kernel): with a warmed [`TasmWorkspace`], the
//! TASM-postorder candidate loop — including the [`LowerBoundCascade`]
//! checks against the live heap cutoff, and including the mirrored
//! right-path DP when the strategy kernel is selected — performs **no
//! heap allocation at all**, and a full stream costs O(1) allocations
//! independent of its length.
//!
//! This file intentionally holds a single `#[test]` so no sibling test
//! can allocate concurrently while the counters are being diffed.

use tasm_bench::alloc::{alloc_count, CountingAlloc};
use tasm_core::{
    process_candidate, tasm_postorder_with_workspace, threshold, PrefixRingBuffer, ScanStats,
    TasmOptions, TasmWorkspace, TedKernel, TopKHeap,
};
use tasm_ted::{LowerBoundCascade, QueryContext, UnitCost};
use tasm_tree::{bracket, LabelDict, NodeId, Tree, TreeQueue};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A DBLP-shaped document whose candidates have *varying* sizes
/// (1 to 5 nodes): a wide root over `n` record subtrees.
fn varied_doc(dict: &mut LabelDict, records: usize) -> Tree {
    let mut s = String::from("{dblp");
    for i in 0..records {
        match i % 4 {
            0 => s.push_str("{article{a}{t}}"),
            1 => s.push_str("{x}"),
            2 => s.push_str("{article{a}{t}{y}{z}}"),
            _ => s.push_str("{book{t}}"),
        }
    }
    s.push('}');
    bracket::parse(&s, dict).unwrap()
}

/// Replicates the candidate loop of `tasm_postorder_with_workspace`
/// step by step under one kernel selection, asserting that everything
/// past the first (warm-up) candidate is allocation-free.
fn assert_loop_allocation_free(query: &Tree, doc: &Tree, k: usize, kernel: TedKernel) {
    let opts = TasmOptions {
        kernel,
        ..Default::default()
    };
    assert!(opts.use_cascade, "the cascade must be part of the loop");

    let ctx = QueryContext::with_kernel(query, &UnitCost, kernel);
    let cascade = LowerBoundCascade::from_context(&ctx);
    let tau64 = threshold(query.len() as u64, ctx.max_cost(), 1, k as u64);
    let tau = u32::try_from(tau64).unwrap();
    let mut ws = TasmWorkspace::new();
    ws.reserve(query.len(), tau);
    if ctx.uses_strategy_kernel() {
        // What the drivers do: the mirror buffers of the right-path
        // kernel are reserved up front for the widest candidate.
        ws.reserve_mirror(tau);
    }
    let mut heap = TopKHeap::new(k);
    let mut scan = ScanStats::default();
    let mut queue = TreeQueue::new(doc);
    let mut prb = PrefixRingBuffer::new(&mut queue, tau);
    let mut cand = doc.subtree(NodeId::new(1));
    cand.reserve(tau as usize);

    // First candidate: warm-up (everything is pre-reserved, but the
    // guarantee under test starts at candidate two).
    let root = prb.next_candidate_into(&mut cand).expect("has candidates");
    process_candidate(
        &mut heap,
        &ctx,
        &cascade,
        &cand,
        root.post() - cand.len() as u32,
        tau64,
        opts,
        &mut ws,
        &mut scan,
        None,
    );
    assert!(heap.is_full(), "cutoff must be live from candidate two on");

    let before = alloc_count();
    let mut streamed = 0u32;
    while let Some(root) = prb.next_candidate_into(&mut cand) {
        process_candidate(
            &mut heap,
            &ctx,
            &cascade,
            &cand,
            root.post() - cand.len() as u32,
            tau64,
            opts,
            &mut ws,
            &mut scan,
            None,
        );
        streamed += 1;
    }
    let loop_allocs = alloc_count() - before;

    assert!(
        streamed >= 50,
        "expected a multi-candidate stream, got {streamed}"
    );
    assert_eq!(
        loop_allocs, 0,
        "candidate loop ({kernel} kernel) performed {loop_allocs} heap \
         allocations across {streamed} candidates; steady state must be \
         allocation-free"
    );
    assert_eq!(heap.len(), k, "sanity: ranking still filled");
    // The cascade really ran: the stream contains both prunable
    // candidates (e.g. {x}, {book{t}} against a 0-distance cutoff) and
    // survivors that had to be evaluated exactly.
    assert!(
        scan.pruned_histogram + scan.pruned_sed > 0,
        "cascade never pruned: {scan:?}"
    );
    assert!(scan.evaluated > 0, "cascade pruned everything: {scan:?}");
    // The per-kernel funnel attributes every evaluation to the kernel
    // under test.
    let (want_zs, want_strategy) = match ctx.uses_strategy_kernel() {
        false => (scan.evaluated, 0),
        true => (0, scan.evaluated),
    };
    assert_eq!(
        (scan.evaluated_zs, scan.evaluated_strategy),
        (want_zs, want_strategy)
    );
}

#[test]
fn candidate_loop_is_allocation_free_after_warmup() {
    let mut dict = LabelDict::new();
    let doc = varied_doc(&mut dict, 60);
    let query = bracket::parse("{article{a}{t}}", &mut dict).unwrap();
    let k = 2;

    // Both decomposition paths share the guarantee: the classic
    // left-path DP and the mirrored right-path DP (whose per-candidate
    // mirror permutation and permuted cost arrays live in the workspace).
    assert_loop_allocation_free(&query, &doc, k, TedKernel::Zs);
    assert_loop_allocation_free(&query, &doc, k, TedKernel::Strategy);

    // And end to end: with a warm workspace, a whole stream costs the
    // same O(1) allocations regardless of its length — under the
    // default (auto) kernel selection.
    let opts = TasmOptions::default();
    let long_doc = varied_doc(&mut dict, 400);
    let mut ws = TasmWorkspace::new();
    let run = |ws: &mut TasmWorkspace, doc: &Tree| {
        let mut q = TreeQueue::new(doc);
        let before = alloc_count();
        let m = tasm_postorder_with_workspace(&query, &mut q, k, &UnitCost, 1, opts, ws, None);
        assert_eq!(m.len(), k);
        alloc_count() - before
    };
    run(&mut ws, &doc); // warm the wrapper path itself
    let short_allocs = run(&mut ws, &doc);
    let long_allocs = run(&mut ws, &long_doc);
    assert_eq!(
        short_allocs, long_allocs,
        "per-stream allocations must not depend on document length \
         (short: {short_allocs}, long: {long_allocs})"
    );
}
