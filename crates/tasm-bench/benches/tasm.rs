//! End-to-end TASM benchmarks: postorder vs dynamic vs naive, and the τ'
//! refinement ablation, at micro scale (the figure-scale sweeps live in
//! the `experiments` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tasm_core::{tasm_dynamic, tasm_naive, tasm_postorder, TasmOptions};
use tasm_data::{dblp_tree, random_query, xmark_tree, DblpConfig, XMarkConfig};
use tasm_ted::UnitCost;
use tasm_tree::{LabelDict, TreeQueue};

fn bench_algorithms(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(1, 20_000));
    let (query, _) = random_query(&doc, 8, 3);
    let k = 5;
    let mut group = c.benchmark_group("tasm/algorithms_20k");
    group.throughput(Throughput::Elements(doc.len() as u64));
    group.bench_function("postorder", |b| {
        b.iter(|| {
            let mut q = TreeQueue::new(&doc);
            tasm_postorder(
                &query,
                &mut q,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                None,
            )
        });
    });
    group.bench_function("dynamic", |b| {
        b.iter(|| tasm_dynamic(&query, &doc, k, &UnitCost, TasmOptions::default(), None));
    });
    group.sample_size(10);
    group.bench_function("naive", |b| {
        b.iter(|| tasm_naive(&query, &doc, k, &UnitCost, TasmOptions::default(), None));
    });
    group.finish();
}

fn bench_postorder_k(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = xmark_tree(&mut dict, &XMarkConfig::new(2, 50_000));
    let (query, _) = random_query(&doc, 16, 5);
    let mut group = c.benchmark_group("tasm/postorder_k");
    for &k in &[1usize, 10, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut q = TreeQueue::new(&doc);
                tasm_postorder(
                    &query,
                    &mut q,
                    k,
                    &UnitCost,
                    1,
                    TasmOptions::default(),
                    None,
                )
            });
        });
    }
    group.finish();
}

fn bench_tau_prime_ablation(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = xmark_tree(&mut dict, &XMarkConfig::new(3, 50_000));
    let (query, _) = random_query(&doc, 16, 9);
    let k = 5;
    let mut group = c.benchmark_group("tasm/tau_prime");
    for (name, on) in [("on", true), ("off", false)] {
        group.bench_function(name, |b| {
            let opts = TasmOptions {
                use_tau_prime: on,
                ..Default::default()
            };
            b.iter(|| {
                let mut q = TreeQueue::new(&doc);
                tasm_postorder(&query, &mut q, k, &UnitCost, 1, opts, None)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_postorder_k,
    bench_tau_prime_ablation
);
criterion_main!(benches);
