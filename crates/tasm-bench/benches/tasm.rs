//! End-to-end TASM benchmarks: postorder vs dynamic vs naive, and the τ'
//! refinement ablation, at micro scale (the figure-scale sweeps live in
//! the `experiments` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tasm_core::{
    prb_pruning_stats, tasm_batch_with_workspace, tasm_dynamic, tasm_naive, tasm_parallel,
    tasm_postorder, tasm_postorder_with_workspace, threshold, BatchQuery, BatchWorkspace,
    TasmOptions, TasmWorkspace,
};
use tasm_data::{dblp_tree, random_query, xmark_tree, DblpConfig, XMarkConfig};
use tasm_ted::UnitCost;
use tasm_tree::{LabelDict, Tree, TreeQueue};

fn bench_algorithms(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(1, 20_000));
    let (query, _) = random_query(&doc, 8, 3);
    let k = 5;
    let mut group = c.benchmark_group("tasm/algorithms_20k");
    group.throughput(Throughput::Elements(doc.len() as u64));
    group.bench_function("postorder", |b| {
        b.iter(|| {
            let mut q = TreeQueue::new(&doc);
            tasm_postorder(
                &query,
                &mut q,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                None,
            )
        });
    });
    group.bench_function("postorder_reused_ws", |b| {
        // The steady-state deployment shape: one workspace across many
        // document streams — even per-stream warm-up disappears.
        let mut ws = TasmWorkspace::new();
        b.iter(|| {
            let mut q = TreeQueue::new(&doc);
            tasm_postorder_with_workspace(
                &query,
                &mut q,
                k,
                &UnitCost,
                1,
                TasmOptions::default(),
                &mut ws,
                None,
            )
        });
    });
    group.bench_function("dynamic", |b| {
        b.iter(|| tasm_dynamic(&query, &doc, k, &UnitCost, TasmOptions::default(), None));
    });
    group.sample_size(10);
    group.bench_function("naive", |b| {
        b.iter(|| tasm_naive(&query, &doc, k, &UnitCost, TasmOptions::default(), None));
    });
    group.finish();
}

/// Times the postorder hot path directly (the criterion shim has no
/// result API) and appends a `BENCH_tasm.json` perf-trajectory snapshot
/// at the workspace root — the same file `experiments -- bench --json`
/// maintains. Opt-in via `TASM_BENCH_JSON=1` so a plain `cargo bench`
/// has no write side effects.
fn bench_emit_summary(_c: &mut Criterion) {
    use std::time::Instant;
    if std::env::var_os("TASM_BENCH_JSON").is_none() {
        return;
    }
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(1, 20_000));
    let (query, _) = random_query(&doc, 8, 3);
    let k = 5;
    let tau = threshold(query.len() as u64, 1, 1, k as u64);
    let mut q = TreeQueue::new(&doc);
    let candidates =
        prb_pruning_stats(&mut q, u32::try_from(tau).unwrap_or(u32::MAX), None).candidates;

    let mut ws = TasmWorkspace::new();
    let mut run = || {
        let mut q = TreeQueue::new(&doc);
        let m = tasm_postorder_with_workspace(
            &query,
            &mut q,
            k,
            &UnitCost,
            1,
            TasmOptions::default(),
            &mut ws,
            None,
        );
        criterion::black_box(m.len());
    };
    run(); // warm-up
    let seconds = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);

    let record = tasm_bench::report::BenchRecord {
        name: "criterion dblp q8 k5".into(),
        nodes: doc.len(),
        query_size: query.len(),
        k,
        tau,
        candidates,
        seconds,
        peak_heap_bytes: 0, // no counting allocator in the bench harness
        ..Default::default()
    }
    .with_scan_stats(&ws.last_scan_stats());
    // cargo bench runs with CWD = the package dir; anchor the trajectory
    // file at the workspace root where `experiments` writes it.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(tasm_bench::report::BENCH_JSON);
    let rate = record.candidates_per_sec();
    tasm_bench::report::write_json(&path, "criterion tasm bench", 0, &[record])
        .expect("write bench json");
    println!("bench: wrote {} ({rate:.0} candidates/s)", path.display());
}

/// Multi-query batching: one shared scan for N queries vs N independent
/// sequential scans (both with warm workspaces) — the scan-amortization
/// curve of the engine layer.
fn bench_batch_widths(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(1, 20_000));
    let k = 5;
    let mut group = c.benchmark_group("tasm/batch_width");
    for &width in &[1usize, 4, 16] {
        let queries: Vec<Tree> = (0..width)
            .map(|i| random_query(&doc, 8, 3 + i as u64).0)
            .collect();
        group.bench_with_input(BenchmarkId::new("batch", width), &width, |b, _| {
            let mut ws = BatchWorkspace::new();
            b.iter(|| {
                let batch: Vec<BatchQuery<'_>> = queries
                    .iter()
                    .map(|query| BatchQuery { query, k })
                    .collect();
                let mut q = TreeQueue::new(&doc);
                tasm_batch_with_workspace(
                    &batch,
                    &mut q,
                    &UnitCost,
                    1,
                    TasmOptions::default(),
                    &mut ws,
                    None,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("sequential", width), &width, |b, _| {
            let mut ws = TasmWorkspace::new();
            b.iter(|| {
                queries
                    .iter()
                    .map(|query| {
                        let mut q = TreeQueue::new(&doc);
                        tasm_postorder_with_workspace(
                            query,
                            &mut q,
                            k,
                            &UnitCost,
                            1,
                            TasmOptions::default(),
                            &mut ws,
                            None,
                        )
                        .len()
                    })
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

/// Sharded parallel scans at 1/2/4 worker threads (t1 falls back to the
/// sequential engine path).
fn bench_parallel_threads(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(1, 20_000));
    let (query, _) = random_query(&doc, 8, 3);
    let k = 5;
    let mut group = c.benchmark_group("tasm/parallel_threads");
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| tasm_parallel(&query, &doc, k, &UnitCost, 1, TasmOptions::default(), t));
        });
    }
    group.finish();
}

fn bench_postorder_k(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = xmark_tree(&mut dict, &XMarkConfig::new(2, 50_000));
    let (query, _) = random_query(&doc, 16, 5);
    let mut group = c.benchmark_group("tasm/postorder_k");
    for &k in &[1usize, 10, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut q = TreeQueue::new(&doc);
                tasm_postorder(
                    &query,
                    &mut q,
                    k,
                    &UnitCost,
                    1,
                    TasmOptions::default(),
                    None,
                )
            });
        });
    }
    group.finish();
}

/// The lower-bound pruning cascade on/off across the three recorded
/// perf-trajectory workloads (DBLP q11 k5, XMark q8 k5, XMark q16
/// k100): what the histogram + banded-SED tiers buy on each shape.
/// Rankings are identical either way (property-tested); only the number
/// of exact DP evaluations differs.
fn bench_pruning_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("tasm/pruning_cascade");
    for (dataset, qsize, k) in [("dblp", 8u32, 5usize), ("xmark", 8, 5), ("xmark", 16, 100)] {
        let mut dict = LabelDict::new();
        let doc = match dataset {
            "dblp" => dblp_tree(&mut dict, &DblpConfig::new(7, 20_000)),
            _ => xmark_tree(&mut dict, &XMarkConfig::new(7, 20_000)),
        };
        let (query, _) = random_query(&doc, qsize, 0xBE40 + qsize as u64);
        let workload = format!("{dataset} q{} k{k}", query.len());
        for (mode, use_cascade) in [("on", true), ("off", false)] {
            group.bench_with_input(
                BenchmarkId::new(mode, &workload),
                &use_cascade,
                |b, &use_cascade| {
                    let opts = TasmOptions {
                        use_cascade,
                        ..Default::default()
                    };
                    let mut ws = TasmWorkspace::new();
                    b.iter(|| {
                        let mut q = TreeQueue::new(&doc);
                        tasm_postorder_with_workspace(
                            &query, &mut q, k, &UnitCost, 1, opts, &mut ws, None,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_tau_prime_ablation(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = xmark_tree(&mut dict, &XMarkConfig::new(3, 50_000));
    let (query, _) = random_query(&doc, 16, 9);
    let k = 5;
    let mut group = c.benchmark_group("tasm/tau_prime");
    for (name, on) in [("on", true), ("off", false)] {
        group.bench_function(name, |b| {
            let opts = TasmOptions {
                use_tau_prime: on,
                ..Default::default()
            };
            b.iter(|| {
                let mut q = TreeQueue::new(&doc);
                tasm_postorder(&query, &mut q, k, &UnitCost, 1, opts, None)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_batch_widths,
    bench_parallel_threads,
    bench_postorder_k,
    bench_pruning_cascade,
    bench_tau_prime_ablation,
    bench_emit_summary
);
criterion_main!(benches);
