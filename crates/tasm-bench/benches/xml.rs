//! XML substrate benchmarks: streaming parse throughput into a postorder
//! queue, and writer throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tasm_data::{dblp_tree, DblpConfig};
use tasm_tree::{LabelDict, PostorderQueue};
use tasm_xml::{tree_to_xml, XmlPostorderQueue};

fn bench_xml(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(1, 50_000));
    let xml = tree_to_xml(&doc, &dict);

    let mut group = c.benchmark_group("xml");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("stream_to_postorder_queue", |b| {
        b.iter(|| {
            let mut d = LabelDict::new();
            let mut q = XmlPostorderQueue::new(xml.as_bytes(), &mut d);
            let mut count = 0u64;
            while q.dequeue().is_some() {
                count += 1;
            }
            assert!(q.is_ok());
            count
        });
    });
    group.bench_function("write_tree", |b| {
        b.iter(|| tree_to_xml(&doc, &dict).len());
    });
    group.finish();
}

criterion_group!(benches, bench_xml);
criterion_main!(benches);
