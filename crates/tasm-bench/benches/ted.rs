//! Micro-benchmarks for the Zhang–Shasha tree edit distance: scaling in
//! document size (the `O(m²n)` regime for shallow trees) and in query
//! size, the cost of the full distance matrix vs a plain distance, and
//! the TED-kernel selection (left-path ZS vs right-path strategy vs the
//! auto shape estimator) on the standing TASM workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tasm_core::{tasm_postorder_with_workspace, TasmOptions, TasmWorkspace, TedKernel};
use tasm_data::{dblp_tree, random_query, xmark_tree, DblpConfig, XMarkConfig};
use tasm_ted::{ted, ted_full, UnitCost};
use tasm_tree::{LabelDict, LabelId, Tree, TreeBuilder, TreeQueue};

fn bench_ted_doc_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ted/doc_size");
    for &n in &[500usize, 1_000, 2_000, 4_000] {
        let mut dict = LabelDict::new();
        let doc = dblp_tree(&mut dict, &DblpConfig::new(1, n));
        let (query, _) = random_query(&doc, 8, 7);
        group.throughput(Throughput::Elements(doc.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &doc, |b, doc| {
            b.iter(|| ted(&query, doc, &UnitCost));
        });
    }
    group.finish();
}

fn bench_ted_query_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ted/query_size");
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(2, 2_000));
    for &m in &[4u32, 8, 16, 32, 64] {
        let (query, _) = random_query(&doc, m, 11);
        group.bench_with_input(BenchmarkId::from_parameter(m), &query, |b, query| {
            b.iter(|| ted(query, &doc, &UnitCost));
        });
    }
    group.finish();
}

fn bench_ted_full_matrix(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(3, 2_000));
    let (query, _) = random_query(&doc, 16, 13);
    c.bench_function("ted/full_matrix_2k", |b| {
        b.iter(|| ted_full(&query, &doc, &UnitCost, None));
    });
}

/// A right-comb query over the document's own labels: every internal
/// node has a leaf left child and carries its subtree on the right —
/// Zhang–Shasha's worst decomposition and the strategy kernel's best.
fn deep_query(doc: &Tree, depth: usize) -> Tree {
    let labels = doc.labels();
    let label = |i: usize| labels[(i * 37) % labels.len()];
    let mut b = TreeBuilder::new();
    fn rec(d: usize, i: &mut usize, label: &dyn Fn(usize) -> LabelId, b: &mut TreeBuilder) {
        let l = label(*i);
        *i += 1;
        b.start(l);
        if d > 0 {
            let leaf = label(*i);
            *i += 1;
            b.start(leaf);
            b.end().unwrap();
            rec(d - 1, i, label, b);
        }
        b.end().unwrap();
    }
    let mut i = 0;
    rec(depth, &mut i, &label, &mut b);
    b.finish().expect("single root")
}

/// Full TASM-postorder scans under each kernel selection, on the same
/// workload shapes the BENCH snapshot tracks (dblp-q11, xmark-q8,
/// xmark-q16) plus a right-deep query where the decompositions differ
/// most. `auto` must track the better of the two pinned kernels.
fn bench_ted_kernel(c: &mut Criterion) {
    let nodes = 10_000;
    let mut dict = LabelDict::new();
    let dblp = dblp_tree(&mut dict, &DblpConfig::new(7, nodes));
    let xmark = xmark_tree(&mut dict, &XMarkConfig::new(7, nodes));
    let workloads: Vec<(&str, &Tree, Tree, usize)> = vec![
        ("dblp-q11", &dblp, random_query(&dblp, 8, 0xBE48).0, 5),
        ("xmark-q8", &xmark, random_query(&xmark, 8, 0xBE48).0, 5),
        ("xmark-q16", &xmark, random_query(&xmark, 16, 0xBE50).0, 100),
        ("xmark-deep-q17", &xmark, deep_query(&xmark, 8), 100),
    ];
    let mut group = c.benchmark_group("ted_kernel");
    group.sample_size(10);
    for (name, doc, query, k) in &workloads {
        for kernel in [TedKernel::Zs, TedKernel::Strategy, TedKernel::Auto] {
            let opts = TasmOptions {
                kernel,
                ..Default::default()
            };
            let mut ws = TasmWorkspace::new();
            group.bench_function(BenchmarkId::new(*name, kernel), |b| {
                b.iter(|| {
                    let mut q = TreeQueue::new(doc);
                    let m = tasm_postorder_with_workspace(
                        query, &mut q, *k, &UnitCost, 1, opts, &mut ws, None,
                    );
                    std::hint::black_box(m.len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ted_doc_size,
    bench_ted_query_size,
    bench_ted_full_matrix,
    bench_ted_kernel
);
criterion_main!(benches);
