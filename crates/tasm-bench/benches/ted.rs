//! Micro-benchmarks for the Zhang–Shasha tree edit distance: scaling in
//! document size (the `O(m²n)` regime for shallow trees) and in query
//! size, plus the cost of the full distance matrix vs a plain distance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tasm_data::{dblp_tree, random_query, DblpConfig};
use tasm_ted::{ted, ted_full, UnitCost};
use tasm_tree::LabelDict;

fn bench_ted_doc_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ted/doc_size");
    for &n in &[500usize, 1_000, 2_000, 4_000] {
        let mut dict = LabelDict::new();
        let doc = dblp_tree(&mut dict, &DblpConfig::new(1, n));
        let (query, _) = random_query(&doc, 8, 7);
        group.throughput(Throughput::Elements(doc.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &doc, |b, doc| {
            b.iter(|| ted(&query, doc, &UnitCost));
        });
    }
    group.finish();
}

fn bench_ted_query_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ted/query_size");
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(2, 2_000));
    for &m in &[4u32, 8, 16, 32, 64] {
        let (query, _) = random_query(&doc, m, 11);
        group.bench_with_input(BenchmarkId::from_parameter(m), &query, |b, query| {
            b.iter(|| ted(query, &doc, &UnitCost));
        });
    }
    group.finish();
}

fn bench_ted_full_matrix(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(3, 2_000));
    let (query, _) = random_query(&doc, 16, 13);
    c.bench_function("ted/full_matrix_2k", |b| {
        b.iter(|| ted_full(&query, &doc, &UnitCost, None));
    });
}

criterion_group!(
    benches,
    bench_ted_doc_size,
    bench_ted_query_size,
    bench_ted_full_matrix
);
criterion_main!(benches);
