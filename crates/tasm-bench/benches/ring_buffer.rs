//! Micro-benchmarks for the prefix ring buffer (Sec. V): pruning
//! throughput across thresholds and document shapes, vs the simple-pruning
//! baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tasm_core::{prb_pruning_stats, simple_pruning};
use tasm_data::{dblp_tree, psd_tree, DblpConfig, PsdConfig};
use tasm_tree::{LabelDict, TreeQueue};

fn bench_ring_buffer_tau(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = dblp_tree(&mut dict, &DblpConfig::new(1, 100_000));
    let mut group = c.benchmark_group("prb/tau");
    group.throughput(Throughput::Elements(doc.len() as u64));
    for &tau in &[13u32, 50, 200, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(tau), &tau, |b, &tau| {
            b.iter(|| {
                let mut q = TreeQueue::new(&doc);
                prb_pruning_stats(&mut q, tau, None)
            });
        });
    }
    group.finish();
}

fn bench_ring_vs_simple(c: &mut Criterion) {
    let mut dict = LabelDict::new();
    let doc = psd_tree(&mut dict, &PsdConfig::new(2, 100_000));
    let mut group = c.benchmark_group("prb/vs_simple");
    group.throughput(Throughput::Elements(doc.len() as u64));
    group.bench_function("ring_buffer", |b| {
        b.iter(|| {
            let mut q = TreeQueue::new(&doc);
            prb_pruning_stats(&mut q, 50, None)
        });
    });
    group.bench_function("simple_pruning", |b| {
        b.iter(|| {
            let mut q = TreeQueue::new(&doc);
            simple_pruning(&mut q, 50)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ring_buffer_tau, bench_ring_vs_simple);
criterion_main!(benches);
