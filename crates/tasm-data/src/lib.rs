//! Synthetic workload generators for the TASM reproduction.
//!
//! The paper (Sec. VII) evaluates on XMark benchmark documents
//! (112–1792 MB, height 13), the DBLP bibliography (26 M nodes, height 6)
//! and the PSD7003 protein dataset (37 M nodes, height 7). Those exact
//! files are not redistributable here, so this crate provides seeded
//! generators reproducing the *shape statistics* each experiment depends
//! on — see `DESIGN.md` for the substitution rationale:
//!
//! * [`xmark_tree`] — auction-site schema, stable height, linear size;
//! * [`dblp_tree`] — shallow-and-wide bibliographic records (~15 nodes);
//! * [`psd_tree`] — deeper protein entries (tens of nodes, height ~7);
//! * [`random_tree`] / [`random_query`] — unstructured trees and the
//!   paper's random-subtree query workload.
//!
//! All generators are deterministic given a seed.
//!
//! # Quick start
//!
//! ```
//! use tasm_data::{dblp_tree, random_query, DblpConfig};
//! use tasm_tree::LabelDict;
//!
//! let mut dict = LabelDict::new();
//! let doc = dblp_tree(&mut dict, &DblpConfig::new(42, 5_000));
//! let (query, root) = random_query(&doc, 16, 7);
//! assert_eq!(query, doc.subtree(root));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dblp;
mod gen;
mod psd;
mod random;
mod treebank;
mod words;
mod xmark;

pub use dblp::{dblp_tree, DblpConfig, NODES_PER_MB as DBLP_NODES_PER_MB};
pub use gen::GenCtx;
pub use psd::{psd_tree, PsdConfig, NODES_PER_MB as PSD_NODES_PER_MB};
pub use random::{random_query, random_tree, RandomTreeConfig};
pub use treebank::{treebank_tree, TreebankConfig};
pub use words::{WordSampler, Zipf};
pub use xmark::{nodes_for_mb, xmark_tree, XMarkConfig, NODES_PER_MB as XMARK_NODES_PER_MB};
