//! Text-content sampling: a deterministic vocabulary with Zipf-distributed
//! word frequencies, approximating the "realistic text" of the XMark
//! benchmark and the title/author strings of bibliographic corpora.

use rand::Rng;

/// A Zipf sampler over ranks `0..n` with exponent `s`:
/// `P(rank i) ∝ 1 / (i + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution, `cdf[i]` = P(rank <= i), last entry 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n >= 1` ranks with exponent `s` (s = 0 is
    /// uniform; larger s is more skewed; classic Zipf uses s ≈ 1).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A deterministic word vocabulary with Zipf-distributed sampling.
#[derive(Debug, Clone)]
pub struct WordSampler {
    zipf: Zipf,
    prefix: &'static str,
}

impl WordSampler {
    /// A vocabulary of `n` words named `<prefix><rank>`.
    pub fn new(n: usize, prefix: &'static str, s: f64) -> Self {
        WordSampler {
            zipf: Zipf::new(n, s),
            prefix,
        }
    }

    /// Draws one word.
    pub fn word<R: Rng>(&self, rng: &mut R) -> String {
        format!("{}{}", self.prefix, self.zipf.sample(rng))
    }

    /// Draws a sentence of `min..=max` words.
    pub fn sentence<R: Rng>(&self, rng: &mut R, min: usize, max: usize) -> String {
        let n = rng.gen_range(min..=max);
        let mut out = String::new();
        for i in 0..n {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&self.word(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0u32; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate rank 50 by a wide margin.
        assert!(
            counts[0] > counts[50] * 5,
            "{} vs {}",
            counts[0],
            counts[50]
        );
        // All samples in range (implicitly, via indexing) and rank 0 common.
        assert!(counts[0] > 2000);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0u32; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "uniform-ish expected: {counts:?}");
        }
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let w = WordSampler::new(50, "w", 1.0);
        let a: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| w.word(&mut rng)).collect()
        };
        let b: Vec<String> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..10).map(|_| w.word(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn sentence_length_bounds() {
        let w = WordSampler::new(50, "w", 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let s = w.sentence(&mut rng, 2, 5);
            let words = s.split(' ').count();
            assert!((2..=5).contains(&words));
        }
    }
}
