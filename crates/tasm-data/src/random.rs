//! Random trees and query extraction.
//!
//! The paper's queries are "randomly chosen subtrees from one of the XMark
//! documents with sizes varying from 4 to 64 nodes" (Sec. VII-A);
//! [`random_query`] reproduces that. [`random_tree`] generates unstructured
//! random trees for property tests and stress tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tasm_tree::{LabelDict, LabelId, NodeId, Tree, TreeBuilder};

/// Shape parameters for [`random_tree`].
#[derive(Debug, Clone)]
pub struct RandomTreeConfig {
    /// RNG seed.
    pub seed: u64,
    /// Exact number of nodes.
    pub nodes: usize,
    /// Number of distinct labels (`label0..labelN`).
    pub labels: u32,
    /// Depth bias in `0.0..=1.0`: 0 attaches to a uniformly random earlier
    /// node (bushy, logarithmic depth); values toward 1 prefer recently
    /// added nodes (deep, path-like).
    pub depth_bias: f64,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        RandomTreeConfig {
            seed: 0,
            nodes: 100,
            labels: 8,
            depth_bias: 0.0,
        }
    }
}

/// Generates a random ordered labeled tree with exactly `config.nodes`
/// nodes, interning labels into `dict`.
pub fn random_tree(dict: &mut LabelDict, config: &RandomTreeConfig) -> Tree {
    let n = config.nodes.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let label_ids: Vec<LabelId> = (0..config.labels.max(1))
        .map(|i| dict.intern(&format!("label{i}")))
        .collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut labels: Vec<LabelId> = Vec::with_capacity(n);
    labels.push(label_ids[rng.gen_range(0..label_ids.len())]);
    for i in 1..n {
        let parent = if rng.gen_bool(config.depth_bias.clamp(0.0, 1.0)) {
            i - 1 // chain onto the most recent node
        } else {
            rng.gen_range(0..i)
        };
        children[parent].push(i);
        labels.push(label_ids[rng.gen_range(0..label_ids.len())]);
    }
    let mut builder = TreeBuilder::with_capacity(n);
    // Iterative DFS to avoid recursion limits on deep trees.
    enum Op {
        Enter(usize),
        Exit,
    }
    let mut stack = vec![Op::Enter(0)];
    while let Some(op) = stack.pop() {
        match op {
            Op::Enter(node) => {
                builder.start(labels[node]);
                stack.push(Op::Exit);
                for &c in children[node].iter().rev() {
                    stack.push(Op::Enter(c));
                }
            }
            Op::Exit => builder.end().expect("balanced"),
        }
    }
    builder.finish().expect("single root")
}

/// Extracts a random subtree of `doc` with size as close as possible to
/// `target_size` — the paper's query workload. Returns the extracted query
/// and the postorder number of its root in `doc`.
pub fn random_query(doc: &Tree, target_size: u32, seed: u64) -> (Tree, NodeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Find the best achievable size, then choose uniformly among nodes of
    // that size.
    let mut best_diff = u32::MAX;
    for id in doc.nodes() {
        let diff = doc.size(id).abs_diff(target_size);
        if diff < best_diff {
            best_diff = diff;
        }
    }
    let candidates: Vec<NodeId> = doc
        .nodes()
        .filter(|&id| doc.size(id).abs_diff(target_size) == best_diff)
        .collect();
    let root = candidates[rng.gen_range(0..candidates.len())];
    (doc.subtree(root), root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_node_count() {
        let mut dict = LabelDict::new();
        for n in [1usize, 2, 17, 500] {
            let t = random_tree(
                &mut dict,
                &RandomTreeConfig {
                    nodes: n,
                    ..Default::default()
                },
            );
            assert_eq!(t.len(), n);
        }
    }

    #[test]
    fn depth_bias_controls_shape() {
        let mut dict = LabelDict::new();
        let bushy = random_tree(
            &mut dict,
            &RandomTreeConfig {
                seed: 1,
                nodes: 400,
                depth_bias: 0.0,
                ..Default::default()
            },
        );
        let deep = random_tree(
            &mut dict,
            &RandomTreeConfig {
                seed: 1,
                nodes: 400,
                depth_bias: 0.95,
                ..Default::default()
            },
        );
        assert!(
            deep.height() > bushy.height() * 3,
            "deep {} vs bushy {}",
            deep.height(),
            bushy.height()
        );
    }

    #[test]
    fn deep_trees_do_not_overflow_the_stack() {
        let mut dict = LabelDict::new();
        let t = random_tree(
            &mut dict,
            &RandomTreeConfig {
                seed: 2,
                nodes: 200_000,
                depth_bias: 1.0,
                ..Default::default()
            },
        );
        assert_eq!(t.height(), 199_999); // a pure path
    }

    #[test]
    fn random_query_prefers_exact_size() {
        let mut dict = LabelDict::new();
        let doc = random_tree(
            &mut dict,
            &RandomTreeConfig {
                seed: 3,
                nodes: 500,
                ..Default::default()
            },
        );
        for target in [4u32, 8, 16] {
            let (q, root) = random_query(&doc, target, 1);
            assert_eq!(q.len() as u32, doc.size(root));
            // Exact size exists in a 500-node random tree for small targets.
            assert_eq!(q.len() as u32, target, "target {target}");
        }
    }

    #[test]
    fn random_query_is_a_real_subtree() {
        let mut dict = LabelDict::new();
        let doc = random_tree(
            &mut dict,
            &RandomTreeConfig {
                seed: 4,
                nodes: 300,
                ..Default::default()
            },
        );
        let (q, root) = random_query(&doc, 10, 7);
        assert_eq!(q, doc.subtree(root));
    }

    #[test]
    fn random_query_caps_at_document() {
        let mut dict = LabelDict::new();
        let doc = random_tree(
            &mut dict,
            &RandomTreeConfig {
                seed: 5,
                nodes: 20,
                ..Default::default()
            },
        );
        let (q, root) = random_query(&doc, 10_000, 1);
        assert_eq!(root, doc.root());
        assert_eq!(q.len(), 20);
    }

    #[test]
    fn deterministic() {
        let mut d1 = LabelDict::new();
        let mut d2 = LabelDict::new();
        let cfg = RandomTreeConfig {
            seed: 11,
            nodes: 64,
            ..Default::default()
        };
        assert_eq!(random_tree(&mut d1, &cfg), random_tree(&mut d2, &cfg));
    }
}
