//! An XMark-like synthetic document generator (substitute for the XMark
//! benchmark data [25] used in Sec. VII-A).
//!
//! Reproduces the *shape* properties the experiments depend on: the
//! auction-site schema (regions/items, people, open and closed auctions,
//! categories), a fixed height of 13 that does not grow with document
//! size, a linear relation between "document size" and node count, and
//! record subtrees of a few dozen nodes with recursive `parlist`
//! descriptions providing the depth. Text content is Zipf-distributed.
//!
//! Documents are parameterized by **node count**; the paper's 112 MB
//! XMark document has ≈3.4 M nodes (≈30 K nodes per MB), which
//! [`nodes_for_mb`] encodes so experiments can use the paper's x-axes.

use crate::gen::GenCtx;
use crate::words::WordSampler;
use rand::Rng;
use tasm_tree::{LabelDict, Tree};

/// Configuration for the XMark-like generator.
#[derive(Debug, Clone)]
pub struct XMarkConfig {
    /// RNG seed; same seed + target = identical document.
    pub seed: u64,
    /// Approximate number of nodes to generate (within one record).
    pub target_nodes: usize,
}

impl XMarkConfig {
    /// Convenience constructor.
    pub fn new(seed: u64, target_nodes: usize) -> Self {
        XMarkConfig { seed, target_nodes }
    }
}

/// Nodes-per-megabyte calibration: the paper's XMark documents have a
/// linear size↔nodes relation (Sec. VII-A); 112 MB ≈ 3.4 M nodes.
pub const NODES_PER_MB: usize = 30_357;

/// Approximate node count of an XMark document of `mb` megabytes.
pub fn nodes_for_mb(mb: usize) -> usize {
    mb * NODES_PER_MB
}

const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

/// Generates an XMark-like document of roughly `config.target_nodes` nodes.
pub fn xmark_tree(dict: &mut LabelDict, config: &XMarkConfig) -> Tree {
    let words = WordSampler::new(1000, "w", 1.0);
    let mut g = GenCtx::new(dict, config.seed);
    let budget = config.target_nodes.max(60);

    g.start("site");

    // Budget shares per container, mirroring XMark's rough proportions.
    let items_budget = budget * 45 / 100;
    let people_budget = budget * 20 / 100;
    let open_budget = budget * 15 / 100;
    let closed_budget = budget * 10 / 100;
    // Remainder: categories.

    let mut item_id = 0usize;
    g.start("regions");
    for (ri, region) in REGIONS.iter().enumerate() {
        g.start(region);
        let region_budget = g.produced() + (items_budget / REGIONS.len()).max(40);
        while g.produced() < region_budget {
            item(&mut g, &words, item_id, ri);
            item_id += 1;
        }
        g.end();
    }
    g.end();

    let stop = g.produced() + people_budget;
    g.start("people");
    let mut pid = 0usize;
    while g.produced() < stop {
        person(&mut g, &words, pid);
        pid += 1;
    }
    g.end();

    let stop = g.produced() + open_budget;
    g.start("open_auctions");
    let mut aid = 0usize;
    while g.produced() < stop {
        open_auction(&mut g, &words, aid, pid.max(1), item_id.max(1));
        aid += 1;
    }
    g.end();

    let stop = g.produced() + closed_budget;
    g.start("closed_auctions");
    let mut cid = 0usize;
    while g.produced() < stop {
        closed_auction(&mut g, &words, cid, pid.max(1), item_id.max(1));
        cid += 1;
    }
    g.end();

    g.start("categories");
    let mut cat = 0usize;
    while g.produced() < budget {
        category(&mut g, &words, cat);
        cat += 1;
    }
    g.end();

    g.end(); // site
    g.finish()
        .expect("generator produces a single balanced tree")
}

/// `description` with a recursive parlist: provides XMark's fixed depth.
/// `levels` parlist levels remain (2 at items, giving the height-13 paths:
/// site/regions/region/item/description/parlist/listitem/parlist/listitem/
/// text ≈ 9 + mailbox/mail adds more).
fn description(g: &mut GenCtx<'_>, words: &WordSampler, levels: u32) {
    g.start("description");
    parlist(g, words, levels);
    g.end();
}

fn parlist(g: &mut GenCtx<'_>, words: &WordSampler, levels: u32) {
    g.start("parlist");
    let items = g.rng.gen_range(1..=2);
    for _ in 0..items {
        g.start("listitem");
        if levels > 0 && g.rng.gen_bool(0.4) {
            parlist(g, words, levels - 1);
        } else {
            let s = words.sentence(&mut g.rng, 2, 6);
            g.field("text", &s);
        }
        g.end();
    }
    g.end();
}

fn item(g: &mut GenCtx<'_>, words: &WordSampler, id: usize, region: usize) {
    g.start("item");
    g.attr("id", &format!("item{id}"));
    g.field("location", &format!("country{}", region));
    let v = format!("{}", g.rng.gen_range(1..5));
    g.field("quantity", &v);
    let name = words.sentence(&mut g.rng, 1, 3);
    g.field("name", &name);
    g.start("payment");
    g.text("Creditcard");
    g.end();
    description(g, words, 2);
    g.leaf("shipping");
    let ncat = g.rng.gen_range(1..=2);
    for c in 0..ncat {
        g.start("incategory");
        g.attr("category", &format!("category{}", (id + c) % 97));
        g.end();
    }
    if g.rng.gen_bool(0.3) {
        g.start("mailbox");
        let mails = g.rng.gen_range(1..=2);
        for m in 0..mails {
            g.start("mail");
            g.field("from", &format!("person{}", (id + m) % 311));
            g.field("to", &format!("person{}", (id + m + 1) % 311));
            g.field(
                "date",
                &format!("{:02}/{:02}/2000", 1 + m % 12, 1 + id % 28),
            );
            description(g, words, 1);
            g.end();
        }
        g.end();
    }
    g.end();
}

fn person(g: &mut GenCtx<'_>, words: &WordSampler, id: usize) {
    g.start("person");
    g.attr("id", &format!("person{id}"));
    let name = words.sentence(&mut g.rng, 2, 2);
    g.field("name", &name);
    g.field("emailaddress", &format!("mailto:{}@example.org", id));
    if g.rng.gen_bool(0.5) {
        g.field("phone", &format!("+1 ({}) {}", id % 999, id % 99999));
    }
    if g.rng.gen_bool(0.6) {
        g.start("address");
        let v = words.sentence(&mut g.rng, 2, 3);
        g.field("street", &v);
        let v = words.word(&mut g.rng);
        g.field("city", &v);
        g.field("country", "United States");
        g.field("zipcode", &format!("{}", 10000 + id % 89999));
        g.end();
    }
    if g.rng.gen_bool(0.7) {
        g.start("profile");
        g.attr("income", &format!("{}", 20000 + (id * 37) % 80000));
        let ints = g.rng.gen_range(0..=3);
        for c in 0..ints {
            g.start("interest");
            g.attr("category", &format!("category{}", (id + c) % 97));
            g.end();
        }
        g.field("education", "Graduate School");
        g.field("business", if id.is_multiple_of(2) { "Yes" } else { "No" });
        g.end();
    }
    if g.rng.gen_bool(0.4) {
        g.start("watches");
        let n = g.rng.gen_range(1..=3);
        for w in 0..n {
            g.start("watch");
            g.attr("open_auction", &format!("open_auction{}", (id + w) % 131));
            g.end();
        }
        g.end();
    }
    g.end();
}

fn open_auction(
    g: &mut GenCtx<'_>,
    words: &WordSampler,
    id: usize,
    n_people: usize,
    n_items: usize,
) {
    g.start("open_auction");
    g.attr("id", &format!("open_auction{id}"));
    let v = format!("{}.{:02}", g.rng.gen_range(1..300), id % 100);
    g.field("initial", &v);
    let bidders = g.rng.gen_range(0..=3);
    for b in 0..bidders {
        g.start("bidder");
        g.field(
            "date",
            &format!("{:02}/{:02}/2000", 1 + b % 12, 1 + id % 28),
        );
        g.field("time", &format!("{:02}:{:02}:00", b % 24, id % 60));
        g.start("personref");
        g.attr("person", &format!("person{}", (id + b) % n_people));
        g.end();
        g.field("increase", &format!("{}.00", 1 + b * 3));
        g.end();
    }
    let v = format!("{}.00", g.rng.gen_range(1..500));
    g.field("current", &v);
    g.start("itemref");
    g.attr("item", &format!("item{}", id % n_items));
    g.end();
    g.start("seller");
    g.attr("person", &format!("person{}", (id * 7) % n_people));
    g.end();
    g.start("annotation");
    g.start("author");
    g.attr("person", &format!("person{}", (id * 3) % n_people));
    g.end();
    description(g, words, 1);
    g.field("happiness", &format!("{}", 1 + id % 10));
    g.end();
    g.field("quantity", "1");
    g.field("type", "Regular");
    g.start("interval");
    g.field("start", "01/01/2000");
    g.field("end", "12/31/2000");
    g.end();
    g.end();
}

fn closed_auction(
    g: &mut GenCtx<'_>,
    words: &WordSampler,
    id: usize,
    n_people: usize,
    n_items: usize,
) {
    g.start("closed_auction");
    g.start("seller");
    g.attr("person", &format!("person{}", id % n_people));
    g.end();
    g.start("buyer");
    g.attr("person", &format!("person{}", (id + 1) % n_people));
    g.end();
    g.start("itemref");
    g.attr("item", &format!("item{}", id % n_items));
    g.end();
    let v = format!("{}.00", g.rng.gen_range(1..500));
    g.field("price", &v);
    g.field(
        "date",
        &format!("{:02}/{:02}/2000", 1 + id % 12, 1 + id % 28),
    );
    g.field("quantity", "1");
    g.field("type", "Regular");
    g.start("annotation");
    g.start("author");
    g.attr("person", &format!("person{}", (id * 5) % n_people));
    g.end();
    description(g, words, 1);
    g.end();
    g.end();
}

fn category(g: &mut GenCtx<'_>, words: &WordSampler, id: usize) {
    g.start("category");
    g.attr("id", &format!("category{id}"));
    let name = words.word(&mut g.rng);
    g.field("name", &name);
    description(g, words, 1);
    g.end();
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_tree::stats::TreeStats;

    #[test]
    fn hits_target_node_count_roughly() {
        let mut dict = LabelDict::new();
        for target in [1000usize, 10_000, 50_000] {
            let t = xmark_tree(&mut dict, &XMarkConfig::new(1, target));
            let n = t.len();
            assert!(
                n >= target && n <= target + target / 4 + 600,
                "target {target}, got {n}"
            );
        }
    }

    #[test]
    fn height_is_stable_across_sizes() {
        // The paper: XMark height is 13 for all document sizes.
        let mut dict = LabelDict::new();
        let h1 = xmark_tree(&mut dict, &XMarkConfig::new(1, 2_000)).height();
        let h2 = xmark_tree(&mut dict, &XMarkConfig::new(1, 40_000)).height();
        assert_eq!(h1, h2, "height must not grow with size");
        assert!(
            (9..=14).contains(&h1),
            "height {h1} out of XMark-like range"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut d1 = LabelDict::new();
        let mut d2 = LabelDict::new();
        let a = xmark_tree(&mut d1, &XMarkConfig::new(7, 5_000));
        let b = xmark_tree(&mut d2, &XMarkConfig::new(7, 5_000));
        assert_eq!(a, b);
        let c = xmark_tree(&mut d2, &XMarkConfig::new(8, 5_000));
        assert_ne!(a, c);
    }

    #[test]
    fn shape_is_document_like() {
        let mut dict = LabelDict::new();
        let t = xmark_tree(&mut dict, &XMarkConfig::new(3, 20_000));
        let s = TreeStats::of(&t);
        assert!(s.leaves * 3 >= s.nodes, "document trees are leaf-heavy");
        assert!(s.max_fanout > 20, "containers have many records");
        assert!(s.distinct_labels > 100, "text content diversity");
    }

    #[test]
    fn nodes_for_mb_is_linear() {
        assert_eq!(nodes_for_mb(112) / 1000, 3_399);
        assert_eq!(nodes_for_mb(224), 2 * nodes_for_mb(112));
    }
}
