//! Shared generator plumbing: a budgeted tree-building context.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tasm_tree::{LabelDict, Tree, TreeBuilder, TreeError};

/// A tree-building context that tracks how many nodes have been produced,
/// so record-oriented generators can stop near a node budget.
pub struct GenCtx<'d> {
    /// Random source (seeded; generators are deterministic per seed).
    pub rng: StdRng,
    /// Shared label dictionary.
    pub dict: &'d mut LabelDict,
    builder: TreeBuilder,
}

impl<'d> GenCtx<'d> {
    /// Creates a context seeded with `seed`.
    pub fn new(dict: &'d mut LabelDict, seed: u64) -> Self {
        GenCtx {
            rng: StdRng::seed_from_u64(seed),
            dict,
            builder: TreeBuilder::new(),
        }
    }

    /// Opens an element node labeled `name`.
    pub fn start(&mut self, name: &str) {
        let id = self.dict.intern(name);
        self.builder.start(id);
    }

    /// Closes the current element.
    pub fn end(&mut self) {
        self.builder.end().expect("generator keeps tags balanced");
    }

    /// Adds a leaf labeled `name` (an element without children).
    pub fn leaf(&mut self, name: &str) {
        let id = self.dict.intern(name);
        self.builder.leaf(id);
    }

    /// Adds a text leaf.
    pub fn text(&mut self, content: &str) {
        self.leaf(content);
    }

    /// Adds `<name>text</name>` (2 nodes).
    pub fn field(&mut self, name: &str, content: &str) {
        self.start(name);
        self.text(content);
        self.end();
    }

    /// Adds an attribute node `@name` with a text-value child (2 nodes),
    /// mirroring the XML node mapping.
    pub fn attr(&mut self, name: &str, value: &str) {
        self.start(&format!("@{name}"));
        self.text(value);
        self.end();
    }

    /// Nodes completed so far (closed elements and leaves).
    pub fn completed(&self) -> usize {
        self.builder.completed()
    }

    /// Total nodes produced so far including currently open elements.
    pub fn produced(&self) -> usize {
        self.builder.completed() + self.builder.depth()
    }

    /// Finishes the tree.
    pub fn finish(self) -> Result<Tree, TreeError> {
        self.builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_and_attr_shapes() {
        let mut dict = LabelDict::new();
        let mut g = GenCtx::new(&mut dict, 0);
        g.start("article");
        g.attr("key", "a/1");
        g.field("title", "X1");
        g.end();
        let t = g.finish().unwrap();
        // article, @key, "a/1", title, "X1" = 5 nodes.
        assert_eq!(t.len(), 5);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn produced_counts_open_elements() {
        let mut dict = LabelDict::new();
        let mut g = GenCtx::new(&mut dict, 0);
        g.start("a");
        g.start("b");
        assert_eq!(g.completed(), 0);
        assert_eq!(g.produced(), 2);
        g.leaf("c");
        assert_eq!(g.produced(), 3);
        g.end();
        g.end();
        assert_eq!(g.finish().unwrap().len(), 3);
    }

    #[test]
    fn deterministic_rng() {
        let mut d1 = LabelDict::new();
        let mut d2 = LabelDict::new();
        use rand::Rng;
        let mut a = GenCtx::new(&mut d1, 42);
        let mut b = GenCtx::new(&mut d2, 42);
        let xa: u64 = a.rng.gen();
        let xb: u64 = b.rng.gen();
        assert_eq!(xa, xb);
    }
}
