//! A PSD-like protein-sequence document generator (substitute for the
//! PSD7003 dataset of Sec. VII-B: 37 M nodes, 683 MB, height 7).
//!
//! ProteinEntry records are larger and deeper than DBLP entries (nested
//! reference/refinfo/authors structures reaching depth 7), which is what
//! differentiates the Fig. 11a/b scatter from the DBLP histogram: a wider
//! spread of relevant-subtree sizes below τ.

use crate::gen::GenCtx;
use crate::words::WordSampler;
use rand::Rng;
use tasm_tree::{LabelDict, Tree};

/// Configuration for the PSD-like generator.
#[derive(Debug, Clone)]
pub struct PsdConfig {
    /// RNG seed.
    pub seed: u64,
    /// Approximate number of nodes.
    pub target_nodes: usize,
}

impl PsdConfig {
    /// Convenience constructor.
    pub fn new(seed: u64, target_nodes: usize) -> Self {
        PsdConfig { seed, target_nodes }
    }
}

/// Nodes-per-megabyte calibration for PSD: 683 MB ≈ 37 M nodes.
pub const NODES_PER_MB: usize = 54_173;

/// Generates a PSD-like document of roughly `config.target_nodes` nodes.
pub fn psd_tree(dict: &mut LabelDict, config: &PsdConfig) -> Tree {
    let words = WordSampler::new(2500, "p", 1.0);
    let authors = WordSampler::new(900, "Auth_", 0.9);
    let mut g = GenCtx::new(dict, config.seed);
    let budget = config.target_nodes.max(60);

    g.start("ProteinDatabase");
    let mut id = 0usize;
    while g.produced() < budget {
        protein_entry(&mut g, &words, &authors, id);
        id += 1;
    }
    g.end();
    g.finish()
        .expect("generator produces a single balanced tree")
}

fn protein_entry(g: &mut GenCtx<'_>, words: &WordSampler, authors: &WordSampler, id: usize) {
    g.start("ProteinEntry");
    g.attr("id", &format!("PSD{:07}", id));

    g.start("header");
    g.field("uid", &format!("{:07}", id));
    let n_acc = g.rng.gen_range(1..=2);
    for a in 0..n_acc {
        g.field("accession", &format!("A{:05}{}", id % 99999, a));
    }
    g.end();

    g.start("protein");
    let name = words.sentence(&mut g.rng, 2, 5);
    g.field("name", &name);
    if g.rng.gen_bool(0.6) {
        g.start("classification");
        let sf = words.sentence(&mut g.rng, 1, 3);
        g.field("superfamily", &sf);
        g.end();
    }
    g.end();

    g.start("organism");
    let src = words.sentence(&mut g.rng, 1, 2);
    g.field("source", &src);
    if g.rng.gen_bool(0.5) {
        let common = words.word(&mut g.rng);
        g.field("common", &common);
    }
    g.field("formal", "Homo sapiens");
    g.end();

    let n_refs = g.rng.gen_range(1..=3);
    for r in 0..n_refs {
        g.start("reference");
        g.start("refinfo");
        g.attr("refid", &format!("{id}.{r}"));
        g.start("authors");
        let n_auth = g.rng.gen_range(1..=5);
        for _ in 0..n_auth {
            let a = authors.word(&mut g.rng);
            g.field("author", &a);
        }
        g.end();
        let cit = words.sentence(&mut g.rng, 3, 7);
        g.field("citation", &cit);
        let v = format!("{}", g.rng.gen_range(1..300));
        g.field("volume", &v);
        let v = format!("{}", g.rng.gen_range(1975..2003));
        g.field("year", &v);
        g.end();
        g.start("accinfo");
        g.field("accession", &format!("B{:05}{}", (id + r) % 99999, r));
        g.field("mol-type", "complete");
        g.end();
        g.end();
    }

    if g.rng.gen_bool(0.5) {
        g.start("genetics");
        let gene = words.word(&mut g.rng);
        g.field("gene", &gene);
        g.end();
    }

    if g.rng.gen_bool(0.7) {
        g.start("keywords");
        let n_kw = g.rng.gen_range(1..=4);
        for _ in 0..n_kw {
            let kw = words.word(&mut g.rng);
            g.field("keyword", &kw);
        }
        g.end();
    }

    let n_feat = g.rng.gen_range(0..=3);
    for f in 0..n_feat {
        g.start("feature");
        g.field("seq-spec", &format!("{}-{}", f * 10 + 1, f * 10 + 9));
        g.field("status", "predicted");
        if g.rng.gen_bool(0.4) {
            let d = words.sentence(&mut g.rng, 2, 4);
            g.field("description", &d);
        }
        g.end();
    }

    g.start("summary");
    let v = format!("{}", g.rng.gen_range(80..900));
    g.field("length", &v);
    g.field("type", "complete");
    g.end();

    let seq = words.sentence(&mut g.rng, 1, 2);
    g.field("sequence", &seq);

    g.end();
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_tree::stats::TreeStats;

    #[test]
    fn hits_target_node_count() {
        let mut dict = LabelDict::new();
        let t = psd_tree(&mut dict, &PsdConfig::new(1, 30_000));
        let n = t.len();
        assert!((30_000..30_300).contains(&n), "got {n}");
    }

    #[test]
    fn height_matches_psd() {
        // Paper: PSD height is 7.
        let mut dict = LabelDict::new();
        let t = psd_tree(&mut dict, &PsdConfig::new(2, 20_000));
        assert!((5..=8).contains(&t.height()), "height {}", t.height());
    }

    #[test]
    fn entries_are_larger_than_dblp_records() {
        let mut dict = LabelDict::new();
        let t = psd_tree(&mut dict, &PsdConfig::new(3, 20_000));
        let entry = dict.get("ProteinEntry").unwrap();
        let sizes: Vec<u32> = t
            .nodes()
            .filter(|&i| t.label(i) == entry)
            .map(|i| t.size(i))
            .collect();
        let avg = sizes.iter().sum::<u32>() as f64 / sizes.len() as f64;
        assert!((40.0..120.0).contains(&avg), "avg entry size {avg}");
    }

    #[test]
    fn shape_summary() {
        let mut dict = LabelDict::new();
        let t = psd_tree(&mut dict, &PsdConfig::new(4, 10_000));
        let s = TreeStats::of(&t);
        assert!(s.leaves * 5 >= s.nodes * 2);
        assert!(s.max_fanout >= 50, "root should have many entries");
    }

    #[test]
    fn deterministic() {
        let mut d1 = LabelDict::new();
        let mut d2 = LabelDict::new();
        assert_eq!(
            psd_tree(&mut d1, &PsdConfig::new(5, 3_000)),
            psd_tree(&mut d2, &PsdConfig::new(5, 3_000))
        );
    }
}
