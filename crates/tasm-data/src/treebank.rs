//! A Treebank-like generator: deep, recursive parse trees.
//!
//! The paper's datasets are shallow and wide ("XML documents tend to be
//! shallow and wide [19]"), which is the regime where Zhang–Shasha is
//! near-linear. Linguistic corpora such as the Penn Treebank are the
//! opposite — heights in the dozens — and are the classic stress case for
//! tree edit distance implementations. This generator produces
//! sentence-like documents from a small probabilistic grammar so the test
//! suite and the benches can cover the deep-tree regime too.

use crate::gen::GenCtx;
use crate::words::WordSampler;
use rand::Rng;
use tasm_tree::{LabelDict, Tree};

/// Configuration for the Treebank-like generator.
#[derive(Debug, Clone)]
pub struct TreebankConfig {
    /// RNG seed.
    pub seed: u64,
    /// Approximate number of nodes.
    pub target_nodes: usize,
    /// Maximum recursion depth per sentence (real Treebank ~36).
    pub max_depth: u32,
}

impl TreebankConfig {
    /// Convenience constructor with the Treebank-like default depth.
    pub fn new(seed: u64, target_nodes: usize) -> Self {
        TreebankConfig {
            seed,
            target_nodes,
            max_depth: 30,
        }
    }
}

/// Generates a Treebank-like document of roughly `config.target_nodes`
/// nodes: a `corpus` root of `S` sentences with recursive NP/VP/PP/SBAR
/// structure and word leaves.
pub fn treebank_tree(dict: &mut LabelDict, config: &TreebankConfig) -> Tree {
    let words = WordSampler::new(3000, "tok", 1.1);
    let mut g = GenCtx::new(dict, config.seed);
    let budget = config.target_nodes.max(30);
    g.start("corpus");
    while g.produced() < budget {
        sentence(&mut g, &words, config.max_depth);
    }
    g.end();
    g.finish()
        .expect("generator produces a single balanced tree")
}

fn sentence(g: &mut GenCtx<'_>, words: &WordSampler, max_depth: u32) {
    g.start("S");
    np(g, words, max_depth.saturating_sub(1));
    vp(g, words, max_depth.saturating_sub(1));
    g.end();
}

fn np(g: &mut GenCtx<'_>, words: &WordSampler, depth: u32) {
    g.start("NP");
    if depth > 0 && g.rng.gen_bool(0.3) {
        // Recursive NP with a PP or SBAR modifier.
        np(g, words, depth - 1);
        if g.rng.gen_bool(0.5) {
            pp(g, words, depth - 1);
        } else {
            g.start("SBAR");
            sentence_body(g, words, depth - 1);
            g.end();
        }
    } else {
        if g.rng.gen_bool(0.6) {
            let w = words.word(&mut g.rng);
            g.field("DT", &w);
        }
        let w = words.word(&mut g.rng);
        g.field("NN", &w);
    }
    g.end();
}

fn vp(g: &mut GenCtx<'_>, words: &WordSampler, depth: u32) {
    g.start("VP");
    let w = words.word(&mut g.rng);
    g.field("VB", &w);
    if depth > 0 && g.rng.gen_bool(0.55) {
        np(g, words, depth - 1);
    }
    if depth > 0 && g.rng.gen_bool(0.25) {
        pp(g, words, depth - 1);
    }
    g.end();
}

fn pp(g: &mut GenCtx<'_>, words: &WordSampler, depth: u32) {
    g.start("PP");
    let w = words.word(&mut g.rng);
    g.field("IN", &w);
    np(g, words, depth.saturating_sub(1));
    g.end();
}

fn sentence_body(g: &mut GenCtx<'_>, words: &WordSampler, depth: u32) {
    np(g, words, depth);
    vp(g, words, depth);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_tree::stats::TreeStats;

    #[test]
    fn hits_target_node_count_roughly() {
        let mut dict = LabelDict::new();
        let t = treebank_tree(&mut dict, &TreebankConfig::new(1, 20_000));
        let n = t.len();
        assert!((20_000..20_400).contains(&n), "got {n}");
    }

    #[test]
    fn trees_are_deep() {
        let mut dict = LabelDict::new();
        let t = treebank_tree(&mut dict, &TreebankConfig::new(2, 50_000));
        assert!(t.height() >= 15, "treebank-like height, got {}", t.height());
    }

    #[test]
    fn depth_is_capped() {
        let mut dict = LabelDict::new();
        let cfg = TreebankConfig {
            seed: 3,
            target_nodes: 50_000,
            max_depth: 8,
        };
        let t = treebank_tree(&mut dict, &cfg);
        // Each grammar level adds a handful of tree levels; 8 grammar
        // levels stay well below 50.
        assert!(t.height() < 50, "got {}", t.height());
    }

    #[test]
    fn shape_contrasts_with_dblp() {
        let mut dict = LabelDict::new();
        let tb = treebank_tree(&mut dict, &TreebankConfig::new(4, 20_000));
        let db = crate::dblp::dblp_tree(&mut dict, &crate::dblp::DblpConfig::new(4, 20_000));
        let s_tb = TreeStats::of(&tb);
        let s_db = TreeStats::of(&db);
        assert!(
            s_tb.height > 3 * s_db.height,
            "{} vs {}",
            s_tb.height,
            s_db.height
        );
        assert!(s_tb.max_fanout < s_db.max_fanout);
    }

    #[test]
    fn deterministic() {
        let mut d1 = LabelDict::new();
        let mut d2 = LabelDict::new();
        assert_eq!(
            treebank_tree(&mut d1, &TreebankConfig::new(9, 5_000)),
            treebank_tree(&mut d2, &TreebankConfig::new(9, 5_000))
        );
    }
}
