//! A DBLP-like bibliographic document generator (substitute for the real
//! DBLP snapshot of Sec. VII-B: 26 M nodes, 476 MB, height 6).
//!
//! The property that matters for the pruning experiments is extreme
//! shallow-and-wide shape: one root with on the order of a million small
//! record children, >99% of which are below τ = 50 (Sec. V-B). Records
//! mimic DBLP entry types with realistic field mixes; the typical article
//! subtree has ≈15 nodes, matching the paper's "typical query" size.

use crate::gen::GenCtx;
use crate::words::WordSampler;
use rand::Rng;
use tasm_tree::{LabelDict, Tree};

/// Configuration for the DBLP-like generator.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// RNG seed.
    pub seed: u64,
    /// Approximate number of nodes.
    pub target_nodes: usize,
}

impl DblpConfig {
    /// Convenience constructor.
    pub fn new(seed: u64, target_nodes: usize) -> Self {
        DblpConfig { seed, target_nodes }
    }
}

/// Nodes-per-megabyte calibration for DBLP: 476 MB ≈ 26 M nodes.
pub const NODES_PER_MB: usize = 54_621;

/// Generates a DBLP-like document of roughly `config.target_nodes` nodes.
pub fn dblp_tree(dict: &mut LabelDict, config: &DblpConfig) -> Tree {
    let words = WordSampler::new(4000, "t", 1.05);
    let authors = WordSampler::new(1200, "Author_", 0.9);
    let mut g = GenCtx::new(dict, config.seed);
    let budget = config.target_nodes.max(20);

    g.start("dblp");
    let mut id = 0usize;
    while g.produced() < budget {
        match g.rng.gen_range(0..100) {
            0..=54 => article(&mut g, &words, &authors, id),
            55..=84 => inproceedings(&mut g, &words, &authors, id),
            85..=92 => proceedings(&mut g, &words, id),
            93..=97 => book(&mut g, &words, &authors, id),
            _ => phdthesis(&mut g, &words, &authors, id),
        }
        id += 1;
    }
    g.end();
    g.finish()
        .expect("generator produces a single balanced tree")
}

fn year(g: &mut GenCtx<'_>) -> String {
    format!("{}", g.rng.gen_range(1970..2010))
}

fn pages(g: &mut GenCtx<'_>) -> String {
    let a = g.rng.gen_range(1..900);
    format!("{}-{}", a, a + g.rng.gen_range(5..25))
}

fn article(g: &mut GenCtx<'_>, words: &WordSampler, authors: &WordSampler, id: usize) {
    g.start("article");
    g.attr("key", &format!("journals/j{}/a{id}", id % 40));
    g.attr("mdate", "2002-01-03");
    let n_auth = g.rng.gen_range(1..=4);
    for _ in 0..n_auth {
        let a = authors.word(&mut g.rng);
        g.field("author", &a);
    }
    let title = words.sentence(&mut g.rng, 4, 10);
    g.field("title", &title);
    let p = pages(g);
    g.field("pages", &p);
    let y = year(g);
    g.field("year", &y);
    g.field("volume", &format!("{}", id % 60 + 1));
    g.field("journal", &format!("Journal {}", id % 40));
    if g.rng.gen_bool(0.5) {
        g.field("number", &format!("{}", id % 12 + 1));
    }
    if g.rng.gen_bool(0.6) {
        g.field("ee", &format!("db/journals/j{}/a{id}.html", id % 40));
    }
    if g.rng.gen_bool(0.4) {
        g.field("url", &format!("db/journals/j{}/#{id}", id % 40));
    }
    g.end();
}

fn inproceedings(g: &mut GenCtx<'_>, words: &WordSampler, authors: &WordSampler, id: usize) {
    g.start("inproceedings");
    g.attr("key", &format!("conf/c{}/p{id}", id % 50));
    let n_auth = g.rng.gen_range(1..=3);
    for _ in 0..n_auth {
        let a = authors.word(&mut g.rng);
        g.field("author", &a);
    }
    let title = words.sentence(&mut g.rng, 4, 9);
    g.field("title", &title);
    let p = pages(g);
    g.field("pages", &p);
    let y = year(g);
    g.field("year", &y);
    g.field("crossref", &format!("conf/c{}/2000", id % 50));
    g.field("booktitle", &format!("CONF {}", id % 50));
    if g.rng.gen_bool(0.5) {
        g.field("ee", &format!("db/conf/c{}/p{id}.html", id % 50));
    }
    g.end();
}

fn proceedings(g: &mut GenCtx<'_>, words: &WordSampler, id: usize) {
    g.start("proceedings");
    g.attr("key", &format!("conf/c{}/2000", id % 50));
    let ed = words.word(&mut g.rng);
    g.field("editor", &ed);
    let title = words.sentence(&mut g.rng, 5, 12);
    g.field("title", &title);
    g.field("booktitle", &format!("CONF {}", id % 50));
    g.field("publisher", "Springer");
    let y = year(g);
    g.field("year", &y);
    g.field("isbn", &format!("3-540-{:05}-{}", id % 99999, id % 10));
    g.end();
}

fn book(g: &mut GenCtx<'_>, words: &WordSampler, authors: &WordSampler, id: usize) {
    g.start("book");
    g.attr("key", &format!("books/b{id}"));
    let n_auth = g.rng.gen_range(1..=2);
    for _ in 0..n_auth {
        let a = authors.word(&mut g.rng);
        g.field("author", &a);
    }
    let title = words.sentence(&mut g.rng, 3, 8);
    g.field("title", &title);
    g.field("publisher", "Morgan Kaufmann");
    let y = year(g);
    g.field("year", &y);
    g.end();
}

fn phdthesis(g: &mut GenCtx<'_>, words: &WordSampler, authors: &WordSampler, id: usize) {
    g.start("phdthesis");
    g.attr("key", &format!("phd/t{id}"));
    let a = authors.word(&mut g.rng);
    g.field("author", &a);
    let title = words.sentence(&mut g.rng, 4, 10);
    g.field("title", &title);
    g.field("school", &format!("University {}", id % 25));
    let y = year(g);
    g.field("year", &y);
    g.end();
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_tree::stats::{fraction_below, TreeStats};
    use tasm_tree::NodeId;

    #[test]
    fn hits_target_node_count() {
        let mut dict = LabelDict::new();
        let t = dblp_tree(&mut dict, &DblpConfig::new(1, 30_000));
        let n = t.len();
        assert!((30_000..31_000).contains(&n), "got {n}");
    }

    #[test]
    fn shallow_and_wide_like_dblp() {
        let mut dict = LabelDict::new();
        let t = dblp_tree(&mut dict, &DblpConfig::new(2, 20_000));
        let s = TreeStats::of(&t);
        assert!(
            s.height <= 4,
            "DBLP-like documents are shallow: {}",
            s.height
        );
        // Root fanout is the number of records: ~ n / 17.
        assert!(t.fanout(t.root()) > 500);
    }

    #[test]
    fn paper_premise_99_percent_below_tau_50() {
        // Sec. V-B: over 99% of the root's subtrees are smaller than τ=50.
        let mut dict = LabelDict::new();
        let t = dblp_tree(&mut dict, &DblpConfig::new(3, 20_000));
        assert!(fraction_below(&t, 50) > 0.99);
    }

    #[test]
    fn typical_article_has_about_15_nodes() {
        let mut dict = LabelDict::new();
        let t = dblp_tree(&mut dict, &DblpConfig::new(4, 20_000));
        let article = dict.get("article").unwrap();
        let sizes: Vec<u32> = t
            .nodes()
            .filter(|&i| t.label(i) == article)
            .map(|i| t.size(i))
            .collect();
        assert!(!sizes.is_empty());
        let avg = sizes.iter().sum::<u32>() as f64 / sizes.len() as f64;
        assert!((12.0..25.0).contains(&avg), "avg article size {avg}");
    }

    #[test]
    fn records_follow_root() {
        let mut dict = LabelDict::new();
        let t = dblp_tree(&mut dict, &DblpConfig::new(5, 5_000));
        assert_eq!(dict.resolve(t.label(t.root())), "dblp");
        for child in t.children(NodeId::new(t.len() as u32)) {
            let l = dict.resolve(t.label(child));
            assert!(
                [
                    "article",
                    "inproceedings",
                    "proceedings",
                    "book",
                    "phdthesis"
                ]
                .contains(&l),
                "unexpected record {l}"
            );
        }
    }

    #[test]
    fn deterministic() {
        let mut d1 = LabelDict::new();
        let mut d2 = LabelDict::new();
        assert_eq!(
            dblp_tree(&mut d1, &DblpConfig::new(9, 3_000)),
            dblp_tree(&mut d2, &DblpConfig::new(9, 3_000))
        );
    }
}
