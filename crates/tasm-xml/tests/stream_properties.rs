//! Property tests for the XML → postorder-queue bridge: the streaming
//! [`XmlPostorderQueue`] and the materialized [`Tree`] built by an
//! *independent* construction must emit identical `(label, size)`
//! postorder sequences for generated XML — attributes, text, entity
//! escaping and every [`XmlTreeConfig`] variant included — and a stream
//! truncated mid-document must surface an error after emitting a strict
//! prefix of the full sequence.
//!
//! The expected tree is built with [`TreeBuilder`] directly from the
//! generated document model (*not* via the parser), so the test is a
//! real differential: parser + queue on one side, the Sec. VII node
//! model rules on the other.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tasm_tree::{LabelDict, PostorderQueue, Tree, TreeBuilder};
use tasm_xml::escape::{escape_attr, escape_text};
use tasm_xml::{XmlPostorderQueue, XmlTreeConfig};

/// A generated XML node: the document model of `tasm_xml::stream`.
#[derive(Debug, Clone)]
enum Node {
    Elem {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<Node>,
    },
    Text(String),
}

/// Characters for text/attribute values, including entity-escaped ones.
const VALUE_CHARS: &[char] = &['a', 'b', 'z', '0', '&', '<', '>', '"', '\''];

fn gen_value(rng: &mut StdRng, allow_empty: bool) -> String {
    let len = if allow_empty {
        rng.gen_range(0..4)
    } else {
        rng.gen_range(1..4)
    };
    (0..len)
        .map(|_| VALUE_CHARS[rng.gen_range(0..VALUE_CHARS.len())])
        .collect()
}

/// Builds a random element of at most `budget` nodes (`>= 1`); the
/// generator never places two text children adjacently (the parser
/// would merge them into one text node, by design).
fn gen_elem(rng: &mut StdRng, budget: usize, depth: usize) -> Node {
    let name = format!("e{}", rng.gen_range(0..5));
    let n_attrs = rng.gen_range(0..3usize);
    let attrs = (0..n_attrs)
        .map(|i| (format!("a{i}"), gen_value(rng, true)))
        .collect();
    let mut children = Vec::new();
    let mut remaining = budget.saturating_sub(1);
    let mut last_was_text = false;
    while remaining > 0 && depth < 6 && rng.gen_range(0..3) > 0 {
        if !last_was_text && rng.gen_range(0..3) == 0 {
            children.push(Node::Text(gen_value(rng, false)));
            last_was_text = true;
            remaining -= 1;
        } else {
            let sub = rng.gen_range(1..=remaining);
            children.push(gen_elem(rng, sub, depth + 1));
            last_was_text = false;
            remaining -= sub;
        }
    }
    Node::Elem {
        name,
        attrs,
        children,
    }
}

/// Renders the model to XML text (escaping values as a writer must).
fn render(node: &Node, out: &mut String) {
    match node {
        Node::Text(t) => out.push_str(&escape_text(t)),
        Node::Elem {
            name,
            attrs,
            children,
        } => {
            out.push('<');
            out.push_str(name);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_attr(v));
                out.push('"');
            }
            if children.is_empty() && !name.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            for c in children {
                render(c, out);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

/// Builds the expected tree per the Sec. VII node-model rules — the
/// independent side of the differential.
fn build_expected(node: &Node, cfg: &XmlTreeConfig, dict: &mut LabelDict, b: &mut TreeBuilder) {
    match node {
        Node::Text(t) => {
            if cfg.include_text {
                let id = dict.intern(t);
                b.leaf(id);
            }
        }
        Node::Elem {
            name,
            attrs,
            children,
        } => {
            let id = dict.intern(name);
            b.start(id);
            if cfg.include_attributes {
                for (k, v) in attrs {
                    let name_id = dict.intern(&format!("{}{}", cfg.attribute_prefix, k));
                    if v.is_empty() {
                        b.leaf(name_id);
                    } else {
                        let value_id = dict.intern(v);
                        b.start(name_id);
                        b.leaf(value_id);
                        b.end().expect("balanced");
                    }
                }
            }
            for c in children {
                build_expected(c, cfg, dict, b);
            }
            b.end().expect("balanced");
        }
    }
}

/// Resolved `(label, size)` sequence of a queue (also checks it ends
/// cleanly).
fn drain(q: &mut XmlPostorderQueue<'_, &[u8]>) -> Vec<tasm_tree::PostorderEntry> {
    let mut out = Vec::new();
    while let Some(e) = q.dequeue() {
        out.push(e);
    }
    out
}

fn resolved(entries: &[tasm_tree::PostorderEntry], dict: &LabelDict) -> Vec<(String, u32)> {
    entries
        .iter()
        .map(|e| (dict.resolve(e.label).to_string(), e.size))
        .collect()
}

fn tree_resolved(tree: &Tree, dict: &LabelDict) -> Vec<(String, u32)> {
    tree.postorder()
        .map(|(l, s)| (dict.resolve(l).to_string(), s))
        .collect()
}

fn configs() -> Vec<XmlTreeConfig> {
    vec![
        XmlTreeConfig::default(),
        XmlTreeConfig {
            include_attributes: false,
            ..Default::default()
        },
        XmlTreeConfig {
            include_text: false,
            ..Default::default()
        },
        XmlTreeConfig {
            include_attributes: false,
            include_text: false,
            ..Default::default()
        },
        XmlTreeConfig {
            attribute_prefix: "attr:".to_string(),
            ..Default::default()
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn queue_matches_independent_tree_construction(
        seed in any::<u64>(),
        budget in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = gen_elem(&mut rng, budget, 0);
        let mut xml = String::new();
        render(&doc, &mut xml);

        for cfg in configs() {
            // Streaming side.
            let mut dict = LabelDict::new();
            let mut q =
                XmlPostorderQueue::with_config(xml.as_bytes(), &mut dict, cfg.clone());
            let entries = drain(&mut q);
            let err = q.take_error();
            drop(q);
            prop_assert!(err.is_none(), "unexpected error: {:?}", err);
            let got = resolved(&entries, &dict);

            // Independent side: TreeBuilder straight from the model.
            let mut want_dict = LabelDict::new();
            let mut b = TreeBuilder::new();
            build_expected(&doc, &cfg, &mut want_dict, &mut b);
            let want_tree = b.finish().expect("single generated root");
            let want = tree_resolved(&want_tree, &want_dict);

            prop_assert_eq!(&got, &want, "config {:?}\nxml: {}", cfg, xml);
            // And the sizes alone already assemble into the same tree.
            let assembled =
                Tree::from_postorder(entries.iter().map(|e| (e.label, e.size)).collect::<Vec<_>>());
            prop_assert!(assembled.is_ok(), "queue output must be a valid postorder");
        }
    }

    #[test]
    fn truncated_stream_emits_a_prefix_then_errors(
        seed in any::<u64>(),
        budget in 2usize..40,
        cut_choice in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Wrap the generated element so the XML always contains a tag
        // past position 0 — a valid cut point is guaranteed.
        let doc = Node::Elem {
            name: "r".to_string(),
            attrs: Vec::new(),
            children: vec![gen_elem(&mut rng, budget, 0)],
        };
        let mut xml = String::new();
        render(&doc, &mut xml);

        // The full sequence, for the prefix check.
        let mut dict = LabelDict::new();
        let mut q = XmlPostorderQueue::new(xml.as_bytes(), &mut dict);
        let full_entries = drain(&mut q);
        let err = q.take_error();
        drop(q);
        prop_assert!(err.is_none(), "full document must parse: {:?}", err);
        let full = resolved(&full_entries, &dict);

        // Cut at a '<' boundary strictly inside the document: the open
        // root can never be closed, so the stream must error.
        let cuts: Vec<usize> = xml
            .char_indices()
            .filter(|&(i, c)| c == '<' && i > 0)
            .map(|(i, _)| i)
            .collect();
        prop_assert!(!cuts.is_empty());
        let cut = cuts[(cut_choice % cuts.len() as u64) as usize];

        let mut dict = LabelDict::new();
        let mut q = XmlPostorderQueue::new(&xml.as_bytes()[..cut], &mut dict);
        let emitted_entries = drain(&mut q);
        let err = q.take_error();
        drop(q);
        prop_assert!(
            err.is_some(),
            "truncated at {} of {} must error",
            cut,
            xml.len()
        );
        let emitted = resolved(&emitted_entries, &dict);
        prop_assert!(
            emitted.len() < full.len(),
            "truncation cannot produce the whole document"
        );
        prop_assert_eq!(&emitted[..], &full[..emitted.len()], "cut at {}", cut);
    }
}
