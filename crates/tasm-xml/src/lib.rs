//! Streaming XML substrate for TASM (Top-k Approximate Subtree Matching).
//!
//! Written from scratch for the ICDE 2010 reproduction: a pull parser
//! ([`XmlParser`]), entity handling ([`escape`]), an event writer
//! ([`XmlWriter`]) and — most importantly — [`XmlPostorderQueue`], which
//! turns an XML byte stream into the paper's *postorder queue* (Def. 2)
//! with `O(depth)` memory, so `tasm_core::tasm_postorder` can query XML
//! files that never fit in memory.
//!
//! # Quick start
//!
//! ```
//! use tasm_tree::{LabelDict, PostorderQueue};
//! use tasm_xml::XmlPostorderQueue;
//!
//! let xml = "<dblp><article><title>X1</title></article></dblp>";
//! let mut dict = LabelDict::new();
//! let mut queue = XmlPostorderQueue::new(xml.as_bytes(), &mut dict);
//! let first = queue.dequeue().unwrap();
//! // Postorder: the deepest text node comes first.
//! assert_eq!(first.size, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod escape;
mod parser;
mod stream;
mod writer;

pub use error::XmlError;
pub use parser::{Attribute, XmlEvent, XmlParser};
pub use stream::{
    parse_tree, parse_tree_str, parse_tree_with_config, XmlPostorderQueue, XmlTreeConfig,
};
pub use writer::{tree_to_xml, write_tree, XmlWriter};
