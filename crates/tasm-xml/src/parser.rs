//! A streaming (pull) XML parser.
//!
//! Implemented from scratch for this reproduction: the paper's pipeline
//! needs a parser that can drive a postorder queue without materializing
//! the document ("a standard XML parser was used to implement the postorder
//! queues", Sec. VII). The parser is event-based and incremental over any
//! [`BufRead`], holding only the current element path.
//!
//! Scope (documented trade-offs, adequate for data-centric corpora):
//!
//! * elements, attributes, text, CDATA, comments, processing instructions
//!   and DOCTYPE (with internal subset) are recognized;
//! * namespaces are not resolved (prefixes are kept verbatim in names);
//! * unknown entities pass through undecoded (see [`crate::escape`]);
//! * whitespace-only text between elements is skipped.

use std::io::BufRead;

use crate::error::XmlError;
use crate::escape::unescape;

/// An attribute of a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (namespace prefixes kept verbatim).
    pub name: String,
    /// Attribute value with entities resolved.
    pub value: String,
}

/// A parsing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="…">` or `<name/>` (the latter is followed by a matching
    /// [`XmlEvent::EndElement`]).
    StartElement {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// `</name>` (also synthesized for self-closing elements).
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data (entities resolved; CDATA passed through raw).
    /// Whitespace-only segments are never reported.
    Text(String),
}

/// Pull parser over a buffered reader.
#[derive(Debug)]
pub struct XmlParser<R: BufRead> {
    reader: R,
    offset: u64,
    /// Stack of open element names.
    stack: Vec<String>,
    /// Set once the root element has closed.
    root_closed: bool,
    /// Set once any root element was seen.
    seen_root: bool,
    /// Pending synthetic end tag for a self-closing element.
    pending_end: Option<String>,
    /// An event parsed early (a tag adjacent to a text segment that had to
    /// be delivered first).
    stashed: Option<XmlEvent>,
    /// Scratch buffer reused across events.
    buf: Vec<u8>,
}

impl<R: BufRead> XmlParser<R> {
    /// Creates a parser over `reader`.
    pub fn new(reader: R) -> Self {
        XmlParser {
            reader,
            offset: 0,
            stack: Vec::new(),
            root_closed: false,
            seen_root: false,
            pending_end: None,
            stashed: None,
            buf: Vec::new(),
        }
    }

    /// Current element depth (number of open elements).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Approximate byte offset consumed so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Returns the next event, or `None` at a well-formed end of document.
    pub fn next_event(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        // A stashed event precedes any pending synthetic end tag: if a
        // self-closing start tag was stashed, its end tag is also pending
        // and must come after it.
        if let Some(ev) = self.stashed.take() {
            return Ok(Some(ev));
        }
        if let Some(name) = self.pending_end.take() {
            let popped = self.stack.pop().expect("self-closing element was pushed");
            debug_assert_eq!(popped, name);
            if self.stack.is_empty() {
                self.root_closed = true;
            }
            return Ok(Some(XmlEvent::EndElement { name }));
        }
        loop {
            // Accumulate text up to the next '<' (or EOF).
            self.buf.clear();
            let n = self.reader.read_until(b'<', &mut self.buf)?;
            if n == 0 {
                // EOF.
                if !self.stack.is_empty() {
                    return Err(XmlError::UnexpectedEof {
                        open: self.stack.len(),
                    });
                }
                if !self.seen_root {
                    return Err(XmlError::NoRootElement);
                }
                return Ok(None);
            }
            self.offset += n as u64;
            let had_tag = *self.buf.last().expect("n > 0") == b'<';
            if had_tag {
                self.buf.pop();
            }
            if !self.buf.iter().all(|b| b.is_ascii_whitespace()) {
                let text = self.take_buf_utf8()?;
                if self.stack.is_empty() {
                    return Err(XmlError::TrailingContent {
                        offset: self.offset,
                    });
                }
                let text = unescape(&text);
                if had_tag {
                    // Push the tag processing to the next call by handling
                    // it eagerly: we must not lose the '<' we consumed.
                    // Emit the text now and parse the tag on the next call
                    // via the `in_tag` fast path below.
                    let event = self.parse_tag()?;
                    // Deliver text first; stash the tag event.
                    self.stash(event);
                    return Ok(Some(XmlEvent::Text(text)));
                }
                return Ok(Some(XmlEvent::Text(text)));
            }
            if !had_tag {
                // Whitespace then EOF; loop to hit the EOF branch.
                continue;
            }
            if let Some(ev) = self.parse_tag()? {
                return Ok(Some(ev));
            }
            // Comment / PI / DOCTYPE: keep scanning.
        }
    }

    /// Stashes an event produced while another had to be delivered first.
    fn stash(&mut self, ev: Option<XmlEvent>) {
        debug_assert!(self.stashed.is_none(), "at most one stashed event");
        self.stashed = ev;
    }

    fn take_buf_utf8(&mut self) -> Result<String, XmlError> {
        String::from_utf8(std::mem::take(&mut self.buf)).map_err(|_| XmlError::InvalidUtf8 {
            offset: self.offset,
        })
    }

    /// Parses one markup construct after a consumed `<`. Returns `None`
    /// for ignorable constructs (comments, PIs, DOCTYPE).
    fn parse_tag(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        let first = self.read_byte()?;
        match first {
            b'?' => {
                self.skip_until(b"?>")?;
                Ok(None)
            }
            b'!' => self.parse_bang(),
            b'/' => {
                // Close tag.
                self.buf.clear();
                let n = self.reader.read_until(b'>', &mut self.buf)?;
                if n == 0 || *self.buf.last().unwrap() != b'>' {
                    return Err(XmlError::UnexpectedEof {
                        open: self.stack.len(),
                    });
                }
                self.offset += n as u64;
                self.buf.pop();
                let name = self.take_buf_utf8()?;
                let name = name.trim().to_string();
                match self.stack.pop() {
                    Some(open) if open == name => {
                        if self.stack.is_empty() {
                            self.root_closed = true;
                        }
                        Ok(Some(XmlEvent::EndElement { name }))
                    }
                    Some(open) => Err(XmlError::MismatchedTag {
                        offset: self.offset,
                        expected: open,
                        found: name,
                    }),
                    None => Err(XmlError::Syntax {
                        offset: self.offset,
                        message: format!("close tag </{name}> with no open element"),
                    }),
                }
            }
            c => {
                // Start tag (or self-closing). Scan to '>' respecting quotes.
                self.buf.clear();
                self.buf.push(c);
                let mut quote: Option<u8> = None;
                loop {
                    let b = self.read_byte()?;
                    match quote {
                        Some(q) if b == q => quote = None,
                        Some(_) => {}
                        None => match b {
                            b'"' | b'\'' => quote = Some(b),
                            b'>' => break,
                            _ => {}
                        },
                    }
                    self.buf.push(b);
                }
                let raw = self.take_buf_utf8()?;
                let (raw, self_closing) = match raw.strip_suffix('/') {
                    Some(r) => (r, true),
                    None => (raw.as_str(), false),
                };
                if self.root_closed {
                    return Err(XmlError::TrailingContent {
                        offset: self.offset,
                    });
                }
                let (name, attributes) = parse_start_tag(raw, self.offset)?;
                self.seen_root = true;
                self.stack.push(name.clone());
                if self_closing {
                    self.pending_end = Some(name.clone());
                }
                Ok(Some(XmlEvent::StartElement { name, attributes }))
            }
        }
    }

    /// Parses `<!...` constructs: comments, CDATA, DOCTYPE.
    fn parse_bang(&mut self) -> Result<Option<XmlEvent>, XmlError> {
        let b1 = self.read_byte()?;
        match b1 {
            b'-' => {
                let b2 = self.read_byte()?;
                if b2 != b'-' {
                    return Err(XmlError::Syntax {
                        offset: self.offset,
                        message: "malformed comment".into(),
                    });
                }
                self.skip_until(b"-->")?;
                Ok(None)
            }
            b'[' => {
                // Expect CDATA[.
                let mut head = [0u8; 6];
                for slot in &mut head {
                    *slot = self.read_byte()?;
                }
                if &head != b"CDATA[" {
                    return Err(XmlError::Syntax {
                        offset: self.offset,
                        message: "malformed <![ construct (expected CDATA)".into(),
                    });
                }
                let content = self.read_until_seq(b"]]>")?;
                if self.stack.is_empty() {
                    return Err(XmlError::TrailingContent {
                        offset: self.offset,
                    });
                }
                if content.iter().all(|b| b.is_ascii_whitespace()) {
                    return Ok(None);
                }
                let text = String::from_utf8(content).map_err(|_| XmlError::InvalidUtf8 {
                    offset: self.offset,
                })?;
                Ok(Some(XmlEvent::Text(text)))
            }
            _ => {
                // DOCTYPE (or other declaration): skip to the matching '>'
                // accounting for an internal subset in [ ... ].
                let mut depth = 0i32;
                loop {
                    let b = self.read_byte()?;
                    match b {
                        b'[' => depth += 1,
                        b']' => depth -= 1,
                        b'>' if depth <= 0 => break,
                        _ => {}
                    }
                }
                Ok(None)
            }
        }
    }

    fn read_byte(&mut self) -> Result<u8, XmlError> {
        let mut one = [0u8; 1];
        match self.reader.read_exact(&mut one) {
            Ok(()) => {
                self.offset += 1;
                Ok(one[0])
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(XmlError::UnexpectedEof {
                    open: self.stack.len(),
                })
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Skips input until `seq` has been consumed.
    fn skip_until(&mut self, seq: &[u8]) -> Result<(), XmlError> {
        self.read_until_seq(seq).map(|_| ())
    }

    /// Reads input until `seq`, returning the bytes before it.
    fn read_until_seq(&mut self, seq: &[u8]) -> Result<Vec<u8>, XmlError> {
        let mut out = Vec::new();
        let mut matched = 0usize;
        loop {
            let b = self.read_byte()?;
            if b == seq[matched] {
                matched += 1;
                if matched == seq.len() {
                    return Ok(out);
                }
            } else {
                if matched > 0 {
                    out.extend_from_slice(&seq[..matched]);
                    matched = 0;
                    // The current byte might start a new match.
                    if b == seq[0] {
                        matched = 1;
                        continue;
                    }
                }
                out.push(b);
            }
        }
    }
}

/// Parses the inside of a start tag: `name attr="v" attr2='w'`.
fn parse_start_tag(raw: &str, offset: u64) -> Result<(String, Vec<Attribute>), XmlError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(XmlError::Syntax {
            offset,
            message: "empty tag".into(),
        });
    }
    let name_end = raw.find(|c: char| c.is_whitespace()).unwrap_or(raw.len());
    let name = raw[..name_end].to_string();
    let mut attributes = Vec::new();
    let rest = &raw[name_end..];
    let bytes = rest.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        // Skip whitespace.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        // Attribute name up to '=' or whitespace.
        let start = i;
        while i < bytes.len() && bytes[i] != b'=' && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let attr_name = rest[start..i].to_string();
        // Skip whitespace before '='.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'=' {
            // Valueless attribute (lenient).
            attributes.push(Attribute {
                name: attr_name,
                value: String::new(),
            });
            continue;
        }
        i += 1; // consume '='
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(XmlError::Syntax {
                offset,
                message: format!("attribute {attr_name} has '=' but no value"),
            });
        }
        let quote = bytes[i];
        if quote != b'"' && quote != b'\'' {
            return Err(XmlError::Syntax {
                offset,
                message: format!("attribute {attr_name} value must be quoted"),
            });
        }
        i += 1;
        let vstart = i;
        while i < bytes.len() && bytes[i] != quote {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(XmlError::Syntax {
                offset,
                message: format!("unterminated value for attribute {attr_name}"),
            });
        }
        attributes.push(Attribute {
            name: attr_name,
            value: unescape(&rest[vstart..i]),
        });
        i += 1; // closing quote
    }
    Ok((name, attributes))
}
