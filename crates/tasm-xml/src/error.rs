//! XML parsing errors.

use std::fmt;

/// Errors from the streaming XML parser.
#[derive(Debug)]
pub enum XmlError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed XML.
    Syntax {
        /// Approximate byte offset in the stream.
        offset: u64,
        /// Human-readable description.
        message: String,
    },
    /// A close tag did not match the open element.
    MismatchedTag {
        /// Byte offset of the close tag.
        offset: u64,
        /// The element that was open.
        expected: String,
        /// The name in the close tag.
        found: String,
    },
    /// The document ended while elements were still open.
    UnexpectedEof {
        /// How many elements were open.
        open: usize,
    },
    /// The document contains no root element.
    NoRootElement,
    /// Content found after the root element closed.
    TrailingContent {
        /// Byte offset of the trailing content.
        offset: u64,
    },
    /// Invalid UTF-8 in the stream.
    InvalidUtf8 {
        /// Approximate byte offset.
        offset: u64,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Io(e) => write!(f, "I/O error: {e}"),
            XmlError::Syntax { offset, message } => {
                write!(f, "XML syntax error near byte {offset}: {message}")
            }
            XmlError::MismatchedTag {
                offset,
                expected,
                found,
            } => write!(
                f,
                "mismatched close tag near byte {offset}: expected </{expected}>, found </{found}>"
            ),
            XmlError::UnexpectedEof { open } => {
                write!(f, "unexpected end of document with {open} open element(s)")
            }
            XmlError::NoRootElement => write!(f, "document has no root element"),
            XmlError::TrailingContent { offset } => {
                write!(f, "content after the root element near byte {offset}")
            }
            XmlError::InvalidUtf8 { offset } => {
                write!(f, "invalid UTF-8 near byte {offset}")
            }
        }
    }
}

impl std::error::Error for XmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XmlError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for XmlError {
    fn from(e: std::io::Error) -> Self {
        XmlError::Io(e)
    }
}
