//! XML character escaping and entity resolution.
//!
//! Supports the five predefined entities (`&lt; &gt; &amp; &quot; &apos;`)
//! and numeric character references (`&#NN;`, `&#xHH;`). Unknown entities
//! are passed through verbatim (lenient mode, appropriate for data-centric
//! corpora like DBLP which use many Latin entities).

/// Escapes text content: `&`, `<`, `>`.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value for double-quoted attributes: text escapes
/// plus `"`.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Resolves entity and character references in `s`.
///
/// Unknown named entities are kept verbatim (including the `&`/`;`), so no
/// data is lost on real-world documents.
pub fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy one full UTF-8 character.
            let len = utf8_len(bytes[i]);
            out.push_str(&s[i..i + len]);
            i += len;
            continue;
        }
        // Find the terminating ';' within a sane distance.
        let end = s[i + 1..]
            .char_indices()
            .take(32)
            .find(|&(_, c)| c == ';')
            .map(|(j, _)| i + 1 + j);
        let Some(end) = end else {
            out.push('&');
            i += 1;
            continue;
        };
        let entity = &s[i + 1..end];
        let resolved: Option<char> = match entity {
            "lt" => Some('<'),
            "gt" => Some('>'),
            "amp" => Some('&'),
            "quot" => Some('"'),
            "apos" => Some('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                u32::from_str_radix(&entity[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
            }
            _ if entity.starts_with('#') => {
                entity[1..].parse::<u32>().ok().and_then(char::from_u32)
            }
            _ => None,
        };
        match resolved {
            Some(c) => {
                out.push(c);
                i = end + 1;
            }
            None => {
                // Unknown entity: keep verbatim.
                out.push_str(&s[i..=end]);
                i = end + 1;
            }
        }
    }
    out
}

#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_basics() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn escape_attr_quotes() {
        assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(
            unescape("&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos;"),
            "<tag> & \"x\" 'y'"
        );
    }

    #[test]
    fn unescape_numeric() {
        assert_eq!(unescape("&#65;&#x42;&#x63;"), "ABc");
        assert_eq!(unescape("&#x1F600;"), "😀");
    }

    #[test]
    fn unescape_unknown_entities_kept() {
        assert_eq!(unescape("M&uuml;ller"), "M&uuml;ller");
        assert_eq!(unescape("a & b"), "a & b"); // bare ampersand, lenient
    }

    #[test]
    fn unescape_invalid_numeric_kept() {
        assert_eq!(unescape("&#xZZ;"), "&#xZZ;");
        assert_eq!(unescape("&#99999999;"), "&#99999999;");
    }

    #[test]
    fn round_trip_text() {
        for s in ["", "hello", "<a & b>", "🎉 & <x>"] {
            assert_eq!(unescape(&escape_text(s)), s);
        }
    }

    #[test]
    fn round_trip_attr() {
        for s in ["", r#"a "quoted" value"#, "<&>"] {
            assert_eq!(unescape(&escape_attr(s)), s);
        }
    }

    #[test]
    fn multibyte_passthrough() {
        assert_eq!(unescape("日本語 & ascii"), "日本語 & ascii");
    }
}
