//! XML serialization: an event writer plus a tree serializer that inverts
//! the node mapping of [`crate::stream`].

use std::io::{self, Write};

use crate::escape::{escape_attr, escape_text};
use tasm_tree::{LabelDict, NodeId, Tree};

/// A streaming XML writer with automatic escaping and tag balancing.
///
/// # Examples
///
/// ```
/// use tasm_xml::XmlWriter;
///
/// let mut out = Vec::new();
/// let mut w = XmlWriter::new(&mut out);
/// w.start("article").unwrap();
/// w.attr("key", "a/1").unwrap();
/// w.start("title").unwrap();
/// w.text("X & Y").unwrap();
/// w.end().unwrap();
/// w.end().unwrap();
/// assert_eq!(
///     String::from_utf8(out).unwrap(),
///     r#"<article key="a/1"><title>X &amp; Y</title></article>"#
/// );
/// ```
#[derive(Debug)]
pub struct XmlWriter<W: Write> {
    out: W,
    stack: Vec<String>,
    /// A start tag is open and still accepting attributes.
    tag_open: bool,
}

impl<W: Write> XmlWriter<W> {
    /// Creates a writer over `out`.
    pub fn new(out: W) -> Self {
        XmlWriter {
            out,
            stack: Vec::new(),
            tag_open: false,
        }
    }

    fn close_tag(&mut self) -> io::Result<()> {
        if self.tag_open {
            self.out.write_all(b">")?;
            self.tag_open = false;
        }
        Ok(())
    }

    /// Opens an element.
    pub fn start(&mut self, name: &str) -> io::Result<()> {
        self.close_tag()?;
        write!(self.out, "<{name}")?;
        self.stack.push(name.to_string());
        self.tag_open = true;
        Ok(())
    }

    /// Writes an attribute; only valid directly after [`start`](Self::start).
    pub fn attr(&mut self, name: &str, value: &str) -> io::Result<()> {
        assert!(self.tag_open, "attr() must follow start()");
        write!(self.out, " {name}=\"{}\"", escape_attr(value))
    }

    /// Writes escaped character data.
    pub fn text(&mut self, text: &str) -> io::Result<()> {
        self.close_tag()?;
        self.out.write_all(escape_text(text).as_bytes())
    }

    /// Closes the most recently opened element (self-closing when empty).
    pub fn end(&mut self) -> io::Result<()> {
        let name = self.stack.pop().expect("end() without start()");
        if self.tag_open {
            self.tag_open = false;
            self.out.write_all(b"/>")
        } else {
            write!(self.out, "</{name}>")
        }
    }

    /// Number of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Serializes a tree produced by the XML node mapping back to XML.
///
/// Inverts [`crate::stream`]'s mapping: a node whose label starts with `@`
/// and has at most one leaf child becomes an attribute; a leaf that is not
/// an attribute becomes text when its parent is an element; other nodes
/// become elements. Round-trips trees that came from XML; for arbitrary
/// trees it is a best-effort rendering.
pub fn tree_to_xml(tree: &Tree, dict: &LabelDict) -> String {
    let mut out = Vec::new();
    write_tree(tree, dict, &mut out).expect("Vec writer");
    String::from_utf8(out).expect("writer emits UTF-8")
}

/// Streams a tree as XML into any writer (no intermediate string; suitable
/// for multi-gigabyte documents). Same mapping as [`tree_to_xml`].
pub fn write_tree<W: Write>(tree: &Tree, dict: &LabelDict, out: W) -> io::Result<()> {
    let mut w = XmlWriter::new(out);
    write_node(tree, dict, tree.root(), &mut w, true)?;
    w.flush()
}

fn write_node<W: Write>(
    tree: &Tree,
    dict: &LabelDict,
    node: NodeId,
    w: &mut XmlWriter<W>,
    is_root: bool,
) -> io::Result<()> {
    let label = dict.resolve(tree.label(node));
    if tree.is_leaf(node) && !is_root {
        if let Some(attr) = label.strip_prefix('@') {
            w.attr(attr, "")?;
        } else {
            w.text(label)?;
        }
        return Ok(());
    }
    if let Some(attr) = label.strip_prefix('@') {
        let children = tree.children(node);
        if children.len() == 1 && tree.is_leaf(children[0]) && !is_root {
            w.attr(attr, dict.resolve(tree.label(children[0])))?;
            return Ok(());
        }
    }
    w.start(label)?;
    for child in tree.children(node) {
        write_node(tree, dict, child, w, false)?;
    }
    w.end()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::parse_tree_str;

    #[test]
    fn writer_produces_balanced_xml() {
        let mut out = Vec::new();
        let mut w = XmlWriter::new(&mut out);
        w.start("a").unwrap();
        w.start("b").unwrap();
        w.text("x<y").unwrap();
        w.end().unwrap();
        w.start("c").unwrap();
        w.end().unwrap();
        w.end().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "<a><b>x&lt;y</b><c/></a>");
    }

    #[test]
    fn attrs_are_escaped() {
        let mut out = Vec::new();
        let mut w = XmlWriter::new(&mut out);
        w.start("a").unwrap();
        w.attr("t", "\"q\" & <x>").unwrap();
        w.end().unwrap();
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "<a t=\"&quot;q&quot; &amp; &lt;x&gt;\"/>"
        );
    }

    #[test]
    fn xml_tree_round_trip() {
        let xml = r#"<dblp><article key="a1"><auth>John</auth><title>X1</title></article><book><title>X2</title></book></dblp>"#;
        let mut dict = LabelDict::new();
        let t = parse_tree_str(xml, &mut dict).unwrap();
        let rendered = tree_to_xml(&t, &dict);
        // Parse again: must be the identical tree.
        let mut dict2 = dict.clone();
        let t2 = parse_tree_str(&rendered, &mut dict2).unwrap();
        assert_eq!(t, t2, "rendered: {rendered}");
    }

    #[test]
    fn round_trip_with_entities() {
        let xml = "<a><b>1 &lt; 2 &amp; 3</b></a>";
        let mut dict = LabelDict::new();
        let t = parse_tree_str(xml, &mut dict).unwrap();
        let rendered = tree_to_xml(&t, &dict);
        let mut dict2 = dict.clone();
        let t2 = parse_tree_str(&rendered, &mut dict2).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn round_trip_with_numeric_character_references() {
        // Decimal and hex references decode to their code points on the
        // way in; the writer re-escapes only the XML metacharacters, so
        // a second parse sees the identical label multiset. Pins the
        // parser's numeric-reference decoding through a full cycle.
        let xml = "<a k=\"&#x41;&#66;\"><b>caf&#233; &#x263A; &#60;tag&#62;</b></a>";
        let mut dict = LabelDict::new();
        let t = parse_tree_str(xml, &mut dict).unwrap();
        assert!(
            dict.get("café ☺ <tag>").is_some(),
            "numeric references must decode before interning"
        );
        assert!(dict.get("AB").is_some(), "attribute references too");
        let rendered = tree_to_xml(&t, &dict);
        let mut dict2 = dict.clone();
        let t2 = parse_tree_str(&rendered, &mut dict2).unwrap();
        assert_eq!(t, t2, "rendered: {rendered}");
    }

    #[test]
    #[should_panic(expected = "must follow start")]
    fn attr_after_text_panics() {
        let mut out = Vec::new();
        let mut w = XmlWriter::new(&mut out);
        w.start("a").unwrap();
        w.text("t").unwrap();
        let _ = w.attr("x", "1");
    }
}
