//! XML → postorder queue, streaming (the paper's document interface).
//!
//! [`XmlPostorderQueue`] drives the pull parser and emits `(label, size)`
//! postorder entries with `O(depth)` memory: a text node or attribute
//! subtree is emitted as soon as it is seen, an element as soon as its end
//! tag arrives — exactly postorder. Combined with `tasm_core::tasm_postorder`
//! this evaluates TASM over an XML file that never resides in memory.
//!
//! # Node model (Sec. VII of the paper)
//!
//! Element tags, attribute names and text content all become nodes, interned
//! into one [`LabelDict`]:
//!
//! * element → node labeled with the tag, children = attributes then content;
//! * attribute → node labeled `@name` with a single text-node child for the
//!   value (just the `@name` leaf if the value is empty);
//! * text → leaf labeled with the (entity-resolved) content.

use std::collections::VecDeque;
use std::io::BufRead;

use crate::error::XmlError;
use crate::parser::{XmlEvent, XmlParser};
use tasm_tree::{LabelDict, PostorderEntry, PostorderQueue, Tree};

/// Configuration for the XML-to-tree node mapping.
#[derive(Debug, Clone)]
pub struct XmlTreeConfig {
    /// Include attributes (as `@name` nodes). Default `true`.
    pub include_attributes: bool,
    /// Include text nodes. Default `true`.
    pub include_text: bool,
    /// Prefix for attribute-name labels. Default `"@"`.
    pub attribute_prefix: String,
}

impl Default for XmlTreeConfig {
    fn default() -> Self {
        XmlTreeConfig {
            include_attributes: true,
            include_text: true,
            attribute_prefix: "@".to_string(),
        }
    }
}

/// A postorder queue over a streaming XML document.
///
/// Errors encountered mid-stream terminate the queue; check
/// [`XmlPostorderQueue::take_error`] after consumption (the
/// [`PostorderQueue`] interface is infallible by design — Def. 2 allows
/// only `dequeue`).
#[derive(Debug)]
pub struct XmlPostorderQueue<'d, R: BufRead> {
    parser: XmlParser<R>,
    dict: &'d mut LabelDict,
    config: XmlTreeConfig,
    /// Nodes-emitted counters for each open element.
    open: Vec<u32>,
    /// Entries ready to be dequeued (attributes enqueue two at once).
    ready: VecDeque<PostorderEntry>,
    error: Option<XmlError>,
    finished: bool,
}

impl<'d, R: BufRead> XmlPostorderQueue<'d, R> {
    /// Creates a streaming queue with the default node mapping.
    pub fn new(reader: R, dict: &'d mut LabelDict) -> Self {
        Self::with_config(reader, dict, XmlTreeConfig::default())
    }

    /// Creates a streaming queue with a custom node mapping.
    pub fn with_config(reader: R, dict: &'d mut LabelDict, config: XmlTreeConfig) -> Self {
        XmlPostorderQueue {
            parser: XmlParser::new(reader),
            dict,
            config,
            open: Vec::new(),
            ready: VecDeque::new(),
            error: None,
            finished: false,
        }
    }

    /// Takes the error that terminated the stream, if any.
    pub fn take_error(&mut self) -> Option<XmlError> {
        self.error.take()
    }

    /// Whether the stream completed without error.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    fn bump_parent(&mut self, emitted: u32) {
        if let Some(top) = self.open.last_mut() {
            *top += emitted;
        }
    }

    /// Pulls parser events until at least one entry is ready or the stream
    /// ends.
    fn refill(&mut self) {
        while self.ready.is_empty() && !self.finished {
            match self.parser.next_event() {
                Ok(None) => self.finished = true,
                Ok(Some(XmlEvent::StartElement { name, attributes })) => {
                    self.open.push(0);
                    if self.config.include_attributes {
                        for attr in attributes {
                            let label = format!("{}{}", self.config.attribute_prefix, attr.name);
                            let name_id = self.dict.intern(&label);
                            if attr.value.is_empty() {
                                self.ready.push_back(PostorderEntry::new(name_id, 1));
                                self.bump_parent(1);
                            } else {
                                let value_id = self.dict.intern(&attr.value);
                                self.ready.push_back(PostorderEntry::new(value_id, 1));
                                self.ready.push_back(PostorderEntry::new(name_id, 2));
                                self.bump_parent(2);
                            }
                        }
                    }
                    // Intern the element name now so ids reflect document
                    // order even though the node is emitted at the end tag.
                    self.dict.intern(&name);
                }
                Ok(Some(XmlEvent::Text(text))) => {
                    if self.config.include_text {
                        let id = self.dict.intern(&text);
                        self.ready.push_back(PostorderEntry::new(id, 1));
                        self.bump_parent(1);
                    }
                }
                Ok(Some(XmlEvent::EndElement { name })) => {
                    let inner = self.open.pop().expect("parser validates nesting");
                    let id = self.dict.intern(&name);
                    let size = inner + 1;
                    self.ready.push_back(PostorderEntry::new(id, size));
                    self.bump_parent(size);
                }
                Err(e) => {
                    self.error = Some(e);
                    self.finished = true;
                }
            }
        }
    }
}

impl<R: BufRead> PostorderQueue for XmlPostorderQueue<'_, R> {
    fn dequeue(&mut self) -> Option<PostorderEntry> {
        if self.ready.is_empty() {
            self.refill();
        }
        self.ready.pop_front()
    }

    fn integrity_error(&self) -> Option<String> {
        self.error.as_ref().map(|e| e.to_string())
    }
}

/// Parses an entire XML document into an in-memory [`Tree`].
///
/// Convenience for queries, tests and small documents; large documents
/// should stream through [`XmlPostorderQueue`] instead.
pub fn parse_tree<R: BufRead>(reader: R, dict: &mut LabelDict) -> Result<Tree, XmlError> {
    parse_tree_with_config(reader, dict, XmlTreeConfig::default())
}

/// As [`parse_tree`] with a custom node mapping.
pub fn parse_tree_with_config<R: BufRead>(
    reader: R,
    dict: &mut LabelDict,
    config: XmlTreeConfig,
) -> Result<Tree, XmlError> {
    let mut queue = XmlPostorderQueue::with_config(reader, dict, config);
    let mut entries = Vec::new();
    while let Some(e) = queue.dequeue() {
        entries.push((e.label, e.size));
    }
    if let Some(err) = queue.take_error() {
        return Err(err);
    }
    Tree::from_postorder(entries).map_err(|e| XmlError::Syntax {
        offset: 0,
        message: format!("postorder assembly failed: {e}"),
    })
}

/// Parses XML from a string slice.
pub fn parse_tree_str(xml: &str, dict: &mut LabelDict) -> Result<Tree, XmlError> {
    parse_tree(xml.as_bytes(), dict)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(xml: &str) -> Vec<(String, u32)> {
        let mut dict = LabelDict::new();
        let mut q = XmlPostorderQueue::new(xml.as_bytes(), &mut dict);
        let mut out = Vec::new();
        let mut collected = Vec::new();
        while let Some(e) = q.dequeue() {
            collected.push(e);
        }
        assert!(q.is_ok(), "unexpected error: {:?}", q.take_error());
        for e in collected {
            out.push((dict.resolve(e.label).to_string(), e.size));
        }
        out
    }

    #[test]
    fn paper_fig_4_shape() {
        // The dblp fragment of Fig. 4a (text content as leaves).
        let xml = "<dblp><article><auth>John</auth><title>X1</title></article>\
                   <proceedings><conf>VLDB</conf>\
                   <article><auth>Peter</auth><title>X3</title></article>\
                   <article><auth>Mike</auth><title>X4</title></article></proceedings>\
                   <book><title>X2</title></book></dblp>";
        let got = entries(xml);
        let expected: Vec<(&str, u32)> = vec![
            ("John", 1),
            ("auth", 2),
            ("X1", 1),
            ("title", 2),
            ("article", 5),
            ("VLDB", 1),
            ("conf", 2),
            ("Peter", 1),
            ("auth", 2),
            ("X3", 1),
            ("title", 2),
            ("article", 5),
            ("Mike", 1),
            ("auth", 2),
            ("X4", 1),
            ("title", 2),
            ("article", 5),
            ("proceedings", 13),
            ("X2", 1),
            ("title", 2),
            ("book", 3),
            ("dblp", 22),
        ];
        let got_ref: Vec<(&str, u32)> = got.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        assert_eq!(got_ref, expected);
    }

    #[test]
    fn attributes_become_at_nodes() {
        let got = entries(r#"<a x="1" y="2"><b/></a>"#);
        let expected: Vec<(&str, u32)> =
            vec![("1", 1), ("@x", 2), ("2", 1), ("@y", 2), ("b", 1), ("a", 6)];
        let got_ref: Vec<(&str, u32)> = got.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        assert_eq!(got_ref, expected);
    }

    #[test]
    fn empty_attribute_value_is_single_node() {
        let got = entries(r#"<a x=""/>"#);
        let got_ref: Vec<(&str, u32)> = got.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        assert_eq!(got_ref, vec![("@x", 1), ("a", 2)]);
    }

    #[test]
    fn whitespace_between_elements_is_skipped() {
        let got = entries("<a>\n  <b>hi</b>\n  <c/>\n</a>");
        let got_ref: Vec<(&str, u32)> = got.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        assert_eq!(got_ref, vec![("hi", 1), ("b", 2), ("c", 1), ("a", 4)]);
    }

    #[test]
    fn entities_resolved_in_text_and_attrs() {
        let got = entries(r#"<a t="&lt;x&gt;">a &amp; b</a>"#);
        let got_ref: Vec<(&str, u32)> = got.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        assert_eq!(got_ref, vec![("<x>", 1), ("@t", 2), ("a & b", 1), ("a", 4)]);
    }

    #[test]
    fn config_can_drop_attributes_and_text() {
        let mut dict = LabelDict::new();
        let cfg = XmlTreeConfig {
            include_attributes: false,
            include_text: false,
            ..Default::default()
        };
        let t = parse_tree_with_config(r#"<a x="1"><b>text</b></a>"#.as_bytes(), &mut dict, cfg)
            .unwrap();
        assert_eq!(t.len(), 2); // just a and b
    }

    #[test]
    fn parse_tree_round_trip_via_queue() {
        let xml = "<r><a k=\"v\">t1</a><b><c/></b>t2</r>";
        let mut d1 = LabelDict::new();
        let t = parse_tree_str(xml, &mut d1).unwrap();
        assert_eq!(t.len(), 8);
        assert_eq!(d1.resolve(t.label(t.root())), "r");
    }

    #[test]
    fn error_surfaces_after_stream() {
        let mut dict = LabelDict::new();
        let mut q = XmlPostorderQueue::new("<a><b></a>".as_bytes(), &mut dict);
        while q.dequeue().is_some() {}
        assert!(matches!(
            q.take_error(),
            Some(XmlError::MismatchedTag { .. })
        ));
    }

    #[test]
    fn parse_tree_propagates_errors() {
        let mut dict = LabelDict::new();
        assert!(parse_tree_str("<a>", &mut dict).is_err());
        assert!(parse_tree_str("", &mut dict).is_err());
        assert!(parse_tree_str("<a/><b/>", &mut dict).is_err());
    }

    #[test]
    fn prolog_comments_doctype_are_ignored() {
        let xml =
            "<?xml version=\"1.0\"?>\n<!DOCTYPE dblp SYSTEM \"dblp.dtd\" [<!ENTITY x \"y\">]>\n\
                   <!-- header -->\n<a><!-- inner --><b>v</b></a>";
        let got = entries(xml);
        let got_ref: Vec<(&str, u32)> = got.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        assert_eq!(got_ref, vec![("v", 1), ("b", 2), ("a", 3)]);
    }

    #[test]
    fn cdata_is_text() {
        let got = entries("<a><![CDATA[1 < 2 & so]]></a>");
        let got_ref: Vec<(&str, u32)> = got.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        assert_eq!(got_ref, vec![("1 < 2 & so", 1), ("a", 2)]);
    }

    #[test]
    fn text_adjacent_to_tags_keeps_order() {
        let got = entries("<a>pre<b>in</b>post</a>");
        let got_ref: Vec<(&str, u32)> = got.iter().map(|(s, n)| (s.as_str(), *n)).collect();
        assert_eq!(
            got_ref,
            vec![("pre", 1), ("in", 1), ("b", 2), ("post", 1), ("a", 5)]
        );
    }
}
