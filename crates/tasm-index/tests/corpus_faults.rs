//! Corruption-injection matrix for the corpus store, runnable with
//! `cargo test -p tasm-index --features fault-inject`.
//!
//! Sweeps the damage space the manifest + quarantine design claims to
//! survive: a bit flip at EVERY byte of a shard, truncation at every
//! offset, file growth, generation skew, and a crash simulated between
//! the shard write and the manifest rename. The invariants under every
//! injection:
//!
//! * `Corpus::open` never fails on shard damage — the damaged shard is
//!   quarantined with a structured report and the rest stays healthy;
//! * the healthy shards' bytes (and hence their rankings) are
//!   untouched — degraded answers are exact over what remains;
//! * only `MANIFEST` damage is fatal, and it is always detected.
#![cfg(feature = "fault-inject")]

use std::fs;
use std::path::{Path, PathBuf};

use tasm_index::{Corpus, Manifest};
use tasm_tree::{bracket, LabelDict, Tree};

fn parse(src: &str) -> (Tree, LabelDict) {
    let mut dict = LabelDict::new();
    let tree = bracket::parse(src, &mut dict).unwrap();
    (tree, dict)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tasm-cfault-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Two-shard corpus: `victim` gets damaged, `witness` must survive.
fn build(dir: &Path) -> Corpus {
    let mut corpus = Corpus::create(dir).unwrap();
    let (t1, d1) = parse("{dblp{article{auth{John}}{title{X1}}}{book{title{X2}}}}");
    corpus.add("victim", &t1, &d1, Some("victim.xml")).unwrap();
    let (t2, d2) = parse("{dblp{article{auth{Mike}}{title{X3}}{year}}}");
    corpus.add("witness", &t2, &d2, None).unwrap();
    corpus
}

/// Opens the corpus and asserts exactly `victim` is quarantined while
/// `witness` still matches its original bytes.
fn assert_victim_quarantined(dir: &Path, witness_bytes: &[u8], what: &str) {
    let corpus = Corpus::open(dir).unwrap_or_else(|e| panic!("{what}: open failed: {e}"));
    assert_eq!(corpus.total_shards(), 2, "{what}");
    assert_eq!(corpus.healthy_count(), 1, "{what}");
    assert!(corpus.is_degraded(), "{what}");
    assert_eq!(corpus.quarantined().len(), 1, "{what}");
    assert_eq!(corpus.quarantined()[0].name, "victim", "{what}");
    assert!(!corpus.quarantined()[0].error.is_empty(), "{what}");
    let healthy: Vec<&str> = corpus.healthy().map(|(_, n, _)| n).collect();
    assert_eq!(healthy, ["witness"], "{what}");
    assert_eq!(
        fs::read(dir.join("witness.pqi")).unwrap(),
        witness_bytes,
        "{what}: witness bytes changed"
    );
}

#[test]
fn bit_flip_at_every_byte_is_quarantined() {
    let dir = tmp_dir("flip");
    drop(build(&dir));
    let shard = dir.join("victim.pqi");
    let clean = fs::read(&shard).unwrap();
    let witness = fs::read(dir.join("witness.pqi")).unwrap();
    for i in 0..clean.len() {
        let mut bytes = clean.clone();
        bytes[i] ^= 1 << (i % 8);
        fs::write(&shard, &bytes).unwrap();
        assert_victim_quarantined(&dir, &witness, &format!("flip at byte {i}"));
    }
    // Restoring the clean bytes restores full health — the quarantine
    // carries no sticky state outside the files themselves.
    fs::write(&shard, &clean).unwrap();
    let corpus = Corpus::open(&dir).unwrap();
    assert_eq!(corpus.healthy_count(), 2);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_at_every_offset_is_quarantined() {
    let dir = tmp_dir("trunc");
    drop(build(&dir));
    let shard = dir.join("victim.pqi");
    let clean = fs::read(&shard).unwrap();
    let witness = fs::read(dir.join("witness.pqi")).unwrap();
    for cut in 0..clean.len() {
        fs::write(&shard, &clean[..cut]).unwrap();
        assert_victim_quarantined(&dir, &witness, &format!("truncation at {cut}"));
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn grown_shard_is_quarantined() {
    let dir = tmp_dir("grow");
    drop(build(&dir));
    let shard = dir.join("victim.pqi");
    let witness = fs::read(dir.join("witness.pqi")).unwrap();
    let mut bytes = fs::read(&shard).unwrap();
    bytes.extend_from_slice(b"trailing garbage from a torn append");
    fs::write(&shard, &bytes).unwrap();
    assert_victim_quarantined(&dir, &witness, "grown shard");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn generation_skew_is_quarantined() {
    let dir = tmp_dir("skew");
    drop(build(&dir));
    let mut manifest = Manifest::load(&dir).unwrap();
    let idx = manifest
        .shards
        .iter()
        .position(|s| s.name == "victim")
        .unwrap();
    manifest.shards[idx].generation = manifest.generation + 1;
    manifest.store(&dir).unwrap();
    let witness = fs::read(dir.join("witness.pqi")).unwrap();
    assert_victim_quarantined(&dir, &witness, "generation skew");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_between_shard_write_and_manifest_rename_keeps_previous_generation() {
    let dir = tmp_dir("crash");
    let corpus = build(&dir);
    let generation = corpus.generation();
    let manifest_before = fs::read(dir.join("MANIFEST")).unwrap();
    drop(corpus);
    // Simulate `corpus add` dying after the shard write but before the
    // manifest rename: a fully-written orphan shard plus the NEW
    // manifest stranded under its temp name.
    let (t3, d3) = parse("{lib{article{title{X9}}}}");
    let mut scratch = Corpus::open(&dir).unwrap();
    scratch.add("orphan", &t3, &d3, None).unwrap();
    let manifest_after = fs::read(dir.join("MANIFEST")).unwrap();
    // Roll the manifest back to the pre-add bytes and strand the new
    // one as an interrupted rename.
    fs::write(dir.join("MANIFEST"), &manifest_before).unwrap();
    fs::write(dir.join("MANIFEST.tmp.1234"), &manifest_after).unwrap();
    let corpus = Corpus::open(&dir).unwrap();
    assert_eq!(corpus.generation(), generation);
    assert_eq!(corpus.total_shards(), 2, "orphan shard is not referenced");
    assert_eq!(corpus.healthy_count(), 2);
    assert!(!corpus.is_degraded());
    // Completing the rename (recovery finishing the interrupted commit)
    // yields the full three-shard corpus.
    fs::rename(dir.join("MANIFEST.tmp.1234"), dir.join("MANIFEST")).unwrap();
    let corpus = Corpus::open(&dir).unwrap();
    assert_eq!(corpus.total_shards(), 3);
    assert_eq!(corpus.healthy_count(), 3);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_damage_is_fatal_and_detected() {
    let dir = tmp_dir("mfatal");
    drop(build(&dir));
    let path = dir.join("MANIFEST");
    let clean = fs::read(&path).unwrap();
    // Bit flips anywhere in the manifest: always a structured error.
    for i in (0..clean.len()).step_by(7) {
        let mut bytes = clean.clone();
        bytes[i] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        let err = Corpus::open(&dir).expect_err("flipped manifest opened");
        assert!(
            err.to_string().contains("manifest"),
            "flip at {i}: unexpected error {err}"
        );
    }
    // Missing manifest: fatal, with a readable message.
    fs::remove_file(&path).unwrap();
    let err = Corpus::open(&dir).expect_err("missing manifest opened");
    assert!(err.to_string().contains("cannot read"), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}
