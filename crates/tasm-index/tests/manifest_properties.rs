//! Property-based tests for the corpus `MANIFEST` codec.
//!
//! The manifest is the corpus store's single point of trust: every
//! shard is verified *against it*, so the codec itself must be
//! watertight. Properties:
//!
//! * encode → decode is the identity for arbitrary manifests
//!   (dictionaries with multi-byte UTF-8 labels, shards with and
//!   without recorded sources, extreme numeric fields);
//! * any truncation of the encoded bytes is a structured error, at
//!   every possible cut point;
//! * any single-bit corruption is caught by the trailing CRC-32;
//! * arbitrary junk never panics the decoder — torn input is always an
//!   `Err`, never a crash or a silent misparse.

use proptest::prelude::*;
use tasm_index::{Manifest, ShardMeta, MANIFEST_MAGIC};

/// Strings over a small alphabet that includes a multi-byte UTF-8
/// character, so length-prefix handling is exercised beyond ASCII.
fn arb_string(max_len: usize) -> impl Strategy<Value = String> {
    const ALPHABET: [&str; 8] = ["a", "b", "z", "0", "_", ".", "-", "é"];
    proptest::collection::vec(0usize..ALPHABET.len(), 0..max_len)
        .prop_map(|picks| picks.into_iter().map(|i| ALPHABET[i]).collect())
}

fn arb_shard() -> impl Strategy<Value = ShardMeta> {
    (
        (
            arb_string(24),
            arb_string(32),
            any::<bool>(),
            arb_string(16),
        ),
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((name, path, with_source, source), (file_size, file_crc, generation, n_nodes))| {
                ShardMeta {
                    name,
                    path,
                    // The codec encodes None as ""; a Some("") would not
                    // round-trip, by design, so never generate it.
                    source: (with_source && !source.is_empty()).then_some(source),
                    file_size,
                    file_crc,
                    generation,
                    n_nodes,
                }
            },
        )
}

fn arb_manifest() -> impl Strategy<Value = Manifest> {
    (
        any::<u64>(),
        proptest::collection::vec((arb_string(16), any::<u64>()), 0..12),
        proptest::collection::vec(arb_shard(), 0..8),
    )
        .prop_map(|(generation, labels, shards)| Manifest {
            generation,
            labels,
            shards,
        })
}

proptest! {
    #[test]
    fn round_trips(m in arb_manifest()) {
        let bytes = m.to_bytes();
        let back = Manifest::from_bytes(&bytes).expect("self-encoded manifest decodes");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn every_truncation_errors(m in arb_manifest()) {
        let bytes = m.to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                Manifest::from_bytes(&bytes[..cut]).is_err(),
                "cut at {} decoded", cut
            );
        }
    }

    #[test]
    fn every_bit_flip_errors(m in arb_manifest(), pos in any::<usize>(), bit in 0u8..8) {
        let mut bytes = m.to_bytes();
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        prop_assert!(
            Manifest::from_bytes(&bytes).is_err(),
            "flip of bit {} at byte {} decoded", bit, i
        );
    }

    #[test]
    fn junk_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Errors are fine; panics and silent misparses are not. Junk
        // passing the CRC by chance is astronomically unlikely, so any
        // Ok here would be a real decoder hole.
        let _ = Manifest::from_bytes(&bytes);
    }

    #[test]
    fn junk_after_valid_magic_never_panics(tail in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut bytes = MANIFEST_MAGIC.to_vec();
        bytes.extend_from_slice(&tail);
        prop_assert!(Manifest::from_bytes(&bytes).is_err());
    }
}
