//! The crash-safe corpus store: a directory of `.pqi` shards described
//! by a versioned, checksummed `MANIFEST`.
//!
//! # On-disk layout
//!
//! ```text
//! <corpus dir>/
//!   MANIFEST          versioned + checksummed catalog (format below)
//!   <name>.pqi        one indexed shard per document
//! ```
//!
//! # `MANIFEST` format (little-endian)
//!
//! ```text
//! magic      "TASMCM1\n"                                8 bytes
//! generation u64                                        monotonic
//! n_labels   u64
//! labels     n_labels × (u32 len, bytes, u64 freq)      corpus dictionary,
//!                                                       descending frequency
//! n_shards   u64
//! shards     n_shards × shard record
//! crc32      u32                CRC-32 (IEEE) of every byte after magic
//!
//! shard record:
//!   name       u32 len, bytes       document name (also the query alias)
//!   path       u32 len, bytes       shard file, relative to the corpus dir
//!   source     u32 len, bytes       original input path ("" if unknown)
//!   file_size  u64                  exact shard byte length
//!   file_crc   u32                  CRC-32 of the whole shard file
//!   generation u64                  generation that wrote the shard
//!   n_nodes    u64                  nodes in the shard's tree
//! ```
//!
//! # Durability discipline
//!
//! Every mutation ([`Corpus::add`], [`Corpus::repair_shard`]) writes the
//! shard file first, then the manifest — both through
//! [`tasm_tree::postfile::atomic_write`] (temp + fsync + rename), with
//! the generation bumped on each manifest rewrite. A crash at any point
//! leaves the **previous** generation fully readable: an orphaned shard
//! or leftover `*.tmp.*` file is simply never referenced by the
//! manifest, and a half-written manifest never replaces the old one.
//!
//! # Verification and quarantine
//!
//! [`Corpus::open`] trusts nothing: each shard is checked against its
//! manifest record (generation skew, file size, whole-file CRC, then
//! the `.pqi` format's own structural + checksum validation, then the
//! recorded node count). A shard failing any check is *quarantined* —
//! excluded from querying, its failure captured as a [`ShardReport`] —
//! and the open still succeeds in degraded mode. Only a missing or
//! corrupt `MANIFEST` is fatal ([`CorpusError::Manifest`]).

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use tasm_tree::crc::crc32_update;
use tasm_tree::postfile::atomic_write;
use tasm_tree::{LabelDict, Tree};

use crate::document::IndexedDocument;

/// File name of the corpus catalog inside the corpus directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

/// Magic opening a corpus manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"TASMCM1\n";

/// Errors for the corpus store.
#[derive(Debug)]
pub enum CorpusError {
    /// The `MANIFEST` itself is missing, torn, or fails its checksum.
    /// Per-shard damage is never reported here — it quarantines the
    /// shard instead (see [`ShardReport`]).
    Manifest(String),
    /// Underlying I/O failure outside any single shard.
    Io(io::Error),
    /// Invalid request (duplicate or malformed document name, unknown
    /// shard, corpus directory already initialized, …).
    Invalid(String),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Manifest(msg) => write!(f, "corpus manifest: {msg}"),
            CorpusError::Io(e) => write!(f, "corpus i/o: {e}"),
            CorpusError::Invalid(msg) => write!(f, "corpus: {msg}"),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        CorpusError::Io(e)
    }
}

impl From<tasm_tree::postfile::PostFileError> for CorpusError {
    fn from(e: tasm_tree::postfile::PostFileError) -> Self {
        match e {
            tasm_tree::postfile::PostFileError::Io(e) => CorpusError::Io(e),
            other => CorpusError::Invalid(other.to_string()),
        }
    }
}

/// One shard record of the manifest: everything needed to locate and
/// verify a shard without opening it optimistically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Document name; unique within the corpus, used as the query alias.
    pub name: String,
    /// Shard file path, relative to the corpus directory.
    pub path: String,
    /// Original input the shard was indexed from (`None` if unknown);
    /// `fsck --repair` re-indexes from here.
    pub source: Option<String>,
    /// Exact byte length of the shard file when it was written.
    pub file_size: u64,
    /// CRC-32 (IEEE) of the whole shard file.
    pub file_crc: u32,
    /// Generation whose manifest rewrite produced this shard file.
    pub generation: u64,
    /// Node count of the shard's tree.
    pub n_nodes: u64,
}

/// The decoded `MANIFEST`: generation, corpus-wide label dictionary
/// (descending frequency) and one [`ShardMeta`] per shard.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Monotonic generation number, bumped on every rewrite.
    pub generation: u64,
    /// Corpus-wide `(label, frequency)` dictionary in descending
    /// frequency order (ties broken by label), summed over the healthy
    /// shards at the last rewrite.
    pub labels: Vec<(String, u64)>,
    /// Shard records, in insertion order.
    pub shards: Vec<ShardMeta>,
}

impl Manifest {
    /// Serializes the manifest, including magic and trailing checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&(self.labels.len() as u64).to_le_bytes());
        for (label, freq) in &self.labels {
            put_bytes(&mut out, label.as_bytes());
            out.extend_from_slice(&freq.to_le_bytes());
        }
        out.extend_from_slice(&(self.shards.len() as u64).to_le_bytes());
        for s in &self.shards {
            put_bytes(&mut out, s.name.as_bytes());
            put_bytes(&mut out, s.path.as_bytes());
            put_bytes(&mut out, s.source.as_deref().unwrap_or("").as_bytes());
            out.extend_from_slice(&s.file_size.to_le_bytes());
            out.extend_from_slice(&s.file_crc.to_le_bytes());
            out.extend_from_slice(&s.generation.to_le_bytes());
            out.extend_from_slice(&s.n_nodes.to_le_bytes());
        }
        let crc = crc32_update(0, &out[MANIFEST_MAGIC.len()..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a manifest, verifying magic and trailing checksum before
    /// trusting any field. Every way `bytes` can be torn, truncated or
    /// bit-flipped is a structured [`CorpusError::Manifest`] — never a
    /// silent misparse.
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, CorpusError> {
        let magic_len = MANIFEST_MAGIC.len();
        if bytes.len() < magic_len || &bytes[..magic_len] != MANIFEST_MAGIC {
            return Err(CorpusError::Manifest(
                "bad magic: not a corpus manifest".into(),
            ));
        }
        if bytes.len() < magic_len + 4 {
            return Err(CorpusError::Manifest(
                "truncated: shorter than magic + checksum".into(),
            ));
        }
        let body = &bytes[magic_len..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        let computed = crc32_update(0, body);
        if stored != computed {
            return Err(CorpusError::Manifest(format!(
                "checksum mismatch (stored {stored:08x}, computed {computed:08x}): \
                 torn or bit-rotted manifest"
            )));
        }
        let mut cur = Cursor { buf: body, pos: 0 };
        let generation = cur.u64("generation")?;
        let n_labels = cur.u64("label count")?;
        let mut labels = Vec::new();
        for i in 0..n_labels {
            let label = cur.string(&format!("label {i}"))?;
            let freq = cur.u64(&format!("frequency of label {i}"))?;
            labels.push((label, freq));
        }
        let n_shards = cur.u64("shard count")?;
        let mut shards = Vec::new();
        for i in 0..n_shards {
            let name = cur.string(&format!("name of shard {i}"))?;
            let path = cur.string(&format!("path of shard {i}"))?;
            let source = cur.string(&format!("source of shard {i}"))?;
            let file_size = cur.u64(&format!("size of shard {i}"))?;
            let file_crc = cur.u32(&format!("crc of shard {i}"))?;
            let generation = cur.u64(&format!("generation of shard {i}"))?;
            let n_nodes = cur.u64(&format!("node count of shard {i}"))?;
            shards.push(ShardMeta {
                name,
                path,
                source: if source.is_empty() {
                    None
                } else {
                    Some(source)
                },
                file_size,
                file_crc,
                generation,
                n_nodes,
            });
        }
        if cur.pos != body.len() {
            return Err(CorpusError::Manifest(format!(
                "{} trailing bytes after the last shard record",
                body.len() - cur.pos
            )));
        }
        Ok(Manifest {
            generation,
            labels,
            shards,
        })
    }

    /// Reads and verifies `<dir>/MANIFEST`.
    pub fn load(dir: impl AsRef<Path>) -> Result<Manifest, CorpusError> {
        let path = dir.as_ref().join(MANIFEST_NAME);
        let bytes = fs::read(&path)
            .map_err(|e| CorpusError::Manifest(format!("cannot read {}: {e}", path.display())))?;
        Manifest::from_bytes(&bytes)
    }

    /// Writes `<dir>/MANIFEST` atomically (temp + fsync + rename): a
    /// crash mid-store leaves the previous manifest intact.
    pub fn store(&self, dir: impl AsRef<Path>) -> Result<(), CorpusError> {
        let bytes = self.to_bytes();
        atomic_write(dir.as_ref().join(MANIFEST_NAME), |out| {
            out.write_all(&bytes).map_err(Into::into)
        })?;
        Ok(())
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Bounds-checked little-endian slice cursor for manifest decoding.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], CorpusError> {
        if self.buf.len() - self.pos < n {
            return Err(CorpusError::Manifest(format!(
                "truncated reading {what} ({} of {n} bytes left)",
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, CorpusError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CorpusError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn string(&mut self, what: &str) -> Result<String, CorpusError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CorpusError::Manifest(format!("{what} is not valid UTF-8")))
    }
}

/// Structured failure report for one quarantined shard.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Document name of the damaged shard.
    pub name: String,
    /// Absolute path of the shard file that failed verification.
    pub path: PathBuf,
    /// What the verification found (size mismatch, CRC mismatch,
    /// structural error, generation skew, missing file, …).
    pub error: String,
}

/// Summary of a verification pass over a corpus.
#[derive(Debug)]
pub struct FsckOutcome {
    /// Shards listed by the manifest.
    pub total: usize,
    /// Shards that passed every check.
    pub healthy: usize,
    /// One report per quarantined shard.
    pub reports: Vec<ShardReport>,
    /// Names re-indexed successfully (repair mode only).
    pub repaired: Vec<String>,
}

/// An opened corpus: the verified manifest, every healthy shard loaded
/// as an [`IndexedDocument`], and a quarantine list for the rest.
#[derive(Debug)]
pub struct Corpus {
    dir: PathBuf,
    manifest: Manifest,
    dict: LabelDict,
    /// Aligned with `manifest.shards`; `None` = quarantined.
    docs: Vec<Option<IndexedDocument>>,
    quarantined: Vec<ShardReport>,
}

impl Corpus {
    /// Initializes an empty corpus at `dir` (created if missing) and
    /// writes generation-1 `MANIFEST`. Fails if a manifest already
    /// exists there — a corpus is never silently clobbered.
    pub fn create(dir: impl AsRef<Path>) -> Result<Corpus, CorpusError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if dir.join(MANIFEST_NAME).exists() {
            return Err(CorpusError::Invalid(format!(
                "{} already holds a corpus (MANIFEST exists)",
                dir.display()
            )));
        }
        let manifest = Manifest {
            generation: 1,
            labels: Vec::new(),
            shards: Vec::new(),
        };
        manifest.store(&dir)?;
        Ok(Corpus {
            dir,
            dict: LabelDict::new(),
            manifest,
            docs: Vec::new(),
            quarantined: Vec::new(),
        })
    }

    /// Opens the corpus at `dir`, verifying every shard against its
    /// manifest record. Damaged shards are quarantined (see
    /// [`Corpus::quarantined`]); only a missing or corrupt `MANIFEST`
    /// is an error.
    pub fn open(dir: impl AsRef<Path>) -> Result<Corpus, CorpusError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = Manifest::load(&dir)?;
        let mut dict = LabelDict::with_capacity(manifest.labels.len());
        for (label, _) in &manifest.labels {
            dict.intern(label);
        }
        let mut docs = Vec::with_capacity(manifest.shards.len());
        let mut quarantined = Vec::new();
        for meta in &manifest.shards {
            let path = dir.join(&meta.path);
            match verify_shard(meta, manifest.generation, &path) {
                Ok(doc) => docs.push(Some(doc)),
                Err(error) => {
                    docs.push(None);
                    quarantined.push(ShardReport {
                        name: meta.name.clone(),
                        path,
                        error,
                    });
                }
            }
        }
        Ok(Corpus {
            dir,
            manifest,
            dict,
            docs,
            quarantined,
        })
    }

    /// Verifies the corpus at `dir` and summarizes the result.
    pub fn fsck(dir: impl AsRef<Path>) -> Result<FsckOutcome, CorpusError> {
        let corpus = Corpus::open(dir)?;
        Ok(FsckOutcome {
            total: corpus.total_shards(),
            healthy: corpus.healthy_count(),
            reports: corpus.quarantined.clone(),
            repaired: Vec::new(),
        })
    }

    /// Indexes `tree` as a new shard named `name` and commits it:
    /// shard file first, manifest second, both atomic, generation
    /// bumped. `source` records where the document came from so
    /// `fsck --repair` can re-index it later.
    pub fn add(
        &mut self,
        name: &str,
        tree: &Tree,
        dict: &LabelDict,
        source: Option<&str>,
    ) -> Result<&IndexedDocument, CorpusError> {
        validate_name(name)?;
        if self.manifest.shards.iter().any(|s| s.name == name) {
            return Err(CorpusError::Invalid(format!(
                "document '{name}' already exists in the corpus"
            )));
        }
        let rel = format!("{name}.pqi");
        let generation = self.manifest.generation + 1;
        let (doc, meta) = write_shard(&self.dir, name, &rel, tree, dict, source, generation)?;
        self.manifest.shards.push(meta);
        self.docs.push(Some(doc));
        self.commit(generation)?;
        Ok(self.docs.last().unwrap().as_ref().unwrap())
    }

    /// Re-indexes the shard named `name` from a freshly parsed `tree`,
    /// replacing the damaged file and clearing its quarantine entry.
    pub fn repair_shard(
        &mut self,
        name: &str,
        tree: &Tree,
        dict: &LabelDict,
    ) -> Result<(), CorpusError> {
        let idx = self
            .manifest
            .shards
            .iter()
            .position(|s| s.name == name)
            .ok_or_else(|| {
                CorpusError::Invalid(format!("no shard named '{name}' in the manifest"))
            })?;
        let generation = self.manifest.generation + 1;
        let old = &self.manifest.shards[idx];
        let source = old.source.clone();
        let (doc, meta) = write_shard(
            &self.dir,
            name,
            &old.path.clone(),
            tree,
            dict,
            source.as_deref(),
            generation,
        )?;
        self.manifest.shards[idx] = meta;
        self.docs[idx] = Some(doc);
        self.quarantined.retain(|r| r.name != name);
        self.commit(generation)
    }

    /// Rewrites the manifest at `generation` with the corpus dictionary
    /// recomputed from the healthy shards.
    fn commit(&mut self, generation: u64) -> Result<(), CorpusError> {
        self.manifest.generation = generation;
        self.manifest.labels = global_labels(&self.docs);
        let mut dict = LabelDict::with_capacity(self.manifest.labels.len());
        for (label, _) in &self.manifest.labels {
            dict.intern(label);
        }
        self.dict = dict;
        self.manifest.store(&self.dir)
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The verified manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The current manifest generation.
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// Shards listed by the manifest, healthy or not.
    pub fn total_shards(&self) -> usize {
        self.manifest.shards.len()
    }

    /// Shards that passed verification and can be queried.
    pub fn healthy_count(&self) -> usize {
        self.docs.iter().filter(|d| d.is_some()).count()
    }

    /// Whether at least one shard is quarantined.
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Failure reports for the quarantined shards.
    pub fn quarantined(&self) -> &[ShardReport] {
        &self.quarantined
    }

    /// The corpus-wide frequency-ordered label dictionary from the
    /// manifest. Queries parsed against it translate to any shard via
    /// [`IndexedDocument::encode_query`].
    pub fn global_dict(&self) -> &LabelDict {
        &self.dict
    }

    /// The healthy shards as `(shard index, name, document)`, in
    /// manifest order. Quarantined shards are skipped.
    pub fn healthy(&self) -> impl Iterator<Item = (usize, &str, &IndexedDocument)> {
        self.docs.iter().enumerate().filter_map(|(i, d)| {
            d.as_ref()
                .map(|doc| (i, self.manifest.shards[i].name.as_str(), doc))
        })
    }

    /// The loaded document of shard `idx` (`None` if quarantined or out
    /// of range).
    pub fn doc(&self, idx: usize) -> Option<&IndexedDocument> {
        self.docs.get(idx).and_then(|d| d.as_ref())
    }

    /// The document name of shard `idx`.
    pub fn shard_name(&self, idx: usize) -> Option<&str> {
        self.manifest.shards.get(idx).map(|s| s.name.as_str())
    }
}

/// Document names become file names; keep them portable and unable to
/// escape the corpus directory.
fn validate_name(name: &str) -> Result<(), CorpusError> {
    let ok = !name.is_empty()
        && name.len() <= 255
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        && !name.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(CorpusError::Invalid(format!(
            "invalid document name '{name}': use ASCII letters, digits, '-', '_', '.' \
             (must not start with '.')"
        )))
    }
}

/// Builds, serializes and atomically writes one shard, returning the
/// in-memory document and its manifest record.
fn write_shard(
    dir: &Path,
    name: &str,
    rel: &str,
    tree: &Tree,
    dict: &LabelDict,
    source: Option<&str>,
    generation: u64,
) -> Result<(IndexedDocument, ShardMeta), CorpusError> {
    let doc = IndexedDocument::build(tree, dict);
    let mut bytes = Vec::new();
    doc.write_to(&mut bytes)?;
    let file_crc = crc32_update(0, &bytes);
    let file_size = bytes.len() as u64;
    atomic_write(dir.join(rel), |out| {
        out.write_all(&bytes).map_err(Into::into)
    })?;
    let meta = ShardMeta {
        name: name.to_string(),
        path: rel.to_string(),
        source: source.map(str::to_string),
        file_size,
        file_crc,
        generation,
        n_nodes: tree.len() as u64,
    };
    Ok((doc, meta))
}

/// Checks one shard file against its manifest record. Any failure is a
/// quarantine reason, never a panic or a silent pass.
fn verify_shard(
    meta: &ShardMeta,
    manifest_generation: u64,
    path: &Path,
) -> Result<IndexedDocument, String> {
    if meta.generation > manifest_generation {
        return Err(format!(
            "generation skew: shard written by generation {} but manifest is generation {}",
            meta.generation, manifest_generation
        ));
    }
    let bytes = fs::read(path).map_err(|e| format!("cannot read shard file: {e}"))?;
    if bytes.len() as u64 != meta.file_size {
        return Err(format!(
            "size mismatch: file is {} bytes, manifest records {}",
            bytes.len(),
            meta.file_size
        ));
    }
    let crc = crc32_update(0, &bytes);
    if crc != meta.file_crc {
        return Err(format!(
            "file checksum mismatch (computed {crc:08x}, manifest records {:08x}): \
             torn or bit-rotted shard",
            meta.file_crc
        ));
    }
    // The whole file is already in memory for the CRC pass above, so the
    // decode takes the zero-copy slice path — no second read, no
    // per-field reader calls.
    let doc = IndexedDocument::open_bytes(&bytes)
        .map_err(|e| format!("shard failed .pqi validation: {e}"))?;
    if doc.tree().len() as u64 != meta.n_nodes {
        return Err(format!(
            "node count mismatch: shard has {} nodes, manifest records {}",
            doc.tree().len(),
            meta.n_nodes
        ));
    }
    Ok(doc)
}

/// Sums per-shard label frequencies over the healthy shards into the
/// corpus dictionary: descending total frequency, ties broken by label.
fn global_labels(docs: &[Option<IndexedDocument>]) -> Vec<(String, u64)> {
    let mut totals: HashMap<String, u64> = HashMap::new();
    for doc in docs.iter().flatten() {
        for (id, label) in doc.dict().iter() {
            let f = u64::from(doc.frequency(id));
            if f > 0 {
                *totals.entry(label.to_string()).or_insert(0) += f;
            }
        }
    }
    let mut labels: Vec<(String, u64)> = totals.into_iter().collect();
    labels.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_tree::bracket;

    fn parse(src: &str) -> (Tree, LabelDict) {
        let mut dict = LabelDict::new();
        let tree = bracket::parse(src, &mut dict).unwrap();
        (tree, dict)
    }

    fn sample_corpus(dir: &Path) -> Corpus {
        let mut corpus = Corpus::create(dir).unwrap();
        let (t1, d1) = parse("{dblp{article{title{X1}}}{book{title{X2}}}}");
        corpus.add("docs-a", &t1, &d1, Some("a.xml")).unwrap();
        let (t2, d2) = parse("{dblp{article{author{A}}{title{X1}}}}");
        corpus.add("docs-b", &t2, &d2, None).unwrap();
        corpus
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tasm-corpus-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            generation: 7,
            labels: vec![("title".into(), 4), ("a".into(), 1)],
            shards: vec![ShardMeta {
                name: "x".into(),
                path: "x.pqi".into(),
                source: Some("x.xml".into()),
                file_size: 123,
                file_crc: 0xDEAD_BEEF,
                generation: 6,
                n_nodes: 42,
            }],
        };
        let bytes = m.to_bytes();
        assert_eq!(Manifest::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn every_manifest_cut_and_flip_is_detected() {
        let m = sample_manifest();
        let bytes = m.to_bytes();
        for cut in 0..bytes.len() {
            let err = Manifest::from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "cut at {cut} parsed");
        }
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            assert!(
                Manifest::from_bytes(&flipped).is_err(),
                "flip at byte {i} parsed"
            );
        }
    }

    fn sample_manifest() -> Manifest {
        Manifest {
            generation: 3,
            labels: vec![("title".into(), 9)],
            shards: vec![ShardMeta {
                name: "d".into(),
                path: "d.pqi".into(),
                source: None,
                file_size: 10,
                file_crc: 1,
                generation: 2,
                n_nodes: 5,
            }],
        }
    }

    #[test]
    fn add_then_open_round_trips() {
        let dir = tmp_dir("roundtrip");
        let corpus = sample_corpus(&dir);
        assert_eq!(corpus.generation(), 3);
        drop(corpus);
        let corpus = Corpus::open(&dir).unwrap();
        assert_eq!(corpus.total_shards(), 2);
        assert_eq!(corpus.healthy_count(), 2);
        assert!(!corpus.is_degraded());
        let names: Vec<&str> = corpus.healthy().map(|(_, n, _)| n).collect();
        assert_eq!(names, ["docs-a", "docs-b"]);
        // Global dict is frequency-ordered: "title" occurs 3 times.
        assert_eq!(corpus.manifest().labels[0].0, "title");
        assert_eq!(corpus.manifest().labels[0].1, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let dir = tmp_dir("dup");
        let mut corpus = sample_corpus(&dir);
        let (t, d) = parse("{a}");
        let err = corpus.add("docs-a", &t, &d, None).unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
        let err = corpus.add("../evil", &t, &d, None).unwrap_err();
        assert!(err.to_string().contains("invalid document name"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_shard_byte_is_quarantined_not_fatal() {
        let dir = tmp_dir("flip");
        drop(sample_corpus(&dir));
        let shard = dir.join("docs-a.pqi");
        let mut bytes = fs::read(&shard).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&shard, &bytes).unwrap();
        let corpus = Corpus::open(&dir).unwrap();
        assert_eq!(corpus.healthy_count(), 1);
        assert!(corpus.is_degraded());
        let report = &corpus.quarantined()[0];
        assert_eq!(report.name, "docs-a");
        assert!(
            report.error.contains("checksum mismatch"),
            "{}",
            report.error
        );
        // The healthy shard is still fully loaded.
        assert_eq!(corpus.healthy().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_and_missing_shards_are_quarantined() {
        let dir = tmp_dir("trunc");
        drop(sample_corpus(&dir));
        let a = dir.join("docs-a.pqi");
        let bytes = fs::read(&a).unwrap();
        fs::write(&a, &bytes[..bytes.len() - 3]).unwrap();
        fs::remove_file(dir.join("docs-b.pqi")).unwrap();
        let corpus = Corpus::open(&dir).unwrap();
        assert_eq!(corpus.healthy_count(), 0);
        assert_eq!(corpus.quarantined().len(), 2);
        assert!(corpus.quarantined()[0].error.contains("size mismatch"));
        assert!(corpus.quarantined()[1].error.contains("cannot read"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_restores_a_quarantined_shard() {
        let dir = tmp_dir("repair");
        drop(sample_corpus(&dir));
        let shard = dir.join("docs-a.pqi");
        let clean = fs::read(&shard).unwrap();
        let mut bytes = clean.clone();
        bytes[20] ^= 0xFF;
        fs::write(&shard, &bytes).unwrap();
        let mut corpus = Corpus::open(&dir).unwrap();
        assert!(corpus.is_degraded());
        let (t1, d1) = parse("{dblp{article{title{X1}}}{book{title{X2}}}}");
        corpus.repair_shard("docs-a", &t1, &d1).unwrap();
        assert!(!corpus.is_degraded());
        // Byte-identical to the original shard: the build is
        // deterministic, so repair restores exactly what was lost.
        assert_eq!(fs::read(&shard).unwrap(), clean);
        let corpus = Corpus::open(&dir).unwrap();
        assert_eq!(corpus.healthy_count(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_skew_is_quarantined() {
        let dir = tmp_dir("skew");
        drop(sample_corpus(&dir));
        let mut manifest = Manifest::load(&dir).unwrap();
        manifest.shards[0].generation = manifest.generation + 5;
        manifest.store(&dir).unwrap();
        let corpus = Corpus::open(&dir).unwrap();
        assert_eq!(corpus.healthy_count(), 1);
        assert!(corpus.quarantined()[0].error.contains("generation skew"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_simulated_orphans_are_ignored() {
        // A crash between the shard write and the manifest write leaves
        // an orphaned shard file and a stale temp file; the previous
        // generation must still open clean.
        let dir = tmp_dir("orphan");
        let corpus = sample_corpus(&dir);
        let generation = corpus.generation();
        drop(corpus);
        fs::write(dir.join("docs-c.pqi"), b"half-written orphan").unwrap();
        fs::write(dir.join("MANIFEST.tmp.9999"), b"interrupted rename").unwrap();
        let corpus = Corpus::open(&dir).unwrap();
        assert_eq!(corpus.generation(), generation);
        assert_eq!(corpus.total_shards(), 2);
        assert_eq!(corpus.healthy_count(), 2);
        assert!(!corpus.is_degraded());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = tmp_dir("clobber");
        drop(sample_corpus(&dir));
        let err = Corpus::create(&dir).unwrap_err();
        assert!(err.to_string().contains("already holds a corpus"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
