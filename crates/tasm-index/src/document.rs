//! [`IndexedDocument`]: one document materialized with its `.pqi` label
//! index (frequency-ordered dictionary, per-label postings, checksummed
//! postings section). See the crate docs for the file format.

use std::io::{self, Read, Write};
use std::path::Path;

use tasm_tree::crc::{crc32_update, Crc32Reader};
use tasm_tree::postfile::{PostFileError, PostFileReader, MAGIC_V2};
use tasm_tree::{LabelDict, LabelId, NodeId, PostorderQueue, Tree};

/// A document materialized together with its label index, as stored in
/// a `.pqi` file.
///
/// Label ids are **index-local**: dense, frequency-ordered ids minted by
/// [`build`](IndexedDocument::build) (or read back from the file), not
/// the ids of the dictionary the document was first parsed with. Encode
/// queries with [`encode_query`](IndexedDocument::encode_query) before
/// matching against the indexed tree.
#[derive(Debug, Clone)]
pub struct IndexedDocument {
    tree: Tree,
    dict: LabelDict,
    /// `postings[l]` = ascending postorder positions (1-based) of the
    /// nodes labeled `l`. Indexed by the dense frequency-ordered id.
    postings: Vec<Vec<u32>>,
}

impl IndexedDocument {
    /// Builds the index for `tree` in memory, remapping its labels to
    /// frequency-ordered dense ids (most frequent label gets id 0; ties
    /// break by the original id, so the result is deterministic).
    ///
    /// `dict` must be the dictionary `tree`'s labels were interned with;
    /// labels interned there but unused by `tree` are kept (with empty
    /// postings), so round-tripping through a file preserves them.
    pub fn build(tree: &Tree, dict: &LabelDict) -> IndexedDocument {
        let n_labels = dict.len();
        let mut freq = vec![0u32; n_labels];
        for l in tree.labels() {
            freq[l.index()] += 1;
        }
        // Permutation old id -> new id by descending frequency.
        let mut by_freq: Vec<u32> = (0..n_labels as u32).collect();
        by_freq.sort_by_key(|&old| (std::cmp::Reverse(freq[old as usize]), old));
        let mut remap = vec![0u32; n_labels];
        let mut new_dict = LabelDict::with_capacity(n_labels);
        for (new, &old) in by_freq.iter().enumerate() {
            remap[old as usize] = new as u32;
            new_dict.intern(dict.resolve(LabelId(old)));
        }
        let labels: Vec<LabelId> = tree
            .labels()
            .iter()
            .map(|l| LabelId(remap[l.index()]))
            .collect();
        let mut postings: Vec<Vec<u32>> = (0..n_labels).map(|_| Vec::new()).collect();
        for (i, l) in labels.iter().enumerate() {
            postings[l.index()].push(i as u32 + 1);
        }
        let tree = Tree::from_postorder_unchecked(labels, tree.sizes().to_vec());
        IndexedDocument {
            tree,
            dict: new_dict,
            postings,
        }
    }

    /// Opens a `.pqi` file through the zero-copy slice path: one
    /// `fs::read` into a buffer, then [`open_bytes`](Self::open_bytes)
    /// over it — no per-field reader calls, and the postings checksum
    /// is computed in a single pass over the buffer.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PostFileError> {
        let bytes = std::fs::read(path)?;
        Self::open_bytes(&bytes)
    }

    /// Reads an index from any byte source, validating it fully: the
    /// entry section must be complete (a truncated file is an error,
    /// never a silently smaller document) and the postings must agree
    /// with the entry section label by label.
    pub fn from_reader(input: impl Read) -> Result<Self, PostFileError> {
        let mut reader = PostFileReader::new(input)?;
        if reader.version() != 2 {
            return Err(PostFileError::Format(
                "not an indexed file: version 1 has no postings (run `tasm index`)".into(),
            ));
        }
        let total = reader.total_nodes();
        let mut entries = Vec::with_capacity(usize::try_from(total).unwrap_or(0));
        while let Some(e) = reader.dequeue() {
            entries.push((e.label, e.size));
        }
        if let Some(msg) = reader.integrity_error() {
            return Err(PostFileError::Format(msg));
        }
        let tree = Tree::from_postorder(entries)
            .map_err(|e| PostFileError::Format(format!("invalid postorder entries: {e}")))?;
        let (input, dict) = reader.into_inner();
        // Hash the postings section as it streams by; the trailing
        // checksum is compared after the last list.
        let mut input = Crc32Reader::new(input);

        let n = tree.len() as u64;
        let n_labels = dict.len();
        let mut freq = vec![0u32; n_labels];
        for l in tree.labels() {
            freq[l.index()] += 1;
        }
        let mut postings: Vec<Vec<u32>> = Vec::with_capacity(n_labels);
        let mut covered = 0u64;
        for (label, &expected) in freq.iter().enumerate() {
            let len = read_u32(&mut input).map_err(|e| truncation(e, "postings length"))?;
            if u64::from(len) > n || len != expected {
                return Err(PostFileError::Format(format!(
                    "postings of label {label} list {len} nodes, entries have {expected}"
                )));
            }
            let mut list = Vec::with_capacity(len as usize);
            let mut prev = 0u32;
            for _ in 0..len {
                let pos = read_u32(&mut input).map_err(|e| truncation(e, "postings entry"))?;
                if pos <= prev || u64::from(pos) > n {
                    return Err(PostFileError::Format(format!(
                        "postings of label {label} are not ascending positions in 1..={n}"
                    )));
                }
                if tree.label(NodeId::new(pos)).index() != label {
                    return Err(PostFileError::Format(format!(
                        "postings of label {label} point at a node labeled differently"
                    )));
                }
                prev = pos;
                list.push(pos);
            }
            covered += u64::from(len);
            postings.push(list);
        }
        if covered != n {
            return Err(PostFileError::Format(format!(
                "postings cover {covered} of {n} nodes"
            )));
        }
        let computed = input.crc();
        let mut input = input.into_inner();
        let stored = read_u32(&mut input).map_err(|e| truncation(e, "postings checksum"))?;
        if stored != computed {
            return Err(PostFileError::Corrupt(format!(
                "postings checksum mismatch (stored {stored:08x}, computed {computed:08x}): \
                 torn or bit-rotted index write — rebuild with `tasm index`"
            )));
        }
        Ok(IndexedDocument {
            tree,
            dict,
            postings,
        })
    }

    /// Decodes an index from one in-memory buffer through a borrowed
    /// [`PqiView`]: bulk slice decoding instead of per-field reader
    /// calls, with the postings checksum computed in **one** pass over
    /// the postings slice. Validation is identical to
    /// [`from_reader`](Self::from_reader) — every truncation,
    /// structural inconsistency and checksum mismatch is the same
    /// error, never a silent misparse (pinned by the corruption tests,
    /// which run both paths).
    pub fn open_bytes(bytes: &[u8]) -> Result<Self, PostFileError> {
        Self::from_view(&PqiView::parse(bytes)?)
    }

    /// Materializes a parsed [`PqiView`] into an owned document,
    /// running the full structural + checksum validation against the
    /// borrowed sections.
    pub fn from_view(view: &PqiView<'_>) -> Result<Self, PostFileError> {
        let mut dict = LabelDict::with_capacity(view.labels.len());
        for (i, name) in view.labels.iter().enumerate() {
            let id = dict.intern(name);
            if id.index() != i {
                return Err(PostFileError::Format(format!("duplicate label {name}")));
            }
        }
        // Bulk-decode the fixed-width entry section.
        let mut entries = Vec::with_capacity(view.records.len() / 8);
        for rec in view.records.chunks_exact(8) {
            let label = u32::from_le_bytes(rec[..4].try_into().unwrap());
            let size = u32::from_le_bytes(rec[4..].try_into().unwrap());
            entries.push((LabelId(label), size));
        }
        let tree = Tree::from_postorder(entries)
            .map_err(|e| PostFileError::Format(format!("invalid postorder entries: {e}")))?;

        let n = tree.len() as u64;
        let n_labels = dict.len();
        let mut freq = vec![0u32; n_labels];
        for l in tree.labels() {
            freq[l.index()] += 1;
        }
        // Walk the postings section structurally to find its extent,
        // cross-checking every list against the entry section.
        let tail = view.tail;
        let mut cur = SliceCursor { buf: tail, pos: 0 };
        let mut postings: Vec<Vec<u32>> = Vec::with_capacity(n_labels);
        let mut covered = 0u64;
        for (label, &expected) in freq.iter().enumerate() {
            let len = cur.u32("postings length")?;
            if u64::from(len) > n || len != expected {
                return Err(PostFileError::Format(format!(
                    "postings of label {label} list {len} nodes, entries have {expected}"
                )));
            }
            let raw = cur.take(len as usize * 4, "postings entry")?;
            let mut list = Vec::with_capacity(len as usize);
            let mut prev = 0u32;
            for chunk in raw.chunks_exact(4) {
                let pos = u32::from_le_bytes(chunk.try_into().unwrap());
                if pos <= prev || u64::from(pos) > n {
                    return Err(PostFileError::Format(format!(
                        "postings of label {label} are not ascending positions in 1..={n}"
                    )));
                }
                if tree.label(NodeId::new(pos)).index() != label {
                    return Err(PostFileError::Format(format!(
                        "postings of label {label} point at a node labeled differently"
                    )));
                }
                prev = pos;
                list.push(pos);
            }
            covered += u64::from(len);
            postings.push(list);
        }
        if covered != n {
            return Err(PostFileError::Format(format!(
                "postings cover {covered} of {n} nodes"
            )));
        }
        // One crc32 call over the whole postings slice — the streaming
        // path hashes the same bytes 4 at a time.
        let computed = crc32_update(0, &tail[..cur.pos]);
        let stored = cur.u32("postings checksum")?;
        if stored != computed {
            return Err(PostFileError::Corrupt(format!(
                "postings checksum mismatch (stored {stored:08x}, computed {computed:08x}): \
                 torn or bit-rotted index write — rebuild with `tasm index`"
            )));
        }
        Ok(IndexedDocument {
            tree,
            dict,
            postings,
        })
    }

    /// Serializes the index in the `.pqi` (version 2) format.
    pub fn write_to<W: Write>(&self, mut out: W) -> Result<(), PostFileError> {
        out.write_all(MAGIC_V2)?;
        out.write_all(&(self.tree.len() as u64).to_le_bytes())?;
        out.write_all(&(self.dict.len() as u64).to_le_bytes())?;
        for (_, name) in self.dict.iter() {
            let bytes = name.as_bytes();
            out.write_all(&(bytes.len() as u32).to_le_bytes())?;
            out.write_all(bytes)?;
        }
        for (label, size) in self.tree.labels().iter().zip(self.tree.sizes()) {
            out.write_all(&label.0.to_le_bytes())?;
            out.write_all(&size.to_le_bytes())?;
        }
        let mut crc = 0u32;
        for list in &self.postings {
            let len = (list.len() as u32).to_le_bytes();
            crc = crc32_update(crc, &len);
            out.write_all(&len)?;
            for pos in list {
                let bytes = pos.to_le_bytes();
                crc = crc32_update(crc, &bytes);
                out.write_all(&bytes)?;
            }
        }
        out.write_all(&crc.to_le_bytes())?;
        out.flush()?;
        Ok(())
    }

    /// Convenience: builds the index for `tree` and writes it to `path`
    /// **atomically** (temp file + fsync + rename, see
    /// [`tasm_tree::postfile::atomic_write`]): a crash mid-write leaves
    /// the previous index intact, never a torn `.pqi`.
    pub fn save(
        path: impl AsRef<Path>,
        tree: &Tree,
        dict: &LabelDict,
    ) -> Result<IndexedDocument, PostFileError> {
        let idx = IndexedDocument::build(tree, dict);
        tasm_tree::postfile::atomic_write(path, |out| idx.write_to(out))?;
        Ok(idx)
    }

    /// The materialized document, labels in index-local ids.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The frequency-ordered label dictionary.
    pub fn dict(&self) -> &LabelDict {
        &self.dict
    }

    /// Document frequency of a label (0 for ids outside the dictionary,
    /// e.g. query-only labels interned by `encode_query`).
    pub fn frequency(&self, label: LabelId) -> u32 {
        self.postings
            .get(label.index())
            .map_or(0, |p| p.len() as u32)
    }

    /// Ascending postorder positions of the nodes labeled `label`
    /// (empty for ids outside the dictionary).
    pub fn postings(&self, label: LabelId) -> &[u32] {
        self.postings.get(label.index()).map_or(&[], |p| p)
    }

    /// Re-encodes a query parsed with a different dictionary into this
    /// index's label space. Labels the document does not contain are
    /// interned into the returned working dictionary (their postings
    /// are empty), so the encoded query remains fully resolvable.
    pub fn encode_query(&self, query: &Tree, src_dict: &LabelDict) -> (Tree, LabelDict) {
        let (mut trees, dict) = self.encode_queries(&[query], src_dict);
        (trees.pop().expect("one query in, one out"), dict)
    }

    /// As [`encode_query`](Self::encode_query) for a batch, sharing one
    /// working dictionary.
    pub fn encode_queries(
        &self,
        queries: &[&Tree],
        src_dict: &LabelDict,
    ) -> (Vec<Tree>, LabelDict) {
        let mut dict = self.dict.clone();
        let trees = queries
            .iter()
            .map(|q| {
                let labels: Vec<LabelId> = q
                    .labels()
                    .iter()
                    .map(|l| dict.intern(src_dict.resolve(*l)))
                    .collect();
                Tree::from_postorder_unchecked(labels, q.sizes().to_vec())
            })
            .collect();
        (trees, dict)
    }

    /// Computes the candidate set `cand(T, τ)` (Def. 9) — the maximal
    /// subtrees of at most `tau` nodes, as `(lml, root)` document
    /// postorder spans in document order — from the subtree-size column
    /// alone, plus the number of nodes it examined to do so.
    ///
    /// Unlike the ring-buffer scan (one pass over all `n` nodes), the
    /// walk descends from the root and stops at each candidate root, so
    /// it examines only the nodes **above** the candidate frontier plus
    /// the candidate roots themselves — typically a small fraction of
    /// the document.
    ///
    /// # Panics
    ///
    /// Panics if `tau == 0`; the candidate set is defined for `τ >= 1`
    /// (Theorem 3 thresholds are always positive).
    pub fn candidate_spans(&self, tau: u32) -> (Vec<(u32, u32)>, u64) {
        assert!(tau >= 1, "tau must be >= 1");
        let t = &self.tree;
        let mut spans = Vec::new();
        let mut examined = 0u64;
        // DFS from the root, children pushed right-to-left so the
        // leftmost pops first: spans come out in document order.
        let mut stack: Vec<u32> = vec![t.len() as u32];
        while let Some(root) = stack.pop() {
            examined += 1;
            let size = t.size(NodeId::new(root));
            if size <= tau {
                spans.push((root - size + 1, root));
                continue;
            }
            let lml = root - size + 1;
            let mut child = root - 1;
            while child >= lml {
                stack.push(child);
                child -= t.size(NodeId::new(child));
            }
        }
        (spans, examined)
    }

    /// For every span of `spans` (disjoint, in document order): the size
    /// of the label-multiset intersection between `query` and the
    /// document nodes inside the span — `Σ_l min(multiplicity in Q,
    /// occurrences in the span)`, the `common` of the label-histogram
    /// lower bound `δ(Q, S) >= |Q| − common` that holds for **every**
    /// subtree `S` inside the span.
    ///
    /// `query` must be encoded in this index's label space (see
    /// [`encode_query`](Self::encode_query)). The walk touches only the
    /// postings of the query's labels, rarest label first — `O(Σ_l
    /// |postings(l)| + |spans|)` per distinct query label, independent
    /// of the document size.
    pub fn region_common(&self, spans: &[(u32, u32)], query: &Tree) -> Vec<u32> {
        let mut common = vec![0u32; spans.len()];
        // Distinct query labels with multiplicities, rarest first.
        let mut hist: Vec<(LabelId, u32)> = Vec::new();
        let mut sorted: Vec<LabelId> = query.labels().to_vec();
        sorted.sort_unstable();
        for l in sorted {
            match hist.last_mut() {
                Some((last, count)) if *last == l => *count += 1,
                _ => hist.push((l, 1)),
            }
        }
        hist.sort_by_key(|&(l, _)| (self.frequency(l), l));
        for &(label, multiplicity) in &hist {
            let postings = self.postings(label);
            if postings.is_empty() {
                continue;
            }
            let mut s = 0usize;
            let mut run = 0u32; // occurrences inside spans[s]
            for &pos in postings {
                while s < spans.len() && spans[s].1 < pos {
                    common[s] += run.min(multiplicity);
                    run = 0;
                    s += 1;
                }
                if s == spans.len() {
                    break;
                }
                if pos >= spans[s].0 {
                    run += 1;
                }
            }
            if s < spans.len() {
                common[s] += run.min(multiplicity);
            }
        }
        common
    }
}

/// Borrowed view of one `.pqi` (version-2) buffer: the header decoded,
/// every section a slice into the caller's bytes — nothing copied yet.
///
/// This is the **zero-copy seam**: [`parse`](PqiView::parse) does only
/// bounds-checked section slicing (magic, counts, label names, entry
/// and postings extents), so it works unchanged over any contiguous
/// byte source — a `fs::read` buffer today, an `mmap` region tomorrow.
/// Full structural validation and the postings checksum run in
/// [`IndexedDocument::from_view`], which materializes the owned
/// document; a future mmap-resident document would keep the view and
/// serve postings straight from these slices instead.
#[derive(Debug)]
pub struct PqiView<'a> {
    /// Node count from the header.
    n_nodes: u64,
    /// Label names in id order (frequency order in a v2 file), borrowed
    /// from the buffer.
    labels: Vec<&'a str>,
    /// The fixed-width entry section: `n_nodes × (u32 label, u32 size)`.
    records: &'a [u8],
    /// Postings lists plus the trailing checksum (the postings extent is
    /// only known after walking the lengths, which `from_view` does).
    tail: &'a [u8],
}

impl<'a> PqiView<'a> {
    /// Parses the header and section bounds of a version-2 buffer.
    /// Version-1 files are rejected with the same guidance as
    /// [`IndexedDocument::from_reader`] (they carry no postings).
    pub fn parse(bytes: &'a [u8]) -> Result<Self, PostFileError> {
        use tasm_tree::postfile::MAGIC_V1;
        let mut cur = SliceCursor { buf: bytes, pos: 0 };
        let magic = cur.take(MAGIC_V2.len(), "magic")?;
        if magic == MAGIC_V1 {
            return Err(PostFileError::Format(
                "not an indexed file: version 1 has no postings (run `tasm index`)".into(),
            ));
        }
        if magic != MAGIC_V2 {
            return Err(PostFileError::Format(
                "bad magic; not a TASMPQ1/TASMPQ2 file".into(),
            ));
        }
        let n_nodes = cur.u64("node count")?;
        let n_labels = cur.u64("label count")?;
        // Cap the pre-allocation: a torn header can claim any count, and
        // the takes below will catch the lie before the vec grows far.
        let mut labels = Vec::with_capacity(usize::try_from(n_labels).unwrap_or(0).min(1 << 16));
        for i in 0..n_labels {
            let len = cur.u32(&format!("length of label {i}"))? as usize;
            if len > 1 << 24 {
                return Err(PostFileError::Format(format!("label {i} is {len} bytes")));
            }
            let raw = cur.take(len, &format!("label {i}"))?;
            let name = std::str::from_utf8(raw)
                .map_err(|_| PostFileError::Format(format!("label {i} is not UTF-8")))?;
            labels.push(name);
        }
        let record_bytes = usize::try_from(n_nodes)
            .ok()
            .and_then(|n| n.checked_mul(8))
            .unwrap_or(usize::MAX);
        let records = cur.take(record_bytes, "entry section")?;
        let tail = &bytes[cur.pos..];
        Ok(PqiView {
            n_nodes,
            labels,
            records,
            tail,
        })
    }

    /// Node count the header promises.
    pub fn n_nodes(&self) -> u64 {
        self.n_nodes
    }

    /// Borrowed label names in id order.
    pub fn labels(&self) -> &[&'a str] {
        &self.labels
    }

    /// The raw fixed-width entry section.
    pub fn records(&self) -> &'a [u8] {
        self.records
    }
}

/// Bounds-checked little-endian slice cursor; a short buffer is the
/// same "truncated" error the streaming reader reports.
struct SliceCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SliceCursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PostFileError> {
        if self.buf.len() - self.pos < n {
            return Err(PostFileError::Format(format!(
                "indexed file truncated while reading {what}"
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, PostFileError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, PostFileError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

fn truncation(e: io::Error, what: &str) -> PostFileError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        PostFileError::Format(format!("indexed file truncated while reading {what}"))
    } else {
        PostFileError::Io(e)
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tasm_tree::bracket;

    fn sample() -> (Tree, LabelDict) {
        let mut dict = LabelDict::new();
        let t = bracket::parse(
            "{dblp{article{auth{John}}{title{X1}}}{proceedings{conf{VLDB}}\
             {article{auth{Peter}}{title{X3}}}{article{auth{Mike}}{title{X4}}}}\
             {book{title{X2}}}}",
            &mut dict,
        )
        .unwrap();
        (t, dict)
    }

    /// Reference candidate set via the parent array (mirrors
    /// `tasm-core`'s span derivation).
    fn reference_spans(doc: &Tree, tau: u32) -> Vec<(u32, u32)> {
        let parents = doc.parents();
        doc.nodes()
            .filter(|&id| {
                doc.size(id) <= tau && parents[id.index()].is_none_or(|p| doc.size(p) > tau)
            })
            .map(|id| (doc.lml(id).post(), id.post()))
            .collect()
    }

    /// Brute-force label-multiset intersection of `query` and a span.
    fn reference_common(doc: &Tree, query: &Tree, span: (u32, u32)) -> u32 {
        let mut q: Vec<LabelId> = query.labels().to_vec();
        q.sort_unstable();
        let mut s: Vec<LabelId> = (span.0..=span.1)
            .map(|p| doc.label(NodeId::new(p)))
            .collect();
        s.sort_unstable();
        let (mut i, mut j, mut common) = (0, 0, 0);
        while i < q.len() && j < s.len() {
            match q[i].cmp(&s[j]) {
                std::cmp::Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        common
    }

    #[test]
    fn build_orders_labels_by_frequency() {
        let (t, dict) = sample();
        let idx = IndexedDocument::build(&t, &dict);
        // Frequencies are non-increasing in id order.
        let freqs: Vec<u32> = (0..idx.dict().len() as u32)
            .map(|i| idx.frequency(LabelId(i)))
            .collect();
        assert!(freqs.windows(2).all(|w| w[0] >= w[1]), "{freqs:?}");
        // "title" (4 occurrences) is the most frequent label.
        assert_eq!(idx.dict().resolve(LabelId(0)), "title");
        // The remapped tree still resolves to the same label strings.
        for id in t.nodes() {
            assert_eq!(
                idx.dict().resolve(idx.tree().label(id)),
                dict.resolve(t.label(id))
            );
            assert_eq!(idx.tree().size(id), t.size(id));
        }
    }

    #[test]
    fn postings_invert_the_tree() {
        let (t, dict) = sample();
        let idx = IndexedDocument::build(&t, &dict);
        let mut covered = 0usize;
        for i in 0..idx.dict().len() as u32 {
            let label = LabelId(i);
            for &pos in idx.postings(label) {
                assert_eq!(idx.tree().label(NodeId::new(pos)), label);
            }
            assert!(idx.postings(label).windows(2).all(|w| w[0] < w[1]));
            covered += idx.postings(label).len();
        }
        assert_eq!(covered, t.len());
    }

    /// Both decode paths — the streaming reader and the zero-copy
    /// slice path — must accept and reject exactly the same inputs.
    fn both_paths(bytes: &[u8]) -> [Result<IndexedDocument, PostFileError>; 2] {
        [
            IndexedDocument::from_reader(bytes),
            IndexedDocument::open_bytes(bytes),
        ]
    }

    #[test]
    fn file_round_trip() {
        let (t, dict) = sample();
        let idx = IndexedDocument::build(&t, &dict);
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).unwrap();
        for back in both_paths(&bytes) {
            let back = back.unwrap();
            assert_eq!(back.tree(), idx.tree());
            assert_eq!(back.postings, idx.postings);
            for (id, name) in idx.dict().iter() {
                assert_eq!(back.dict().resolve(id), name);
            }
        }
    }

    #[test]
    fn view_exposes_the_borrowed_sections() {
        let (t, dict) = sample();
        let idx = IndexedDocument::build(&t, &dict);
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).unwrap();
        let view = PqiView::parse(&bytes).unwrap();
        assert_eq!(view.n_nodes(), t.len() as u64);
        assert_eq!(view.labels().len(), dict.len());
        assert_eq!(view.records().len(), t.len() * 8);
        for (i, name) in view.labels().iter().enumerate() {
            assert_eq!(*name, idx.dict().resolve(LabelId(i as u32)));
        }
    }

    #[test]
    fn pqi_streams_through_the_v1_reader() {
        // The entry section of a .pqi is a valid postorder stream: the
        // streaming reader must yield the same (relabeled) tree.
        let (t, dict) = sample();
        let idx = IndexedDocument::build(&t, &dict);
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).unwrap();
        let mut reader = PostFileReader::new(bytes.as_slice()).unwrap();
        assert_eq!(reader.version(), 2);
        let streamed = tasm_tree::collect_tree(&mut reader).unwrap();
        assert_eq!(&streamed, idx.tree());
        assert_eq!(reader.integrity_error(), None);
    }

    #[test]
    fn truncated_entries_are_an_error() {
        let (t, dict) = sample();
        let idx = IndexedDocument::build(&t, &dict);
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).unwrap();
        // Cut inside the entry section: 22 nodes * 8 bytes from the end
        // of the entries = postings size; chop past it.
        let postings_bytes: usize = idx.postings.iter().map(|p| 4 + 4 * p.len()).sum();
        bytes.truncate(bytes.len() - postings_bytes - 4);
        for got in both_paths(&bytes) {
            let msg = got.unwrap_err().to_string();
            assert!(msg.contains("truncated"), "{msg}");
        }
    }

    #[test]
    fn truncated_postings_are_an_error() {
        let (t, dict) = sample();
        let idx = IndexedDocument::build(&t, &dict);
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 2);
        for got in both_paths(&bytes) {
            let err = got.unwrap_err();
            assert!(err.to_string().contains("truncated"), "{err}");
        }
    }

    #[test]
    fn corrupted_postings_byte_fails_the_checksum() {
        let (t, dict) = sample();
        let idx = IndexedDocument::build(&t, &dict);
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).unwrap();
        let postings_bytes: usize = idx.postings.iter().map(|p| 4 + 4 * p.len()).sum();
        let postings_start = bytes.len() - 4 - postings_bytes;
        // Flip one byte in every postings position: each must be caught,
        // either by the structural cross-checks or by the checksum —
        // never accepted silently.
        for at in postings_start..bytes.len() {
            let mut broken = bytes.clone();
            broken[at] ^= 0x20;
            for got in both_paths(&broken) {
                let err = got.expect_err(&format!("byte {at} flipped"));
                assert!(
                    matches!(err, PostFileError::Corrupt(_) | PostFileError::Format(_)),
                    "byte {at}: {err}"
                );
            }
        }
        // At least the length byte of the first list slips past the
        // structural checks only when semantically plausible; verify the
        // checksum specifically catches a pure trailer flip.
        let mut broken = bytes.clone();
        let last = broken.len() - 1;
        broken[last] ^= 0x01;
        for got in both_paths(&broken) {
            let err = got.unwrap_err();
            assert!(matches!(err, PostFileError::Corrupt(_)), "{err}");
            assert!(err.to_string().contains("checksum"), "{err}");
        }
    }

    #[test]
    fn missing_checksum_is_a_truncation_error() {
        let (t, dict) = sample();
        let idx = IndexedDocument::build(&t, &dict);
        let mut bytes = Vec::new();
        idx.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 4); // drop the whole trailer
        for got in both_paths(&bytes) {
            let err = got.unwrap_err();
            assert!(err.to_string().contains("truncated"), "{err}");
        }
    }

    #[test]
    fn save_is_atomic_and_verifies_on_open() {
        let (t, dict) = sample();
        let path = std::env::temp_dir().join(format!("tasm_idx_{}.pqi", std::process::id()));
        IndexedDocument::save(&path, &t, &dict).unwrap();
        let back = IndexedDocument::open(&path).unwrap();
        assert_eq!(back.tree().len(), t.len());
        // Overwrite in place: still whole, still verifiable.
        IndexedDocument::save(&path, &t, &dict).unwrap();
        assert!(IndexedDocument::open(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_files_are_rejected_with_guidance() {
        let (t, dict) = sample();
        let mut bytes = Vec::new();
        let mut q = tasm_tree::TreeQueue::new(&t);
        tasm_tree::postfile::write_postfile(&mut bytes, &dict, &mut q, t.len() as u64).unwrap();
        for got in both_paths(&bytes) {
            let err = got.unwrap_err();
            assert!(err.to_string().contains("tasm index"), "{err}");
        }
    }

    #[test]
    fn candidate_spans_match_reference() {
        let (t, dict) = sample();
        let idx = IndexedDocument::build(&t, &dict);
        for tau in 1..=22u32 {
            let (spans, examined) = idx.candidate_spans(tau);
            assert_eq!(spans, reference_spans(idx.tree(), tau), "tau = {tau}");
            // The walk examines the spine plus the candidate roots: never
            // more than the whole document, and for small tau strictly
            // fewer than n only once candidates grow past single nodes.
            assert!(examined <= t.len() as u64, "tau = {tau}");
        }
        // Whole document fits: one span, one node examined.
        let (spans, examined) = idx.candidate_spans(22);
        assert_eq!(spans, vec![(1, 22)]);
        assert_eq!(examined, 1);
    }

    #[test]
    fn region_common_matches_brute_force() {
        let (t, dict) = sample();
        let idx = IndexedDocument::build(&t, &dict);
        let mut qdict = LabelDict::new();
        let q = bracket::parse("{article{auth{John}}{title{X9}}}", &mut qdict).unwrap();
        let (q, _) = idx.encode_query(&q, &qdict);
        for tau in 1..=22u32 {
            let (spans, _) = idx.candidate_spans(tau);
            let common = idx.region_common(&spans, &q);
            for (i, &span) in spans.iter().enumerate() {
                let want = reference_common(idx.tree(), &q, span);
                assert_eq!(common[i], want, "tau = {tau}, span {span:?}");
            }
        }
    }

    #[test]
    fn encode_query_handles_unknown_labels() {
        let (t, dict) = sample();
        let idx = IndexedDocument::build(&t, &dict);
        let mut qdict = LabelDict::new();
        let q = bracket::parse("{article{unseen_label}}", &mut qdict).unwrap();
        let (eq, work) = idx.encode_query(&q, &qdict);
        assert_eq!(work.resolve(eq.label(NodeId::new(1))), "unseen_label");
        assert_eq!(idx.frequency(eq.label(NodeId::new(1))), 0);
        assert_eq!(idx.postings(eq.label(NodeId::new(1))), &[] as &[u32]);
        // The known label keeps the index id.
        assert_eq!(work.resolve(eq.label(NodeId::new(2))), "article");
        assert!(idx.frequency(eq.label(NodeId::new(2))) > 0);
    }

    /// Name-resolved canonical form of a tree: the id remapping between
    /// v1 dictionary order and v2 frequency order must never change
    /// *which* labels sit where.
    fn canonical(t: &Tree, dict: &LabelDict) -> Vec<(String, u32)> {
        t.nodes()
            .map(|id| (dict.resolve(t.label(id)).to_string(), t.size(id)))
            .collect()
    }

    fn random_tree(seed: u64, n: usize, n_labels: u32) -> (Tree, LabelDict) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dict = LabelDict::new();
        let mut labels = Vec::with_capacity(n);
        let mut parent: Vec<Option<usize>> = vec![None; n];
        for (i, p) in parent.iter_mut().enumerate().skip(1) {
            *p = Some(rng.gen_range(0..i));
        }
        for _ in 0..n {
            labels.push(dict.intern(&format!("w{}", rng.gen_range(0..n_labels))));
        }
        // Postorder by DFS from node 0 (random attachment order keeps
        // children after parents, so reverse-iterate to fill sizes).
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[*p].push(i);
            }
        }
        let mut post_labels = Vec::with_capacity(n);
        let mut post_sizes = Vec::with_capacity(n);
        fn rec(
            node: usize,
            children: &[Vec<usize>],
            labels: &[LabelId],
            out_l: &mut Vec<LabelId>,
            out_s: &mut Vec<u32>,
        ) -> u32 {
            let mut size = 1;
            for &c in &children[node] {
                size += rec(c, children, labels, out_l, out_s);
            }
            out_l.push(labels[node]);
            out_s.push(size);
            size
        }
        rec(0, &children, &labels, &mut post_labels, &mut post_sizes);
        let t = Tree::from_postorder_unchecked(post_labels, post_sizes);
        (t, dict)
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// `.pqi` round trip on random trees: build → write → read back
        /// must preserve the name-resolved document, the postings
        /// invariants and the candidate spans for every τ — and the
        /// written bytes must still stream through the v1 reader path
        /// (forward compatibility of the shared header).
        #[test]
        fn pqi_round_trip_preserves_the_document(
            seed in proptest::prelude::any::<u64>(),
            n in 1usize..120,
            n_labels in 1u32..12,
        ) {
            let (t, dict) = random_tree(seed, n, n_labels);
            let idx = IndexedDocument::build(&t, &dict);
            let mut bytes = Vec::new();
            idx.write_to(&mut bytes).expect("write");
            let back = IndexedDocument::from_reader(bytes.as_slice()).expect("read");
            proptest::prop_assert_eq!(
                canonical(back.tree(), back.dict()),
                canonical(&t, &dict)
            );
            // The zero-copy slice path decodes the identical document.
            let sliced = IndexedDocument::open_bytes(&bytes).expect("slice read");
            proptest::prop_assert_eq!(sliced.tree(), back.tree());
            proptest::prop_assert_eq!(&sliced.postings, &back.postings);
            proptest::prop_assert_eq!(
                canonical(sliced.tree(), sliced.dict()),
                canonical(&t, &dict)
            );
            for label in 0..back.dict().len() as u32 {
                let id = LabelId(label);
                proptest::prop_assert_eq!(
                    back.postings(id),
                    idx.postings(id),
                    "postings of {}", back.dict().resolve(id)
                );
            }
            // The v1 streaming reader must accept the v2 file and see
            // the same document (it ignores the postings suffix).
            let mut reader = PostFileReader::new(bytes.as_slice()).expect("v2 magic");
            let streamed = tasm_tree::collect_tree(&mut reader).expect("stream v2 entries");
            proptest::prop_assert_eq!(reader.version(), 2);
            let sdict = reader.into_inner().1;
            proptest::prop_assert_eq!(canonical(&streamed, &sdict), canonical(&t, &dict));
            for tau in [1u32, 2, 5, n as u32] {
                let (a, _) = idx.candidate_spans(tau.max(1));
                let (b, _) = back.candidate_spans(tau.max(1));
                proptest::prop_assert_eq!(a, b, "tau = {}", tau);
            }
        }
    }
}
