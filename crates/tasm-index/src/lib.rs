//! Persistent label-indexed corpus store (`.pqi` shards + `MANIFEST`)
//! for TASM.
//!
//! The paper's scan (Sec. V) answers one query over one document in a
//! single `O(τ)`-memory pass — the right shape for a one-shot stream,
//! but the wrong one for a query server that answers many queries over
//! the same corpus: every query re-reads every node. This crate is the
//! opposite access pattern: parse and index documents **once**, then
//! answer queries touching only the index sections that matter.
//!
//! # One document: the `.pqi` file ([`IndexedDocument`])
//!
//! A `.pqi` file is a version-2 postorder file
//! (see [`tasm_tree::postfile`]): the version-1 header and fixed-width
//! postorder entry section — so every existing `.pq` consumer can still
//! stream it — followed by an inverted index:
//!
//! ```text
//! magic    "TASMPQ2\n"                       8 bytes
//! n_nodes  u64
//! n_labels u64
//! labels   n_labels × (u32 len, bytes)        dictionary, frequency order
//! entries  n_nodes × (u32 label, u32 size)    postorder records
//! postings n_labels × (u32 len, len × u32)    postorder positions per label
//! crc32    u32                                CRC-32 (IEEE) of the postings
//! ```
//!
//! The trailing checksum covers every byte of the postings section and
//! is verified on open: a torn or bit-rotted index is a structured
//! [`PostFileError`](tasm_tree::postfile::PostFileError) error, never a
//! silent misparse. Writes go through
//! [`tasm_tree::postfile::atomic_write`] (temp file + fsync + rename),
//! so readers only ever observe complete files.
//!
//! Two properties make the index useful:
//!
//! * **frequency-ordered dense label ids** — label `0` is the most
//!   frequent label of the document, so a query's *rarest* labels have
//!   the highest ids and the shortest postings lists;
//! * **per-label postings of postorder positions** — combined with the
//!   subtree-size column of the entry section (the subtree rooted at
//!   postorder `i` spans exactly `[i − size(i) + 1, i]`), a handful of
//!   binary-search-free merge walks bounds the label overlap between a
//!   query and every candidate region without reading the nodes.
//!
//! [`IndexedDocument`] is the reader: [`IndexedDocument::candidate_spans`]
//! derives the candidate set `cand(T, τ)` (Def. 9) from the size column
//! alone — examining only the nodes *above* the candidates instead of
//! all `n` — and [`IndexedDocument::region_common`] scores every span's
//! label overlap with a query from the postings. The `tasm_indexed`
//! entry points in `tasm-core` combine the two with the admissible
//! label-histogram lower bound (`tasm-ted`'s filter cascade) to skip
//! whole regions that provably cannot beat the top-k heap cutoff.
//!
//! # Many documents: the corpus directory ([`Corpus`])
//!
//! A corpus is a directory of `.pqi` shards described by a versioned,
//! checksummed `MANIFEST` ([`Manifest`]): a monotonic generation
//! number, the corpus-wide frequency-ordered label dictionary, and one
//! record per shard (document name, shard path, source path, file size,
//! whole-file CRC-32, the generation that wrote it, node count). The
//! manifest is rewritten atomically on every mutation, so a crash
//! mid-`add`/mid-`rebuild` always leaves the previous generation
//! readable.
//!
//! On [`Corpus::open`], every shard is verified against the manifest
//! (size, whole-file CRC, then the `.pqi` format's own structural and
//! checksum validation). A shard that fails **any** check is
//! *quarantined* — excluded from querying, its failure captured as a
//! structured [`ShardReport`] — rather than fatal: querying proceeds in
//! explicit degraded mode over the healthy shards. Only a missing or
//! corrupt `MANIFEST` itself is a hard error. `tasm corpus fsck`
//! surfaces the reports; `fsck --repair` re-indexes quarantined shards
//! from their recorded sources.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod document;

pub use corpus::{
    Corpus, CorpusError, FsckOutcome, Manifest, ShardMeta, ShardReport, MANIFEST_MAGIC,
    MANIFEST_NAME,
};
pub use document::{IndexedDocument, PqiView};
