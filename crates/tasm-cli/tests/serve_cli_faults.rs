//! Drain-under-load and worker-fault behavior of `tasm serve`, through
//! the real binary. Needs `--features fault-inject` so the magic query
//! labels (`__fault_sleep_<ms>__`, `__fault_panic__`) are armed.

#![cfg(all(unix, feature = "fault-inject"))]

use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn tasm_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tasm"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tasm_sfault_{}_{name}", std::process::id()))
}

fn gen_doc(name: &str) -> PathBuf {
    let doc = tmp(&format!("{name}.xml"));
    let out = tasm_bin()
        .args([
            "gen",
            "--nodes",
            "1500",
            "--seed",
            "3",
            "--out",
            doc.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    doc
}

fn start_daemon(name: &str, doc: &Path) -> (Child, PathBuf) {
    let socket = tmp(&format!("{name}.sock"));
    let _ = std::fs::remove_file(&socket);
    let child = tasm_bin()
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--doc",
            &format!("d={}", doc.display()),
        ])
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while UnixStream::connect(&socket).is_err() {
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(10));
    }
    (child, socket)
}

fn client(socket: &Path, sends: &[&str]) -> Output {
    let mut args = vec!["client", "--socket", socket.to_str().unwrap()];
    for s in sends {
        args.push("--send");
        args.push(s);
    }
    tasm_bin().args(&args).output().unwrap()
}

#[test]
fn busy_retry_client_rides_out_a_burst() {
    let doc = gen_doc("burst");
    // One worker, one queue slot: the third concurrent request is shed.
    let socket = tmp("burst.sock");
    let _ = std::fs::remove_file(&socket);
    let mut daemon = tasm_bin()
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--doc",
            &format!("d={}", doc.display()),
            "--workers",
            "1",
            "--queue",
            "1",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while UnixStream::connect(&socket).is_err() {
        assert!(Instant::now() < deadline, "daemon never became ready");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Saturate: the worker stalls on one request, the queue holds one.
    let s1 = socket.clone();
    let t1 = std::thread::spawn(move || {
        client(
            &s1,
            &["QUERY doc=d k=1 timeout=5000 q=<__fault_sleep_400__/>"],
        )
    });
    std::thread::sleep(Duration::from_millis(100));
    let s2 = socket.clone();
    let t2 = std::thread::spawn(move || {
        client(
            &s2,
            &["QUERY doc=d k=1 timeout=5000 q=<__fault_sleep_400__/>"],
        )
    });
    std::thread::sleep(Duration::from_millis(100));

    // A retry-less client is shed verbatim — the legacy contract.
    let out = client(&socket, &["QUERY doc=d k=1 q=<article/>"]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("BUSY retry-after-ms="), "{text}");

    // The framed client honors the hint, backs off, and rides it out.
    let out = tasm_bin()
        .args([
            "client",
            "--socket",
            socket.to_str().unwrap(),
            "--retries",
            "15",
            "--max-backoff-ms",
            "250",
            "--send",
            "QUERY doc=d k=2 q=<article/>",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("OK 2"),
        "retries should end in success: {text}"
    );
    assert!(!text.contains("BUSY"), "{text}");
    let notes = String::from_utf8(out.stderr).unwrap();
    assert!(
        notes.contains("BUSY, retry"),
        "the burst should shed the client at least once: {notes}"
    );

    assert!(t1.join().unwrap().status.success());
    assert!(t2.join().unwrap().status.success());
    let out = client(&socket, &["SHUTDOWN"]);
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("OK draining"));
    let deadline = Instant::now() + Duration::from_secs(8);
    loop {
        if daemon.try_wait().unwrap().is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "daemon did not exit");
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&doc);
}

#[test]
fn sigterm_mid_request_drains_and_exits_0() {
    let doc = gen_doc("drain");
    let (mut daemon, socket) = start_daemon("drain", &doc);

    // A request that will still be evaluating when SIGTERM lands
    // (worker stalls 300 ms; its 2 s budget outlives the stall).
    let socket2 = socket.clone();
    let inflight = std::thread::spawn(move || {
        client(
            &socket2,
            &["QUERY doc=d k=1 timeout=2000 q=<__fault_sleep_300__/>"],
        )
    });
    std::thread::sleep(Duration::from_millis(100)); // worker holds it

    let killed = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .unwrap()
        .success();
    assert!(killed);

    // The in-flight request completes with a real ranking…
    let out = inflight.join().unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("OK "), "in-flight answer: {text}");

    // …and the daemon exits 0 within the drain budget.
    let deadline = Instant::now() + Duration::from_secs(8);
    let code = loop {
        if let Some(status) = daemon.try_wait().unwrap() {
            break status.code();
        }
        assert!(Instant::now() < deadline, "daemon did not exit after drain");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(code, Some(0), "clean drain exits 0");
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&doc);
}

#[test]
fn worker_faults_surface_as_structured_errors_and_daemon_recovers() {
    let doc = gen_doc("faults");
    let (mut daemon, socket) = start_daemon("faults", &doc);

    // Stall past the deadline: structured timeout.
    let out = client(
        &socket,
        &["QUERY doc=d k=1 timeout=30 q=<__fault_sleep_200__/>"],
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("ERR timeout "), "{text}");

    // Panic in the worker: structured internal error, daemon survives.
    let out = client(&socket, &["QUERY doc=d k=1 q=<__fault_panic__/>"]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("ERR internal "), "{text}");

    let out = client(&socket, &["QUERY doc=d k=2 q=<article/>", "PING"]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("OK 2"), "daemon still answers: {text}");
    assert!(text.contains("PONG"), "{text}");

    // Graceful stop via the protocol this time.
    let out = client(&socket, &["SHUTDOWN"]);
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("OK draining"));
    let deadline = Instant::now() + Duration::from_secs(8);
    let code = loop {
        if let Some(status) = daemon.try_wait().unwrap() {
            break status.code();
        }
        assert!(Instant::now() < deadline, "daemon did not exit");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(code, Some(0));
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_file(&doc);
}
