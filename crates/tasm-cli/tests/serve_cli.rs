//! `tasm serve` / `tasm client` end to end, through the real binary
//! and a real Unix socket: protocol behavior, ranking parity with the
//! one-shot CLI, SIGTERM drain, and the torn-request path.

#![cfg(unix)]

use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn tasm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tasm"))
        .args(args)
        .output()
        .expect("spawn tasm")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tasm_serve_{}_{name}", std::process::id()))
}

/// A running `tasm serve` child; killed on drop so failed asserts can't
/// leak daemons.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn start(name: &str, doc: &str, extra: &[&str]) -> Daemon {
        let socket = tmp(&format!("{name}.sock"));
        let _ = std::fs::remove_file(&socket);
        let mut args = vec![
            "serve".to_string(),
            "--socket".to_string(),
            socket.to_str().unwrap().to_string(),
            "--doc".to_string(),
            format!("d={doc}"),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        let child = Command::new(env!("CARGO_BIN_EXE_tasm"))
            .args(&args)
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn tasm serve");
        // Readiness: the socket accepts once the listener is bound.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if UnixStream::connect(&socket).is_ok() {
                break;
            }
            assert!(Instant::now() < deadline, "daemon never became ready");
            std::thread::sleep(Duration::from_millis(10));
        }
        Daemon { child, socket }
    }

    fn client(&self, sends: &[&str]) -> Output {
        let mut args = vec!["client", "--socket", self.socket.to_str().unwrap()];
        for s in sends {
            args.push("--send");
            args.push(s);
        }
        tasm(&args)
    }

    /// SIGTERM, then wait; returns the daemon's exit code.
    fn terminate(mut self) -> i32 {
        let pid = self.child.id().to_string();
        let ok = Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("spawn kill")
            .success();
        assert!(ok, "kill -TERM failed");
        let status = self.child.wait().expect("wait for daemon");
        let _ = std::fs::remove_file(&self.socket);
        status.code().expect("daemon exit code")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn gen_doc(name: &str) -> PathBuf {
    let doc = tmp(&format!("{name}.xml"));
    let out = tasm(&[
        "gen",
        "--dataset",
        "dblp",
        "--nodes",
        "2000",
        "--seed",
        "11",
        "--out",
        doc.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    doc
}

/// Extracts `(node, distance, size)` ranking rows from either the
/// one-shot table or the daemon protocol: both print data rows as
/// `<rank> <node> <distance> <size>` (whitespace-separated).
fn ranking_rows(text: &str) -> Vec<(String, String, String)> {
    text.lines()
        .filter_map(|line| {
            let mut f = line.split_whitespace();
            let rank = f.next()?;
            if !rank.chars().all(|c| c.is_ascii_digit()) {
                return None;
            }
            Some((
                f.next()?.to_string(),
                f.next()?.to_string(),
                f.next()?.to_string(),
            ))
        })
        .collect()
}

#[test]
fn daemon_rankings_match_the_oneshot_cli() {
    let doc = gen_doc("parity");
    let daemon = Daemon::start("parity", doc.to_str().unwrap(), &[]);

    let query = "<article><author/><title/></article>";
    let served = daemon.client(&[&format!("QUERY doc=d k=5 q={query}")]);
    assert_eq!(served.status.code(), Some(0));
    let served_text = String::from_utf8(served.stdout).unwrap();
    assert!(served_text.starts_with("OK "), "{served_text}");
    assert!(served_text.trim_end().ends_with("END"), "{served_text}");

    let oneshot = tasm(&[
        "query",
        "--query-str",
        query,
        "--doc",
        doc.to_str().unwrap(),
        "--k",
        "5",
    ]);
    assert_eq!(oneshot.status.code(), Some(0));
    let oneshot_text = String::from_utf8(oneshot.stdout).unwrap();

    let served_rows = ranking_rows(&served_text);
    let oneshot_rows = ranking_rows(&oneshot_text);
    assert_eq!(served_rows.len(), 5, "{served_text}");
    assert_eq!(
        served_rows, oneshot_rows,
        "daemon and one-shot rankings must be identical"
    );

    assert_eq!(daemon.terminate(), 0, "SIGTERM drain exits 0");
    let _ = std::fs::remove_file(&doc);
}

#[test]
fn protocol_surface_over_the_binary() {
    let doc = gen_doc("surface");
    let daemon = Daemon::start("surface", doc.to_str().unwrap(), &[]);

    // PING, DOCS, a bad line (connection survives), then a query —
    // one connection, in order.
    let out = daemon.client(&[
        "PING",
        "DOCS",
        "FROBNICATE",
        "QUERY doc=nope k=1 q=<a/>",
        "QUERY doc=d k=0 q=<a/>",
        "QUERY doc=d k=1 timeout=0 q=<article/>",
        "QUERY doc=d k=1 q=<article/>",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("PONG"), "{text}");
    assert!(text.contains("DOCS 1"), "{text}");
    assert!(text.contains("\nd "), "{text}");
    assert!(text.contains("ERR proto "), "{text}");
    assert!(text.contains("ERR doc "), "{text}");
    assert!(text.contains("ERR parse "), "{text}");
    assert!(text.contains("ERR timeout "), "{text}");
    assert!(text.contains("no partial ranking"), "{text}");
    assert!(text.contains("OK 1"), "{text}");

    assert_eq!(daemon.terminate(), 0);
    let _ = std::fs::remove_file(&doc);
}

#[test]
fn torn_request_gets_a_structured_proto_error() {
    let doc = gen_doc("torn");
    let daemon = Daemon::start("torn", doc.to_str().unwrap(), &[]);

    // Raw stdin mode forwards bytes verbatim: no trailing newline means
    // the server sees EOF mid-record.
    let mut child = Command::new(env!("CARGO_BIN_EXE_tasm"))
        .args(["client", "--socket", daemon.socket.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn client");
    use std::io::Write;
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"QUERY doc=d k=1 q=<a")
        .unwrap(); // dropped: EOF, no newline
    let out = child.wait_with_output().unwrap();
    assert_eq!(out.status.code(), Some(0), "client transported fine");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("ERR proto truncated request"),
        "server must diagnose the torn record: {text}"
    );

    // The daemon survived the torn connection.
    let out = daemon.client(&["PING"]);
    assert!(String::from_utf8(out.stdout).unwrap().contains("PONG"));

    assert_eq!(daemon.terminate(), 0);
    let _ = std::fs::remove_file(&doc);
}

#[test]
fn client_against_a_dead_socket_exits_2() {
    let sock = tmp("dead.sock");
    let _ = std::fs::remove_file(&sock);
    let out = tasm(&[
        "client",
        "--socket",
        sock.to_str().unwrap(),
        "--send",
        "PING",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).starts_with("error:"));
}
