//! The `tasm corpus` lifecycle end to end, through the real binary:
//! build → query → corrupt → degraded query → fsck detect → repair →
//! byte-identical recovery. This is the same sequence the CI corpus
//! smoke job runs, pinned here so it breaks locally first.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn tasm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tasm"))
        .args(args)
        .output()
        .expect("spawn tasm")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tasm_corpus_cli_{}_{name}", std::process::id()))
}

fn gen_doc(name: &str, nodes: &str, seed: &str) -> PathBuf {
    let doc = tmp(name);
    let out = tasm(&[
        "gen",
        "--dataset",
        "dblp",
        "--nodes",
        nodes,
        "--seed",
        seed,
        "--out",
        doc.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    doc
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).unwrap()
}

#[test]
fn corpus_lifecycle_build_corrupt_degrade_repair() {
    let a = gen_doc("a.xml", "600", "11");
    let b = gen_doc("b.xml", "800", "12");
    let dir = tmp("corp");
    let _ = fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();

    // Build a two-shard corpus.
    let out = tasm(&[
        "corpus",
        "build",
        "--dir",
        dir_s,
        "--doc",
        &format!("a={}", a.display()),
        "--doc",
        &format!("b={}", b.display()),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Rebuilding in place must refuse: a corpus is never clobbered.
    let out = tasm(&["corpus", "build", "--dir", dir_s]);
    assert_eq!(out.status.code(), Some(2));

    // fsck: healthy, exit 0.
    let out = tasm(&["corpus", "fsck", "--dir", dir_s]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("2/2 shard(s) healthy"));

    // Baseline query over the full corpus.
    let query = &[
        "corpus",
        "query",
        "--dir",
        dir_s,
        "--query-str",
        "<article><author/><title/></article>",
        "--k",
        "5",
    ];
    let out = tasm(query);
    assert!(out.status.success());
    let healthy_rows = stdout(&out);
    assert!(!healthy_rows.contains("# degraded"), "{healthy_rows}");

    // --strict on a healthy corpus changes nothing: exit 0.
    let mut strict_query = query.to_vec();
    strict_query.push("--strict");
    let out = tasm(&strict_query);
    assert!(
        out.status.success(),
        "--strict must pass on a healthy corpus"
    );

    // The shard-level scheduler answers identically (same rows, byte
    // for byte) and --stats breaks the time down per shard.
    let mut par_query = query.to_vec();
    par_query.extend_from_slice(&["--threads", "4", "--stats"]);
    let out = tasm(&par_query);
    assert!(out.status.success());
    let par_rows = stdout(&out);
    let rows_only = |s: &str| {
        s.lines()
            .filter(|l| {
                l.split_whitespace()
                    .next()
                    .is_some_and(|t| t.parse::<u32>().is_ok())
            })
            .map(String::from)
            .collect::<Vec<_>>()
    };
    assert_eq!(
        rows_only(&par_rows),
        rows_only(&healthy_rows),
        "scheduled rows must match the sequential run"
    );
    assert!(par_rows.contains("# shard 0 (a):"), "{par_rows}");
    assert!(par_rows.contains("# shard 1 (b):"), "{par_rows}");

    // Flip one bit in shard a.
    let shard = dir.join("a.pqi");
    let clean = fs::read(&shard).unwrap();
    let mut bytes = clean.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    fs::write(&shard, &bytes).unwrap();

    // fsck detects and exits 2; the report names the shard.
    let out = tasm(&["corpus", "fsck", "--dir", dir_s]);
    assert_eq!(out.status.code(), Some(2), "{}", stdout(&out));
    assert!(stdout(&out).contains("quarantined a"), "{}", stdout(&out));

    // Queries still answer, from shard b only, with the marker.
    let out = tasm(query);
    assert!(out.status.success(), "degraded queries must not abort");
    let degraded_rows = stdout(&out);
    assert!(degraded_rows.contains("# degraded: 1/2"), "{degraded_rows}");
    // Every surviving row comes from b and matches the healthy run's
    // b-rows (healthy-shard rankings are untouched by the damage).
    for line in degraded_rows.lines().filter(|l| {
        l.split_whitespace()
            .next()
            .is_some_and(|t| t.parse::<u32>().is_ok())
    }) {
        let row_doc = line.split_whitespace().nth(1).unwrap();
        assert_eq!(row_doc, "b", "quarantined shard leaked: {line}");
    }

    // --strict refuses the degraded answer with exit 2 — but only
    // after printing the healthy rows and the marker.
    let out = tasm(&strict_query);
    assert_eq!(
        out.status.code(),
        Some(2),
        "--strict must fail on a degraded corpus"
    );
    let strict_rows = stdout(&out);
    assert!(strict_rows.contains("# degraded: 1/2"), "{strict_rows}");
    assert!(
        !rows_only(&strict_rows).is_empty(),
        "healthy rows still print under --strict"
    );

    // Repair re-indexes from the recorded source: exit 0, bytes
    // identical to the pre-corruption shard, rankings restored.
    let out = tasm(&["corpus", "fsck", "--dir", dir_s, "--repair"]);
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("repaired a"), "{}", stdout(&out));
    assert_eq!(fs::read(&shard).unwrap(), clean, "repair is byte-identical");
    let out = tasm(query);
    assert!(out.status.success());
    assert_eq!(
        stdout(&out)
            .lines()
            .filter(|l| !l.starts_with("# elapsed"))
            .collect::<Vec<_>>(),
        healthy_rows
            .lines()
            .filter(|l| !l.starts_with("# elapsed"))
            .collect::<Vec<_>>(),
        "repaired corpus answers exactly as before"
    );

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_file(&a);
    let _ = fs::remove_file(&b);
}

#[test]
fn corpus_add_extends_an_existing_corpus() {
    let a = gen_doc("add-a.xml", "300", "21");
    let b = gen_doc("add-b.xml", "300", "22");
    let dir = tmp("corp-add");
    let _ = fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();

    let out = tasm(&[
        "corpus",
        "build",
        "--dir",
        dir_s,
        "--doc",
        &format!("a={}", a.display()),
    ]);
    assert!(out.status.success());
    let out = tasm(&[
        "corpus",
        "add",
        "--dir",
        dir_s,
        "--doc",
        &format!("b={}", b.display()),
    ]);
    assert!(out.status.success());
    // Duplicate names are refused.
    let out = tasm(&[
        "corpus",
        "add",
        "--dir",
        dir_s,
        "--doc",
        &format!("b={}", b.display()),
    ]);
    assert_eq!(out.status.code(), Some(2));
    let out = tasm(&["corpus", "fsck", "--dir", dir_s]);
    assert!(stdout(&out).contains("2/2 shard(s) healthy"));

    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_file(&a);
    let _ = fs::remove_file(&b);
}
