//! Integration tests spawning the `tasm` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tasm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tasm"))
        .args(args)
        .output()
        .expect("spawn tasm")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tasm_cli_{}_{name}", std::process::id()))
}

#[test]
fn help_lists_commands() {
    let out = tasm(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for cmd in ["query", "ted", "gen", "stats", "candidates"] {
        assert!(text.contains(cmd), "help must mention {cmd}");
    }
}

#[test]
fn unknown_command_fails() {
    let out = tasm(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown command"));
}

#[test]
fn gen_stats_query_candidates_pipeline() {
    let doc = tmp("pipeline.xml");
    let doc_s = doc.to_str().unwrap();

    // gen
    let out = tasm(&[
        "gen",
        "--dataset",
        "dblp",
        "--nodes",
        "2000",
        "--seed",
        "7",
        "--out",
        doc_s,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(doc.exists());

    // stats
    let out = tasm(&["stats", "--doc", doc_s]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("nodes:"), "{text}");

    // query with each algorithm: identical distance column.
    let mut tables = Vec::new();
    for algo in ["postorder", "dynamic", "naive"] {
        let out = tasm(&[
            "query",
            "--query-str",
            "<article><author>Author_0</author><title>x</title></article>",
            "--doc",
            doc_s,
            "--k",
            "3",
            "--algorithm",
            algo,
            "--stats",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        let distances: Vec<String> = text
            .lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .map(|l| l.split_whitespace().nth(2).unwrap_or("").to_string())
            .collect();
        assert_eq!(distances.len(), 3, "{text}");
        tables.push(distances);
    }
    assert_eq!(tables[0], tables[1]);
    assert_eq!(tables[0], tables[2]);

    // candidates
    let out = tasm(&[
        "candidates",
        "--doc",
        doc_s,
        "--tau",
        "25",
        "--compare-simple",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("peak ring buffer"), "{text}");

    std::fs::remove_file(&doc).ok();
}

#[test]
fn ted_between_files() {
    let a = tmp("ted_a.xml");
    let b = tmp("ted_b.xml");
    std::fs::write(&a, "<x><y>1</y></x>").unwrap();
    std::fs::write(&b, "<x><y>2</y></x>").unwrap();
    let out = tasm(&[
        "ted",
        "--left",
        a.to_str().unwrap(),
        "--right",
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("delta = 1"), "{text}");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn stats_flag_prints_prune_funnel_for_all_scan_paths() {
    let doc = tmp("funnel.xml");
    let doc_s = doc.to_str().unwrap();
    let out = tasm(&[
        "gen",
        "--dataset",
        "dblp",
        "--nodes",
        "4000",
        "--seed",
        "11",
        "--out",
        doc_s,
    ]);
    assert!(out.status.success());

    let q = "<article><author>Author_0</author><title>x</title></article>";
    // Single streaming scan, multi-query batch scan, sharded parallel
    // scan: every scan-engine path must report the per-tier funnel.
    let runs: Vec<Vec<&str>> = vec![
        vec![
            "query",
            "--query-str",
            q,
            "--doc",
            doc_s,
            "--k",
            "3",
            "--stats",
        ],
        vec![
            "query",
            "--query-str",
            q,
            "--query-str",
            "<book><title>y</title></book>",
            "--doc",
            doc_s,
            "--k",
            "3",
            "--stats",
        ],
        vec![
            "query",
            "--query-str",
            q,
            "--doc",
            doc_s,
            "--k",
            "3",
            "--threads",
            "2",
            "--stats",
        ],
    ];
    for args in runs {
        let out = tasm(&args);
        assert!(
            out.status.success(),
            "{args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("# scan:"), "{args:?}\n{text}");
        assert!(text.contains("# prune funnel:"), "{args:?}\n{text}");
        assert!(text.contains("cascade prune rate"), "{args:?}\n{text}");
        // On a DBLP-shaped document with exact matches present, the
        // histogram tier must actually fire.
        let funnel = text
            .lines()
            .find(|l| l.starts_with("# prune funnel:"))
            .unwrap();
        assert!(
            !funnel.contains("histogram-pruned 0 "),
            "{args:?}\n{funnel}"
        );
    }
    std::fs::remove_file(&doc).ok();
}

#[test]
fn query_missing_doc_is_an_error() {
    let out = tasm(&["query", "--query-str", "<a/>"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("--doc"));
}

#[test]
fn nonexistent_doc_is_a_clean_error_everywhere() {
    for args in [
        vec!["query", "--query-str", "<a/>", "--doc", "/no/such/file.xml"],
        vec![
            "query",
            "--query-str",
            "<a/>",
            "--doc",
            "/no/such/file.xml",
            "--threads",
            "2",
        ],
        vec!["query", "--query-str", "<a/>", "--doc", "/no/such/file.pq"],
        vec!["stats", "--doc", "/no/such/file.xml"],
        vec!["candidates", "--doc", "/no/such/file.xml", "--tau", "5"],
        vec![
            "convert",
            "--doc",
            "/no/such/file.xml",
            "--out",
            "/tmp/x.pq",
        ],
    ] {
        let out = tasm(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.starts_with("error:") && err.contains("/no/such/file"),
            "{args:?} -> {err}"
        );
    }
}

#[test]
fn malformed_doc_is_a_clean_error() {
    let doc = tmp("malformed.xml");
    std::fs::write(&doc, "<r><a></r>").unwrap();
    for algo in ["postorder", "dynamic", "naive"] {
        let out = tasm(&[
            "query",
            "--query-str",
            "<a/>",
            "--doc",
            doc.to_str().unwrap(),
            "--algorithm",
            algo,
        ]);
        assert!(!out.status.success(), "[{algo}] must fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.starts_with("error:"), "[{algo}] {err}");
    }
    std::fs::remove_file(&doc).ok();
}

#[test]
fn truncated_pq_is_a_clean_error() {
    let xml = tmp("trunc.xml");
    let pq = tmp("trunc.pq");
    std::fs::write(&xml, "<r><a><b>x</b></a><a><b>y</b></a></r>").unwrap();
    let out = tasm(&[
        "convert",
        "--doc",
        xml.to_str().unwrap(),
        "--out",
        pq.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    // Cut the file at an entry boundary: the surviving prefix is a valid
    // forest, so only the header count can reveal the truncation.
    let bytes = std::fs::read(&pq).unwrap();
    std::fs::write(&pq, &bytes[..bytes.len() - 16]).unwrap();
    // Every .pq consumer must reject it: the streaming postorder path,
    // the materializing paths (dynamic, --threads), and stats.
    for args in [
        vec!["query", "--query-str", "<a><b>x</b></a>", "--doc"],
        vec![
            "query",
            "--query-str",
            "<a><b>x</b></a>",
            "--algorithm",
            "dynamic",
            "--doc",
        ],
        vec![
            "query",
            "--query-str",
            "<a><b>x</b></a>",
            "--threads",
            "2",
            "--doc",
        ],
        vec!["stats", "--doc"],
    ] {
        let mut args = args.clone();
        args.push(pq.to_str().unwrap());
        let out = tasm(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("truncated"), "{args:?} -> {err}");
    }
    std::fs::remove_file(&xml).ok();
    std::fs::remove_file(&pq).ok();
}

#[test]
fn batch_queries_share_one_scan_and_match_solo_runs() {
    let doc = tmp("batch.xml");
    std::fs::write(&doc, "<r><a><b>x</b></a><a><b>y</b></a><c><d>z</d></c></r>").unwrap();
    let doc_s = doc.to_str().unwrap();
    let queries = ["<a><b>x</b></a>", "<c><d>z</d></c>"];

    let out = tasm(&[
        "query",
        "--query-str",
        queries[0],
        "--query-str",
        queries[1],
        "--doc",
        doc_s,
        "--k",
        "2",
        "--stats",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.matches("batched scan").count(), 2, "{text}");
    assert!(text.contains("scan tau"), "{text}");
    let batch_tables: Vec<&str> = text
        .lines()
        .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
        .collect();
    assert_eq!(batch_tables.len(), 4, "{text}"); // 2 queries × k=2

    // Each batched table equals the solo run of the same query.
    for (qi, q) in queries.iter().enumerate() {
        let solo = tasm(&["query", "--query-str", q, "--doc", doc_s, "--k", "2"]);
        assert!(solo.status.success());
        let solo_text = String::from_utf8(solo.stdout).unwrap();
        let solo_tables: Vec<String> = solo_text
            .lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            &batch_tables[qi * 2..qi * 2 + 2],
            solo_tables.as_slice(),
            "query {qi}"
        );
    }
    std::fs::remove_file(&doc).ok();
}

#[test]
fn threads_flag_matches_sequential_output() {
    let doc = tmp("threads.xml");
    let mut xml = String::from("<dblp>");
    for i in 0..50 {
        xml.push_str(&format!("<article><a>n{i}</a><t>t{}</t></article>", i % 5));
    }
    xml.push_str("</dblp>");
    std::fs::write(&doc, &xml).unwrap();
    let doc_s = doc.to_str().unwrap();
    let q = "<article><a>n7</a><t>t2</t></article>";

    let rows = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .map(|s| s.to_string())
            .collect()
    };
    let seq = tasm(&["query", "--query-str", q, "--doc", doc_s, "--k", "4"]);
    assert!(seq.status.success());
    let seq_rows = rows(&String::from_utf8(seq.stdout).unwrap());
    assert_eq!(seq_rows.len(), 4);
    for threads in ["2", "4", "0"] {
        let par = tasm(&[
            "query",
            "--query-str",
            q,
            "--doc",
            doc_s,
            "--k",
            "4",
            "--threads",
            threads,
        ]);
        assert!(
            par.status.success(),
            "{}",
            String::from_utf8_lossy(&par.stderr)
        );
        let text = String::from_utf8(par.stdout).unwrap();
        assert_eq!(rows(&text), seq_rows, "--threads {threads}");
        assert!(text.contains("threads = "), "{text}");
    }
    std::fs::remove_file(&doc).ok();
}

#[test]
fn threads_misuse_is_rejected() {
    let doc = tmp("threads_misuse.xml");
    std::fs::write(&doc, "<r><a/></r>").unwrap();
    let doc_s = doc.to_str().unwrap();
    // --threads with a non-postorder algorithm.
    let out = tasm(&[
        "query",
        "--query-str",
        "<a/>",
        "--doc",
        doc_s,
        "--algorithm",
        "dynamic",
        "--threads",
        "2",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("--threads"));
    std::fs::remove_file(&doc).ok();
}

#[test]
fn threads_compose_with_batch_queries() {
    // --threads together with repeated --query: batch×parallel. Every
    // per-query table must equal the sequential batched run, and the
    // funnel must be reported per query lane.
    let doc = tmp("batchpar.xml");
    let mut xml = String::from("<dblp>");
    for i in 0..60 {
        xml.push_str(&format!("<article><a>n{i}</a><t>t{}</t></article>", i % 5));
        if i % 4 == 0 {
            xml.push_str(&format!("<book><t>t{}</t></book>", i % 3));
        }
    }
    xml.push_str("</dblp>");
    std::fs::write(&doc, &xml).unwrap();
    let doc_s = doc.to_str().unwrap();
    let q1 = "<article><a>n7</a><t>t2</t></article>";
    let q2 = "<book><t>t1</t></book>";

    let rows = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .map(|s| s.to_string())
            .collect()
    };
    let seq = tasm(&[
        "query",
        "--query-str",
        q1,
        "--query-str",
        q2,
        "--doc",
        doc_s,
        "--k",
        "3",
    ]);
    assert!(
        seq.status.success(),
        "{}",
        String::from_utf8_lossy(&seq.stderr)
    );
    let seq_rows = rows(&String::from_utf8(seq.stdout).unwrap());
    assert_eq!(seq_rows.len(), 6); // 2 queries × k=3

    for threads in ["2", "4", "0"] {
        let par = tasm(&[
            "query",
            "--query-str",
            q1,
            "--query-str",
            q2,
            "--doc",
            doc_s,
            "--k",
            "3",
            "--threads",
            threads,
            "--stats",
        ]);
        assert!(
            par.status.success(),
            "--threads {threads}: {}",
            String::from_utf8_lossy(&par.stderr)
        );
        let text = String::from_utf8(par.stdout).unwrap();
        assert_eq!(rows(&text), seq_rows, "--threads {threads}");
        assert_eq!(text.matches("batched scan").count(), 2, "{text}");
        // The per-lane funnel: one line per query.
        assert!(text.contains("# lane 1 funnel:"), "{text}");
        assert!(text.contains("# lane 2 funnel:"), "{text}");
        assert!(text.contains("# prune funnel:"), "{text}");
    }
    std::fs::remove_file(&doc).ok();
}

#[test]
fn batch_threads_works_on_pq_files() {
    let xml = tmp("batchpar_conv.xml");
    let pq = tmp("batchpar_conv.pq");
    std::fs::write(&xml, "<r><a><b>x</b></a><a><b>y</b></a><c><d>z</d></c></r>").unwrap();
    let out = tasm(&[
        "convert",
        "--doc",
        xml.to_str().unwrap(),
        "--out",
        pq.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = tasm(&[
        "query",
        "--query-str",
        "<a><b>x</b></a>",
        "--query-str",
        "<c><d>z</d></c>",
        "--doc",
        pq.to_str().unwrap(),
        "--k",
        "1",
        "--threads",
        "2",
        "--show-xml",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("<a><b>x</b></a>"), "{text}");
    assert!(text.contains("<c><d>z</d></c>"), "{text}");
    std::fs::remove_file(&xml).ok();
    std::fs::remove_file(&pq).ok();
}

#[test]
fn show_xml_prints_matches() {
    let doc = tmp("showxml.xml");
    std::fs::write(&doc, "<r><a><b>x</b></a><c/></r>").unwrap();
    let out = tasm(&[
        "query",
        "--query-str",
        "<a><b>x</b></a>",
        "--doc",
        doc.to_str().unwrap(),
        "--k",
        "1",
        "--show-xml",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("<a><b>x</b></a>"), "{text}");
    std::fs::remove_file(&doc).ok();
}

#[test]
fn convert_and_query_postorder_file() {
    let xml = tmp("conv.xml");
    let pq = tmp("conv.pq");
    std::fs::write(&xml, "<r><a><b>x</b></a><a><b>y</b></a></r>").unwrap();
    let out = tasm(&[
        "convert",
        "--doc",
        xml.to_str().unwrap(),
        "--out",
        pq.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Query the .pq with every algorithm; the exact-match line must agree.
    for algo in ["postorder", "dynamic"] {
        let out = tasm(&[
            "query",
            "--query-str",
            "<a><b>x</b></a>",
            "--doc",
            pq.to_str().unwrap(),
            "--k",
            "2",
            "--algorithm",
            algo,
            "--show-xml",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("<a><b>x</b></a>"), "[{algo}] {text}");
    }
    std::fs::remove_file(&xml).ok();
    std::fs::remove_file(&pq).ok();
}
