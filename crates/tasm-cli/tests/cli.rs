//! Integration tests spawning the `tasm` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tasm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tasm"))
        .args(args)
        .output()
        .expect("spawn tasm")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tasm_cli_{}_{name}", std::process::id()))
}

#[test]
fn help_lists_commands() {
    let out = tasm(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for cmd in ["query", "ted", "gen", "stats", "candidates"] {
        assert!(text.contains(cmd), "help must mention {cmd}");
    }
}

#[test]
fn unknown_command_fails() {
    let out = tasm(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown command"));
}

#[test]
fn gen_stats_query_candidates_pipeline() {
    let doc = tmp("pipeline.xml");
    let doc_s = doc.to_str().unwrap();

    // gen
    let out = tasm(&[
        "gen",
        "--dataset",
        "dblp",
        "--nodes",
        "2000",
        "--seed",
        "7",
        "--out",
        doc_s,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(doc.exists());

    // stats
    let out = tasm(&["stats", "--doc", doc_s]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("nodes:"), "{text}");

    // query with each algorithm: identical distance column.
    let mut tables = Vec::new();
    for algo in ["postorder", "dynamic", "naive"] {
        let out = tasm(&[
            "query",
            "--query-str",
            "<article><author>Author_0</author><title>x</title></article>",
            "--doc",
            doc_s,
            "--k",
            "3",
            "--algorithm",
            algo,
            "--stats",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        let distances: Vec<String> = text
            .lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_digit()))
            .map(|l| l.split_whitespace().nth(2).unwrap_or("").to_string())
            .collect();
        assert_eq!(distances.len(), 3, "{text}");
        tables.push(distances);
    }
    assert_eq!(tables[0], tables[1]);
    assert_eq!(tables[0], tables[2]);

    // candidates
    let out = tasm(&[
        "candidates",
        "--doc",
        doc_s,
        "--tau",
        "25",
        "--compare-simple",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("peak ring buffer"), "{text}");

    std::fs::remove_file(&doc).ok();
}

#[test]
fn ted_between_files() {
    let a = tmp("ted_a.xml");
    let b = tmp("ted_b.xml");
    std::fs::write(&a, "<x><y>1</y></x>").unwrap();
    std::fs::write(&b, "<x><y>2</y></x>").unwrap();
    let out = tasm(&[
        "ted",
        "--left",
        a.to_str().unwrap(),
        "--right",
        b.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("delta = 1"), "{text}");
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn query_missing_doc_is_an_error() {
    let out = tasm(&["query", "--query-str", "<a/>"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr).unwrap().contains("--doc"));
}

#[test]
fn show_xml_prints_matches() {
    let doc = tmp("showxml.xml");
    std::fs::write(&doc, "<r><a><b>x</b></a><c/></r>").unwrap();
    let out = tasm(&[
        "query",
        "--query-str",
        "<a><b>x</b></a>",
        "--doc",
        doc.to_str().unwrap(),
        "--k",
        "1",
        "--show-xml",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("<a><b>x</b></a>"), "{text}");
    std::fs::remove_file(&doc).ok();
}

#[test]
fn convert_and_query_postorder_file() {
    let xml = tmp("conv.xml");
    let pq = tmp("conv.pq");
    std::fs::write(&xml, "<r><a><b>x</b></a><a><b>y</b></a></r>").unwrap();
    let out = tasm(&[
        "convert",
        "--doc",
        xml.to_str().unwrap(),
        "--out",
        pq.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Query the .pq with every algorithm; the exact-match line must agree.
    for algo in ["postorder", "dynamic"] {
        let out = tasm(&[
            "query",
            "--query-str",
            "<a><b>x</b></a>",
            "--doc",
            pq.to_str().unwrap(),
            "--k",
            "2",
            "--algorithm",
            algo,
            "--show-xml",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("<a><b>x</b></a>"), "[{algo}] {text}");
    }
    std::fs::remove_file(&xml).ok();
    std::fs::remove_file(&pq).ok();
}
